// Figure 10: triangular workload (cost(i) = N - i, N = 5000) on the
// Butterfly. Theorem 3.3 says chunks of 1/(2P) of the remaining work
// balance this loop: TRAPEZOID starts exactly there and matches AFS;
// GSS's first chunk (1/P of iterations = 2/P of work) lags.
#include "bench_common.hpp"
#include "kernels/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig10";
  spec.title = "Triangular workload on the Butterfly (N=5000)";
  spec.machine = butterfly1();
  spec.program = triangular_program(5000);
  spec.procs = bench::butterfly_procs();
  spec.schedulers = bench::butterfly_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, comparable(r, "AFS", "TRAPEZOID", 48, 0.15),
                       "AFS ~ TRAPEZOID at P=48");
    ok &= report_shape(out, beats(r, "AFS", "GSS", 48, 1.05),
                       "both beat GSS at P=48");
    ok &= report_shape(out, beats(r, "TRAPEZOID", "GSS", 32, 1.02),
                       "TRAPEZOID beats GSS at P=32");
    return ok;
  });
}
