// Thin shim: the experiment lives in src/experiments/ under id "tab6"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run tab6`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("tab6", argc, argv); }
