// §5.3's table: Gaussian elimination on a 4096 x 4096 matrix with 16
// processors on the KSR-1 — the problem-size scaling check. Paper values
// (minutes): AFS 20.6, STATIC 20.9, MOD-FACTORING 22.7, FACTORING 47.3,
// TRAPEZOID 50.7, GSS 73.7. The shape to reproduce: AFS ~ STATIC <
// MOD-FACTORING << FACTORING < TRAPEZOID < GSS, with AFS >2x over the
// non-affinity schedulers even at this size.
#include <iostream>

#include "bench_common.hpp"
#include "kernels/gauss.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  bench::warn_runner_flags_serial(cli, argv[0]);
  std::cout << "== tab6: Gaussian elimination N=4096, P=16, KSR-1 model ==\n";
  const auto program = GaussKernel::program(4096);
  MachineSim sim(ksr1());
  const double serial = sim.ideal_serial_time(program);

  Table table({"scheduler", "completion time", "vs AFS", "speedup"});
  std::vector<std::pair<std::string, double>> results;
  for (const char* spec : {"AFS", "STATIC", "MOD-FACTORING", "FACTORING",
                           "TRAPEZOID", "GSS"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(program, *sched, 16);
    results.emplace_back(spec, r.makespan);
    std::cout << "  " << spec << ": done\n";
  }
  const double afs_time = results.front().second;
  for (const auto& [spec, t] : results) {
    table.add_row({spec, Table::num(t, 0), Table::num(t / afs_time, 2),
                   Table::num(serial / t, 2)});
  }
  std::cout << table.to_ascii();
  table.write_csv(bench::csv_path(cli, "tab6"));
  std::cout << "(csv: " << bench::csv_path(cli, "tab6") << ")\n";

  auto t = [&](const char* name) {
    for (const auto& [spec, v] : results)
      if (spec == name) return v;
    return 0.0;
  };
  report_shape(std::cout, t("AFS") <= t("STATIC") * 1.05,
               "AFS ~ STATIC (paper: 20.6 vs 20.9 min)");
  report_shape(std::cout, t("MOD-FACTORING") < t("FACTORING"),
               "MOD-FACTORING well ahead of FACTORING");
  // The paper measured 2.3x (FACTORING) to 3.6x (GSS) over AFS at P=16 on
  // the real KSR-1; our ring model saturates a little later, so the gap at
  // P=16 is smaller (it reaches ~4x by P=57 — see fig15). The robust
  // shape: every non-affinity scheduler pays a clear ring penalty while
  // AFS/STATIC/MOD-FACTORING do not.
  report_shape(std::cout, t("FACTORING") > 1.2 * t("AFS"),
               "FACTORING pays a clear ring penalty over AFS (paper: 2.3x)");
  report_shape(std::cout,
               t("GSS") > 1.2 * t("AFS") && t("TRAPEZOID") > 1.2 * t("AFS"),
               "GSS and TRAPEZOID pay it too (paper: 3.6x / 2.5x)");
  return 0;
}
