// Figure 14: Gaussian elimination (256 x 256) on the Sequent Symmetry,
// whose processors are ~30x slower than the Iris's while its bus is
// slightly faster: communication is cheap relative to compute, so AFS's
// affinity is worth little (AFS ~ GSS) and TRAPEZOID trails 10-15% from
// its load imbalance (expensive iterations, few processors).
#include "bench_common.hpp"
#include "kernels/gauss.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig14";
  spec.title = "Gaussian elimination on the Sequent Symmetry (N=256)";
  spec.machine = symmetry();
  spec.program = GaussKernel::program(256);
  spec.procs = bench::iris_procs();
  spec.schedulers = {entry("AFS"), entry("GSS"), entry("TRAPEZOID")};

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, comparable(r, "AFS", "GSS", 8, 0.10),
                       "AFS ~ GSS on the Symmetry (communication is cheap)");
    ok &= report_shape(out, beats(r, "GSS", "TRAPEZOID", 8, 1.015),
                       "TRAPEZOID trails (load imbalance, expensive iterations)");
    ok &= report_shape(out, !beats(r, "GSS", "TRAPEZOID", 8, 1.30),
                       "...but only by a modest margin (paper: 10-15%)");
    return ok;
  });
}
