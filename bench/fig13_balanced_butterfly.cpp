// Figure 13: a simple balanced loop on the Butterfly, where every work
// queue is non-local: with affinity, distributed queues and load balance
// all factored out, the remaining differences are pure synchronization
// overhead — and GSS, TRAPEZOID and AFS come out comparable.
#include "bench_common.hpp"
#include "kernels/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig13";
  spec.title = "Balanced loop on the Butterfly (N=1e6, sync overhead only)";
  spec.machine = butterfly1();
  spec.program = balanced_program(1'000'000, 100.0);
  spec.procs = bench::butterfly_procs();
  spec.schedulers = bench::butterfly_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    for (int p : {8, 32, 56}) {
      ok &= report_shape(out, comparable(r, "AFS", "GSS", p, 0.10),
                         "AFS ~ GSS at P=" + std::to_string(p));
      ok &= report_shape(out, comparable(r, "AFS", "TRAPEZOID", p, 0.10),
                         "AFS ~ TRAPEZOID at P=" + std::to_string(p));
    }
    return ok;
  });
}
