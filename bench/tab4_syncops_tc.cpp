// Table 4: synchronization operations per loop for transitive closure on
// the skewed 640-node graph (320-node clique). Paper shape: SS = 640;
// TRAPEZOID fewest central ops; AFS needs only ~1-2 remote operations per
// queue per loop despite the heavy input-dependent imbalance.
#include "kernels/transitive_closure.hpp"
#include "sync_ops_common.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  bench::run_sync_ops_table(
      "tab4", "sync operations per loop, transitive closure (640, skewed)",
      TransitiveClosureKernel::program(clique_graph(640, 320)),
      bench::parse_cli(argc, argv));
  return 0;
}
