// Thin shim: the experiment lives in src/experiments/ under id "tab4"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run tab4`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("tab4", argc, argv); }
