// Figure 6: transitive closure on the skewed input (640 nodes, 320-node
// clique, no other edges) on the Iris. First real load imbalance: STATIC
// degrades, GSS is worst of all (its first chunk holds 2/P of the work),
// FACTORING/TRAPEZOID balance better, AFS and MOD-FACTORING add affinity
// on top (<=15% better), and BEST-STATIC — which knows the input — wins.
#include "bench_common.hpp"
#include "kernels/transitive_closure.hpp"
#include "sched/static_scheduler.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const auto graph = clique_graph(640, 320);
  const auto trace = std::make_shared<std::vector<std::vector<std::uint8_t>>>(
      TransitiveClosureKernel::active_trace(graph));

  FigureSpec spec;
  spec.id = "fig06";
  spec.title = "Transitive closure on the Iris (640 nodes, 320-node clique)";
  spec.machine = iris();
  spec.program = TransitiveClosureKernel::program(graph);
  spec.procs = bench::iris_procs();
  spec.schedulers = bench::iris_schedulers();
  const std::int64_t n = graph.rows();
  spec.schedulers.back() = entry("BEST-STATIC", [trace, n] {
    return std::make_unique<BestStaticScheduler>(
        EpochCostProvider([trace, n](int epoch) {
          return IterationCostFn([trace, epoch, n](std::int64_t j) {
            return (*trace)[static_cast<std::size_t>(epoch)]
                           [static_cast<std::size_t>(j)]
                       ? static_cast<double>(n)
                       : 1.0;
          });
        }));
  });

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "FACTORING", "GSS", 8, 1.0),
                       "GSS worst-in-class: FACTORING beats it at P=8");
    ok &= report_shape(out, beats(r, "TRAPEZOID", "GSS", 8, 1.0),
                       "TRAPEZOID beats GSS at P=8");
    ok &= report_shape(out, beats(r, "AFS", "STATIC", 8, 1.1),
                       "STATIC suffers from the input skew");
    ok &= report_shape(out, beats(r, "AFS", "FACTORING", 8, 1.0) &&
                               !beats(r, "AFS", "FACTORING", 8, 1.30),
                       "AFS beats FACTORING but by <=~15-30%");
    ok &= report_shape(out, beats(r, "BEST-STATIC", "AFS", 8, 1.0),
                       "BEST-STATIC (knows the input) beats AFS");
    return ok;
  });
}
