// Figure 17: SOR (1024 x 1024, 128 sweeps) on the KSR-1. SOR's inner loop
// contains a floating-point division, implemented in software on the
// KSR-1: computation is so expensive that preserving affinity buys little
// — AFS/STATIC/MOD-FACTORING win, but not by much. We model the software
// division by raising SOR's per-element work on this machine.
#include "bench_common.hpp"
#include "kernels/sor.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig17";
  spec.title = "SOR on the KSR-1 (N=1024, 128 sweeps, software FP divide)";
  spec.machine = ksr1();
  // 20 work units per element instead of the Iris's 5: the software
  // divide multiplies per-element cost (the paper's stated anomaly cause).
  spec.program = SorKernel::program(1024, 128, 20.0);
  spec.procs = bench::ksr_procs();
  spec.schedulers = bench::ksr_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "AFS", "GSS", 57, 1.0),
                       "AFS still best at P=57");
    ok &= report_shape(out, !beats(r, "AFS", "GSS", 57, 2.0),
                       "...but NOT by a large factor (compute dominates)");
    ok &= report_shape(out, comparable(r, "AFS", "STATIC", 57, 0.15),
                       "AFS ~ STATIC");
    ok &= report_shape(out, comparable(r, "AFS", "MOD-FACTORING", 57, 0.35),
                       "MOD-FACTORING close behind");
    return ok;
  });
}
