// Thin shim: the experiment lives in src/experiments/ under id "tab5"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run tab5`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("tab5", argc, argv); }
