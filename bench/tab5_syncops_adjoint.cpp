// Table 5: synchronization operations for adjoint convolution (N = 75,
// 5625 iterations, single loop). Paper shape: SS = 5625; TRAPEZOID fewest;
// AFS does somewhat more ops than TRAPEZOID (spread over P queues) —
// which §4.6 shows is harmless because sync is <1% of execution time.
#include "kernels/adjoint_convolution.hpp"
#include "sync_ops_common.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  bench::run_sync_ops_table("tab5",
                            "sync operations, adjoint convolution N=75",
                            AdjointConvolutionKernel::program(75),
                            bench::parse_cli(argc, argv));
  return 0;
}
