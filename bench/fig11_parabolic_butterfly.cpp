// Figure 11: decreasing parabolic workload (cost(i) = (N-i)^2, N = 200) on
// the Butterfly. Theorem 3.3 demands chunks of 1/(3P): AFS's N/P^2 grabs
// qualify, TRAPEZOID's 1/(2P) start is slightly too big, GSS is worst —
// except near P=50, where TRAPEZOID's first chunk is within one iteration
// of the optimum and it converges to AFS (the paper calls this out).
#include "bench_common.hpp"
#include "kernels/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig11";
  spec.title = "Decreasing parabolic workload on the Butterfly (N=200)";
  spec.machine = butterfly1();
  spec.program = parabolic_program(200);
  spec.procs = bench::butterfly_procs();
  spec.schedulers = bench::butterfly_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "AFS", "GSS", 16, 1.05),
                       "AFS beats GSS at P=16");
    ok &= report_shape(out, beats(r, "TRAPEZOID", "GSS", 16, 1.0),
                       "TRAPEZOID between AFS and GSS at P=16");
    ok &= report_shape(out, !beats(r, "TRAPEZOID", "AFS", 16, 1.0) ||
                                comparable(r, "AFS", "TRAPEZOID", 16, 0.10),
                       "AFS at least matches TRAPEZOID at P=16");
    // The paper's aside: near P~50, TRAPEZOID's first chunk comes within
    // one iteration of Theorem 3.3's optimum and its gap to AFS narrows.
    const double gap16 = r.time("TRAPEZOID", 16) / r.time("AFS", 16);
    const double gap56 = r.time("TRAPEZOID", 56) / r.time("AFS", 56);
    ok &= report_shape(out, gap56 < gap16 && gap56 <= 1.30,
                       "TRAPEZOID's gap to AFS narrows toward P~50-56");
    return ok;
  });
}
