// §5.1's architecture-trend argument, made quantitative: as processor
// speed grows faster than interconnect speed, the payoff of affinity
// scheduling grows. We run the same Gaussian elimination on (i) the
// Symmetry model (slow CPUs — the "previous generation"), (ii) the Iris
// model (the paper's "modern" machine), and (iii) a projected future
// machine (Iris with 4x faster CPUs, same bus), and report AFS's advantage
// over GSS on each.
#include <iostream>

#include "bench_common.hpp"
#include "kernels/gauss.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  bench::warn_runner_flags_serial(cli, argv[0]);
  std::cout << "== trend: AFS advantage vs compute/communication ratio ==\n";

  MachineConfig future = iris();
  future.name = "future(4x cpu)";
  future.work_unit_time = iris().work_unit_time / 4.0;

  const auto prog = GaussKernel::program(256);
  Table t({"machine", "comm/compute", "AFS", "GSS", "GSS/AFS"});
  double prev_adv = 0.0;
  bool monotone = true;
  for (const MachineConfig& m : {symmetry(), iris(), future}) {
    MachineSim sim(m);
    auto afs = make_scheduler("AFS");
    auto gss = make_scheduler("GSS");
    const double ta = sim.run(prog, *afs, 8).makespan;
    const double tg = sim.run(prog, *gss, 8).makespan;
    const double ratio = m.transfer_unit_time / m.work_unit_time;
    const double adv = tg / ta;
    t.add_row({m.name, Table::num(ratio, 3), Table::num(ta, 0),
               Table::num(tg, 0), Table::num(adv, 2)});
    monotone &= adv >= prev_adv * 0.98;
    prev_adv = adv;
  }
  std::cout << t.to_ascii();
  t.write_csv(bench::csv_path(cli, "trend"));
  std::cout << "(csv: " << bench::csv_path(cli, "trend") << ")\n";
  report_shape(std::cout, monotone,
               "AFS advantage grows with the comm/compute ratio (§5.1)");

  // The TC2000 vs Butterfly I data point quoted in §5.1.
  const auto b = butterfly1();
  const auto tc = tc2000();
  std::cout << "BBN trend check: compute sped up "
            << Table::num(b.work_unit_time / tc.work_unit_time, 0)
            << "x, remote access only "
            << Table::num(b.miss_latency / tc.miss_latency, 1)
            << "x (paper: 60x vs 3.6x)\n";
  return 0;
}
