// Thin shim: the experiment lives in src/experiments/ under id "trend_comm_ratio"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run trend_comm_ratio`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("trend_comm_ratio", argc, argv); }
