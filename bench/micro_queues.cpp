// Supporting microbenchmarks (google-benchmark) on the real-thread
// substrate: scheduler grab cost, chunk-policy arithmetic, and end-to-end
// parallel_for dispatch, across the algorithm families. These quantify
// the constant factors behind the simulator's sync-cost parameters.
#include <benchmark/benchmark.h>

#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "runtime/parallel_for.hpp"
#include "sim/machine_sim.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/chunk_policy.hpp"
#include "sched/registry.hpp"

namespace afs {
namespace {

void BM_GrabDrain(benchmark::State& state, const char* spec) {
  auto sched = make_scheduler(spec);
  const std::int64_t n = state.range(0);
  std::int64_t grabs = 0;
  for (auto _ : state) {
    sched->start_loop(n, 8);
    for (int w = 0;; w = (w + 1) % 8) {
      const Grab g = sched->next(w);
      if (g.done()) break;
      ++grabs;
      benchmark::DoNotOptimize(g.range.begin);
    }
    sched->end_loop();
  }
  state.counters["grabs/loop"] =
      static_cast<double>(grabs) / static_cast<double>(state.iterations());
}
BENCHMARK_CAPTURE(BM_GrabDrain, ss, "SS")->Arg(4096);
BENCHMARK_CAPTURE(BM_GrabDrain, gss, "GSS")->Arg(4096);
BENCHMARK_CAPTURE(BM_GrabDrain, factoring, "FACTORING")->Arg(4096);
BENCHMARK_CAPTURE(BM_GrabDrain, trapezoid, "TRAPEZOID")->Arg(4096);
BENCHMARK_CAPTURE(BM_GrabDrain, afs, "AFS")->Arg(4096);
BENCHMARK_CAPTURE(BM_GrabDrain, mod_factoring, "MOD-FACTORING")->Arg(4096);

void BM_PolicyChunkMath(benchmark::State& state, const char* which) {
  std::unique_ptr<ChunkPolicy> policy;
  if (std::string(which) == "gss") policy = make_gss();
  else if (std::string(which) == "factoring") policy = make_factoring();
  else policy = make_trapezoid();
  policy->reset(1 << 20, 16);
  std::int64_t remaining = 1 << 20;
  for (auto _ : state) {
    const std::int64_t c = policy->next_chunk(remaining);
    benchmark::DoNotOptimize(c);
    remaining -= c;
    if (remaining <= 0) {
      remaining = 1 << 20;
      policy->reset(remaining, 16);
    }
  }
}
BENCHMARK_CAPTURE(BM_PolicyChunkMath, gss, "gss");
BENCHMARK_CAPTURE(BM_PolicyChunkMath, factoring, "factoring");
BENCHMARK_CAPTURE(BM_PolicyChunkMath, trapezoid, "trapezoid");

void BM_ParallelForDispatch(benchmark::State& state, const char* spec) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  auto sched = make_scheduler(spec);
  for (auto _ : state) {
    std::atomic<std::int64_t> sum{0};
    parallel_for(pool, *sched, 1024, [&sum](IterRange r, int) {
      sum.fetch_add(r.size(), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK_CAPTURE(BM_ParallelForDispatch, gss_p4, "GSS")->Arg(4);
BENCHMARK_CAPTURE(BM_ParallelForDispatch, afs_p4, "AFS")->Arg(4);
BENCHMARK_CAPTURE(BM_ParallelForDispatch, static_p4, "STATIC")->Arg(4);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Events per second of the discrete-event engine on a footprint-bearing
  // kernel: the number that bounds how large a (P, N, epochs) experiment
  // is practical.
  MachineSim sim(iris());
  const auto prog = SorKernel::program(256, 4);
  std::int64_t iterations_simulated = 0;
  for (auto _ : state) {
    auto sched = make_scheduler("AFS");
    const SimResult r = sim.run(prog, *sched, 8);
    iterations_simulated += r.iterations;
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["sim_iters/s"] = benchmark::Counter(
      static_cast<double>(iterations_simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_SimulatorMemorylessFastPath(benchmark::State& state) {
  // The O(1) work_sum path: Table 2's 2e8-iteration loop per run.
  MachineSim sim(iris());
  const auto prog = balanced_program(200'000'000);
  for (auto _ : state) {
    auto sched = make_scheduler("GSS");
    benchmark::DoNotOptimize(sim.run(prog, *sched, 8).makespan);
  }
}
BENCHMARK(BM_SimulatorMemorylessFastPath);

}  // namespace
}  // namespace afs

BENCHMARK_MAIN();
