// Figure 9: the L4 hybrid benchmark on the Iris. No memory accesses, mild
// randomized imbalance: all schedulers perform about the same, dynamic
// ones a bit better than STATIC, SS clearly the worst.
#include "bench_common.hpp"
#include "kernels/l4.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  L4Kernel l4;  // the paper's 50 outer iterations

  FigureSpec spec;
  spec.id = "fig09";
  spec.title = "L4 hybrid benchmark on the Iris";
  spec.machine = iris();
  spec.program = l4.program();
  spec.procs = bench::iris_procs();
  spec.schedulers = {entry("STATIC"), entry("SS"),        entry("GSS"),
                     entry("FACTORING"), entry("TRAPEZOID"), entry("AFS")};

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, comparable(r, "AFS", "GSS", 8, 0.15),
                       "AFS ~ GSS (no affinity to exploit)");
    ok &= report_shape(out, comparable(r, "FACTORING", "TRAPEZOID", 8, 0.15),
                       "FACTORING ~ TRAPEZOID");
    ok &= report_shape(out, beats(r, "GSS", "SS", 8, 1.1),
                       "SS clearly the worst");
    ok &= report_shape(out, comparable(r, "GSS", "STATIC", 8, 0.20),
                       "STATIC within ~20% of the dynamic schedulers");
    return ok;
  });
}
