// Thin shim: the experiment lives in src/experiments/ under id
// "frontier_tradeoff" (see docs/SWEEP_SERVICE.md). Equivalent to
// `afs_sweep run frontier_tradeoff`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) {
  return afs::shim_main("frontier_tradeoff", argc, argv);
}
