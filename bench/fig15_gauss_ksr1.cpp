// Figure 15: Gaussian elimination (1024 x 1024) on the KSR-1.
// Paper shape: AFS best by ~3.7x over FACTORING/GSS and ~2.8x over
// TRAPEZOID at scale; TRAPEZOID beats FACTORING/GSS because sync is
// expensive on the KSR; MOD-FACTORING is good on few processors but
// degrades past ~12-15 as fluctuations destroy its affinity.
#include "bench_common.hpp"
#include "kernels/gauss.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig15";
  spec.title = "Gaussian elimination on the KSR-1 (N=1024)";
  spec.machine = ksr1();
  spec.program = GaussKernel::program(1024);
  spec.procs = bench::ksr_procs();
  spec.schedulers = bench::ksr_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "AFS", "FACTORING", 57, 2.0),
                       "AFS >2x over FACTORING at P=57 (paper: 3.7x)");
    ok &= report_shape(out, beats(r, "AFS", "GSS", 57, 2.0),
                       "AFS >2x over GSS at P=57");
    ok &= report_shape(out, beats(r, "AFS", "TRAPEZOID", 57, 1.7),
                       "AFS >1.7x over TRAPEZOID at P=57 (paper: 2.8x)");
    ok &= report_shape(out, beats(r, "TRAPEZOID", "GSS", 57, 1.0),
                       "TRAPEZOID beats GSS (fewest sync ops, costly sync)");
    ok &= report_shape(out, comparable(r, "MOD-FACTORING", "AFS", 4, 0.5) &&
                               beats(r, "AFS", "MOD-FACTORING", 57, 1.3),
                       "MOD-FACTORING OK at small P, degrades at scale");
    ok &= report_shape(out, comparable(r, "AFS", "STATIC", 57, 0.25),
                       "AFS ~ STATIC (almost no load imbalance in Gauss)");
    return ok;
  });
}
