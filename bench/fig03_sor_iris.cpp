// Figure 3: SOR (N = 512) on the Iris under all eight schedulers.
// Paper shape: SS worst (sync overhead); GSS/FACTORING/TRAPEZOID a middle
// cluster (communication-bound); STATIC and AFS comparable to BEST-STATIC.
#include "bench_common.hpp"
#include "kernels/sor.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig03";
  spec.title = "SOR on the Iris (N=512, 8 sweeps)";
  spec.machine = iris();
  spec.program = SorKernel::program(512, 8);
  spec.procs = bench::iris_procs();
  spec.schedulers = bench::iris_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, comparable(r, "AFS", "STATIC", 8, 0.25),
                       "AFS ~ STATIC at P=8");
    ok &= report_shape(out, comparable(r, "AFS", "BEST-STATIC", 8, 0.25),
                       "AFS ~ BEST-STATIC at P=8");
    ok &= report_shape(out, beats(r, "AFS", "GSS", 8, 1.2),
                       "AFS beats GSS by >1.2x at P=8");
    ok &= report_shape(out, beats(r, "GSS", "SS", 8, 1.05),
                       "SS is the worst dynamic scheduler at P=8");
    ok &= report_shape(
        out,
        r.time("MOD-FACTORING", 8) <= r.time("FACTORING", 8) &&
            r.time("MOD-FACTORING", 8) >= r.time("AFS", 8) * 0.95,
        "MOD-FACTORING lies between AFS and FACTORING");
    return ok;
  });
}
