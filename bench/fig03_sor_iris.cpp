// Thin shim: the experiment lives in src/experiments/ under id "fig03"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run fig03`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("fig03", argc, argv); }
