// Figure 5: transitive closure on a random 512-node graph (~8% of edges)
// on the Iris. Load averages out across iterations, so affinity dominates:
// AFS, STATIC and MOD-FACTORING beat GSS/FACTORING/SS/TRAPEZOID.
#include "bench_common.hpp"
#include "kernels/transitive_closure.hpp"
#include "sched/static_scheduler.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const auto graph = random_graph(512, 0.08, 1992);
  const auto trace = std::make_shared<std::vector<std::vector<std::uint8_t>>>(
      TransitiveClosureKernel::active_trace(graph));

  FigureSpec spec;
  spec.id = "fig05";
  spec.title = "Transitive closure on the Iris (random 512-node graph, 8% edges)";
  spec.machine = iris();
  spec.program = TransitiveClosureKernel::program(graph);
  spec.procs = bench::iris_procs();
  spec.schedulers = bench::iris_schedulers();
  // BEST-STATIC's oracle knows the input: per-epoch costs from the trace.
  const std::int64_t n = graph.rows();
  spec.schedulers.back() = entry("BEST-STATIC", [trace, n] {
    return std::make_unique<BestStaticScheduler>(
        EpochCostProvider([trace, n](int epoch) {
          return IterationCostFn([trace, epoch, n](std::int64_t j) {
            return (*trace)[static_cast<std::size_t>(epoch)]
                           [static_cast<std::size_t>(j)]
                       ? static_cast<double>(n)
                       : 1.0;
          });
        }));
  });

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "AFS", "GSS", 8, 1.15),
                       "AFS beats GSS at P=8");
    ok &= report_shape(out, beats(r, "STATIC", "FACTORING", 8, 1.1),
                       "STATIC beats FACTORING at P=8 (load averages out)");
    ok &= report_shape(out, beats(r, "MOD-FACTORING", "TRAPEZOID", 8, 1.0),
                       "MOD-FACTORING at least matches TRAPEZOID at P=8");
    return ok;
  });
}
