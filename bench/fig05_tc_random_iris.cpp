// Thin shim: the experiment lives in src/experiments/ under id "fig05"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run fig05`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("fig05", argc, argv); }
