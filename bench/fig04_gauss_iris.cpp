// Figure 4: Gaussian elimination (N = 768) on the Iris.
// Paper shape: schedulers that ignore affinity saturate the bus and cannot
// use more than ~2 processors; AFS/STATIC track BEST-STATIC and use all 8,
// a factor ~3 over the traditional dynamic algorithms.
#include "bench_common.hpp"
#include "kernels/gauss.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig04";
  spec.title = "Gaussian elimination on the Iris (N=768)";
  spec.machine = iris();
  spec.program = GaussKernel::program(768);
  spec.procs = bench::iris_procs();
  spec.schedulers = bench::iris_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, effective_processors(r, "GSS") <= 4,
                       "GSS cannot effectively use more than a few processors");
    ok &= report_shape(out, effective_processors(r, "AFS") >= 7,
                       "AFS effectively uses all 8 processors");
    ok &= report_shape(out, beats(r, "AFS", "GSS", 8, 2.0),
                       "AFS ~3x better than GSS at P=8 (>=2x required)");
    ok &= report_shape(out, comparable(r, "AFS", "BEST-STATIC", 8, 0.30),
                       "AFS close to BEST-STATIC at P=8");
    ok &= report_shape(out, beats(r, "MOD-FACTORING", "FACTORING", 6, 1.2),
                       "MOD-FACTORING much better than FACTORING at P=6");
    return ok;
  });
}
