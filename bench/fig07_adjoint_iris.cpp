// Figure 7: adjoint convolution (N = 75 -> 5625 iterations) on the Iris.
// No affinity, strong linearly-decreasing imbalance: FACTORING,
// MOD-FACTORING, TRAPEZOID and AFS balance best; GSS and the static
// methods front-load too much work; SS pays sync per iteration.
#include "bench_common.hpp"
#include "kernels/adjoint_convolution.hpp"
#include "sched/static_scheduler.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig07";
  spec.title = "Adjoint convolution on the Iris (N=75)";
  spec.machine = iris();
  spec.program = AdjointConvolutionKernel::program(75);
  spec.procs = bench::iris_procs();
  spec.schedulers = bench::iris_schedulers();
  // BEST-STATIC's oracle: the (N^2 - i) cost law.
  spec.schedulers.back() = entry("BEST-STATIC", [] {
    return std::make_unique<BestStaticScheduler>(
        AdjointConvolutionKernel::cost(75));
  });

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "FACTORING", "GSS", 8, 1.1),
                       "FACTORING beats GSS (GSS front-loads work)");
    ok &= report_shape(out, beats(r, "TRAPEZOID", "STATIC", 8, 1.2),
                       "TRAPEZOID beats naive STATIC");
    ok &= report_shape(out, comparable(r, "AFS", "FACTORING", 8, 0.20),
                       "AFS among the best balancers");
    // SS's per-iteration sync hurts less here than in the paper's other
    // kernels because adjoint iterations are huge; it still trails the
    // balanced schedulers (the paper does not rank SS vs GSS in Fig. 7).
    ok &= report_shape(out, beats(r, "FACTORING", "SS", 8, 1.01),
                       "SS pays a visible sync penalty vs FACTORING");
    return ok;
  });
}
