// Table 2: execution time of a simple balanced loop (200M iterations, no
// memory accesses) on the Iris, with one of 8 processors delayed by
// 0.0625N .. 0.25N iterations' worth of time. Paper shape: GSS, TRAPEZOID,
// FACTORING and AFS(k=P) are all equivalent (finish within one iteration);
// AFS(k=2) is the worst but within ~10%.
#include <iostream>

#include "bench_common.hpp"
#include "kernels/synthetic.hpp"
#include "sched/bounds.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  bench::warn_runner_flags_serial(cli, argv[0]);
  const std::int64_t n = 200'000'000;
  const int p = 8;
  const std::vector<double> delays{0.0625, 0.125, 0.1875, 0.2031, 0.2187, 0.25};
  const std::vector<std::string> specs{"GSS", "TRAPEZOID", "FACTORING",
                                       "AFS(k=2)", "AFS"};

  std::cout << "== tab2: balanced loop (N=2e8) with one delayed processor, "
               "Iris model ==\n";
  MachineConfig machine = iris();
  machine.epoch_jitter = 0.0;  // the delay is the experiment's only skew

  Table table({"delay", "GSS", "TRAPEZOID", "FACTORING", "AFS(k=2)",
               "AFS(k=P)"});
  bool all_close = true;
  double worst_k2_ratio = 0.0;
  double worst_k2_excess = 0.0;  // absolute time excess over the row's best
  for (double frac : delays) {
    std::vector<std::string> row{Table::num(frac, 4) + "N"};
    double best = 1e300;
    std::vector<double> times;
    for (const auto& spec : specs) {
      // The delayed start is expressed through the fault-injection model:
      // one initial stall on processor 0 (accounted as stall_time).
      SimOptions opts;
      opts.perturb.start_delays.assign(p, 0.0);
      opts.perturb.start_delays[0] = frac * static_cast<double>(n);
      MachineSim sim(machine, opts);
      auto sched = make_scheduler(spec);
      const double t = sim.run(balanced_program(n), *sched, p).makespan;
      times.push_back(t);
      best = std::min(best, t);
    }
    for (std::size_t i = 0; i < times.size(); ++i) {
      row.push_back(Table::num(times[i], 0));
      const double ratio = times[i] / best;
      if (specs[i] == "AFS(k=2)") {
        worst_k2_ratio = std::max(worst_k2_ratio, ratio);
        worst_k2_excess = std::max(worst_k2_excess, times[i] - best);
      } else if (ratio > 1.02) {
        all_close = false;
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_ascii();
  table.write_csv(bench::csv_path(cli, "tab2"));
  std::cout << "(csv: " << bench::csv_path(cli, "tab2") << ")\n";

  report_shape(std::cout, all_close,
               "GSS/TRAPEZOID/FACTORING/AFS(k=P) within ~2% of each other");
  // AFS(k=2)'s excess must respect the Theorem 3.2 imbalance bound
  // N(P-k)/(P(P-1)k)+1 iterations. (The paper measured ~10% on the real
  // Iris; our worst case is larger because the simulator's zero-jitter
  // schedule hits the theorem's adversarial alignment exactly —
  // see EXPERIMENTS.md.)
  const double bound = afs_imbalance_bound(n, p, 2);
  report_shape(std::cout, worst_k2_ratio >= 1.0,
               "AFS(k=2) is the worst variant (measured +" +
                   Table::num((worst_k2_ratio - 1.0) * 100.0, 1) + "%)");
  report_shape(std::cout, worst_k2_excess <= bound + 4.0,
               "AFS(k=2)'s excess respects the Theorem 3.2 bound");
  return 0;
}
