// Thin shim: the experiment lives in src/experiments/ under id "tab2"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run tab2`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("tab2", argc, argv); }
