// Shared driver for the Tables 3-5 synchronization-operation counts: run a
// program under each scheduler for P in {1,2,4,6,8} on the Iris model and
// report removals per loop (central algorithms) and per-queue local /
// remote removals per loop (AFS), exactly the columns of the paper.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"
#include "workload/loop_spec.hpp"

namespace afs::bench {

inline void run_sync_ops_table(const std::string& id, const std::string& title,
                               const LoopProgram& program,
                               const BenchCli& cli = {}) {
  warn_runner_flags_serial(cli, id.c_str());
  std::cout << "== " << id << ": " << title << " ==\n";
  Table table({"P", "SS", "GSS", "FACTORING", "TRAPEZOID", "AFS remote/queue",
               "AFS local/queue"});
  MachineSim sim(iris());

  for (int p : {1, 2, 4, 6, 8}) {
    std::vector<std::string> row{std::to_string(p)};
    for (const char* spec : {"SS", "GSS", "FACTORING", "TRAPEZOID"}) {
      auto sched = make_scheduler(spec);
      const SimResult r = sim.run(program, *sched, p);
      row.push_back(Table::num(r.sched_stats.grabs_per_loop(), 1));
    }
    auto afs = make_scheduler("AFS");
    const SimResult r = sim.run(program, *afs, p);
    row.push_back(Table::num(r.sched_stats.remote_per_queue_per_loop(), 2));
    row.push_back(Table::num(r.sched_stats.local_per_queue_per_loop(), 2));
    table.add_row(std::move(row));
  }
  std::cout << table.to_ascii();
  const std::string csv = csv_path(cli, id);
  table.write_csv(csv);
  std::cout << "(csv: " << csv << ")\n\n";
}

}  // namespace afs::bench
