// Thin shim: the experiment lives in src/experiments/ under id "fig12"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run fig12`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("fig12", argc, argv); }
