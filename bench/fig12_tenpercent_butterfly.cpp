// Figure 12: first 10% of 50000 iterations cost 100 units, the rest 1 unit
// (the transitive-closure-like imbalance), on the Butterfly. A processor
// taking more than 1/(10P) of the iterations gets >1/P of the work: AFS's
// small distributed chunks win clearly over TRAPEZOID and GSS.
#include "bench_common.hpp"
#include "kernels/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig12";
  spec.title = "Head-heavy workload on the Butterfly (N=50000, 10% @ 100x)";
  spec.machine = butterfly1();
  spec.program = head_heavy_program(50000);
  spec.procs = bench::butterfly_procs();
  spec.schedulers = bench::butterfly_schedulers();

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, beats(r, "AFS", "GSS", 48, 1.10),
                       "AFS clearly superior to GSS at P=48");
    ok &= report_shape(out, beats(r, "AFS", "TRAPEZOID", 48, 1.05),
                       "AFS clearly superior to TRAPEZOID at P=48");
    ok &= report_shape(out, beats(r, "AFS", "GSS", 16, 1.05),
                       "advantage visible already at P=16");
    return ok;
  });
}
