// Shared plumbing for the paper-reproduction binaries: standard processor
// sweeps, the scheduler line-ups of each experiment family, a common
// command-line interface, and a tiny main() wrapper that prints the
// figure header and shape-check summary.
//
// Every figure/table binary accepts the same flags:
//
//   --procs=1,2,4     override the processor sweep (figures only)
//   --out-dir=DIR     write CSVs (and traces) under DIR [bench_results]
//   --trace           also write a JSONL event trace per figure run
//   --help            usage
//
// so `bench_fig15_gauss_ksr1 --procs=57 --trace --out-dir=/tmp/f15` gives
// a single-sweep run with a full timeline without recompiling anything.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "experiments/expectations.hpp"
#include "experiments/figure.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/trace_sink.hpp"

namespace afs::bench {

/// P = 1..8 (the Iris and Symmetry experiments).
inline std::vector<int> iris_procs() { return {1, 2, 3, 4, 5, 6, 7, 8}; }

/// The Butterfly sweep the §4.4 figures plot.
inline std::vector<int> butterfly_procs() {
  return {1, 2, 4, 8, 16, 24, 32, 40, 48, 56};
}

/// The KSR-1 sweep of §5.2.
inline std::vector<int> ksr_procs() {
  return {1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 57};
}

/// §4.3 Iris line-up (Figs. 3-9): the eight head-to-head algorithms.
inline std::vector<SchedulerEntry> iris_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : paper_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §4.4 Butterfly line-up (Figs. 10-13): AFS, GSS, TRAPEZOID.
inline std::vector<SchedulerEntry> butterfly_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : butterfly_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §5.2 KSR-1 line-up (Figs. 15-17): the six dynamic + static algorithms.
inline std::vector<SchedulerEntry> ksr_schedulers() {
  return {entry("AFS"),       entry("STATIC"),    entry("MOD-FACTORING"),
          entry("FACTORING"), entry("TRAPEZOID"), entry("GSS")};
}

// ------------------------------- CLI -------------------------------------

/// Options common to every bench binary. Defaults reproduce the paper
/// configuration exactly; anything else is an explicit deviation.
struct BenchCli {
  std::vector<int> procs;                 ///< empty = the figure's own sweep
  std::string out_dir = "bench_results";  ///< CSV / trace destination
  bool trace = false;                     ///< write <out_dir>/<id>.trace.jsonl
};

inline void print_usage(const char* argv0, std::ostream& out) {
  out << "usage: " << argv0 << " [--procs=1,2,4] [--out-dir=DIR] [--trace]\n"
      << "  --procs=LIST   comma-separated processor counts overriding the\n"
      << "                 figure's standard sweep\n"
      << "  --out-dir=DIR  directory for CSV output (default bench_results)\n"
      << "  --trace        also stream a JSONL event trace per run\n"
      << "                 (see docs/SIMULATOR.md, \"Trace schema\")\n";
}

/// Pure parser behind parse_cli, exposed so tests can drive it without a
/// process exit. Parses `args` (argv[1..]) into `cli`. Returns false with
/// `error` describing the offending flag/value on malformed input; sets
/// `want_help` (and returns true) when --help / -h is present.
inline bool parse_cli_args(const std::vector<std::string>& args, BenchCli& cli,
                           std::string& error, bool& want_help) {
  error.clear();
  want_help = false;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      want_help = true;
      return true;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      cli.out_dir = arg.substr(10);
      if (cli.out_dir.empty()) {
        error = "--out-dir needs a non-empty directory";
        return false;
      }
    } else if (arg.rfind("--procs=", 0) == 0) {
      cli.procs.clear();
      const std::string list = arg.substr(8);
      if (list.empty()) {
        error = "--procs needs at least one value";
        return false;
      }
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma - pos);
        char* end = nullptr;
        errno = 0;
        const long v = std::strtol(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0' || errno == ERANGE || v < 1 ||
            v > 64) {
          error = "bad --procs entry '" + tok + "' (need integers in 1..64)";
          return false;
        }
        cli.procs.push_back(static_cast<int>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;  // a trailing comma leaves an empty (bad) token
      }
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

/// Parses the shared flags; prints usage and exits on --help or on
/// anything unrecognized (these are batch reproduction binaries — a typo
/// should fail loudly, not silently run the default 20-minute sweep).
inline BenchCli parse_cli(int argc, char** argv) {
  BenchCli cli;
  std::string error;
  bool want_help = false;
  if (!parse_cli_args(std::vector<std::string>(argv + 1, argv + argc), cli,
                      error, want_help)) {
    std::cerr << argv[0] << ": " << error << "\n";
    print_usage(argv[0], std::cerr);
    std::exit(2);
  }
  if (want_help) {
    print_usage(argv[0], std::cout);
    std::exit(EXIT_SUCCESS);
  }
  return cli;
}

/// CSV path for a non-figure table under the chosen output directory.
inline std::string csv_path(const BenchCli& cli, const std::string& id) {
  return cli.out_dir + "/" + id + ".csv";
}

// --------------------------- main() wrappers ------------------------------

/// Runs the figure, prints the shape summary, returns a process exit code
/// (shape mismatches are reported but do not fail the binary: they are
/// data, recorded in EXPERIMENTS.md).
inline int run_and_report(
    const FigureSpec& spec,
    const std::function<void(const FigureResult&, std::ostream&)>& shapes) {
  try {
    const FigureResult result = run_figure(spec, std::cout);
    if (shapes) shapes(result, std::cout);
    std::cout << std::endl;
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << spec.id << " failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}

/// The standard figure main(): applies the shared CLI to the spec
/// (processor-sweep override, output directory, optional trace sink),
/// then runs and reports as above.
inline int run_and_report(
    int argc, char** argv, FigureSpec spec,
    const std::function<void(const FigureResult&, std::ostream&)>& shapes) {
  const BenchCli cli = parse_cli(argc, argv);
  if (!cli.procs.empty()) spec.procs = cli.procs;
  spec.out_dir = cli.out_dir;

  std::unique_ptr<JsonlTraceSink> trace;
  if (cli.trace) {
    const std::string path = cli.out_dir + "/" + spec.id + ".trace.jsonl";
    try {
      std::filesystem::create_directories(cli.out_dir);
      trace = std::make_unique<JsonlTraceSink>(path);
    } catch (const std::exception& e) {
      std::cerr << argv[0] << ": cannot open trace " << path << ": "
                << e.what() << "\n";
      return EXIT_FAILURE;
    }
    spec.sim_options.trace = trace.get();
    std::cout << "(tracing to " << path << ")\n";
  }
  const int rc = run_and_report(spec, shapes);
  if (trace)
    std::cout << "(trace: " << trace->lines_written() << " events)\n";
  return rc;
}

}  // namespace afs::bench
