// Shared plumbing for the paper-reproduction binaries: standard processor
// sweeps, the scheduler line-ups of each experiment family, a common
// command-line interface, and a tiny main() wrapper that prints the
// figure header and shape-check summary.
//
// Every figure/table binary accepts the same flags:
//
//   --procs=1,2,4     override the processor sweep (figures only)
//   --out-dir=DIR     write CSVs (and traces) under DIR [bench_results]
//   --trace           also write an event trace per (scheduler, P) cell
//   --trace-format=F  trace encoding: jsonl | binary (implies --trace)
//   --jobs=N          run (scheduler, P) cells on N threads [1]
//   --resume          reload finished cells from the sweep checkpoint
//   --cell-timeout=S  wall-clock deadline (seconds) per cell attempt
//   --sweep-timeout=S wall-clock deadline for the whole sweep
//   --help            usage
//
// so `bench_fig15_gauss_ksr1 --procs=57 --trace --out-dir=/tmp/f15` gives
// a single-sweep run with a full timeline without recompiling anything,
// and `bench_fig15_gauss_ksr1 --jobs=4 --resume` finishes a previously
// killed sweep, recomputing only its missing cells (docs/SWEEP_RUNNER.md).
// The figure binaries route the last four flags through the crash-safe
// sweep runner; bespoke tables whose rows are interdependent run serially
// and say so when the flags are passed.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "experiments/expectations.hpp"
#include "experiments/figure.hpp"
#include "machines/machines.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/registry.hpp"
#include "sim/trace_sink.hpp"
#include "trace/trace_record.hpp"

namespace afs::bench {

/// P = 1..8 (the Iris and Symmetry experiments).
inline std::vector<int> iris_procs() { return {1, 2, 3, 4, 5, 6, 7, 8}; }

/// The Butterfly sweep the §4.4 figures plot.
inline std::vector<int> butterfly_procs() {
  return {1, 2, 4, 8, 16, 24, 32, 40, 48, 56};
}

/// The KSR-1 sweep of §5.2.
inline std::vector<int> ksr_procs() {
  return {1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 57};
}

/// §4.3 Iris line-up (Figs. 3-9): the eight head-to-head algorithms.
inline std::vector<SchedulerEntry> iris_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : paper_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §4.4 Butterfly line-up (Figs. 10-13): AFS, GSS, TRAPEZOID.
inline std::vector<SchedulerEntry> butterfly_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : butterfly_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §5.2 KSR-1 line-up (Figs. 15-17): the six dynamic + static algorithms.
inline std::vector<SchedulerEntry> ksr_schedulers() {
  return {entry("AFS"),       entry("STATIC"),    entry("MOD-FACTORING"),
          entry("FACTORING"), entry("TRAPEZOID"), entry("GSS")};
}

// ------------------------------- CLI -------------------------------------

/// Options common to every bench binary. Defaults reproduce the paper
/// configuration exactly; anything else is an explicit deviation.
struct BenchCli {
  std::vector<int> procs;                 ///< empty = the figure's own sweep
  std::string out_dir = "bench_results";  ///< CSV / trace destination
  bool trace = false;  ///< write one trace per (scheduler, P) cell under
                       ///< <out_dir> (see trace_cell_path)
  TraceFormat trace_format = TraceFormat::kJsonl;  ///< encoding when tracing
  bool time_phases = false;  ///< collect engine phase timers; write
                             ///< <out_dir>/<id>.phases.json
  bool no_batch = false;     ///< A/B: disable iteration batching
  bool no_memory_fast_path = false;  ///< A/B: disable the exclusive-
                                     ///< residency memory fast path
  int jobs = 1;                ///< sweep-runner worker threads
  bool resume = false;         ///< reload checkpointed cells
  double cell_timeout = 0.0;   ///< seconds per cell attempt; 0 = unlimited
  double sweep_timeout = 0.0;  ///< seconds for the whole sweep; 0 = unlimited
  int cell_retries = -1;       ///< re-attempts per cell; -1 = runner default

  /// True when any sweep-runner flag deviates from its default.
  bool runner_flags_set() const {
    return jobs != 1 || resume || cell_timeout > 0.0 || sweep_timeout > 0.0 ||
           cell_retries >= 0;
  }
};

inline void print_usage(const char* argv0, std::ostream& out) {
  out << "usage: " << argv0
      << " [--procs=1,2,4] [--out-dir=DIR] [--trace] [--trace-format=F]\n"
      << "       [--time-phases] [--no-batch] [--no-memory-fast-path]\n"
      << "       [--jobs=N] [--resume] [--cell-timeout=S] [--sweep-timeout=S]\n"
      << "       [--cell-retries=N]\n"
      << "  --procs=LIST   comma-separated processor counts overriding the\n"
      << "                 figure's standard sweep\n"
      << "  --out-dir=DIR  directory for CSV output (default bench_results)\n"
      << "  --trace        also stream an event trace per (scheduler, P)\n"
      << "                 cell to <out-dir>/<id>.p<P>.<scheduler>.*\n"
      << "                 (see docs/SIMULATOR.md, \"Trace schema\");\n"
      << "                 composes with --jobs/--resume\n"
      << "  --trace-format=F  trace encoding: jsonl (default) or binary\n"
      << "                 (.cctrace, ~10x smaller; implies --trace; render\n"
      << "                 either with tools/trace_report)\n"
      << "  --time-phases  collect the engine's host wall-clock phase\n"
      << "                 breakdown and write <out-dir>/<id>.phases.json\n"
      << "                 (simulated results stay bit-identical; see\n"
      << "                 tools/phase_report.py)\n"
      << "  --no-batch     disable iteration batching (A/B check; results\n"
      << "                 are bit-identical, only slower)\n"
      << "  --no-memory-fast-path  disable the memory system's exclusive-\n"
      << "                 residency fast path (A/B check; bit-identical)\n"
      << "  --jobs=N       run independent (scheduler, P) sweep cells on N\n"
      << "                 threads (default 1 = serial; results identical)\n"
      << "  --resume       reload finished cells from the sweep checkpoint\n"
      << "                 under <out-dir>/.sweep/<id> instead of rerunning\n"
      << "  --cell-timeout=S  per-cell wall-clock deadline in seconds\n"
      << "  --sweep-timeout=S sweep-wide wall-clock deadline in seconds\n"
      << "                 (timed-out cells are reported, not fatal —\n"
      << "                  see docs/SWEEP_RUNNER.md)\n"
      << "  --cell-retries=N  re-attempts after a cell's first failed try\n"
      << "                 (default " << SweepOptions{}.max_retries
      << "; 0 disables retries)\n";
}

/// Pure parser behind parse_cli, exposed so tests can drive it without a
/// process exit. Parses `args` (argv[1..]) into `cli`. Returns false with
/// `error` describing the offending flag/value on malformed input; sets
/// `want_help` (and returns true) when --help / -h is present.
inline bool parse_cli_args(const std::vector<std::string>& args, BenchCli& cli,
                           std::string& error, bool& want_help) {
  error.clear();
  want_help = false;
  const auto parse_seconds = [&error](const std::string& arg,
                                      std::size_t prefix_len, const char* flag,
                                      double& out_v) {
    const std::string tok = arg.substr(prefix_len);
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE ||
        !(v > 0.0) || v > 86400.0) {
      error = std::string("bad ") + flag + " value '" + tok +
              "' (need seconds in (0, 86400])";
      return false;
    }
    out_v = v;
    return true;
  };
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      want_help = true;
      return true;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      const std::string tok = arg.substr(15);
      if (tok == "jsonl") {
        cli.trace_format = TraceFormat::kJsonl;
      } else if (tok == "binary") {
        cli.trace_format = TraceFormat::kBinary;
      } else {
        error = "bad --trace-format value '" + tok +
                "' (need jsonl or binary)";
        return false;
      }
      cli.trace = true;  // choosing an encoding is asking for a trace
    } else if (arg == "--time-phases") {
      cli.time_phases = true;
    } else if (arg == "--no-batch") {
      cli.no_batch = true;
    } else if (arg == "--no-memory-fast-path") {
      cli.no_memory_fast_path = true;
    } else if (arg.rfind("--cell-retries=", 0) == 0) {
      const std::string tok = arg.substr(15);
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || end == tok.c_str() || *end != '\0' ||
          errno == ERANGE || v < 0 || v > 100) {
        error = "bad --cell-retries value '" + tok +
                "' (need an integer in 0..100)";
        return false;
      }
      cli.cell_retries = static_cast<int>(v);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      cli.out_dir = arg.substr(10);
      if (cli.out_dir.empty()) {
        error = "--out-dir needs a non-empty directory";
        return false;
      }
    } else if (arg.rfind("--procs=", 0) == 0) {
      cli.procs.clear();
      const std::string list = arg.substr(8);
      if (list.empty()) {
        error = "--procs needs at least one value";
        return false;
      }
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma - pos);
        char* end = nullptr;
        errno = 0;
        const long v = std::strtol(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0' || errno == ERANGE || v < 1 ||
            v > 64) {
          error = "bad --procs entry '" + tok + "' (need integers in 1..64)";
          return false;
        }
        cli.procs.push_back(static_cast<int>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;  // a trailing comma leaves an empty (bad) token
      }
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const std::string tok = arg.substr(7);
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || end == tok.c_str() || *end != '\0' ||
          errno == ERANGE || v < 1 || v > 256) {
        error = "bad --jobs value '" + tok + "' (need an integer in 1..256)";
        return false;
      }
      cli.jobs = static_cast<int>(v);
    } else if (arg.rfind("--cell-timeout=", 0) == 0) {
      if (!parse_seconds(arg, 15, "--cell-timeout", cli.cell_timeout))
        return false;
    } else if (arg.rfind("--sweep-timeout=", 0) == 0) {
      if (!parse_seconds(arg, 16, "--sweep-timeout", cli.sweep_timeout))
        return false;
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

/// Parses the shared flags; prints usage and exits on --help or on
/// anything unrecognized (these are batch reproduction binaries — a typo
/// should fail loudly, not silently run the default 20-minute sweep).
inline BenchCli parse_cli(int argc, char** argv) {
  BenchCli cli;
  std::string error;
  bool want_help = false;
  if (!parse_cli_args(std::vector<std::string>(argv + 1, argv + argc), cli,
                      error, want_help)) {
    std::cerr << argv[0] << ": " << error << "\n";
    print_usage(argv[0], std::cerr);
    std::exit(2);
  }
  if (want_help) {
    print_usage(argv[0], std::cout);
    std::exit(EXIT_SUCCESS);
  }
  return cli;
}

/// CSV path for a non-figure table under the chosen output directory.
inline std::string csv_path(const BenchCli& cli, const std::string& id) {
  return cli.out_dir + "/" + id + ".csv";
}

// --------------------------- main() wrappers ------------------------------

/// Runs the figure through the sweep runner, prints the shape summary,
/// returns a process exit code. Shape mismatches are reported but do not
/// fail the binary: they are data, recorded in EXPERIMENTS.md. Failed
/// cells degrade gracefully — the CSV still covers every completed cell
/// and a machine-readable failure report is written next to it — and only
/// an *invariant* break (a simulator bug, not a deadline) is fatal: shape
/// checks are skipped (they assume a full grid) and the exit code stays 0
/// for timeouts/cancellations so batch drivers can --resume later.
inline int run_and_report(
    const FigureSpec& spec, const SweepOptions& sweep,
    const std::function<void(const FigureResult&, std::ostream&)>& shapes) {
  try {
    const FigureResult result = run_figure(spec, std::cout, sweep);
    if (result.failures.empty()) {
      if (shapes) shapes(result, std::cout);
    } else {
      std::cout << "(skipping shape checks: " << result.failures.size()
                << " of " << result.cells_total << " cells have no result)\n";
    }
    std::cout << std::endl;
    for (const CellFailure& f : result.failures)
      if (f.kind == "invariant") return EXIT_FAILURE;
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << spec.id << " failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}

/// Legacy entry point: serial, no checkpointing (bit-identical to the
/// pre-runner loop).
inline int run_and_report(
    const FigureSpec& spec,
    const std::function<void(const FigureResult&, std::ostream&)>& shapes) {
  return run_and_report(spec, SweepOptions{}, shapes);
}

/// The standard figure main(): applies the shared CLI to the spec
/// (processor-sweep override, output directory, optional trace sink),
/// then runs and reports as above.
inline int run_and_report(
    int argc, char** argv, FigureSpec spec,
    const std::function<void(const FigureResult&, std::ostream&)>& shapes) {
  const BenchCli cli = parse_cli(argc, argv);
  if (!cli.procs.empty()) spec.procs = cli.procs;
  spec.out_dir = cli.out_dir;
  if (cli.time_phases) spec.sim_options.time_phases = true;
  if (cli.no_batch) spec.sim_options.batch_iterations = false;
  if (cli.no_memory_fast_path) spec.sim_options.memory_fast_path = false;

  // Every CLI run checkpoints under <out-dir>/.sweep/<id> so a killed
  // sweep is resumable with --resume even when the first invocation never
  // asked for it; a clean finish costs one small file per cell.
  SweepOptions sweep;
  sweep.jobs = cli.jobs;
  sweep.cell_timeout = cli.cell_timeout;
  sweep.sweep_timeout = cli.sweep_timeout;
  if (cli.cell_retries >= 0) sweep.max_retries = cli.cell_retries;
  sweep.resume = cli.resume;
  sweep.checkpoint_dir = cli.out_dir + "/.sweep/" + spec.id;

  // Tracing is per sweep cell (each cell constructs, finalizes, or
  // abandons its own sink inside run_figure), which is what lets --trace
  // compose with --jobs=N and --resume.
  if (cli.trace) spec.trace_format = cli.trace_format;

  return run_and_report(spec, sweep, shapes);
}

/// Bespoke tables whose rows feed each other (e.g. tab7's fault-free
/// baseline row) cannot be split into independent sweep cells; they
/// accept the shared runner flags for CLI uniformity but run serially.
/// Call after parse_cli to say so instead of silently ignoring the ask.
inline void warn_runner_flags_serial(const BenchCli& cli, const char* argv0) {
  if (cli.runner_flags_set())
    std::cerr << argv0
              << ": note: this table's rows are interdependent; "
                 "--jobs/--resume/--*-timeout are accepted but the table "
                 "runs serially without checkpoints\n";
}

}  // namespace afs::bench
