// Shared plumbing for the paper-reproduction binaries: standard processor
// sweeps, the scheduler line-ups of each experiment family, and a tiny
// main() wrapper that prints the figure header and shape-check summary.
#pragma once

#include <cstdlib>
#include <iostream>
#include <vector>

#include "experiments/expectations.hpp"
#include "experiments/figure.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"

namespace afs::bench {

/// P = 1..8 (the Iris and Symmetry experiments).
inline std::vector<int> iris_procs() { return {1, 2, 3, 4, 5, 6, 7, 8}; }

/// The Butterfly sweep the §4.4 figures plot.
inline std::vector<int> butterfly_procs() {
  return {1, 2, 4, 8, 16, 24, 32, 40, 48, 56};
}

/// The KSR-1 sweep of §5.2.
inline std::vector<int> ksr_procs() {
  return {1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 57};
}

/// §4.3 Iris line-up (Figs. 3-9): the eight head-to-head algorithms.
inline std::vector<SchedulerEntry> iris_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : paper_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §4.4 Butterfly line-up (Figs. 10-13): AFS, GSS, TRAPEZOID.
inline std::vector<SchedulerEntry> butterfly_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : butterfly_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §5.2 KSR-1 line-up (Figs. 15-17): the six dynamic + static algorithms.
inline std::vector<SchedulerEntry> ksr_schedulers() {
  return {entry("AFS"),       entry("STATIC"),    entry("MOD-FACTORING"),
          entry("FACTORING"), entry("TRAPEZOID"), entry("GSS")};
}

/// Runs the figure, prints the shape summary, returns a process exit code
/// (shape mismatches are reported but do not fail the binary: they are
/// data, recorded in EXPERIMENTS.md).
inline int run_and_report(
    const FigureSpec& spec,
    const std::function<void(const FigureResult&, std::ostream&)>& shapes) {
  try {
    const FigureResult result = run_figure(spec, std::cout);
    if (shapes) shapes(result, std::cout);
    std::cout << std::endl;
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << spec.id << " failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}

}  // namespace afs::bench
