// Ablations for the design choices DESIGN.md calls out (beyond the paper's
// evaluated configurations):
//   (a) k sweep           — §3's sync-vs-balance trade-off, measured;
//   (b) steal fraction    — 1/P (paper) vs 1/2 (greedy stealing);
//   (c) cache capacity    — §2.1's eviction discussion: affinity's benefit
//                           disappears when the working set stops fitting;
//   (d) AFS vs AFS-LE     — the §4.3 last-executed variant under a
//                           persistently imbalanced workload.
#include <iostream>

#include "bench_common.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "kernels/transitive_closure.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  bench::warn_runner_flags_serial(cli, argv[0]);
  std::cout << "== ablation: AFS design choices (Iris model) ==\n\n";

  // (a) k sweep on a head-heavy imbalanced loop: larger k = finer local
  // chunks = better balance at the cost of more local queue operations.
  {
    std::cout << "-- (a) AFS k sweep, transitive closure skewed 320/640 --\n";
    const auto prog =
        TransitiveClosureKernel::program(clique_graph(640, 320));
    MachineSim sim(iris());
    Table t({"k", "time", "local grabs", "steals"});
    for (const char* spec : {"AFS(k=1)", "AFS(k=2)", "AFS(k=4)", "AFS"}) {
      auto sched = make_scheduler(spec);
      const SimResult r = sim.run(prog, *sched, 8);
      t.add_row({sched->name(), Table::num(r.makespan, 0),
                 Table::num(r.local_grabs), Table::num(r.remote_grabs)});
    }
    std::cout << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_k"));
  }

  // (b) steal fraction.
  {
    std::cout << "\n-- (b) AFS steal fraction, same workload --\n";
    const auto prog =
        TransitiveClosureKernel::program(clique_graph(640, 320));
    MachineSim sim(iris());
    Table t({"steal", "time", "steals", "iters stolen"});
    for (const char* spec : {"AFS", "AFS(steal=2)", "AFS(steal=4)"}) {
      auto sched = make_scheduler(spec);
      const SimResult r = sim.run(prog, *sched, 8);
      std::int64_t stolen = 0;
      for (const auto& q : r.sched_stats.queues) stolen += q.iters_remote;
      t.add_row({sched->name(), Table::num(r.makespan, 0),
                 Table::num(r.remote_grabs), Table::num(stolen)});
    }
    std::cout << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_steal"));
  }

  // (c) cache capacity sweep: shrink the Iris caches until the SOR working
  // set stops fitting; AFS's advantage over GSS should collapse.
  {
    std::cout << "\n-- (c) cache capacity sweep, SOR N=512, P=8 --\n";
    const auto prog = SorKernel::program(512, 8);
    Table t({"capacity (rows/proc)", "AFS", "GSS", "GSS/AFS"});
    for (double rows_per_proc : {128.0, 64.0, 32.0, 8.0, 2.0}) {
      MachineConfig m = iris();
      m.cache_capacity = rows_per_proc * 512.0;
      MachineSim sim(m);
      auto afs = make_scheduler("AFS");
      auto gss = make_scheduler("GSS");
      const double ta = sim.run(prog, *afs, 8).makespan;
      const double tg = sim.run(prog, *gss, 8).makespan;
      t.add_row({Table::num(rows_per_proc, 0), Table::num(ta, 0),
                 Table::num(tg, 0), Table::num(tg / ta, 2)});
    }
    std::cout << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_cache"));
    std::cout << "(SOR needs 64 rows/processor at P=8: below that, "
                 "affinity has nothing to preserve)\n";
  }

  // (d) AFS vs AFS-LE: persistent imbalance means AFS re-steals the same
  // iterations every epoch; AFS-LE seeds queues with last epoch's actual
  // execution and steals less after the first epoch. Shown on both the
  // skewed transitive closure and §4.3's motivating case — a slowly
  // drifting hotspot.
  {
    std::cout << "\n-- (d) deterministic vs last-executed seeding, P=8 --\n";
    MachineSim sim(iris());
    Table t({"workload", "variant", "time", "steals", "local grabs"});
    const auto tc = TransitiveClosureKernel::program(clique_graph(640, 320));
    const auto drift = drifting_hotspot_program(
        /*n=*/2048, /*epochs=*/64, /*width=*/256, /*speed=*/4.0,
        /*heavy=*/50.0, /*light=*/1.0, /*row_units=*/64.0);
    for (const auto* prog : {&tc, &drift}) {
      for (const char* spec : {"AFS", "AFS-LE"}) {
        auto sched = make_scheduler(spec);
        const SimResult r = sim.run(*prog, *sched, 8);
        t.add_row({prog->name, sched->name(), Table::num(r.makespan, 0),
                   Table::num(r.remote_grabs), Table::num(r.local_grabs)});
      }
    }
    std::cout << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_le"));
    std::cout << "(AFS-LE should steal far less on the drifting hotspot, at\n"
                 " the price of fragmented queues — §4.3's predicted trade)\n";
  }

  // (e) victim selection: the paper's full scan vs the randomized probing
  // it recommends for large machines, at KSR scale.
  {
    std::cout << "\n-- (e) victim selection at scale, TC 1024 on KSR-1, "
                 "P=57 --\n";
    const auto prog = TransitiveClosureKernel::program(clique_graph(1024, 409));
    MachineSim sim(ksr1());
    Table t({"variant", "time", "steals"});
    for (const char* spec : {"AFS", "AFS-RAND(2)", "AFS-RAND(4)", "WS"}) {
      auto sched = make_scheduler(spec);
      const SimResult r = sim.run(prog, *sched, 57);
      t.add_row({sched->name(), Table::num(r.makespan, 0),
                 Table::num(r.remote_grabs)});
    }
    std::cout << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_victim"));
  }

  std::cout << "\n(csv: " << cli.out_dir << "/ablation_*.csv)\n";
  return 0;
}
