// Thin shim: the experiment lives in src/experiments/ under id "ablation_afs"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run ablation_afs`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("ablation_afs", argc, argv); }
