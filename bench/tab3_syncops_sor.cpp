// Thin shim: the experiment lives in src/experiments/ under id "tab3"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run tab3`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("tab3", argc, argv); }
