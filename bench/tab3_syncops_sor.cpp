// Table 3: synchronization operations per loop for SOR (N = 512).
// Paper shape: SS = 512 regardless of P; TRAPEZOID fewest of the central
// algorithms, then GSS, then FACTORING; AFS needs ~0.4-1 remote and
// ~7-27 local operations per queue.
#include "kernels/sor.hpp"
#include "sync_ops_common.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  bench::run_sync_ops_table("tab3", "sync operations per loop, SOR N=512",
                            SorKernel::program(512, 4),
                            bench::parse_cli(argc, argv));
  return 0;
}
