// Table 7 (extension, not in the paper): graceful degradation under
// deterministic fault injection. For each machine (Iris, Butterfly,
// KSR-1) and scheduler (AFS, the full central-queue line-up — SS,
// CHUNK, GSS, FACTORING, TRAPEZOID, TAPER — and STATIC) we run
// Gaussian elimination
// unperturbed to get a baseline, then re-run under increasing fault
// intensity — transient preemption stalls, memory faults (latency spikes +
// interconnect contention bursts), and a permanent processor loss at 30%
// of the baseline makespan — and report the slowdown plus the new fault
// counters (stall share, iterations stolen from the dead processor's
// queue, abandoned iterations).
//
// Unlike the paper-reproduction binaries, this sweep *fails* (nonzero
// exit) when a resilience invariant breaks:
//   * every run, perturbed or not, satisfies the extended conservation law
//     (busy + sync + comm + idle + barrier + stall ~= P * makespan);
//   * every perturbed run is bit-identical with batching on and off;
//   * AFS completes under processor loss and drains the dead processor's
//     queue (stolen_under_fault > 0);
//   * STATIC reports the dead processor's unexecuted share as
//     abandoned_iterations > 0.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernels/gauss.hpp"
#include "sim/machine_sim.hpp"
#include "util/table.hpp"

namespace {

using namespace afs;

/// Bitwise equality of every accumulator the engine produces: the
/// batching-invariance check under fault injection.
bool identical(const SimResult& a, const SimResult& b) {
  return a.makespan == b.makespan && a.busy == b.busy && a.sync == b.sync &&
         a.comm == b.comm && a.idle == b.idle && a.barrier == b.barrier &&
         a.stall_time == b.stall_time && a.hits == b.hits &&
         a.misses == b.misses && a.iterations == b.iterations &&
         a.remote_grabs == b.remote_grabs &&
         a.lost_processor_count == b.lost_processor_count &&
         a.stolen_under_fault == b.stolen_under_fault &&
         a.abandoned_iterations == b.abandoned_iterations;
}

struct MachineCase {
  MachineConfig config;
  int procs;
  std::int64_t n;  // Gauss matrix order
};

}  // namespace

int main(int argc, char** argv) {
  using namespace afs;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  bench::warn_runner_flags_serial(cli, argv[0]);

  std::cout << "== tab7: scheduler resilience vs. fault intensity "
               "(Gauss, deterministic fault injection) ==\n";

  std::vector<MachineCase> machines;
  {
    MachineCase iris_case{iris(), 8, 256};
    iris_case.config.epoch_jitter = 0.0;  // faults are the only skew
    machines.push_back(iris_case);
    MachineCase butterfly_case{butterfly1(), 16, 256};
    butterfly_case.config.epoch_jitter = 0.0;
    machines.push_back(butterfly_case);
    MachineCase ksr_case{ksr1(), 16, 256};
    ksr_case.config.epoch_jitter = 0.0;
    machines.push_back(ksr_case);
  }
  // AFS, every central-queue discipline the registry offers, and STATIC:
  // the fault model must hold for each queue topology, not just the four
  // schedulers the original extension sampled.
  const std::vector<std::string> specs{"AFS",       "SS",
                                       "CHUNK(8)",  "GSS",
                                       "FACTORING", "TRAPEZOID",
                                       "TAPER(1.3)", "STATIC"};
  const std::vector<std::string> levels{"none", "stall-low", "stall-high",
                                        "mem-faults", "proc-loss"};

  Table table({"machine", "sched", "fault", "makespan", "slowdown", "stall%",
               "stolen", "abandoned"});
  bool conservation_ok = true;
  bool batching_ok = true;
  bool afs_loss_ok = false;
  bool static_loss_ok = false;

  for (const MachineCase& mc : machines) {
    const LoopProgram program = GaussKernel::program(mc.n);
    for (const std::string& spec : specs) {
      double baseline = 0.0;
      for (const std::string& level : levels) {
        SimOptions opts;
        PerturbationConfig& pc = opts.perturb;
        if (level == "stall-low") {
          pc.stall_mean_interval = baseline * 0.05;
          pc.stall_duration = baseline * 0.0025;  // ~5% of time stalled
        } else if (level == "stall-high") {
          pc.stall_mean_interval = baseline * 0.02;
          pc.stall_duration = baseline * 0.004;  // ~20% of time stalled
        } else if (level == "mem-faults") {
          pc.mem_spike_prob = 0.1;
          pc.mem_spike_latency = 5.0 * mc.config.miss_latency;
          pc.burst_mean_interval = baseline * 0.1;
          pc.burst_duration = baseline * 0.02;
          pc.burst_multiplier = 4.0;
        } else if (level == "proc-loss") {
          pc.losses.push_back({0, baseline * 0.3});
        }

        MachineSim sim(mc.config, opts);
        auto sched = make_scheduler(spec);
        const SimResult r = sim.run(program, *sched, mc.procs);
        if (level == "none") baseline = r.makespan;

        if (!check_time_identity(r, mc.procs)) {
          conservation_ok = false;
          std::cerr << "conservation violated: " << mc.config.name << " "
                    << spec << " " << level << " accounted="
                    << accounted_time(r) << " expected="
                    << mc.procs * r.makespan << "\n";
        }
        if (level != "none") {
          SimOptions unbatched = opts;
          unbatched.batch_iterations = false;
          MachineSim sim_ab(mc.config, unbatched);
          auto sched_ab = make_scheduler(spec);
          const SimResult r_ab = sim_ab.run(program, *sched_ab, mc.procs);
          if (!identical(r, r_ab)) {
            batching_ok = false;
            std::cerr << "batching divergence: " << mc.config.name << " "
                      << spec << " " << level << "\n";
          }
        }
        if (level == "proc-loss" && spec == "AFS" &&
            r.lost_processor_count == 1 && r.stolen_under_fault > 0)
          afs_loss_ok = true;
        if (level == "proc-loss" && spec == "STATIC" &&
            r.abandoned_iterations > 0)
          static_loss_ok = true;

        table.add_row(
            {mc.config.name, spec, level, Table::num(r.makespan, 0),
             Table::num(baseline > 0.0 ? r.makespan / baseline : 1.0, 3),
             Table::num(r.makespan > 0.0
                            ? 100.0 * r.stall_time /
                                  (mc.procs * r.makespan)
                            : 0.0,
                        1),
             Table::num(r.stolen_under_fault),
             Table::num(r.abandoned_iterations)});
      }
    }
  }

  std::cout << table.to_ascii();
  table.write_csv(bench::csv_path(cli, "tab7"));
  std::cout << "(csv: " << bench::csv_path(cli, "tab7") << ")\n";

  report_shape(std::cout, conservation_ok,
               "extended conservation (incl. stall_time) holds in every run");
  report_shape(std::cout, batching_ok,
               "perturbed runs bit-identical with batching on/off");
  report_shape(std::cout, afs_loss_ok,
               "AFS completes processor loss and steals the dead queue "
               "(stolen_under_fault > 0)");
  report_shape(std::cout, static_loss_ok,
               "STATIC reports the dead processor's share as abandoned");

  const bool ok =
      conservation_ok && batching_ok && afs_loss_ok && static_loss_ok;
  return ok ? 0 : 1;
}
