// Thin shim: the experiment lives in src/experiments/ under id "tab7"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run tab7`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("tab7", argc, argv); }
