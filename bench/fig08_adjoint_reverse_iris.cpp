// Thin shim: the experiment lives in src/experiments/ under id "fig08"
// (see docs/SWEEP_SERVICE.md). Equivalent to `afs_sweep run fig08`.
#include "experiments/shim.hpp"

int main(int argc, char** argv) { return afs::shim_main("fig08", argc, argv); }
