// Figure 8: adjoint convolution with reverse-index scheduling on the Iris.
// Executing the cheap tail first makes the potential imbalance (one O(N)
// iteration at the end) negligible vs. the O(N^2/P) total: all schedulers
// except SS become comparable.
#include "bench_common.hpp"
#include "kernels/adjoint_convolution.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  FigureSpec spec;
  spec.id = "fig08";
  spec.title = "Adjoint convolution, reverse index order, on the Iris (N=75)";
  spec.machine = iris();
  spec.program = AdjointConvolutionKernel::program(75);
  spec.procs = bench::iris_procs();
  spec.schedulers = {entry("REV:SS"), entry("REV:GSS"), entry("REV:FACTORING"),
                     entry("REV:TRAPEZOID"), entry("REV:AFS"),
                     entry("REV:STATIC")};

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    ok &= report_shape(out, comparable(r, "REV:GSS", "REV:FACTORING", 8, 0.15),
                       "reverse GSS ~ reverse FACTORING");
    ok &= report_shape(out, comparable(r, "REV:GSS", "REV:TRAPEZOID", 8, 0.15),
                       "reverse GSS ~ reverse TRAPEZOID");
    ok &= report_shape(out, comparable(r, "REV:AFS", "REV:GSS", 8, 0.15),
                       "reverse AFS ~ reverse GSS");
    ok &= report_shape(out, beats(r, "REV:GSS", "REV:SS", 8, 1.0),
                       "SS still pays its per-iteration sync");
    // Reversal permutes execution order but not STATIC's fixed partition,
    // so STATIC's imbalance survives — reversal only rescues the dynamic
    // schedulers.
    ok &= report_shape(out, beats(r, "REV:GSS", "REV:STATIC", 8, 1.5),
                       "reversal does not rescue STATIC's fixed partition");
    return ok;
  });
}
