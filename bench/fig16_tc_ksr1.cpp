// Figure 16: transitive closure (1024 nodes, 40% of them a clique) on the
// KSR-1. Paper shape: the non-affinity dynamic schedulers cannot exploit
// more than ~12 processors; TRAPEZOID degrades most gracefully among
// them; AFS best, though its margin is smaller than for Gauss because the
// input's imbalance forces some affinity-destroying reassignment.
#include "bench_common.hpp"
#include "kernels/transitive_closure.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace afs;
  const auto graph = clique_graph(1024, 409);  // 40% clique

  FigureSpec spec;
  spec.id = "fig16";
  spec.title = "Transitive closure on the KSR-1 (1024 nodes, 40% clique)";
  spec.machine = ksr1();
  spec.program = TransitiveClosureKernel::program(graph);
  spec.procs = bench::ksr_procs();
  spec.schedulers = {entry("AFS"), entry("TRAPEZOID"), entry("FACTORING"),
                     entry("GSS"), entry("MOD-FACTORING")};

  return bench::run_and_report(argc, argv, spec, [](const FigureResult& r, std::ostream& out) {
    bool ok = true;
    // "Cannot exploit more than ~12 processors": past P=12 the central
    // schedulers gain at most a sliver (<1.5x for 4.75x more processors)
    // while AFS keeps scaling (>2x over the same range).
    ok &= report_shape(out, r.time("GSS", 12) / r.time("GSS", 57) < 1.5,
                       "GSS gains <1.5x from P=12 to P=57");
    ok &= report_shape(out,
                       r.time("FACTORING", 12) / r.time("FACTORING", 57) < 1.5,
                       "FACTORING gains <1.5x from P=12 to P=57");
    ok &= report_shape(out, r.time("AFS", 12) / r.time("AFS", 57) > 2.0,
                       "AFS still gains >2x from P=12 to P=57");
    ok &= report_shape(out, beats(r, "AFS", "GSS", 57, 1.3),
                       "AFS clearly best at P=57");
    ok &= report_shape(out, beats(r, "TRAPEZOID", "FACTORING", 57, 1.0),
                       "TRAPEZOID degrades most gracefully of the central trio");
    return ok;
  });
}
