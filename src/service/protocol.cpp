#include "service/protocol.hpp"

#include <algorithm>

namespace afs::service {
namespace {

/// The set of fields each verb accepts; anything else is rejected so a
/// client typo ("idz") fails loudly instead of silently running --all.
bool field_allowed(Verb verb, const std::string& key) {
  if (key == "verb" || key == "tag" || key == "deadline") return true;
  switch (verb) {
    case Verb::kRun:
      return key == "ids" || key == "all";
    case Verb::kGrid:
      return key == "kernel" || key == "machine" || key == "schedulers" ||
             key == "procs" || key == "perturb";
    case Verb::kStats:
    case Verb::kHealth:
    case Verb::kShutdown:
      return false;
  }
  return false;
}

bool bad(ProtocolError& e, const char* code, std::string message) {
  e.code = code;
  e.message = std::move(message);
  return false;
}

/// "1,2,4" — the procs grammar the CLI already speaks. Accepts a JSON
/// string or an array of integers (normalized to the string form).
bool render_procs(const JsonValue& v, std::string& out, ProtocolError& e) {
  if (v.is_string()) {
    out = v.string;
    return true;
  }
  if (v.is_array()) {
    out.clear();
    for (const JsonValue& item : v.array) {
      if (!item.is_number() || item.number != static_cast<int>(item.number))
        return bad(e, err::kBadRequest, "procs array must hold integers");
      if (!out.empty()) out += ',';
      out += std::to_string(static_cast<int>(item.number));
    }
    if (out.empty())
      return bad(e, err::kBadRequest, "procs array must not be empty");
    return true;
  }
  return bad(e, err::kBadRequest, "procs must be a string or integer array");
}

}  // namespace

bool parse_request(const std::string& frame, Request& out, ProtocolError& e) {
  out = Request{};
  if (!valid_utf8(frame)) return bad(e, err::kBadUtf8, "frame is not UTF-8");

  JsonValue doc;
  std::string jerr;
  if (!parse_json(frame, doc, jerr)) return bad(e, err::kBadJson, jerr);
  if (!doc.is_object())
    return bad(e, err::kBadJson, "request must be a JSON object");

  const JsonValue* verb = doc.find("verb");
  if (!verb || !verb->is_string())
    return bad(e, err::kBadRequest, "missing string field 'verb'");
  if (verb->string == "run")
    out.verb = Verb::kRun;
  else if (verb->string == "grid")
    out.verb = Verb::kGrid;
  else if (verb->string == "stats")
    out.verb = Verb::kStats;
  else if (verb->string == "health")
    out.verb = Verb::kHealth;
  else if (verb->string == "shutdown")
    out.verb = Verb::kShutdown;
  else
    return bad(e, err::kUnknownVerb,
               "unknown verb '" + verb->string +
                   "' (expected run|grid|stats|health|shutdown)");

  for (const auto& [key, value] : doc.object) {
    if (!field_allowed(out.verb, key))
      return bad(e, err::kBadRequest,
                 "unknown field '" + key + "' for verb '" + verb->string +
                     "'");
    if (key == "verb") continue;
    if (key == "tag") {
      if (!value.is_string())
        return bad(e, err::kBadRequest, "tag must be a string");
      if (value.string.size() > 256)
        return bad(e, err::kBadRequest, "tag longer than 256 bytes");
      out.tag = value.string;
    } else if (key == "deadline") {
      if (!value.is_number())
        return bad(e, err::kBadRequest, "deadline must be a number");
      if (!(value.number > 0.0) || value.number > 86400.0)
        return bad(e, err::kBadRequest,
                   "deadline must be seconds in (0, 86400]");
      out.deadline = value.number;
    } else if (key == "ids") {
      if (!value.is_array() || value.array.empty())
        return bad(e, err::kBadRequest, "ids must be a non-empty array");
      for (const JsonValue& id : value.array) {
        if (!id.is_string() || id.string.empty())
          return bad(e, err::kBadRequest, "ids must hold non-empty strings");
        out.ids.push_back(id.string);
      }
    } else if (key == "all") {
      if (!value.is_bool())
        return bad(e, err::kBadRequest, "all must be a boolean");
      out.all = value.boolean;
    } else if (key == "procs") {
      if (!render_procs(value, out.procs, e)) return false;
    } else {  // kernel / machine / schedulers / perturb
      if (!value.is_string() || value.string.empty())
        return bad(e, err::kBadRequest, key + " must be a non-empty string");
      if (key == "kernel")
        out.kernel = value.string;
      else if (key == "machine")
        out.machine = value.string;
      else if (key == "schedulers")
        out.schedulers = value.string;
      else
        out.perturb = value.string;
    }
  }

  if (out.verb == Verb::kRun) {
    if (out.all == !out.ids.empty())
      return bad(e, err::kBadRequest,
                 "run needs exactly one of ids or all:true");
  }
  if (out.verb == Verb::kGrid) {
    if (out.kernel.empty() || out.machine.empty() || out.schedulers.empty())
      return bad(e, err::kBadRequest,
                 "grid needs kernel, machine and schedulers");
  }
  return true;
}

void LineFramer::feed(const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (skipping_) {
      if (c == '\n') skipping_ = false;  // resynchronized
      continue;
    }
    if (c == '\n') {
      Item item;
      item.frame = std::move(partial_);
      partial_.clear();
      ready_.push_back(std::move(item));
      continue;
    }
    partial_ += c;
    if (partial_.size() > max_frame_) {
      partial_.clear();
      skipping_ = true;
      Item item;
      item.is_error = true;
      item.error = {err::kFrameTooLong,
                    "frame exceeds " + std::to_string(max_frame_) +
                        " bytes; input discarded to next newline"};
      ready_.push_back(std::move(item));
    }
  }
}

bool LineFramer::next_frame(std::string& frame) {
  if (ready_.empty() || ready_.front().is_error) return false;
  frame = std::move(ready_.front().frame);
  ready_.pop_front();
  return true;
}

bool LineFramer::next_error(ProtocolError& e) {
  if (ready_.empty() || !ready_.front().is_error) return false;
  e = std::move(ready_.front().error);
  ready_.pop_front();
  return true;
}

std::string response_line(const std::string& event,
                          const std::vector<JsonField>& fields,
                          const std::string& tag) {
  std::string out = "{\"event\":";
  out += json_quote(event);
  for (const JsonField& f : fields) {
    out += ',';
    out += json_quote(f.key);
    out += ':';
    out += f.rendered;
  }
  if (!tag.empty()) out += ",\"tag\":" + json_quote(tag);
  out += "}\n";
  return out;
}

std::string response_error(const ProtocolError& e, const std::string& tag,
                           std::uint64_t request) {
  std::vector<JsonField> fields;
  fields.push_back({"code", json_quote(e.code)});
  fields.push_back({"message", json_quote(e.message)});
  if (request != 0)
    fields.push_back(
        {"request", json_number(static_cast<double>(request))});
  return response_line("error", fields, tag);
}

}  // namespace afs::service
