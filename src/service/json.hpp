// Minimal strict JSON for the sweep service protocol.
//
// The daemon speaks line-delimited JSON to untrusted local clients, so the
// parser is written for robustness first: it validates UTF-8 (overlong
// encodings, surrogates and out-of-range code points are rejected, not
// passed through), bounds nesting depth, refuses trailing garbage, and
// reports every failure with a byte offset instead of throwing. Writers
// produce exactly one line of canonical output (no embedded newlines),
// which is what keeps the framing trivial: one request or response per
// '\n'-terminated frame, always.
//
// This is deliberately not a general-purpose JSON library — no DOM
// mutation helpers, no number-preserving bignums, no comments. The
// protocol needs objects, arrays, strings, doubles, bools and null, and
// nothing else.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace afs::service {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order. Duplicate keys are preserved; find()
  /// returns the first, which callers treat as authoritative.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First member named `key`; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Maximum container nesting the parser accepts. The protocol never nests
/// more than three levels; 32 leaves headroom without letting a hostile
/// client recurse the stack away.
inline constexpr int kMaxJsonDepth = 32;

/// Parses exactly one JSON document from `text` (leading/trailing ASCII
/// whitespace allowed, nothing else). Returns false and fills `error`
/// (message with byte offset) on malformed input — including invalid
/// UTF-8 anywhere in the document, unpaired surrogates in \u escapes,
/// unescaped control characters, and depth overflow. Never throws.
bool parse_json(std::string_view text, JsonValue& out, std::string& error);

/// True when `text` is well-formed UTF-8 (rejects overlong encodings,
/// surrogate code points, and values above U+10FFFF). Exposed for the
/// framer, which wants to classify bad bytes before parsing.
bool valid_utf8(std::string_view text);

/// `s` escaped and double-quoted for embedding in a JSON document.
/// Control characters become \u escapes, so the output never contains a
/// raw newline — a quoted string is always frame-safe.
std::string json_quote(std::string_view s);

/// Shortest decimal rendering of `v` that round-trips a double. NaN and
/// infinities (unrepresentable in JSON) render as null.
std::string json_number(double v);

}  // namespace afs::service
