// In-flight request bookkeeping for the sweep daemon.
//
// A ServiceRequest is one admitted `run`/`grid` request: the parsed
// protocol request, the connection to stream responses to, a per-request
// CancelToken (deadline + drain parent + client-disconnect), and the
// timestamps the latency counters are computed from. The RequestRegistry
// allocates sequence numbers and tracks the queued/running population so
// the `stats` verb (and the drain log) can report queue depth and
// in-flight state truthfully.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "service/listener.hpp"
#include "service/protocol.hpp"
#include "util/cancel.hpp"

namespace afs::service {

struct ServiceRequest {
  std::uint64_t seq = 0;  ///< daemon-assigned, echoed as "request"
  Request req;
  std::shared_ptr<Connection> conn;
  /// Child of the daemon's drain token; armed with the per-request
  /// deadline at admission, fired early by drain timeout or client
  /// disconnect. The sweep runner and the simulator poll it
  /// cooperatively.
  CancelToken cancel;
  /// Set by the admitting thread once the "accepted" line is on the wire.
  /// The executor waits for it before its first write, so a fast dispatch
  /// can never interleave "log" output ahead of the admission reply. The
  /// admitter's post-push store is safe for the same reason: the executor
  /// cannot destroy the entry while the flag is still unset.
  std::atomic<bool> accepted_written{false};
  std::chrono::steady_clock::time_point arrived{};
  std::chrono::steady_clock::time_point started{};

  explicit ServiceRequest(const CancelToken* drain_parent)
      : cancel(drain_parent) {}
};

/// Thread-safe sequence allocation and queued/running census.
class RequestRegistry {
 public:
  std::uint64_t next_seq() {
    std::scoped_lock lock(mu_);
    return ++seq_;
  }

  void enqueued(std::uint64_t seq) { set_state(seq, State::kQueued); }
  void running(std::uint64_t seq) { set_state(seq, State::kRunning); }
  void finished(std::uint64_t seq) {
    std::scoped_lock lock(mu_);
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].first == seq) {
        live_[i] = live_.back();
        live_.pop_back();
        return;
      }
    }
  }

  int queued() const { return count(State::kQueued); }
  int in_flight() const { return count(State::kRunning); }

 private:
  enum class State { kQueued, kRunning };

  void set_state(std::uint64_t seq, State s) {
    std::scoped_lock lock(mu_);
    for (auto& [id, state] : live_) {
      if (id == seq) {
        state = s;
        return;
      }
    }
    live_.emplace_back(seq, s);
  }

  int count(State s) const {
    std::scoped_lock lock(mu_);
    int n = 0;
    for (const auto& [id, state] : live_)
      if (state == s) ++n;
    return n;
  }

  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
  std::vector<std::pair<std::uint64_t, State>> live_;
};

/// Bounded MPSC admission queue: connection reader threads push, the
/// dispatcher pops in arrival order — the paper's central ready queue
/// restated at the service layer. A full queue rejects instead of
/// growing: backpressure is the contract, unbounded memory the failure
/// mode it prevents.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full or closed (the caller sends the
  /// structured `overloaded` / `shutting_down` error).
  bool try_push(std::unique_ptr<ServiceRequest> r) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(r));
    }
    cv_.notify_one();
    return true;
  }

  /// Next request in arrival order; waits up to `timeout`. Null on
  /// timeout or when the queue is closed and drained.
  std::unique_ptr<ServiceRequest> pop_wait(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, timeout,
                 [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return nullptr;
    std::unique_ptr<ServiceRequest> r = std::move(queue_.front());
    queue_.pop_front();
    return r;
  }

  /// Stops admission; queued requests still drain through pop_wait.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t depth() const {
    std::scoped_lock lock(mu_);
    return queue_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<ServiceRequest>> queue_;
  bool closed_ = false;
};

}  // namespace afs::service
