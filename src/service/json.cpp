#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace afs::service {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    error = msg + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool peek(char& c) {
    if (pos >= text.size()) return false;
    c = text[pos];
    return true;
  }

  bool consume(char expected) {
    if (pos < text.size() && text[pos] == expected) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxJsonDepth) return fail("nesting too deep");
    skip_ws();
    char c;
    if (!peek(c)) return fail("unexpected end of input");
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        return parse_literal("true", [&] {
          out.kind = JsonValue::Kind::kBool;
          out.boolean = true;
        });
      case 'f':
        return parse_literal("false", [&] {
          out.kind = JsonValue::Kind::kBool;
          out.boolean = false;
        });
      case 'n':
        return parse_literal("null",
                             [&] { out.kind = JsonValue::Kind::kNull; });
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail(std::string("unexpected character '") + c + "'");
    }
  }

  template <typename Fn>
  bool parse_literal(const char* lit, Fn apply) {
    const std::size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) return fail("bad literal");
    pos += n;
    apply();
    return true;
  }

  bool parse_number(JsonValue& out) {
    // Validate the JSON number grammar by hand (strtod accepts hex, inf
    // and nan, which JSON forbids), then convert the validated span.
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (consume('0')) {
      // leading zero: no further digits allowed before '.' / 'e'
    } else {
      if (pos >= text.size() || text[pos] < '1' || text[pos] > '9')
        return fail("bad number");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (consume('.')) {
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
        return fail("bad number (missing fraction digits)");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
        return fail("bad number (missing exponent digits)");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string span(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(span.c_str(), &end);
    if (end != span.c_str() + span.size()) return fail("bad number");
    if (!std::isfinite(v)) return fail("number out of range");
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_hex4(unsigned& v) {
    v = 0;
    for (int k = 0; k < 4; ++k) {
      if (pos >= text.size()) return fail("truncated \\u escape");
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        return fail("bad \\u escape digit");
    }
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    out.clear();
    if (!consume('"')) return fail("expected '\"'");
    for (;;) {
      if (pos >= text.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: the low half must follow immediately.
              if (!(consume('\\') && consume('u')))
                return fail("unpaired high surrogate");
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("unpaired low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return fail(std::string("bad escape '\\") + e + "'");
        }
        continue;
      }
      // Raw (non-escape) bytes: already validated as UTF-8 up front, so
      // copy through.
      out += static_cast<char>(c);
      ++pos;
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

bool valid_utf8(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c0 = static_cast<unsigned char>(text[i]);
    if (c0 < 0x80) {
      ++i;
      continue;
    }
    int len;
    unsigned cp;
    if ((c0 & 0xE0) == 0xC0) {
      len = 2;
      cp = c0 & 0x1F;
    } else if ((c0 & 0xF0) == 0xE0) {
      len = 3;
      cp = c0 & 0x0F;
    } else if ((c0 & 0xF8) == 0xF0) {
      len = 4;
      cp = c0 & 0x07;
    } else {
      return false;  // bare continuation byte or 0xF8+ lead
    }
    if (i + static_cast<std::size_t>(len) > text.size()) return false;
    for (int k = 1; k < len; ++k) {
      const unsigned char c = static_cast<unsigned char>(text[i + k]);
      if ((c & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (c & 0x3F);
    }
    // Overlong encodings, surrogates, and > U+10FFFF are all invalid.
    if (len == 2 && cp < 0x80) return false;
    if (len == 3 && cp < 0x800) return false;
    if (len == 4 && cp < 0x10000) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

bool parse_json(std::string_view text, JsonValue& out, std::string& error) {
  error.clear();
  out = JsonValue{};
  if (!valid_utf8(text)) {
    error = "invalid UTF-8";
    return false;
  }
  Parser p{text, 0, {}};
  if (!p.parse_value(out, 0)) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    error = "trailing garbage at byte " + std::to_string(p.pos);
    return false;
  }
  return true;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values render as plain digits — never "3e+01" for 30, which
  // %.1g would pick: sequence numbers and counters must stay greppable
  // as integers. 2^53 bounds the doubles that hold integers exactly.
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // %.17g always round-trips a double; try shorter renderings first so
  // common values (one-decimal latencies) stay readable.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace afs::service
