// Unix-domain socket listener for the sweep daemon.
//
// One reader thread per connection feeds the LineFramer and hands
// complete frames (and framing errors) to the daemon's handler; writes go
// through Connection::write_line, which serializes concurrent writers
// (the connection's own reader answering health/stats, and the dispatcher
// streaming a run's progress) and bounds how long a slow reader can stall
// the daemon. A client that disconnects, jams the socket, floods garbage
// or stops reading is torn down — its in-flight work is cancelled via the
// tokens registered on the connection — without touching any other
// connection.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/service_stats.hpp"
#include "util/cancel.hpp"

namespace afs::service {

class Connection {
 public:
  /// Takes ownership of `fd`. `write_timeout_s` bounds each write_line
  /// against a reader that stops draining its socket.
  Connection(int fd, double write_timeout_s, ServiceStats* stats);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Sends one response line. Serializes concurrent writers. Returns
  /// false — after tearing the connection down — when the peer is gone
  /// or won't drain within the write timeout. Safe to call after
  /// teardown (a no-op returning false).
  bool write_line(const std::string& line);

  /// Cancels every registered token, shuts the socket down both ways
  /// (unblocking the reader thread) and marks the connection dead.
  /// Idempotent; safe from any thread. `forced` distinguishes a
  /// misbehaving-client teardown from a natural EOF in the stats.
  void teardown(bool forced);

  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Ties a request's cancel token to this connection's lifetime: if the
  /// client goes away, the token fires and the dispatcher stops burning
  /// pool time on an answer nobody will read. Unregister before the
  /// token is destroyed. Registering on a dead connection cancels
  /// immediately.
  void register_cancel(CancelToken* token);
  void unregister_cancel(CancelToken* token);

  /// Protocol-error budget: counts one strike, returns true when the
  /// connection has exceeded its allowance and should be torn down (a
  /// client feeding endless garbage is hostile, not unlucky).
  bool strike();

  int fd() const { return fd_; }

 private:
  static constexpr int kMaxStrikes = 8;

  int fd_;
  double write_timeout_;
  ServiceStats* stats_;
  std::mutex mu_;  // serializes writes; guards tokens_
  std::vector<CancelToken*> tokens_;
  std::atomic<bool> dead_{false};
  std::atomic<int> strikes_{0};
};

/// Accepts connections on a Unix-domain socket and pumps their frames to
/// the daemon. Start/stop sequence: start() binds and spawns the accept
/// thread; stop_accepting() closes the listening socket (existing
/// connections live on — the drain phase); close_all() tears every
/// connection down and joins the reader threads.
class Listener {
 public:
  struct Handlers {
    /// One complete frame from a live connection.
    std::function<void(const std::shared_ptr<Connection>&,
                       const std::string& frame)>
        on_frame;
    /// One framing error (currently only frame_too_long).
    std::function<void(const std::shared_ptr<Connection>&,
                       const ProtocolError&)>
        on_frame_error;
  };

  Listener(std::string socket_path, double write_timeout_s,
           std::size_t max_connections, ServiceStats* stats,
           Handlers handlers);
  ~Listener();

  /// Binds and listens. A stale socket file from a crashed daemon is
  /// removed (after probing that no live daemon answers on it); a live
  /// one is an error. Returns false with `error` on failure.
  bool start(std::string& error);

  /// Stops accepting new connections; existing ones keep serving.
  void stop_accepting();

  /// Tears down every connection and joins all threads. Implies
  /// stop_accepting(). Unlinks the socket path.
  void close_all();

 private:
  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void reap_finished_locked();

  /// One reader thread plus its completion flag, so finished readers can
  /// be joined (reaped) from the accept loop without ever blocking on a
  /// live one.
  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  std::string path_;
  double write_timeout_;
  std::size_t max_connections_;
  ServiceStats* stats_;
  Handlers handlers_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stop_accepting_{false};
  std::mutex mu_;  // guards conns_ / readers_
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<ReaderSlot> readers_;
  std::thread accept_thread_;
};

}  // namespace afs::service
