// Supervised sandbox workers: the --isolation=process execution tier.
//
// A WorkerPool forks a small set of worker subprocesses (re-exec'ing this
// same binary with a `worker` argv) and speaks the service's
// line-delimited JSON protocol to them over pipes. Each sweep cell that
// misses the result store is shipped to a worker as a declarative recipe
// (runtime/cell_executor.hpp); the worker rebuilds the cell from the
// experiment registry or the grid grammars, simulates it, and returns the
// serialized SimResult — bit-identical to an in-process run, because a
// cell is a pure function of its inputs.
//
// What the supervisor buys over the in-process ThreadPool:
//   * crash containment — a segfault, abort() or OOM-kill inside the
//     engine takes down one worker; the daemon and every other request
//     keep running;
//   * restart budget — dead workers are respawned under a token bucket
//     (capacity --restart-burst, refill --restart-refill tokens/s), so a
//     crash loop cannot turn the daemon into a fork bomb;
//   * poison-cell quarantine — a cell that crashes workers
//     --poison-strikes times is blacklisted for the pool's lifetime and
//     answered with PoisonedCellError (protocol code "poison_cell")
//     instead of being retried forever;
//   * degraded cache-only mode — when no worker is alive and the restart
//     budget is empty, execute() throws DegradedError (protocol code
//     "degraded"); store hits are unaffected (they never reach the
//     executor), and the pool recovers by itself as the bucket refills;
//   * kill classification — a worker death is reported as the signal or
//     exit status that took it, a deadline kill as CancelledError, so the
//     sweep runner's CellFailure taxonomy stays truthful.
//
// Wire protocol (one JSON object per line, worker stdin/stdout):
//   parent -> worker:
//     {"op":"cell","label":L,"procs":P,"batch":B,"memfast":M,
//      "experiment":"fig04"}                          (registered figure)
//     {"op":"cell",...,"grid":{"kernel":K,"machine":M,"schedulers":S,
//      "perturb":X,"procs":[..]}}                     (ad-hoc grid)
//     {"op":"ping"}        {"op":"exit"}
//   worker -> parent:
//     {"event":"ready","pid":N}          (once, after exec)
//     {"event":"pong"}
//     {"event":"cell_done","result":"<serialize_sim_result output>"}
//     {"event":"cell_fail","kind":"invariant"|"error","message":"..."}
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "runtime/cell_executor.hpp"

namespace afs::service {

struct WorkerPoolOptions {
  int workers = 1;  ///< pool size (usually the daemon's --jobs)
  /// Executable to spawn; empty = /proc/self/exe (re-exec ourselves).
  std::string exe;
  /// argv[1..] of the worker process. afs_sweep uses {"worker"}; tests
  /// point it at their own binary's worker dispatch.
  std::vector<std::string> args = {"worker"};
  int poison_strikes = 3;        ///< crashes before a cell is blacklisted
  double restart_burst = 8.0;    ///< token-bucket capacity for respawns
  double restart_refill_per_s = 0.5;  ///< bucket refill rate
  double spawn_timeout_s = 10.0;      ///< ready-handshake deadline
  std::ostream* log = nullptr;        ///< supervisor events; null = quiet

  /// Throws CheckFailure naming the offending field.
  void validate() const;
};

/// Point-in-time supervisor counters (all monotonic except live/degraded).
struct WorkerPoolStats {
  int live = 0;                        ///< workers currently alive
  bool degraded = false;               ///< cache-only mode active
  std::int64_t spawned = 0;            ///< total successful spawns
  std::int64_t crashes = 0;            ///< unexpected worker deaths
  std::int64_t deadline_kills = 0;     ///< workers killed for a deadline
  std::int64_t restarts_denied = 0;    ///< spawns refused (bucket empty)
  std::int64_t cells_executed = 0;     ///< cells completed by workers
  std::int64_t poisoned = 0;           ///< cells currently blacklisted
};

class WorkerPool : public CellExecutor {
 public:
  explicit WorkerPool(WorkerPoolOptions opts);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the initial workers (handshake included). False with `error`
  /// when not even one worker could be brought up.
  bool start(std::string& error);

  /// CellExecutor: ships the cell to an idle worker (spawning or waiting
  /// as needed) and blocks for the result. Throws per the taxonomy in
  /// runtime/cell_executor.hpp.
  SimResult execute(const CellExecSpec& spec, const std::string& label,
                    int procs, const EngineToggles& toggles,
                    const CancelToken& token) override;

  WorkerPoolStats stats() const;
  bool degraded() const;
  /// Blacklisted cell ids, sorted (stable for responses and logs).
  std::vector<std::string> poisoned_cells() const;

  /// Stable id a cell is striked/blacklisted under: the experiment id (or
  /// the grid recipe) plus "/<label>/P<procs>".
  static std::string cell_id(const CellExecSpec& spec,
                             const std::string& label, int procs);

 private:
  struct Worker {
    pid_t pid = -1;
    int to_child = -1;    ///< parent writes requests (worker stdin)
    int from_child = -1;  ///< parent reads responses (worker stdout)
    std::string rbuf;     ///< bytes read past the last complete line
    bool busy = false;
  };

  // All private helpers expect mu_ held unless noted.
  Worker* find_idle_locked();
  int live_locked() const;
  /// Spawns one worker. `charge` consumes a restart token (initial spawns
  /// and post-deadline-kill respawns are free). Null on denial/failure
  /// with `error` set; "denied" distinguishes bucket exhaustion.
  std::unique_ptr<Worker> spawn_locked(bool charge, bool& denied,
                                       std::string& error);
  void refill_locked();
  /// Reaps `w` (blocking waitpid) and returns the human classification of
  /// how it died. Closes fds. Does not touch strike/poison state.
  std::string reap(std::unique_ptr<Worker> w);  // mu_ NOT held
  std::unique_ptr<Worker> detach_locked(Worker* w);
  void release_locked(Worker* w);

  WorkerPoolOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Worker>> workers_;
  double tokens_ = 0.0;
  int free_respawns_ = 0;  ///< credits from deadline kills (not churn)
  std::chrono::steady_clock::time_point last_refill_{};
  std::map<std::string, int> strikes_;
  std::set<std::string> poisoned_;
  bool degraded_ = false;
  // counters (guarded by mu_)
  std::int64_t spawned_ = 0, crashes_ = 0, deadline_kills_ = 0,
               restarts_denied_ = 0, cells_executed_ = 0;
};

/// The worker side: a blocking serve loop over stdin/stdout that this
/// binary enters when exec'd with the `worker` argv. Returns the process
/// exit code (0 on clean EOF/exit op). Re-points fd 1 at stderr first so
/// stray prints from engine code can never corrupt the protocol stream.
int worker_main();

}  // namespace afs::service
