#include "service/worker.hpp"

#include <csignal>
#include <cstring>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "experiments/grid.hpp"
#include "experiments/registry.hpp"
#include "runtime/sweep_runner.hpp"
#include "service/json.hpp"
#include "util/check.hpp"

namespace afs::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Supervisor poll slice: short enough that cancellation and deadlines
/// fire promptly, long enough that an idle wait costs nothing.
constexpr int kPollSliceMs = 25;

/// Hard cap on one worker response line. A serialized SimResult is a few
/// KB even on the largest machines; 4 MiB means "the worker is spraying
/// garbage at us", which the supervisor treats as a crash.
constexpr std::size_t kMaxWorkerLineBytes = 4u << 20;

std::string signal_name(int sig) {
#ifdef SIGABRT
  if (sig == SIGABRT) return "SIGABRT";
#endif
#ifdef SIGSEGV
  if (sig == SIGSEGV) return "SIGSEGV";
#endif
#ifdef SIGBUS
  if (sig == SIGBUS) return "SIGBUS";
#endif
#ifdef SIGKILL
  if (sig == SIGKILL) return "SIGKILL";
#endif
#ifdef SIGILL
  if (sig == SIGILL) return "SIGILL";
#endif
#ifdef SIGFPE
  if (sig == SIGFPE) return "SIGFPE";
#endif
#ifdef SIGTERM
  if (sig == SIGTERM) return "SIGTERM";
#endif
  return "signal " + std::to_string(sig);
}

std::string classify_wait_status(int status) {
  if (WIFSIGNALED(status))
    return "killed by " + signal_name(WTERMSIG(status));
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == 127) return "exec failed (exit 127)";
    return "exited with status " + std::to_string(code);
  }
  return "died with wait status " + std::to_string(status);
}

/// Writes all of `line` to fd, retrying short writes and EINTR. False on
/// any other error (typically EPIPE: the worker is dead).
bool write_all(int fd, const std::string& line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking buffered line reader over a raw fd (worker side: fd 0, and
/// the parent's spawn handshake). Returns false on EOF/error before a
/// complete line.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool read_line(std::string& out) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      if (buf_.size() > kMaxWorkerLineBytes) return false;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

}  // namespace

// --------------------------------------------------------------------------
// WorkerPoolOptions

void WorkerPoolOptions::validate() const {
  AFS_CHECK_MSG(workers >= 1, "WorkerPoolOptions::workers must be >= 1");
  AFS_CHECK_MSG(poison_strikes >= 1,
                "WorkerPoolOptions::poison_strikes must be >= 1");
  AFS_CHECK_MSG(restart_burst >= 0.0,
                "WorkerPoolOptions::restart_burst must be >= 0");
  AFS_CHECK_MSG(restart_refill_per_s >= 0.0,
                "WorkerPoolOptions::restart_refill_per_s must be >= 0");
  AFS_CHECK_MSG(spawn_timeout_s > 0.0,
                "WorkerPoolOptions::spawn_timeout_s must be > 0");
  AFS_CHECK_MSG(!args.empty(), "WorkerPoolOptions::args must name an argv");
}

// --------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(WorkerPoolOptions opts) : opts_(std::move(opts)) {
  opts_.validate();
  tokens_ = opts_.restart_burst;
  last_refill_ = Clock::now();
  // A write to a worker that died mid-cell raises SIGPIPE, which would
  // kill the daemon — the one failure mode this pool exists to prevent.
  // Pipes have no MSG_NOSIGNAL, so the process-wide disposition it is.
  std::signal(SIGPIPE, SIG_IGN);
}

WorkerPool::~WorkerPool() {
  std::vector<std::unique_ptr<Worker>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.swap(workers_);
  }
  // Polite shutdown: closing stdin is EOF, on which worker_main exits 0.
  for (auto& w : live)
    if (w->to_child >= 0) {
      ::close(w->to_child);
      w->to_child = -1;
    }
  for (auto& w : live) {
    if (w->pid <= 0) continue;
    bool reaped = false;
    for (int i = 0; i < 20 && !reaped; ++i) {  // ~2s of grace
      int status = 0;
      const pid_t r = ::waitpid(w->pid, &status, WNOHANG);
      if (r == w->pid || (r < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!reaped) {
      ::kill(w->pid, SIGKILL);
      int status = 0;
      ::waitpid(w->pid, &status, 0);
    }
    if (w->from_child >= 0) ::close(w->from_child);
  }
}

std::string WorkerPool::cell_id(const CellExecSpec& spec,
                                const std::string& label, int procs) {
  std::string base;
  if (!spec.experiment.empty()) {
    base = spec.experiment;
  } else {
    base = "grid(" + spec.kernel + "|" + spec.machine + "|" + spec.perturb +
           ")";
  }
  return base + "/" + label + "/P" + std::to_string(procs);
}

WorkerPool::Worker* WorkerPool::find_idle_locked() {
  for (auto& w : workers_)
    if (!w->busy) return w.get();
  return nullptr;
}

int WorkerPool::live_locked() const { return static_cast<int>(workers_.size()); }

void WorkerPool::refill_locked() {
  const auto now = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(opts_.restart_burst,
                     tokens_ + elapsed * opts_.restart_refill_per_s);
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::spawn_locked(
    bool charge, bool& denied, std::string& error) {
  denied = false;
  if (charge) {
    refill_locked();
    if (free_respawns_ > 0) {
      --free_respawns_;
    } else if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
    } else {
      ++restarts_denied_;
      denied = true;
      error = "worker restart budget exhausted";
      return nullptr;
    }
  }

  const std::string exe = opts_.exe.empty() ? "/proc/self/exe" : opts_.exe;
  // argv must be materialized before fork(): only async-signal-safe calls
  // are legal between fork and exec in a multithreaded process.
  std::vector<std::string> argv_store;
  argv_store.push_back(exe);
  for (const std::string& a : opts_.args) argv_store.push_back(a);
  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& a : argv_store) argv.push_back(a.data());
  argv.push_back(nullptr);

  int to_child[2] = {-1, -1};    // parent writes -> worker stdin
  int from_child[2] = {-1, -1};  // worker stdout -> parent reads
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      if (fd >= 0) ::close(fd);
    return nullptr;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    error = std::string("fork: ") + std::strerror(errno);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      ::close(fd);
    return nullptr;
  }
  if (pid == 0) {
    // Child. Async-signal-safe territory until execv.
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    // Close everything else (pipe ends, the daemon's listener and client
    // sockets, store fds) so a worker can never hold a connection open or
    // scribble on daemon state.
    for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(from_child[1]);
  auto w = std::make_unique<Worker>();
  w->pid = pid;
  w->to_child = to_child[1];
  w->from_child = from_child[0];

  // Ready handshake: the worker announces itself before we count it live,
  // which catches exec failures and bad argv up front.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts_.spawn_timeout_s));
  std::string line;
  bool ready = false;
  while (Clock::now() < deadline) {
    const std::size_t nl = w->rbuf.find('\n');
    if (nl != std::string::npos) {
      line = w->rbuf.substr(0, nl);
      w->rbuf.erase(0, nl + 1);
      JsonValue msg;
      std::string jerr;
      const JsonValue* ev = nullptr;
      if (parse_json(line, msg, jerr) && (ev = msg.find("event")) != nullptr &&
          ev->is_string() && ev->string == "ready") {
        ready = true;
      }
      break;
    }
    struct pollfd pfd {};
    pfd.fd = w->from_child;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, kPollSliceMs);
    if (pr < 0 && errno != EINTR) break;
    if (pr > 0) {
      char chunk[4096];
      const ssize_t n = ::read(w->from_child, chunk, sizeof chunk);
      if (n <= 0) break;  // EOF before ready: exec failed or crashed
      w->rbuf.append(chunk, static_cast<std::size_t>(n));
    }
  }
  if (!ready) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ::close(w->to_child);
    ::close(w->from_child);
    error = "worker failed ready handshake (" + classify_wait_status(status) +
            ")";
    return nullptr;
  }

  ++spawned_;
  degraded_ = false;
  if (opts_.log)
    *opts_.log << "[worker-pool] spawned worker pid=" << pid
               << " (live=" << live_locked() + 1 << ")" << std::endl;
  return w;
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::detach_locked(Worker* w) {
  for (auto it = workers_.begin(); it != workers_.end(); ++it) {
    if (it->get() == w) {
      std::unique_ptr<Worker> out = std::move(*it);
      workers_.erase(it);
      return out;
    }
  }
  return nullptr;
}

void WorkerPool::release_locked(Worker* w) {
  w->busy = false;
  cv_.notify_one();
}

std::string WorkerPool::reap(std::unique_ptr<Worker> w) {
  if (w->to_child >= 0) ::close(w->to_child);
  if (w->from_child >= 0) ::close(w->from_child);
  int status = 0;
  if (::waitpid(w->pid, &status, 0) != w->pid) return "unreapable worker";
  return classify_wait_status(status);
}

bool WorkerPool::start(std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < opts_.workers; ++i) {
    bool denied = false;
    auto w = spawn_locked(/*charge=*/false, denied, error);
    if (w == nullptr) {
      if (!workers_.empty()) break;  // partial pool is still a pool
      return false;
    }
    workers_.push_back(std::move(w));
  }
  return true;
}

SimResult WorkerPool::execute(const CellExecSpec& spec,
                              const std::string& label, int procs,
                              const EngineToggles& toggles,
                              const CancelToken& token) {
  const std::string cid = cell_id(spec, label, procs);

  // ---- acquire a worker -------------------------------------------------
  Worker* w = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (poisoned_.count(cid) != 0)
        throw PoisonedCellError("cell " + cid +
                                " is quarantined (crashed workers " +
                                std::to_string(opts_.poison_strikes) +
                                " times)");
      if (token.cancelled())
        throw CancelledError("cell cancelled while waiting for a worker");
      w = find_idle_locked();
      if (w != nullptr) break;
      if (live_locked() < opts_.workers) {
        bool denied = false;
        std::string err;
        auto nw = spawn_locked(/*charge=*/true, denied, err);
        if (nw != nullptr) {
          workers_.push_back(std::move(nw));
          w = workers_.back().get();
          break;
        }
        if (live_locked() == 0) {
          // Nothing alive and nothing spawnable: cache-only mode until
          // the bucket refills (the next execute() retries the spawn).
          degraded_ = true;
          if (opts_.log)
            *opts_.log << "[worker-pool] degraded: no live workers and "
                       << (denied ? "restart budget exhausted"
                                  : ("spawn failed: " + err))
                       << std::endl;
          throw DegradedError(
              "worker pool degraded (cache-only): " +
              (denied ? "restart budget exhausted" : err));
        }
        // Workers exist but are busy and the budget blocked growing the
        // pool: fall through and wait for one to free up.
      }
      cv_.wait_for(lock, std::chrono::milliseconds(2 * kPollSliceMs));
    }
    w->busy = true;
    w->rbuf.clear();
  }

  // ---- build and send the request --------------------------------------
  std::ostringstream req;
  req << "{\"op\":\"cell\",\"label\":" << json_quote(label)
      << ",\"procs\":" << procs
      << ",\"batch\":" << (toggles.batch_iterations ? "true" : "false")
      << ",\"memfast\":" << (toggles.memory_fast_path ? "true" : "false")
      << ",\"calendar\":" << (toggles.calendar_queue ? "true" : "false")
      << ",\"epochbatch\":" << (toggles.epoch_batch ? "true" : "false");
  if (!spec.experiment.empty()) {
    req << ",\"experiment\":" << json_quote(spec.experiment);
  } else {
    req << ",\"grid\":{\"kernel\":" << json_quote(spec.kernel)
        << ",\"machine\":" << json_quote(spec.machine)
        << ",\"schedulers\":" << json_quote(spec.schedulers)
        << ",\"perturb\":" << json_quote(spec.perturb) << ",\"procs\":[";
    for (std::size_t i = 0; i < spec.procs.size(); ++i) {
      if (i != 0) req << ",";
      req << spec.procs[i];
    }
    req << "]}";
  }
  req << "}\n";

  if (!write_all(w->to_child, req.str())) {
    // The worker died idle, before this cell ever reached it: a crash for
    // the stats, but no strike against the cell (it did not cause it).
    std::unique_ptr<Worker> dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = detach_locked(w);
      ++crashes_;
      cv_.notify_all();
    }
    const std::string how = reap(std::move(dead));
    throw std::runtime_error("worker died before receiving cell " + cid +
                             " (" + how + ")");
  }

  // ---- await the response, mirroring deadline + cancellation -----------
  // The token's own deadline check is throttled (every kClockStride-th
  // poll); at our 25ms poll cadence that could mean minutes of slack, so
  // the supervisor watches the wall clock itself.
  const bool has_deadline = token.has_deadline();
  const auto deadline = has_deadline ? token.deadline() : Clock::time_point{};

  std::string line;
  bool got_line = false;
  bool worker_eof = false;
  for (;;) {
    const std::size_t nl = w->rbuf.find('\n');
    if (nl != std::string::npos) {
      line = w->rbuf.substr(0, nl);
      w->rbuf.erase(0, nl + 1);
      got_line = true;
      break;
    }
    if (w->rbuf.size() > kMaxWorkerLineBytes) {
      worker_eof = true;  // garbage flood: treat exactly like a crash
      break;
    }
    if (token.cancelled() || (has_deadline && Clock::now() >= deadline)) {
      // Deadline/cancel: the worker is mid-simulation with no way to be
      // interrupted cooperatively — kill it. Not the cell's fault and not
      // churn, so no strike and a free respawn credit instead of a token.
      std::unique_ptr<Worker> dead;
      {
        std::lock_guard<std::mutex> lock(mu_);
        dead = detach_locked(w);
        ++deadline_kills_;
        ++free_respawns_;
        cv_.notify_all();
      }
      ::kill(dead->pid, SIGKILL);
      reap(std::move(dead));
      if (opts_.log)
        *opts_.log << "[worker-pool] killed worker for deadline on cell "
                   << cid << std::endl;
      throw CancelledError("cell " + cid +
                           " cancelled (worker killed at deadline)");
    }
    struct pollfd pfd {};
    pfd.fd = w->from_child;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, kPollSliceMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      worker_eof = true;
      break;
    }
    if (pr == 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(w->from_child, chunk, sizeof chunk);
    if (n <= 0) {
      worker_eof = true;
      break;
    }
    w->rbuf.append(chunk, static_cast<std::size_t>(n));
  }

  if (!got_line || worker_eof) {
    // The worker died *running this cell*: classify, count a strike, and
    // quarantine the cell once it has killed enough workers.
    std::unique_ptr<Worker> dead;
    int strikes = 0;
    bool poisoned_now = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = detach_locked(w);
      ++crashes_;
      strikes = ++strikes_[cid];
      if (strikes >= opts_.poison_strikes) {
        poisoned_.insert(cid);
        poisoned_now = true;
      }
      cv_.notify_all();
    }
    if (dead->pid > 0) ::kill(dead->pid, SIGKILL);  // flood case: still alive
    const std::string how = reap(std::move(dead));
    if (opts_.log)
      *opts_.log << "[worker-pool] worker crashed on cell " << cid << " ("
                 << how << "), strike " << strikes << "/"
                 << opts_.poison_strikes
                 << (poisoned_now ? " — cell quarantined" : "") << std::endl;
    if (poisoned_now)
      throw PoisonedCellError("cell " + cid + " quarantined after " +
                              std::to_string(strikes) +
                              " worker crashes (last: " + how + ")");
    throw std::runtime_error("worker crashed running cell " + cid + " (" +
                             how + ")");
  }

  // ---- parse the response ----------------------------------------------
  JsonValue msg;
  std::string jerr;
  const JsonValue* ev = nullptr;
  if (!parse_json(line, msg, jerr) || (ev = msg.find("event")) == nullptr ||
      !ev->is_string()) {
    // Protocol violation: this worker cannot be trusted; replace it. Not
    // a strike (the cell's simulation may have been fine).
    std::unique_ptr<Worker> dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = detach_locked(w);
      ++crashes_;
      cv_.notify_all();
    }
    ::kill(dead->pid, SIGKILL);
    reap(std::move(dead));
    throw std::runtime_error("worker sent malformed response for cell " + cid);
  }

  if (ev->string == "cell_done") {
    const JsonValue* res = msg.find("result");
    SimResult out;
    if (res == nullptr || !res->is_string() ||
        !parse_sim_result(res->string, out)) {
      std::unique_ptr<Worker> dead;
      {
        std::lock_guard<std::mutex> lock(mu_);
        dead = detach_locked(w);
        ++crashes_;
        cv_.notify_all();
      }
      ::kill(dead->pid, SIGKILL);
      reap(std::move(dead));
      throw std::runtime_error(
          "worker sent unparseable result for cell " + cid);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++cells_executed_;
    strikes_.erase(cid);  // a success clears earlier strikes
    release_locked(w);
    return out;
  }

  if (ev->string == "cell_fail") {
    // The worker is healthy — it caught the exception itself. Return it
    // to the pool before rethrowing on the caller's side of the wire.
    const JsonValue* kind = msg.find("kind");
    const JsonValue* message = msg.find("message");
    const std::string what =
        (message != nullptr && message->is_string())
            ? message->string
            : "worker reported cell failure without a message";
    {
      std::lock_guard<std::mutex> lock(mu_);
      release_locked(w);
    }
    if (kind != nullptr && kind->is_string() && kind->string == "invariant")
      throw CheckFailure(what);
    throw std::runtime_error(what);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    release_locked(w);
  }
  throw std::runtime_error("worker sent unexpected event '" + ev->string +
                           "' for cell " + cid);
}

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerPoolStats s;
  s.live = static_cast<int>(workers_.size());
  s.degraded = degraded_;
  s.spawned = spawned_;
  s.crashes = crashes_;
  s.deadline_kills = deadline_kills_;
  s.restarts_denied = restarts_denied_;
  s.cells_executed = cells_executed_;
  s.poisoned = static_cast<std::int64_t>(poisoned_.size());
  return s;
}

bool WorkerPool::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

std::vector<std::string> WorkerPool::poisoned_cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {poisoned_.begin(), poisoned_.end()};  // std::set: already sorted
}

// --------------------------------------------------------------------------
// worker_main — the subprocess side

namespace {

/// Rebuilds the FigureSpec a cell request describes. Throws runtime_error
/// with a protocol-worthy message on anything malformed.
FigureSpec rebuild_spec(const JsonValue& msg) {
  const JsonValue* experiment = msg.find("experiment");
  if (experiment != nullptr && experiment->is_string()) {
    const Experiment* e = find_experiment(experiment->string);
    if (e == nullptr)
      throw std::runtime_error("unknown experiment '" + experiment->string +
                               "'");
    if (!e->make_spec)
      throw std::runtime_error("experiment '" + experiment->string +
                               "' has no rebuildable spec");
    return e->make_spec();
  }
  const JsonValue* grid = msg.find("grid");
  if (grid == nullptr || !grid->is_object())
    throw std::runtime_error("cell request names no experiment and no grid");
  GridSpec g;
  const auto str = [&](const char* key) {
    const JsonValue* v = grid->find(key);
    return (v != nullptr && v->is_string()) ? v->string : std::string();
  };
  g.kernel = str("kernel");
  g.machine = str("machine");
  g.schedulers = str("schedulers");
  g.perturb = str("perturb");
  if (const JsonValue* procs = grid->find("procs");
      procs != nullptr && procs->is_array())
    for (const JsonValue& p : procs->array)
      if (p.is_number()) g.procs.push_back(static_cast<int>(p.number));
  return make_grid_experiment(g).make_spec();
}

}  // namespace

int worker_main() {
  // fd 1 is the protocol stream. Engine code (or a library) printing to
  // stdout would corrupt it, so keep the protocol on a private dup and
  // point fd 1 at stderr for the rest of the process's life.
  const int proto_fd = ::dup(1);
  if (proto_fd < 0) return 1;
  ::dup2(2, 1);

  const auto respond = [proto_fd](const std::string& line) {
    return write_all(proto_fd, line + "\n");
  };

  if (!respond("{\"event\":\"ready\",\"pid\":" +
               std::to_string(static_cast<long>(::getpid())) + "}"))
    return 1;

  FdLineReader in(0);
  std::string line;
  while (in.read_line(line)) {
    JsonValue msg;
    std::string jerr;
    const JsonValue* op = nullptr;
    if (!parse_json(line, msg, jerr) || (op = msg.find("op")) == nullptr ||
        !op->is_string()) {
      if (!respond("{\"event\":\"cell_fail\",\"kind\":\"error\",\"message\":" +
                   json_quote("malformed worker request: " + jerr) + "}"))
        return 1;
      continue;
    }
    if (op->string == "exit") return 0;
    if (op->string == "ping") {
      if (!respond("{\"event\":\"pong\"}")) return 1;
      continue;
    }
    if (op->string != "cell") {
      if (!respond("{\"event\":\"cell_fail\",\"kind\":\"error\",\"message\":" +
                   json_quote("unknown op '" + op->string + "'") + "}"))
        return 1;
      continue;
    }

    std::string reply;
    try {
      const JsonValue* label = msg.find("label");
      const JsonValue* procs = msg.find("procs");
      if (label == nullptr || !label->is_string() || procs == nullptr ||
          !procs->is_number())
        throw std::runtime_error("cell request needs label and procs");
      const int p = static_cast<int>(procs->number);

      FigureSpec spec = rebuild_spec(msg);
      if (const JsonValue* batch = msg.find("batch");
          batch != nullptr && batch->is_bool())
        spec.sim_options.batch_iterations = batch->boolean;
      if (const JsonValue* memfast = msg.find("memfast");
          memfast != nullptr && memfast->is_bool())
        spec.sim_options.memory_fast_path = memfast->boolean;
      if (const JsonValue* calendar = msg.find("calendar");
          calendar != nullptr && calendar->is_bool())
        spec.sim_options.calendar_queue = calendar->boolean;
      if (const JsonValue* epochbatch = msg.find("epochbatch");
          epochbatch != nullptr && epochbatch->is_bool())
        spec.sim_options.epoch_batch = epochbatch->boolean;

      const SchedulerEntry* se = nullptr;
      for (const SchedulerEntry& e : spec.schedulers)
        if (e.label == label->string) {
          se = &e;
          break;
        }
      if (se == nullptr)
        throw std::runtime_error("spec has no scheduler labelled '" +
                                 label->string + "'");
      if (p < 1 || p > spec.machine.max_processors)
        throw std::runtime_error("P=" + std::to_string(p) + " out of range for " +
                                 spec.machine.name);

      const SimResult r = run_figure_cell(spec, *se, p, spec.sim_options);
      reply = "{\"event\":\"cell_done\",\"result\":" +
              json_quote(serialize_sim_result(r)) + "}";
    } catch (const CheckFailure& e) {
      reply = "{\"event\":\"cell_fail\",\"kind\":\"invariant\",\"message\":" +
              json_quote(e.what()) + "}";
    } catch (const std::exception& e) {
      reply = "{\"event\":\"cell_fail\",\"kind\":\"error\",\"message\":" +
              json_quote(e.what()) + "}";
    }
    if (!respond(reply)) return 1;
  }
  return 0;  // EOF: the supervisor closed our stdin — clean shutdown
}

}  // namespace afs::service
