#include "service/daemon.hpp"

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <streambuf>
#include <thread>
#include <utility>

#include "experiments/grid.hpp"
#include "experiments/registry.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace afs::service {
namespace {

// Signal handlers may only touch lock-free state; the dispatcher's signal
// watcher polls this and runs the actual drain on a normal thread.
volatile std::sig_atomic_t g_drain_signal = 0;

void drain_signal_handler(int sig) { g_drain_signal = sig; }

std::int64_t us_between(std::chrono::steady_clock::time_point a,
                        std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

/// Streams an experiment's human-readable progress as one "log" response
/// per line. A write failure is deliberately ignored here: write_line has
/// already torn the connection down and cancelled the request's token, so
/// the run aborts at its next event boundary — swallowing the line is the
/// cheapest way to keep the experiment code oblivious to transport state.
class LogLineBuf : public std::streambuf {
 public:
  LogLineBuf(Connection* conn, std::uint64_t seq, std::string tag)
      : conn_(conn), seq_(seq), tag_(std::move(tag)) {}
  ~LogLineBuf() override { flush_line(); }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    if (ch == '\n')
      flush_line();
    else
      line_.push_back(static_cast<char>(ch));
    return ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    for (std::streamsize i = 0; i < n; ++i) overflow(s[i]);
    return n;
  }

 private:
  void flush_line() {
    if (line_.empty()) return;
    conn_->write_line(response_line("log",
                                    {{"request", json_number(double(seq_))},
                                     {"text", json_quote(line_)}},
                                    tag_));
    line_.clear();
  }

  Connection* conn_;
  std::uint64_t seq_;
  std::string tag_;
  std::string line_;
};

/// "1,2,4" -> {1,2,4} with the same bounds as the batch --procs flag.
bool parse_procs_list(const std::string& s, std::vector<int>& out,
                      std::string& error) {
  out.clear();
  if (s.empty()) return true;  // machine default
  bench::BenchCli tmp;
  bool want_help = false;
  if (!bench::parse_cli_args({"--procs=" + s}, tmp, error, want_help))
    return false;
  out = tmp.procs;
  return true;
}

GridSpec grid_spec_of(const Request& req, std::vector<int> procs) {
  GridSpec g;
  g.kernel = req.kernel;
  g.machine = req.machine;
  g.schedulers = req.schedulers;
  g.perturb = req.perturb;
  g.procs = std::move(procs);
  return g;
}

}  // namespace

void DaemonOptions::validate() const {
  AFS_CHECK_MSG(!socket_path.empty(), "serve needs --socket=PATH");
  AFS_CHECK_MSG(!out_dir.empty(), "serve needs a non-empty --out-dir");
  AFS_CHECK_MSG(jobs >= 1 && jobs <= 256, "--jobs must be in 1..256");
  AFS_CHECK_MSG(max_queue >= 1 && max_queue <= 4096,
                "--max-queue must be in 1..4096");
  AFS_CHECK_MSG(max_connections >= 1 && max_connections <= 1024,
                "--max-connections must be in 1..1024");
  AFS_CHECK_MSG(default_deadline >= 0.0 && default_deadline <= 86400.0,
                "--default-deadline must be in [0, 86400] seconds");
  AFS_CHECK_MSG(drain_timeout > 0.0 && drain_timeout <= 86400.0,
                "--drain-timeout must be in (0, 86400] seconds");
  AFS_CHECK_MSG(write_timeout > 0.0 && write_timeout <= 3600.0,
                "--write-timeout must be in (0, 3600] seconds");
  AFS_CHECK_MSG(cell_timeout >= 0.0, "--cell-timeout must be >= 0");
  AFS_CHECK_MSG(isolation == "thread" || isolation == "process",
                "--isolation must be thread or process");
  AFS_CHECK_MSG(poison_strikes >= 1, "--poison-strikes must be >= 1");
  AFS_CHECK_MSG(restart_burst >= 0.0, "--restart-burst must be >= 0");
  AFS_CHECK_MSG(restart_refill >= 0.0, "--restart-refill must be >= 0");
}

SweepDaemon::SweepDaemon(DaemonOptions opts)
    : opts_(std::move(opts)), queue_(static_cast<std::size_t>(
                                  opts_.max_queue > 0 ? opts_.max_queue : 1)) {}

SweepDaemon::~SweepDaemon() {
  if (watchdog_.joinable()) {
    {
      std::scoped_lock lock(watchdog_mu_);
      drained_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

double SweepDaemon::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

int SweepDaemon::serve() {
  opts_.validate();
  start_ = std::chrono::steady_clock::now();
  std::error_code ec;
  std::filesystem::create_directories(opts_.out_dir, ec);
  if (ec) {
    if (opts_.log)
      *opts_.log << "serve: cannot create out-dir '" << opts_.out_dir
                 << "': " << ec.message() << "\n";
    return 1;
  }
  if (!opts_.no_store) {
    store_.emplace(opts_.store_dir.empty() ? opts_.out_dir + "/.store"
                                           : opts_.store_dir);
  }
  if (opts_.jobs > 1) pool_.emplace(opts_.jobs);

  if (opts_.isolation == "process") {
    WorkerPoolOptions wopts;
    wopts.workers = opts_.jobs;
    wopts.exe = opts_.worker_exe;
    if (!opts_.worker_args.empty()) wopts.args = opts_.worker_args;
    wopts.poison_strikes = opts_.poison_strikes;
    wopts.restart_burst = opts_.restart_burst;
    wopts.restart_refill_per_s = opts_.restart_refill;
    wopts.log = opts_.log;
    workers_ = std::make_unique<WorkerPool>(std::move(wopts));
    std::string werror;
    if (!workers_->start(werror)) {
      if (opts_.log)
        *opts_.log << "serve: cannot start sandbox workers: " << werror
                   << "\n";
      return 1;
    }
  }

  Listener::Handlers handlers;
  handlers.on_frame = [this](const std::shared_ptr<Connection>& conn,
                             const std::string& frame) {
    handle_frame(conn, frame);
  };
  handlers.on_frame_error = [this](const std::shared_ptr<Connection>& conn,
                                   const ProtocolError& e) {
    handle_frame_error(conn, e);
  };
  listener_ = std::make_unique<Listener>(
      opts_.socket_path, opts_.write_timeout,
      static_cast<std::size_t>(opts_.max_connections), &stats_,
      std::move(handlers));
  std::string error;
  if (!listener_->start(error)) {
    if (opts_.log) *opts_.log << "serve: " << error << "\n";
    return 1;
  }

  struct sigaction old_term {}, old_int {};
  if (opts_.install_signal_handlers) {
    g_drain_signal = 0;
    struct sigaction sa {};
    sa.sa_handler = drain_signal_handler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, &old_term);
    sigaction(SIGINT, &sa, &old_int);
  }

  if (opts_.log)
    *opts_.log << "serving on " << opts_.socket_path << " (store "
               << (store_ ? store_->root() : std::string("off")) << ", jobs "
               << opts_.jobs << ", queue " << opts_.max_queue << ")\n";

  // The drain can be initiated while a request is mid-run (a signal, the
  // shutdown verb, a test calling request_drain()); the watcher thread
  // makes a pending signal take effect without waiting for the dispatcher
  // to come back from execute().
  std::atomic<bool> stop_watching{false};
  std::thread signal_watcher([this, &stop_watching] {
    while (!stop_watching.load(std::memory_order_acquire)) {
      if (opts_.install_signal_handlers && g_drain_signal != 0) request_drain();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });

  // The dispatcher: arrival-ordered, one request at a time, reusing the
  // warm pool — the paper's central-queue policy at the service layer.
  while (true) {
    std::unique_ptr<ServiceRequest> r =
        queue_.pop_wait(std::chrono::milliseconds(100));
    if (r == nullptr) {
      if (queue_.closed() && queue_.depth() == 0) break;
      continue;
    }
    execute(std::move(r));
  }

  // Queue drained: release the watchdog before it fires, stop the
  // watcher, tear the transport down.
  {
    std::scoped_lock lock(watchdog_mu_);
    drained_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  stop_watching.store(true, std::memory_order_release);
  signal_watcher.join();
  listener_->close_all();

  if (opts_.install_signal_handlers) {
    sigaction(SIGTERM, &old_term, nullptr);
    sigaction(SIGINT, &old_int, nullptr);
  }

  if (opts_.log) {
    *opts_.log << "drained: admitted=" << stats_.admitted.load()
               << " completed=" << stats_.completed.load()
               << " failed=" << stats_.failed.load()
               << " cancelled=" << stats_.cancelled.load()
               << " deadline_expired=" << stats_.deadline_expired.load()
               << " rejected_overloaded=" << stats_.rejected_overloaded.load()
               << " rejected_draining=" << stats_.rejected_draining.load()
               << " protocol_errors=" << stats_.protocol_errors.load()
               << " connections=" << stats_.connections_total.load()
               << " queue_wait_ms_mean=" << stats_.queue_wait_ms_mean()
               << " run_ms_mean=" << stats_.run_ms_mean();
    if (store_)
      *opts_.log << " store_hits=" << store_->hits()
                 << " store_misses=" << store_->misses()
                 << " store_writes=" << store_->writes();
    if (workers_) {
      const WorkerPoolStats ws = workers_->stats();
      *opts_.log << " worker_spawned=" << ws.spawned
                 << " worker_crashes=" << ws.crashes
                 << " worker_cells=" << ws.cells_executed
                 << " poisoned_cells=" << ws.poisoned;
    }
    *opts_.log << "\n";
  }
  return 0;
}

void SweepDaemon::request_drain() {
  if (drain_begun_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);
  if (opts_.log)
    *opts_.log << "draining (queue " << queue_.depth() << ", in-flight "
               << registry_.in_flight() << ", timeout " << opts_.drain_timeout
               << "s)\n";
  if (listener_ != nullptr) listener_->stop_accepting();
  // Start the watchdog before closing the queue: once closed() is
  // observable the dispatcher may finish the drain and join watchdog_, so
  // the thread must already be assigned.
  watchdog_ = std::thread([this] { finish_drain_watchdog(); });
  queue_.close();
}

void SweepDaemon::finish_drain_watchdog() {
  std::unique_lock lock(watchdog_mu_);
  watchdog_cv_.wait_for(lock,
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::duration<double>(opts_.drain_timeout)),
                        [this] { return drained_; });
  if (!drained_) {
    if (opts_.log)
      *opts_.log << "drain timeout (" << opts_.drain_timeout
                 << "s): cancelling in-flight work\n";
    drain_token_.cancel();
  }
}

void SweepDaemon::handle_frame_error(const std::shared_ptr<Connection>& conn,
                                     const ProtocolError& e) {
  stats_.protocol_errors.fetch_add(1);
  conn->write_line(response_error(e, ""));
  if (conn->strike()) conn->teardown(true);
}

void SweepDaemon::handle_frame(const std::shared_ptr<Connection>& conn,
                               const std::string& frame) {
  Request req;
  ProtocolError e;
  if (!parse_request(frame, req, e)) {
    handle_frame_error(conn, e);
    return;
  }
  switch (req.verb) {
    case Verb::kHealth:
      conn->write_line(health_response(req.tag));
      return;
    case Verb::kStats:
      conn->write_line(stats_response(req.tag));
      return;
    case Verb::kShutdown:
      conn->write_line(response_line("shutting_down", {}, req.tag));
      request_drain();
      return;
    case Verb::kRun:
    case Verb::kGrid:
      admit(conn, std::move(req));
      return;
  }
}

void SweepDaemon::admit(const std::shared_ptr<Connection>& conn, Request req) {
  if (draining_.load(std::memory_order_acquire)) {
    stats_.rejected_draining.fetch_add(1);
    conn->write_line(response_error(
        {err::kShuttingDown, "daemon is draining; not accepting work"},
        req.tag));
    return;
  }

  // Semantic validation happens at admission, on the connection's reader
  // thread, so a bad request is bounced immediately instead of poisoning
  // the dispatcher: ids against the registry, grid specs against the
  // grammars (a thrown usage hint becomes the error message).
  if (req.verb == Verb::kRun) {
    if (!req.all) {
      for (const std::string& id : req.ids) {
        const Experiment* exp = find_experiment(id);
        if (exp == nullptr) {
          conn->write_line(response_error(
              {err::kUnknownExperiment, "unknown experiment '" + id + "'"},
              req.tag));
          return;
        }
        if (exp->kind == ExperimentKind::kMicro) {
          conn->write_line(response_error(
              {err::kBadRequest,
               "'" + id + "' is a google-benchmark binary, not servable"},
              req.tag));
          return;
        }
      }
    }
  } else {
    std::vector<int> procs;
    std::string perror;
    if (!parse_procs_list(req.procs, procs, perror)) {
      conn->write_line(response_error({err::kBadGrid, perror}, req.tag));
      return;
    }
    try {
      (void)make_grid_experiment(grid_spec_of(req, std::move(procs)));
    } catch (const std::exception& ex) {
      conn->write_line(response_error({err::kBadGrid, ex.what()}, req.tag));
      return;
    }
  }

  auto r = std::make_unique<ServiceRequest>(&drain_token_);
  r->seq = registry_.next_seq();
  r->req = std::move(req);
  r->conn = conn;
  r->arrived = std::chrono::steady_clock::now();
  const double deadline =
      r->req.deadline > 0.0 ? r->req.deadline : opts_.default_deadline;
  // Armed before the token is shared with anyone (the deadline fields are
  // not atomic); from here on only cancel()/cancelled() touch it.
  if (deadline > 0.0) r->cancel.set_timeout(deadline);

  const std::uint64_t seq = r->seq;
  const std::string tag = r->req.tag;
  // Valid after the move below for exactly as long as accepted_written is
  // unset: the executor blocks on the flag before touching (or ever
  // destroying) the entry.
  ServiceRequest* admitted = r.get();
  if (!queue_.try_push(std::move(r))) {
    if (queue_.closed()) {
      stats_.rejected_draining.fetch_add(1);
      conn->write_line(response_error(
          {err::kShuttingDown, "daemon is draining; not accepting work"},
          tag));
    } else {
      stats_.rejected_overloaded.fetch_add(1);
      conn->write_line(response_line(
          "error",
          {{"code", json_quote(err::kOverloaded)},
           {"message",
            json_quote("admission queue full; retry with backoff")},
           {"queue_depth", json_number(double(queue_.depth()))},
           {"max_queue", json_number(double(queue_.capacity()))}},
          tag));
    }
    return;
  }
  registry_.enqueued(seq);
  stats_.admitted.fetch_add(1);
  conn->write_line(response_line(
      "accepted",
      {{"request", json_number(double(seq))},
       {"queue_depth", json_number(double(queue_.depth()))}},
      tag));
  admitted->accepted_written.store(true, std::memory_order_release);
}

void SweepDaemon::execute(std::unique_ptr<ServiceRequest> r) {
  // The dispatcher can pop a request before its admitting thread has the
  // "accepted" line on the wire; emitting anything (or finishing and
  // destroying the entry) before that would reorder the stream.
  while (!r->accepted_written.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  registry_.running(r->seq);
  r->started = std::chrono::steady_clock::now();
  stats_.queue_wait_us.fetch_add(us_between(r->arrived, r->started));
  const std::string& tag = r->req.tag;

  const auto finish = [&](const char* outcome) {
    stats_.run_us.fetch_add(
        us_between(r->started, std::chrono::steady_clock::now()));
    registry_.finished(r->seq);
    if (opts_.log)
      *opts_.log << "request " << r->seq << ": " << outcome << "\n";
  };

  // Classify a fired token: drain beats disconnect beats deadline (a
  // request can hit several at once; the coarser condition is the truth a
  // client can act on).
  const auto respond_cancelled = [&] {
    if (drain_token_.cancelled()) {
      stats_.cancelled.fetch_add(1);
      r->conn->write_line(response_error(
          {err::kCancelled, "cancelled: daemon drain timeout"}, tag, r->seq));
      finish("cancelled (drain)");
    } else if (r->conn->dead()) {
      stats_.cancelled.fetch_add(1);
      finish("cancelled (client gone)");
    } else {
      stats_.deadline_expired.fetch_add(1);
      r->conn->write_line(response_error(
          {err::kDeadlineExpired, "request deadline expired"}, tag, r->seq));
      finish("deadline expired");
    }
  };

  if (r->conn->dead() || r->cancel.cancelled()) {
    // Never started: client hung up while queued, the deadline burned out
    // in the queue, or the drain timeout fired. No pool time spent.
    respond_cancelled();
    return;
  }

  // From here the client's disappearance must abort the run: tie the
  // token to the connection for the duration.
  r->conn->register_cancel(&r->cancel);

  bench::BenchCli cli;
  cli.out_dir = opts_.out_dir;
  cli.jobs = opts_.jobs;
  cli.cell_timeout = opts_.cell_timeout;
  if (opts_.cell_retries >= 0) cli.cell_retries = opts_.cell_retries;
  // Resume is always on in serve mode: between the store and the sweep
  // checkpoints, a re-issued request after any kind of crash recomputes
  // only what was genuinely never finished.
  cli.resume = true;

  std::vector<const Experiment*> experiments;
  Experiment grid_exp;  // keeps the grid's closure alive while running
  if (r->req.verb == Verb::kGrid) {
    // Each distinct grid gets a stable private directory so repeated
    // identical grids overwrite themselves (idempotent, warm) and
    // different grids never clobber each other's grid.csv. The id stays
    // "grid", so the CSV content matches the batch driver byte for byte.
    std::vector<int> procs;
    std::string perror;
    parse_procs_list(r->req.procs, procs, perror);  // validated at admission
    const GridSpec g = grid_spec_of(r->req, std::move(procs));
    cli.out_dir = opts_.out_dir + "/grid-" + hex64(fnv1a64(grid_identity(g)));
    try {
      grid_exp = make_grid_experiment(g);
    } catch (const std::exception& ex) {
      // Can only differ from admission if the environment changed.
      r->conn->unregister_cancel(&r->cancel);
      stats_.failed.fetch_add(1);
      r->conn->write_line(
          response_error({err::kBadGrid, ex.what()}, tag, r->seq));
      finish("failed (bad grid)");
      return;
    }
    experiments.push_back(&grid_exp);
  } else if (r->req.all) {
    for (const Experiment& exp : all_experiments())
      if (exp.kind != ExperimentKind::kMicro) experiments.push_back(&exp);
  } else {
    for (const std::string& id : r->req.ids)
      experiments.push_back(find_experiment(id));  // non-null per admission
  }

  ExperimentContext ctx;
  ctx.cli = cli;
  ctx.store = store_ ? &*store_ : nullptr;
  ctx.pool = pool_ ? &*pool_ : nullptr;
  ctx.cancel = &r->cancel;
  ctx.executor = workers_ ? workers_.get() : nullptr;
  // Quarantine and degradation are per-cell, not per-request: surface
  // them as non-terminal "cell_error" events so a client naming a
  // poisoned cell still gets every healthy cell's result (and the done
  // event) on the same connection.
  Connection* connp = r->conn.get();
  const std::uint64_t rseq = r->seq;
  ctx.on_cell_failure = [connp, rseq, &tag](const std::string& id,
                                            const CellFailure& f) {
    if (f.kind != "poison" && f.kind != "degraded") return;
    connp->write_line(response_line(
        "cell_error",
        {{"request", json_number(double(rseq))},
         {"code", json_quote(f.kind == "poison" ? err::kPoisonCell
                                                : err::kDegraded)},
         {"experiment", json_quote(id)},
         {"scheduler", json_quote(f.label)},
         {"procs", json_number(double(f.procs))},
         {"message", json_quote(f.message)}},
        tag));
  };

  const std::int64_t hits0 = store_ ? store_->hits() : 0;
  const std::int64_t misses0 = store_ ? store_->misses() : 0;
  const std::int64_t writes0 = store_ ? store_->writes() : 0;

  LogLineBuf logbuf(r->conn.get(), r->seq, tag);
  std::ostream logstream(&logbuf);

  int worst_exit = 0;
  std::string experiments_json = "[";
  bool internal_error = false;
  std::string internal_message;
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const Experiment* exp = experiments[i];
    if (r->cancel.cancelled()) break;
    int exit_code = 0;
    try {
      exit_code = run_experiment(*exp, ctx, logstream);
    } catch (const CancelledError&) {
      break;  // classified below from the token
    } catch (const std::exception& ex) {
      internal_error = true;
      internal_message = ex.what();
      break;
    }
    if (exit_code > worst_exit) worst_exit = exit_code;
    if (experiments_json.size() > 1) experiments_json += ",";
    experiments_json += "{\"id\":" + json_quote(exp->id) +
                        ",\"exit\":" + json_number(double(exit_code)) +
                        ",\"csv\":[";
    for (std::size_t c = 0; c < exp->csv_ids.size(); ++c) {
      if (c > 0) experiments_json += ",";
      experiments_json +=
          json_quote(ctx.cli.out_dir + "/" + exp->csv_ids[c] + ".csv");
    }
    experiments_json += "]}";
  }
  experiments_json += "]";

  r->conn->unregister_cancel(&r->cancel);

  if (internal_error) {
    stats_.failed.fetch_add(1);
    r->conn->write_line(
        response_error({err::kInternal, internal_message}, tag, r->seq));
    finish("failed (internal)");
    return;
  }
  if (r->cancel.cancelled()) {
    respond_cancelled();
    return;
  }

  std::vector<JsonField> fields;
  fields.push_back({"request", json_number(double(r->seq))});
  fields.push_back({"ok", worst_exit == 0 ? "true" : "false"});
  fields.push_back({"exit", json_number(double(worst_exit))});
  fields.push_back({"experiments", experiments_json});
  fields.push_back(
      {"elapsed_s",
       json_number(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - r->started)
                       .count())});
  if (store_) {
    fields.push_back({"store",
                      "{\"hits\":" + json_number(double(store_->hits() - hits0)) +
                          ",\"misses\":" +
                          json_number(double(store_->misses() - misses0)) +
                          ",\"writes\":" +
                          json_number(double(store_->writes() - writes0)) +
                          "}"});
  }
  r->conn->write_line(response_line("done", fields, tag));
  if (worst_exit == 0) {
    stats_.completed.fetch_add(1);
    finish("done");
  } else {
    stats_.failed.fetch_add(1);
    finish("failed (nonzero exit)");
  }
}

std::string SweepDaemon::health_response(const std::string& tag) const {
  // Drain beats degradation: a draining daemon rejects new work either
  // way, and "draining" is the state a client must react to first.
  const char* status = draining_.load()                ? "draining"
                       : (workers_ && workers_->degraded()) ? "degraded"
                                                            : "serving";
  std::vector<JsonField> fields = {
      {"status", json_quote(status)},
      {"uptime_s", json_number(uptime_s())},
      {"queue_depth", json_number(double(queue_.depth()))},
      {"max_queue", json_number(double(queue_.capacity()))},
      {"in_flight", json_number(double(registry_.in_flight()))}};
  fields.push_back(
      {"isolation", json_quote(workers_ ? "process" : "thread")});
  if (workers_) {
    const WorkerPoolStats ws = workers_->stats();
    fields.push_back({"workers_live", json_number(double(ws.live))});
    fields.push_back({"poisoned_cells", json_number(double(ws.poisoned))});
  }
  return response_line("health", fields, tag);
}

std::string SweepDaemon::stats_response(const std::string& tag) const {
  const char* status = draining_.load()                ? "draining"
                       : (workers_ && workers_->degraded()) ? "degraded"
                                                            : "serving";
  std::vector<JsonField> fields = {
      {"status", json_quote(status)},
      {"uptime_s", json_number(uptime_s())},
      {"queue_depth", json_number(double(queue_.depth()))},
      {"max_queue", json_number(double(queue_.capacity()))},
      {"in_flight", json_number(double(registry_.in_flight()))},
      {"admitted", json_number(double(stats_.admitted.load()))},
      {"rejected_overloaded",
       json_number(double(stats_.rejected_overloaded.load()))},
      {"rejected_draining",
       json_number(double(stats_.rejected_draining.load()))},
      {"protocol_errors", json_number(double(stats_.protocol_errors.load()))},
      {"completed", json_number(double(stats_.completed.load()))},
      {"failed", json_number(double(stats_.failed.load()))},
      {"cancelled", json_number(double(stats_.cancelled.load()))},
      {"deadline_expired",
       json_number(double(stats_.deadline_expired.load()))},
      {"connections_total",
       json_number(double(stats_.connections_total.load()))},
      {"connections_open",
       json_number(double(stats_.connections_open.load()))},
      {"connections_torn_down",
       json_number(double(stats_.connections_torn_down.load()))},
      {"queue_wait_ms_mean", json_number(stats_.queue_wait_ms_mean())},
      {"run_ms_mean", json_number(stats_.run_ms_mean())},
  };
  if (store_) {
    fields.push_back({"store_hits", json_number(double(store_->hits()))});
    fields.push_back({"store_misses", json_number(double(store_->misses()))});
    fields.push_back({"store_writes", json_number(double(store_->writes()))});
    fields.push_back({"store_hit_rate", json_number(store_->hit_rate())});
  }
  fields.push_back(
      {"isolation", json_quote(workers_ ? "process" : "thread")});
  if (workers_) {
    const WorkerPoolStats ws = workers_->stats();
    fields.push_back({"workers_live", json_number(double(ws.live))});
    fields.push_back({"workers_spawned", json_number(double(ws.spawned))});
    fields.push_back({"worker_crashes", json_number(double(ws.crashes))});
    fields.push_back(
        {"worker_deadline_kills", json_number(double(ws.deadline_kills))});
    fields.push_back(
        {"worker_restarts_denied", json_number(double(ws.restarts_denied))});
    fields.push_back(
        {"worker_cells_executed", json_number(double(ws.cells_executed))});
    fields.push_back({"poisoned_cells", json_number(double(ws.poisoned))});
  }
  return response_line("stats", fields, tag);
}

}  // namespace afs::service
