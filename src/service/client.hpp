// Client side of the sweep service protocol: what `afs_sweep request`
// runs, and what the daemon tests drive connections with.
//
// ServiceClient is a thin blocking wrapper over one Unix-domain socket
// connection (connect / write a line / read a line with deadline), kept
// deliberately low-level so tests can speak mid-frame garbage, half-close
// the socket, or stop reading — the hostile clients the daemon must
// survive. run_request() is the porcelain: send one request line, stream
// responses until a terminal event, map the outcome to a process exit
// code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace afs::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to the daemon's socket. False with `error` on failure.
  bool connect(const std::string& socket_path, std::string& error);

  /// Sends raw bytes (no newline appended — callers frame explicitly,
  /// tests depend on being able to send partial frames). False on error.
  bool send_raw(const std::string& bytes);

  /// Sends one '\n'-terminated request frame (newline appended when
  /// missing).
  bool send_line(const std::string& line);

  /// Reads the next '\n'-terminated response line (newline stripped).
  /// False on EOF, error, or after `timeout_s` seconds (0 = no timeout).
  bool read_line(std::string& line, double timeout_s = 0.0);

  /// Half-close: shuts down the write side, leaving reads open — how a
  /// polite client says "no more requests" (and how a test makes EOF).
  void hangup_write();

  void close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// Client-side retry policy for run_request. Retried outcomes are the
/// *transient* ones only: transport failures (exit 2) and `overloaded`
/// bounces — the two a daemon restart or a drained queue cures by
/// itself. `shutting_down` is not retried (the daemon told us it is
/// going away), and request-level errors (exit 1) are deterministic.
/// The delay before re-attempt k is the sweep runner's own
/// retry_backoff() schedule — exponential with seeded jitter, clamped to
/// backoff_max — so a fleet of bounced clients decorrelates
/// deterministically instead of stampeding the socket in lockstep.
struct RequestRetryOptions {
  int retries = 0;            ///< re-attempts after the first try
  double backoff_base = 0.25; ///< seconds; first retry delay scale
  double backoff_max = 5.0;   ///< seconds; delay growth cap
  std::uint64_t seed = 0xaf55eedULL;  ///< jitters the schedule
  /// Test hook: replaces the real sleep (argument in seconds).
  std::function<void(double)> sleep_fn;
};

/// Sends `request_line` to the daemon at `socket_path` and streams the
/// responses to `out` until a terminal event. With `raw`, every response
/// line is printed verbatim; otherwise log lines print as plain text,
/// `cell_error` events (poisoned/degraded cells — non-terminal) print as
/// JSON, and the terminal line prints as JSON. `timeout_s` bounds each
/// read (0 = wait forever).
///
/// Exit codes: 0 = done ok (or stats/health/shutting_down answered);
/// 1 = done with nonzero exit, or a request-level error;
/// 2 = transport failure (connect/read/write), after retries;
/// 3 = bounced by backpressure or drain (overloaded / shutting_down) —
///     overloaded only after the retry budget is exhausted.
int run_request(const std::string& socket_path,
                const std::string& request_line, std::ostream& out,
                std::ostream& err, bool raw, double timeout_s = 0.0);
int run_request(const std::string& socket_path,
                const std::string& request_line, std::ostream& out,
                std::ostream& err, bool raw, double timeout_s,
                const RequestRetryOptions& retry);

}  // namespace afs::service
