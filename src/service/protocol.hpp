// The sweep service wire protocol: line-delimited JSON over a Unix-domain
// socket (docs/SWEEP_SERVICE.md, "Serving").
//
// Every request is one '\n'-terminated JSON object; every response is one
// '\n'-terminated JSON object with an "event" field. A connection may
// pipeline requests; responses carry the request's echoed "tag" (and, for
// admitted work, the daemon-assigned sequence number) so a client can
// match them up.
//
//   {"verb":"run","ids":["fig04","tab2"],"deadline":30,"tag":"c1"}
//   {"verb":"run","all":true}
//   {"verb":"grid","kernel":"gauss:256","machine":"iris",
//    "schedulers":"AFS,GSS","procs":"1,2,4","perturb":"seed=7"}
//   {"verb":"stats"}     {"verb":"health"}     {"verb":"shutdown"}
//
// Robustness is the point of this layer: the framer bounds line length
// and resynchronizes after an oversized frame; the request parser
// rejects unknown verbs, unknown fields, non-positive deadlines and
// type-confused values with a structured error instead of a dropped
// connection; and every error carries a stable machine-readable code
// from the taxonomy below so clients (and the chaos soak test) can
// assert on behavior, not message text.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace afs::service {

/// Longest accepted request frame (bytes, excluding the newline). A
/// legitimate request is well under 4 KiB; the cap bounds memory per
/// hostile connection without being tight enough to clip a real one.
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;

enum class Verb { kRun, kGrid, kStats, kHealth, kShutdown };

/// A parsed, syntactically valid request. Semantic validation that needs
/// daemon state (experiment ids against the registry, grid specs against
/// the grammars) happens at admission.
struct Request {
  Verb verb = Verb::kHealth;
  // run
  std::vector<std::string> ids;
  bool all = false;
  // grid
  std::string kernel, machine, schedulers, procs, perturb;
  /// Per-request wall-clock deadline in seconds. 0 = use the daemon's
  /// default (an explicit 0 or negative in the request is rejected).
  double deadline = 0.0;
  /// Opaque client correlation tag, echoed on every response line.
  std::string tag;
};

/// Stable machine-readable error codes (the protocol's failure taxonomy).
namespace err {
inline constexpr const char* kBadUtf8 = "bad_utf8";
inline constexpr const char* kBadJson = "bad_json";
inline constexpr const char* kFrameTooLong = "frame_too_long";
inline constexpr const char* kUnknownVerb = "unknown_verb";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownExperiment = "unknown_experiment";
inline constexpr const char* kBadGrid = "bad_grid";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kDeadlineExpired = "deadline_expired";
inline constexpr const char* kCancelled = "cancelled";
inline constexpr const char* kPoisonCell = "poison_cell";
inline constexpr const char* kDegraded = "degraded";
inline constexpr const char* kInternal = "internal";
}  // namespace err

struct ProtocolError {
  std::string code;     ///< one of err::*
  std::string message;  ///< human-readable detail
};

/// Parses one frame into a Request. Returns false and fills `e` (code
/// kBadUtf8 / kBadJson / kUnknownVerb / kBadRequest) on anything
/// malformed; the connection stays usable either way.
bool parse_request(const std::string& frame, Request& out, ProtocolError& e);

/// Splits a byte stream into newline-terminated frames with a hard length
/// bound. Feed bytes as they arrive; drain frames and errors in arrival
/// order. An overlong line produces exactly one kFrameTooLong error and
/// the framer then discards input up to the next '\n' — framing
/// resynchronizes, the connection survives.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n);

  /// True when a complete frame (newline stripped) is ready.
  bool next_frame(std::string& frame);
  /// True when a framing error is pending (reported in stream order
  /// relative to frames).
  bool next_error(ProtocolError& e);

  /// Bytes buffered for the current (incomplete) line.
  std::size_t pending_bytes() const { return partial_.size(); }

 private:
  struct Item {
    bool is_error = false;
    std::string frame;
    ProtocolError error;
  };
  std::size_t max_frame_;
  std::string partial_;
  bool skipping_ = false;  ///< discarding an overlong line until '\n'
  std::deque<Item> ready_;
};

// ---- response lines (each returns one '\n'-terminated JSON object) ----

/// One key/value pair of a response object; values are pre-rendered JSON
/// (use json_quote / json_number for scalars).
struct JsonField {
  std::string key;
  std::string rendered;
};

/// {"event":EVENT, fields..., "tag":TAG}\n — the tag is appended only
/// when non-empty.
std::string response_line(const std::string& event,
                          const std::vector<JsonField>& fields,
                          const std::string& tag);

std::string response_error(const ProtocolError& e, const std::string& tag,
                           std::uint64_t request = 0);

}  // namespace afs::service
