// The sweep daemon: `afs_sweep serve` (docs/SWEEP_SERVICE.md, "Serving").
//
// A long-running service over a Unix-domain socket that accepts sweep
// requests from many concurrent clients and executes them — in arrival
// order, one at a time — against the experiment registry and the shared
// content-addressed result store. The scheduling is deliberately the
// paper's own central-queue policy restated at the service layer: a
// bounded FIFO admission queue feeds a single dispatcher that reuses one
// warm worker pool (intra-request parallelism via --jobs), so requests
// inherit both the arrival-order fairness and the affinity benefit of
// never rebuilding workers.
//
// Robustness contract:
//   * backpressure — a full admission queue rejects with a structured
//     `overloaded` error; daemon memory is bounded by --max-queue;
//   * deadlines — each request carries (or inherits) a wall-clock
//     deadline that propagates into the CancelToken chain: an expired
//     request cancels its queued cells without poisoning the shared pool;
//   * graceful drain — SIGTERM/SIGINT stop admission, finish (or, after
//     --drain-timeout, cancel) in-flight work, flush checkpoints, log the
//     counters and exit 0;
//   * crash recovery — state lives in the content-addressed store, so a
//     SIGKILLed daemon restarted over the same .store serves re-issued
//     requests warm and byte-identical;
//   * client isolation — a client that disconnects, floods garbage or
//     stops reading is torn down (its in-flight request cancelled)
//     without affecting any other connection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "service/listener.hpp"
#include "service/request.hpp"
#include "service/service_stats.hpp"
#include "service/worker.hpp"
#include "store/result_store.hpp"
#include "util/cancel.hpp"

namespace afs::service {

struct DaemonOptions {
  std::string socket_path;                ///< required; <= 107 bytes
  std::string out_dir = "bench_results";  ///< CSVs land here, like batch
  std::string store_dir;  ///< empty = <out_dir>/.store
  bool no_store = false;  ///< disable the store (requests always simulate)
  int jobs = 1;           ///< intra-request sweep parallelism
  int max_queue = 64;     ///< admission queue bound (backpressure)
  int max_connections = 64;
  double default_deadline = 0.0;  ///< seconds; 0 = requests have none
  double drain_timeout = 30.0;    ///< seconds to finish in-flight on drain
  double write_timeout = 10.0;    ///< seconds before a slow reader is cut
  double cell_timeout = 0.0;      ///< per-cell deadline, as in batch mode
  int cell_retries = -1;          ///< per-cell retries; -1 = runner default
  /// "thread" (default): cells simulate in-process on the shared pool.
  /// "process": store-missed cells run in supervised sandbox workers
  /// (service/worker.hpp) — a crashing cell kills one subprocess, not the
  /// daemon — under the quarantine/budget knobs below.
  std::string isolation = "thread";
  int poison_strikes = 3;           ///< worker crashes before quarantine
  double restart_burst = 8.0;       ///< worker respawn token-bucket size
  double restart_refill = 0.5;      ///< worker respawn tokens per second
  /// Test hooks: the worker executable and argv. Empty = re-exec
  /// /proc/self/exe with {"worker"} (what afs_sweep serve wants).
  std::string worker_exe;
  std::vector<std::string> worker_args;
  bool install_signal_handlers = true;  ///< SIGTERM/SIGINT -> drain
  std::ostream* log = nullptr;          ///< daemon progress; null = quiet

  /// Throws CheckFailure naming the offending field.
  void validate() const;
};

class SweepDaemon {
 public:
  explicit SweepDaemon(DaemonOptions opts);
  ~SweepDaemon();

  SweepDaemon(const SweepDaemon&) = delete;
  SweepDaemon& operator=(const SweepDaemon&) = delete;

  /// Binds the socket and serves until drained. Returns 0 on a clean
  /// drain (SIGTERM/SIGINT/shutdown verb), nonzero when the socket could
  /// not be opened.
  int serve();

  /// Initiates the drain from any thread (what the signal handlers and
  /// the `shutdown` verb call).
  void request_drain();

  const ServiceStats& stats() const { return stats_; }
  const DaemonOptions& options() const { return opts_; }

 private:
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& frame);
  void handle_frame_error(const std::shared_ptr<Connection>& conn,
                          const ProtocolError& e);
  void admit(const std::shared_ptr<Connection>& conn, Request req);
  void execute(std::unique_ptr<ServiceRequest> r);
  void begin_drain();
  void finish_drain_watchdog();
  std::string stats_response(const std::string& tag) const;
  std::string health_response(const std::string& tag) const;
  double uptime_s() const;

  DaemonOptions opts_;
  ServiceStats stats_;
  RequestRegistry registry_;
  AdmissionQueue queue_;
  CancelToken drain_token_;  ///< parent of every request token
  std::optional<ResultStore> store_;
  std::optional<ThreadPool> pool_;
  std::unique_ptr<WorkerPool> workers_;  ///< non-null iff isolation=process
  std::unique_ptr<Listener> listener_;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_begun_{false};

  // Drain watchdog: arms drain_token_.cancel() after drain_timeout unless
  // the queue empties first.
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool drained_ = false;
};

}  // namespace afs::service
