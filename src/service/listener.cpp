#include "service/listener.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace afs::service {
namespace {

/// Poll granularity for the accept and reader loops: how quickly a stop
/// flag is noticed without burning CPU on a quiet socket.
constexpr int kPollMs = 200;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Connection::Connection(int fd, double write_timeout_s, ServiceStats* stats)
    : fd_(fd), write_timeout_(write_timeout_s), stats_(stats) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::write_line(const std::string& line) {
  std::scoped_lock lock(mu_);
  if (dead_.load(std::memory_order_acquire)) return false;
  const double deadline = now_s() + write_timeout_;
  std::size_t sent = 0;
  while (sent < line.size()) {
    const double remaining = deadline - now_s();
    if (remaining <= 0.0) break;  // slow reader: socket never drained
    struct pollfd p = {fd_, POLLOUT, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) break;  // write timeout
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;  // EPIPE / ECONNRESET: peer disconnected mid-stream
    }
    sent += static_cast<std::size_t>(n);
  }
  if (sent == line.size()) return true;
  // The peer is gone or jammed. Tear down inline (we already hold mu_):
  // cancel the in-flight tokens, shut the socket so the reader exits.
  // Count before shutdown(): the shutdown is what the peer observes (its
  // read returns EOF), so accounting first keeps the stats from ever
  // lagging behind the observable teardown.
  dead_.store(true, std::memory_order_release);
  if (stats_) stats_->connections_torn_down.fetch_add(1);
  for (CancelToken* t : tokens_) t->cancel();
  tokens_.clear();
  ::shutdown(fd_, SHUT_RDWR);
  return false;
}

void Connection::teardown(bool forced) {
  std::scoped_lock lock(mu_);
  if (dead_.exchange(true, std::memory_order_acq_rel)) return;
  // Same ordering as write_line's failure path: stats before shutdown(),
  // so a client that sees EOF and immediately asks another connection for
  // stats cannot observe a teardown the counters don't know about yet.
  if (forced && stats_) stats_->connections_torn_down.fetch_add(1);
  for (CancelToken* t : tokens_) t->cancel();
  tokens_.clear();
  ::shutdown(fd_, SHUT_RDWR);
}

void Connection::register_cancel(CancelToken* token) {
  std::scoped_lock lock(mu_);
  if (dead_.load(std::memory_order_acquire)) {
    token->cancel();  // client already gone: don't start work for it
    return;
  }
  tokens_.push_back(token);
}

void Connection::unregister_cancel(CancelToken* token) {
  std::scoped_lock lock(mu_);
  tokens_.erase(std::remove(tokens_.begin(), tokens_.end(), token),
                tokens_.end());
}

bool Connection::strike() {
  return strikes_.fetch_add(1) + 1 >= kMaxStrikes;
}

Listener::Listener(std::string socket_path, double write_timeout_s,
                   std::size_t max_connections, ServiceStats* stats,
                   Handlers handlers)
    : path_(std::move(socket_path)),
      write_timeout_(write_timeout_s),
      max_connections_(max_connections),
      stats_(stats),
      handlers_(std::move(handlers)) {}

Listener::~Listener() { close_all(); }

bool Listener::start(std::string& error) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path_.empty() || path_.size() >= sizeof(addr.sun_path)) {
    error = "socket path must be 1.." +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes: '" + path_ +
            "'";
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  // Crash recovery: a SIGKILLed daemon leaves its socket file behind.
  // Probe it — if nobody answers, it is stale and safe to remove; if a
  // live daemon answers, starting a second one here is an error.
  if (::access(path_.c_str(), F_OK) == 0) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (probe >= 0) {
      const int rc = ::connect(
          probe, reinterpret_cast<const struct sockaddr*>(&addr), sizeof addr);
      ::close(probe);
      if (rc == 0) {
        error = "a daemon is already serving on " + path_;
        return false;
      }
    }
    ::unlink(path_.c_str());
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof addr) != 0) {
    error = "bind(" + path_ + "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error = std::string("listen(): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    return false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Listener::stop_accepting() {
  stop_accepting_.store(true, std::memory_order_release);
}

void Listener::close_all() {
  stop_accepting_.store(true, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<ReaderSlot> readers;
  {
    std::scoped_lock lock(mu_);
    conns.swap(conns_);
    readers.swap(readers_);
  }
  for (const auto& c : conns) c->teardown(false);
  for (ReaderSlot& r : readers)
    if (r.thread.joinable()) r.thread.join();
  ::unlink(path_.c_str());
}

void Listener::reap_finished_locked() {
  for (std::size_t i = 0; i < readers_.size();) {
    if (readers_[i].done->load(std::memory_order_acquire)) {
      readers_[i].thread.join();
      readers_[i] = std::move(readers_.back());
      readers_.pop_back();
    } else {
      ++i;
    }
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::shared_ptr<Connection>& c) {
                                return c.use_count() == 1 && c->dead();
                              }),
               conns_.end());
}

void Listener::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (stop_accepting_.load(std::memory_order_acquire)) break;
    struct pollfd p = {listen_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, kPollMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      std::scoped_lock lock(mu_);
      reap_finished_locked();
      continue;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      break;
    }
    if (stats_) stats_->connections_total.fetch_add(1);

    std::scoped_lock lock(mu_);
    reap_finished_locked();
    if (conns_.size() >= max_connections_) {
      // Connection-level backpressure: answer with the structured
      // overload error instead of silently queueing or hanging.
      const std::string line = response_error(
          {err::kOverloaded, "too many connections"}, /*tag=*/"");
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      if (stats_) stats_->rejected_overloaded.fetch_add(1);
      continue;
    }
    auto conn = std::make_shared<Connection>(fd, write_timeout_, stats_);
    if (stats_) stats_->connections_open.fetch_add(1);
    ReaderSlot slot;
    slot.done = std::make_shared<std::atomic<bool>>(false);
    auto done = slot.done;
    slot.thread = std::thread([this, conn, done] {
      reader_loop(conn);
      done->store(true, std::memory_order_release);
    });
    conns_.push_back(conn);
    readers_.push_back(std::move(slot));
  }
  // Stop accepting: close the listening socket so new connect()s are
  // refused for the rest of the drain, and remove the socket file so
  // clients fail fast instead of queueing on a dead endpoint.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Listener::reader_loop(std::shared_ptr<Connection> conn) {
  LineFramer framer;
  char buf[4096];
  while (!stop_.load(std::memory_order_acquire) && !conn->dead()) {
    struct pollfd p = {conn->fd(), POLLIN, 0};
    const int rc = ::poll(&p, 1, kPollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const ssize_t n = ::read(conn->fd(), buf, sizeof buf);
    if (n == 0) break;  // EOF: client closed its end
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    framer.feed(buf, static_cast<std::size_t>(n));
    for (;;) {
      std::string frame;
      ProtocolError ferr;
      if (framer.next_frame(frame)) {
        if (handlers_.on_frame) handlers_.on_frame(conn, frame);
      } else if (framer.next_error(ferr)) {
        if (handlers_.on_frame_error) handlers_.on_frame_error(conn, ferr);
      } else {
        break;
      }
      if (conn->dead()) break;
    }
  }
  // Natural EOF and forced teardown converge here; teardown() is
  // idempotent, so the forced path keeps its earlier accounting.
  conn->teardown(false);
  if (stats_) stats_->connections_open.fetch_sub(1);
}

}  // namespace afs::service
