#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "runtime/sweep_runner.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace afs::service {

ServiceClient::~ServiceClient() { close(); }

bool ServiceClient::connect(const std::string& socket_path,
                            std::string& error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    error = "connect " + socket_path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool ServiceClient::send_raw(const std::string& bytes) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool ServiceClient::send_line(const std::string& line) {
  if (!line.empty() && line.back() == '\n') return send_raw(line);
  return send_raw(line + "\n");
}

bool ServiceClient::read_line(std::string& line, double timeout_s) {
  if (fd_ < 0) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    int wait_ms = -1;
    if (timeout_s > 0.0) {
      const auto left = deadline - std::chrono::steady_clock::now();
      wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
      if (wait_ms <= 0) return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;  // timeout
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF with no complete line
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void ServiceClient::hangup_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

namespace {

const JsonValue* find_str(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return (f != nullptr && f->is_string()) ? f : nullptr;
}

}  // namespace

namespace {

/// One attempt of run_request. `retryable` is set for the transient
/// outcomes only: transport failures and an `overloaded` bounce.
int run_request_once(const std::string& socket_path,
                     const std::string& request_line, std::ostream& out,
                     std::ostream& err, bool raw, double timeout_s,
                     bool& retryable) {
  retryable = false;
  ServiceClient client;
  std::string error;
  if (!client.connect(socket_path, error)) {
    err << "request: " << error << "\n";
    retryable = true;
    return 2;
  }
  if (!client.send_line(request_line)) {
    err << "request: send failed: " << std::strerror(errno) << "\n";
    retryable = true;
    return 2;
  }
  std::string line;
  while (client.read_line(line, timeout_s)) {
    JsonValue v;
    std::string jerr;
    if (!parse_json(line, v, jerr) || !v.is_object()) {
      err << "request: unparseable response: " << line << "\n";
      return 2;
    }
    const JsonValue* event = find_str(v, "event");
    if (event == nullptr) {
      err << "request: response without event: " << line << "\n";
      return 2;
    }
    if (event->string == "log") {
      if (raw) {
        out << line << "\n";
      } else if (const JsonValue* text = find_str(v, "text")) {
        out << text->string << "\n";
      }
      continue;
    }
    if (event->string == "accepted") {
      if (raw) out << line << "\n";
      continue;
    }
    if (event->string == "cell_error") {
      // Per-cell quarantine/degradation report: non-terminal (healthy
      // cells and the done event still follow). Always printed as JSON —
      // the code/cell fields are the point.
      out << line << "\n";
      continue;
    }
    // Terminal events: done / error / stats / health / shutting_down.
    out << line << "\n";
    if (event->string == "done") {
      const JsonValue* ok = v.find("ok");
      return (ok != nullptr && ok->is_bool() && ok->boolean) ? 0 : 1;
    }
    if (event->string == "error") {
      const JsonValue* code = find_str(v, "code");
      if (code != nullptr && code->string == err::kOverloaded) {
        retryable = true;  // backpressure clears; shutting_down does not
        return 3;
      }
      if (code != nullptr && code->string == err::kShuttingDown) return 3;
      return 1;
    }
    return 0;  // stats / health / shutting_down
  }
  err << "request: connection closed before a terminal response\n";
  retryable = true;
  return 2;
}

}  // namespace

int run_request(const std::string& socket_path,
                const std::string& request_line, std::ostream& out,
                std::ostream& err, bool raw, double timeout_s) {
  return run_request(socket_path, request_line, out, err, raw, timeout_s,
                     RequestRetryOptions{});
}

int run_request(const std::string& socket_path,
                const std::string& request_line, std::ostream& out,
                std::ostream& err, bool raw, double timeout_s,
                const RequestRetryOptions& retry) {
  // The delay schedule is the sweep runner's own deterministic
  // retry_backoff, keyed on a fixed label so two runs of the same client
  // sleep identically while different seeds decorrelate different
  // clients.
  SweepOptions shape;
  shape.backoff_base = retry.backoff_base;
  shape.backoff_max = retry.backoff_max;
  shape.retry_seed = retry.seed;

  int attempt = 0;
  for (;;) {
    bool retryable = false;
    const int rc = run_request_once(socket_path, request_line, out, err, raw,
                                    timeout_s, retryable);
    ++attempt;
    if (!retryable || attempt > retry.retries) return rc;
    const double delay = retry_backoff(shape, "request", 0, attempt);
    err << "request: transient failure (exit " << rc << "); retry "
        << attempt << "/" << retry.retries << " in " << delay << "s\n";
    if (retry.sleep_fn) {
      retry.sleep_fn(delay);
    } else if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

}  // namespace afs::service
