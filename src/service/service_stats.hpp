// Daemon-lifetime counters, surfaced by the `stats` verb and logged on
// drain for post-mortems.
//
// Everything is a relaxed atomic: counters are written from connection
// reader threads and the dispatcher concurrently, and a stats read is a
// monotonic snapshot, not a transaction — exactly what an operations
// counter needs and nothing more. Latency sums are accumulated in
// microseconds (an atomic double would need CAS loops; integral
// microseconds keep increments wait-free and still resolve well below
// one scheduling quantum).
#pragma once

#include <atomic>
#include <cstdint>

namespace afs::service {

struct ServiceStats {
  // Admission path.
  std::atomic<std::int64_t> admitted{0};  ///< queued for the dispatcher
  std::atomic<std::int64_t> rejected_overloaded{0};  ///< bounced, queue full
  std::atomic<std::int64_t> rejected_draining{0};  ///< bounced, shutting down
  std::atomic<std::int64_t> protocol_errors{0};  ///< bad frames/requests

  // Completion taxonomy (one per admitted request, eventually).
  std::atomic<std::int64_t> completed{0};         ///< ran to the end, exit 0
  std::atomic<std::int64_t> failed{0};            ///< ran, nonzero exit
  std::atomic<std::int64_t> cancelled{0};  ///< drain or client disconnect
  std::atomic<std::int64_t> deadline_expired{0};  ///< per-request deadline

  // Connections.
  std::atomic<std::int64_t> connections_total{0};
  std::atomic<std::int64_t> connections_open{0};
  std::atomic<std::int64_t> connections_torn_down{0};  ///< forced teardowns

  // Latency accounting (microseconds; divide by served requests for the
  // mean). queue_wait covers admission -> dispatch; run covers dispatch ->
  // response.
  std::atomic<std::int64_t> queue_wait_us{0};
  std::atomic<std::int64_t> run_us{0};

  std::int64_t finished() const {
    return completed.load() + failed.load() + cancelled.load() +
           deadline_expired.load();
  }

  /// Mean admission->dispatch wait per finished request, in milliseconds.
  /// Guarded against the zero-request case: a naive sum/count would be
  /// 0/0 = NaN, which the strict JSON printer has no representation for
  /// (json_number renders non-finite doubles as null). Every consumer —
  /// the stats verb, the drained: log — must go through these helpers
  /// rather than dividing the raw counters itself.
  double queue_wait_ms_mean() const {
    const std::int64_t n = finished();
    return n > 0 ? static_cast<double>(queue_wait_us.load()) / 1000.0 /
                       static_cast<double>(n)
                 : 0.0;
  }

  /// Mean dispatch->response time per finished request, in milliseconds.
  /// Same zero-request guard as queue_wait_ms_mean().
  double run_ms_mean() const {
    const std::int64_t n = finished();
    return n > 0 ? static_cast<double>(run_us.load()) / 1000.0 /
                       static_cast<double>(n)
                 : 0.0;
  }
};

}  // namespace afs::service
