// Content-addressed identity of one simulation cell.
//
// A cell — one MachineSim::run — is a pure function of (engine version,
// machine config, loop program, scheduler spec, P, sim options including
// the perturbation config and seeds). CellKey renders every one of those
// inputs into a canonical multi-line text (doubles as hexfloats, vectors
// element-by-element) and hashes it with FNV-1a 64. The result store files
// entries under the hash but keeps the full key text inside each entry, so
// a lookup compares text — a hash collision or a corrupted entry reads as
// a miss, never as a wrong result.
//
// Two inputs cannot be derived from the C++ objects themselves and are
// instead carried as strings supplied by the caller:
//
//   * the program key (LoopProgram::key) — lambdas are opaque, so each
//     program factory states its own identity ("gauss(n=768,w=0x1p+1)");
//   * the scheduler key — the make_scheduler spec string, or a caller-
//     chosen tag for hand-built schedulers (e.g. the BEST-STATIC oracles
//     seeded from a recorded trace).
//
// An empty program or scheduler key makes the cell *uncacheable* (the
// identity is unknown), as do side-effecting runs: tracing (the sink must
// observe real events) and time_phases (stored entries carry no host
// timers). Uncacheable cells simply simulate — correctness never depends
// on the store.
#pragma once

#include <cstdint>
#include <string>

#include "machines/machine_config.hpp"
#include "sim/machine_sim.hpp"

namespace afs {

struct CellKey {
  std::string text;         ///< canonical rendering of every cell input
  std::uint64_t hash = 0;   ///< fnv1a64(text); the store's file address
  bool cacheable = false;   ///< false: bypass the store for this cell
};

/// Canonical one-line rendering of a MachineConfig (every cost field,
/// hexfloat). Exposed for tests; embedded in CellKey::text.
std::string machine_key(const MachineConfig& machine);

/// Canonical one-line rendering of a PerturbationConfig (seed, delays,
/// stalls, losses, spikes, bursts). Exposed for tests.
std::string perturb_key(const PerturbationConfig& perturb);

/// Builds the key for one cell. `program_key` is LoopProgram::key;
/// `scheduler_key` is the scheduler's spec string or caller tag. The
/// legacy SimOptions::start_delays shim is folded into the perturbation
/// delays exactly as MachineSim's constructor folds it, so both spellings
/// of the Table 2 experiment share one cell.
CellKey make_cell_key(const MachineConfig& machine,
                      const std::string& program_key,
                      const std::string& scheduler_key, int procs,
                      const SimOptions& options);

}  // namespace afs
