#include "store/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "runtime/sweep_runner.hpp"  // serialize_sim_result / parse_sim_result
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace fs = std::filesystem;

namespace afs {
namespace {

constexpr const char* kStoreSchema = "afs-store-v1";

std::string entry_content(const CellKey& key, const SimResult& r) {
  std::ostringstream os;
  os << kStoreSchema << '\n'
     << "keybytes " << key.text.size() << '\n'
     << key.text << serialize_sim_result(r);
  return os.str();
}

/// Parses an entry and authenticates it against `key`. Any malformation —
/// wrong schema, short file, key mismatch (collision or corruption),
/// unparseable payload — is a miss.
bool parse_entry(const std::string& content, const CellKey& key,
                 SimResult& out) {
  std::size_t pos = content.find('\n');
  if (pos == std::string::npos ||
      content.compare(0, pos, kStoreSchema) != 0)
    return false;
  ++pos;

  const std::size_t eol = content.find('\n', pos);
  if (eol == std::string::npos) return false;
  const std::string header = content.substr(pos, eol - pos);
  constexpr const char* kKeyBytes = "keybytes ";
  if (header.rfind(kKeyBytes, 0) != 0) return false;
  char* end = nullptr;
  const std::string count = header.substr(std::string(kKeyBytes).size());
  const long long n = std::strtoll(count.c_str(), &end, 10);
  if (end == count.c_str() || *end != '\0' || n < 0) return false;
  pos = eol + 1;

  if (content.size() - pos < static_cast<std::size_t>(n)) return false;
  if (content.compare(pos, static_cast<std::size_t>(n), key.text) != 0)
    return false;
  pos += static_cast<std::size_t>(n);

  return parse_sim_result(content.substr(pos), out);
}

/// A temp name unique per (process, thread, call), so concurrent writers
/// of the same key never share a temp file.
std::string unique_tmp_path(const std::string& final_path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::ostringstream os;
  os << final_path << ".tmp." << ::getpid() << '.' << hex64(tid).substr(8)
     << '.' << counter.fetch_add(1);
  return os.str();
}

struct EntryInfo {
  fs::path path;
  std::int64_t bytes = 0;
  fs::file_time_type mtime;
};

constexpr const char* kQuarantineDir = "quarantine";

std::vector<EntryInfo> list_entries(const std::string& root) {
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    // Quarantined files are evidence, not entries: invisible to scan/gc.
    if (it->is_directory(ec) && it->path().filename() == kQuarantineDir) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() != ".cell") continue;  // skips stray .tmp.* files
    EntryInfo e;
    e.path = p;
    e.bytes = static_cast<std::int64_t>(it->file_size(ec));
    if (ec) continue;
    e.mtime = it->last_write_time(ec);
    if (ec) continue;
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {
  AFS_CHECK_MSG(!root_.empty(), "ResultStore root must not be empty");
}

std::string ResultStore::entry_path(const CellKey& key) const {
  const std::string hex = hex64(key.hash);
  return root_ + "/" + hex.substr(0, 2) + "/" + hex + ".cell";
}

bool ResultStore::load(const CellKey& key, SimResult& out) {
  if (key.cacheable) {
    bool existed = false;
    {
      std::ifstream in(entry_path(key), std::ios::binary);
      if (in) {
        existed = true;
        std::ostringstream buf;
        buf << in.rdbuf();
        if (parse_entry(buf.str(), key, out)) {
          hits_.fetch_add(1);
          // LRU signal for gc(): a served entry is a recently-used entry.
          std::error_code ec;
          fs::last_write_time(entry_path(key),
                              fs::file_time_type::clock::now(), ec);
          return true;
        }
      }
    }
    // A file that exists but does not authenticate is corruption (or a
    // hash collision's foreign key — equally unusable at this address):
    // move it aside so it stops failing every future lookup, keep the
    // bytes for post-mortems. Stream closed above so the rename is clean.
    if (existed) quarantine_entry(entry_path(key));
  }
  misses_.fetch_add(1);
  return false;
}

void ResultStore::quarantine_entry(const std::string& path) {
  std::error_code ec;
  const fs::path dir = fs::path(root_) / kQuarantineDir;
  fs::create_directories(dir, ec);
  if (!ec) {
    // Same uniqueness scheme as the write path: (pid, tid, counter) makes
    // concurrent quarantines of the same entry land on distinct names,
    // and the ".bad" extension keeps them out of scan()/gc().
    const std::string dest =
        (dir / fs::path(path).stem()).string() +
        unique_tmp_path("").substr(4) + ".bad";  // strip the ".tmp" prefix
    fs::rename(path, dest, ec);
    if (!ec) {
      quarantined_.fetch_add(1);
      return;
    }
  }
  // Could not move it (or make the directory): removing the corrupt file
  // still stops the repeated parse failures. A concurrent quarantine
  // winning the rename race lands here with ENOENT — then the other
  // process already took the evidence and there is nothing to count.
  if (fs::remove(path, ec)) quarantined_.fetch_add(1);
}

void ResultStore::save(const CellKey& key, const SimResult& r) {
  if (!key.cacheable) return;
  const std::string path = entry_path(key);
  const fs::path target(path);
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);

  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    AFS_CHECK_MSG(outf.good(), "cannot open store temp file " << tmp);
    outf << entry_content(key, r);
    outf.flush();
    AFS_CHECK_MSG(outf.good(), "cannot write store temp file " << tmp);
  }
  commit_file_atomic(tmp, path);
  writes_.fetch_add(1);
}

double ResultStore::hit_rate() const {
  const double h = static_cast<double>(hits_.load());
  const double m = static_cast<double>(misses_.load());
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

StoreStats ResultStore::scan() const {
  StoreStats stats;
  for (const EntryInfo& e : list_entries(root_)) {
    ++stats.entries;
    stats.bytes += e.bytes;
  }
  std::error_code ec;
  for (fs::directory_iterator it(fs::path(root_) / kQuarantineDir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) ++stats.quarantined;
  }
  return stats;
}

GcOutcome ResultStore::gc(const GcOptions& opts) const {
  std::vector<EntryInfo> entries = list_entries(root_);

  GcOutcome out;
  out.scanned = static_cast<std::int64_t>(entries.size());
  for (const EntryInfo& e : entries) out.bytes_before += e.bytes;
  out.bytes_after = out.bytes_before;

  auto evict = [&](const EntryInfo& e) {
    std::error_code ec;
    if (fs::remove(e.path, ec)) {
      ++out.evicted;
      out.bytes_after -= e.bytes;
    }
  };

  // Age pass: anything untouched for longer than the bound goes.
  std::vector<EntryInfo> survivors;
  if (opts.max_age_days > 0.0) {
    const auto cutoff =
        fs::file_time_type::clock::now() -
        std::chrono::duration_cast<fs::file_time_type::duration>(
            std::chrono::duration<double>(opts.max_age_days * 86400.0));
    for (const EntryInfo& e : entries) {
      if (e.mtime < cutoff)
        evict(e);
      else
        survivors.push_back(e);
    }
  } else {
    survivors = std::move(entries);
  }

  // Size pass: least-recently-used first until under the byte bound.
  if (opts.max_bytes >= 0 && out.bytes_after > opts.max_bytes) {
    std::sort(survivors.begin(), survivors.end(),
              [](const EntryInfo& a, const EntryInfo& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    for (const EntryInfo& e : survivors) {
      if (out.bytes_after <= opts.max_bytes) break;
      evict(e);
    }
  }
  return out;
}

}  // namespace afs
