#include "store/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "runtime/sweep_runner.hpp"  // serialize_sim_result / parse_sim_result
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/crc32c.hpp"
#include "util/hash.hpp"

namespace fs = std::filesystem;

namespace afs {
namespace {

constexpr const char* kStoreSchema = "afs-store-v2";
constexpr const char* kStoreSchemaV1 = "afs-store-v1";

/// The checksummed body of an entry: everything after the crc32c line.
std::string entry_body(const std::string& key_text,
                       const std::string& payload) {
  std::ostringstream os;
  os << "keybytes " << key_text.size() << '\n' << key_text << payload;
  return os.str();
}

std::string crc_line(const std::string& body) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "crc32c %08x", crc32c(body));
  return buf;
}

std::string entry_content(const CellKey& key, const SimResult& r) {
  const std::string body = entry_body(key.text, serialize_sim_result(r));
  std::ostringstream os;
  os << kStoreSchema << '\n' << crc_line(body) << '\n' << body;
  return os.str();
}

/// The structural fields of an entry, independent of which CellKey the
/// caller is looking for — what verify() needs, and what load()'s
/// authentication is built from.
struct ParsedEntry {
  bool v1 = false;          ///< legacy entry without a checksum
  std::string key_text;     ///< the embedded CellKey::text
  std::string payload;      ///< the serialized SimResult
  SimResult result;         ///< payload, parsed
};

/// Parses and self-validates an entry: schema, crc (v2), keybytes
/// framing, payload parse. Key *authentication* against a lookup key is
/// the caller's job — verify() has no lookup key and checks the filename
/// hash instead.
bool parse_entry_fields(const std::string& content, ParsedEntry& out) {
  std::size_t pos = content.find('\n');
  if (pos == std::string::npos) return false;
  const bool v2 = content.compare(0, pos, kStoreSchema) == 0;
  if (!v2 && content.compare(0, pos, kStoreSchemaV1) != 0) return false;
  out.v1 = !v2;
  ++pos;

  if (v2) {
    // crc32c <8 hex> over everything after this line.
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) return false;
    const std::string line = content.substr(pos, eol - pos);
    constexpr const char* kCrc = "crc32c ";
    if (line.rfind(kCrc, 0) != 0) return false;
    const std::string hexv = line.substr(std::string(kCrc).size());
    char* end = nullptr;
    const unsigned long long want = std::strtoull(hexv.c_str(), &end, 16);
    if (hexv.size() != 8 || end != hexv.c_str() + 8) return false;
    pos = eol + 1;
    if (crc32c(content.data() + pos, content.size() - pos) !=
        static_cast<std::uint32_t>(want))
      return false;
  }

  const std::size_t eol = content.find('\n', pos);
  if (eol == std::string::npos) return false;
  const std::string header = content.substr(pos, eol - pos);
  constexpr const char* kKeyBytes = "keybytes ";
  if (header.rfind(kKeyBytes, 0) != 0) return false;
  char* end = nullptr;
  const std::string count = header.substr(std::string(kKeyBytes).size());
  const long long n = std::strtoll(count.c_str(), &end, 10);
  if (end == count.c_str() || *end != '\0' || n < 0) return false;
  pos = eol + 1;

  if (content.size() - pos < static_cast<std::size_t>(n)) return false;
  out.key_text = content.substr(pos, static_cast<std::size_t>(n));
  pos += static_cast<std::size_t>(n);
  out.payload = content.substr(pos);
  return parse_sim_result(out.payload, out.result);
}

/// Parses an entry and authenticates it against `key`. Any malformation —
/// wrong schema, bad checksum, short file, key mismatch (collision or
/// corruption), unparseable payload — is a miss.
bool parse_entry(const std::string& content, const CellKey& key,
                 SimResult& out) {
  ParsedEntry e;
  if (!parse_entry_fields(content, e)) return false;
  if (e.key_text != key.text) return false;
  out = e.result;
  return true;
}

/// A temp name unique per (process, thread, call), so concurrent writers
/// of the same key never share a temp file.
std::string unique_tmp_path(const std::string& final_path) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::ostringstream os;
  os << final_path << ".tmp." << ::getpid() << '.' << hex64(tid).substr(8)
     << '.' << counter.fetch_add(1);
  return os.str();
}

struct EntryInfo {
  fs::path path;
  std::int64_t bytes = 0;
  fs::file_time_type mtime;
};

constexpr const char* kQuarantineDir = "quarantine";

std::vector<EntryInfo> list_entries(const std::string& root) {
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    // Quarantined files are evidence, not entries: invisible to scan/gc.
    if (it->is_directory(ec) && it->path().filename() == kQuarantineDir) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() != ".cell") continue;  // skips stray .tmp.* files
    EntryInfo e;
    e.path = p;
    e.bytes = static_cast<std::int64_t>(it->file_size(ec));
    if (ec) continue;
    e.mtime = it->last_write_time(ec);
    if (ec) continue;
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {
  AFS_CHECK_MSG(!root_.empty(), "ResultStore root must not be empty");
}

std::string ResultStore::entry_path(const CellKey& key) const {
  const std::string hex = hex64(key.hash);
  return root_ + "/" + hex.substr(0, 2) + "/" + hex + ".cell";
}

bool ResultStore::load(const CellKey& key, SimResult& out) {
  if (key.cacheable) {
    bool existed = false;
    {
      std::ifstream in(entry_path(key), std::ios::binary);
      if (in) {
        existed = true;
        std::ostringstream buf;
        buf << in.rdbuf();
        if (parse_entry(buf.str(), key, out)) {
          hits_.fetch_add(1);
          // LRU signal for gc(): a served entry is a recently-used entry.
          std::error_code ec;
          fs::last_write_time(entry_path(key),
                              fs::file_time_type::clock::now(), ec);
          return true;
        }
      }
    }
    // A file that exists but does not authenticate is corruption (or a
    // hash collision's foreign key — equally unusable at this address):
    // move it aside so it stops failing every future lookup, keep the
    // bytes for post-mortems. Stream closed above so the rename is clean.
    if (existed) quarantine_entry(entry_path(key));
  }
  misses_.fetch_add(1);
  return false;
}

void ResultStore::quarantine_entry(const std::string& path) {
  std::error_code ec;
  const fs::path dir = fs::path(root_) / kQuarantineDir;
  fs::create_directories(dir, ec);
  if (!ec) {
    // Same uniqueness scheme as the write path: (pid, tid, counter) makes
    // concurrent quarantines of the same entry land on distinct names,
    // and the ".bad" extension keeps them out of scan()/gc().
    const std::string dest =
        (dir / fs::path(path).stem()).string() +
        unique_tmp_path("").substr(4) + ".bad";  // strip the ".tmp" prefix
    fs::rename(path, dest, ec);
    if (!ec) {
      quarantined_.fetch_add(1);
      return;
    }
  }
  // Could not move it (or make the directory): removing the corrupt file
  // still stops the repeated parse failures. A concurrent quarantine
  // winning the rename race lands here with ENOENT — then the other
  // process already took the evidence and there is nothing to count.
  if (fs::remove(path, ec)) quarantined_.fetch_add(1);
}

void ResultStore::save(const CellKey& key, const SimResult& r) {
  if (!key.cacheable) return;
  const std::string path = entry_path(key);
  const fs::path target(path);
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);

  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    AFS_CHECK_MSG(outf.good(), "cannot open store temp file " << tmp);
    outf << entry_content(key, r);
    outf.flush();
    AFS_CHECK_MSG(outf.good(), "cannot write store temp file " << tmp);
  }
  commit_file_atomic(tmp, path);
  writes_.fetch_add(1);
}

double ResultStore::hit_rate() const {
  const double h = static_cast<double>(hits_.load());
  const double m = static_cast<double>(misses_.load());
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

StoreStats ResultStore::scan() const {
  StoreStats stats;
  for (const EntryInfo& e : list_entries(root_)) {
    ++stats.entries;
    stats.bytes += e.bytes;
  }
  std::error_code ec;
  for (fs::directory_iterator it(fs::path(root_) / kQuarantineDir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) ++stats.quarantined;
  }
  return stats;
}

GcOutcome ResultStore::gc(const GcOptions& opts) const {
  std::vector<EntryInfo> entries = list_entries(root_);

  GcOutcome out;
  out.scanned = static_cast<std::int64_t>(entries.size());
  for (const EntryInfo& e : entries) out.bytes_before += e.bytes;
  out.bytes_after = out.bytes_before;

  auto evict = [&](const EntryInfo& e) {
    std::error_code ec;
    if (fs::remove(e.path, ec)) {
      ++out.evicted;
      out.bytes_after -= e.bytes;
    }
  };

  // Age pass: anything untouched for longer than the bound goes.
  std::vector<EntryInfo> survivors;
  if (opts.max_age_days > 0.0) {
    const auto cutoff =
        fs::file_time_type::clock::now() -
        std::chrono::duration_cast<fs::file_time_type::duration>(
            std::chrono::duration<double>(opts.max_age_days * 86400.0));
    for (const EntryInfo& e : entries) {
      if (e.mtime < cutoff)
        evict(e);
      else
        survivors.push_back(e);
    }
  } else {
    survivors = std::move(entries);
  }

  // Size pass: least-recently-used first until under the byte bound.
  if (opts.max_bytes >= 0 && out.bytes_after > opts.max_bytes) {
    std::sort(survivors.begin(), survivors.end(),
              [](const EntryInfo& a, const EntryInfo& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    for (const EntryInfo& e : survivors) {
      if (out.bytes_after <= opts.max_bytes) break;
      evict(e);
    }
  }
  return out;
}

ScrubOutcome ResultStore::verify() {
  ScrubOutcome out;
  const auto now = fs::file_time_type::clock::now();
  // Grace period for temp files: a writer mid-commit holds its temp for
  // milliseconds; anything a minute old was orphaned by a kill.
  const auto tmp_cutoff = now - std::chrono::minutes(1);
  // Clock-skew slack before an mtime counts as "in the future".
  const auto future_cutoff = now + std::chrono::minutes(5);

  std::error_code ec;
  std::vector<fs::path> entries, tmps;
  for (fs::recursive_directory_iterator it(root_, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec) && it->path().filename() == kQuarantineDir) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".cell")
      entries.push_back(p);
    else if (p.filename().string().find(".tmp.") != std::string::npos)
      tmps.push_back(p);
  }

  for (const fs::path& p : tmps) {
    const auto mtime = fs::last_write_time(p, ec);
    if (ec || mtime >= tmp_cutoff) continue;
    if (fs::remove(p, ec)) ++out.tmp_removed;
  }

  for (const fs::path& p : entries) {
    ++out.scanned;
    std::string content;
    {
      std::ifstream in(p, std::ios::binary);
      if (!in) continue;  // vanished under us (concurrent gc): not corrupt
      std::ostringstream buf;
      buf << in.rdbuf();
      content = buf.str();
    }

    // Self-validation plus the address check the filename encodes: an
    // entry whose embedded key hashes elsewhere can never be served from
    // this path — it is corruption (or a misplaced copy), not data.
    ParsedEntry e;
    const bool fields_ok = parse_entry_fields(content, e);
    const bool address_ok =
        fields_ok && p.stem().string() == hex64(fnv1a64(e.key_text));
    if (!fields_ok || !address_ok) {
      quarantine_entry(p.string());
      ++out.corrupt;
      continue;
    }

    if (e.v1) {
      // Clean legacy entry: rewrite with a checksum so the whole store
      // converges to v2 without invalidating anything. Same atomic
      // protocol as save(); the rewrite refreshes mtime, which is fair —
      // the scrub just touched it.
      const std::string body = entry_body(e.key_text, e.payload);
      const std::string tmp = unique_tmp_path(p.string());
      {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf.good()) continue;
        outf << kStoreSchema << '\n' << crc_line(body) << '\n' << body;
        outf.flush();
        if (!outf.good()) continue;
      }
      commit_file_atomic(tmp, p.string());
      ++out.upgraded;
    } else {
      const auto mtime = fs::last_write_time(p, ec);
      if (!ec && mtime > future_cutoff) {
        // A future-dated entry would survive every age pass and sort
        // last in the LRU — clamp it so gc() ordering means something.
        fs::last_write_time(p, now, ec);
        if (!ec) ++out.mtime_repaired;
      }
    }
    ++out.ok;
  }
  return out;
}

}  // namespace afs
