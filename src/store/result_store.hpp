// Content-addressed, on-disk store of simulation results.
//
// The experiment grid — (kernel, machine, scheduler, P, perturbation,
// seed) — is enormous but each cell is a pure function of its CellKey, so
// a cell simulated once never needs to be simulated again: the store maps
// key hash -> serialized SimResult, shared by every driver run against the
// same root directory.
//
// Layout:   <root>/<hh>/<16-hex-hash>.cell   (hh = first hash byte, so a
// million entries spread over 256 directories instead of one).
//
// Entry format (text, schema afs-store-v2):
//     afs-store-v2
//     crc32c <8 hex digits>          (checksum of everything below it)
//     keybytes <N>
//     <N bytes: the full CellKey::text>
//     <serialize_sim_result() output, schema afs-cell-v1>
//
// v1 entries (same layout without the crc32c line) are still readable;
// verify() rewrites them with a checksum in place, so a scrub migrates an
// old store without a flag day.
//
// Trust model: the hash only locates the entry; the embedded key text is
// what authenticates it, and the CRC32C line detects payload corruption
// (a flipped bit in a stored number still parses — only the checksum
// catches it). load() re-reads the full key and re-checks the crc, so a
// hash collision, a truncated write the atomic protocol somehow missed,
// bit rot, or hand-edited garbage all degrade to a miss — the cell is
// recomputed and the entry overwritten. The store can make a run slower,
// never wrong.
//
// Concurrency: load and save are safe from many threads and many
// processes. Writes go through a per-writer unique temp file plus the
// atomic rename protocol (util/atomic_file), so concurrent writers of the
// same key publish whole entries in some order; since the content is a
// deterministic function of the key, whichever write lands last is
// byte-identical to the others.
//
// Invalidation is implicit: any change to an input changes the key text
// and therefore the address — bumping kEngineVersion orphans exactly the
// entries computed by the old engine. Orphans are reclaimed by gc()
// (age- or size-bounded LRU on entry mtime; load() touches mtime on hit).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/sim_result.hpp"
#include "store/cell_key.hpp"

namespace afs {

struct StoreStats {
  std::int64_t entries = 0;
  std::int64_t bytes = 0;
  /// Files under <root>/quarantine/ — corrupt entries moved aside by
  /// load() for post-mortems instead of being re-parsed (and re-failed)
  /// on every lookup.
  std::int64_t quarantined = 0;
};

struct GcOptions {
  /// Evict entries whose mtime is older than this many days. 0 = no age
  /// bound.
  double max_age_days = 0.0;
  /// After the age pass, evict least-recently-used entries until the store
  /// holds at most this many bytes. Negative = no size bound.
  std::int64_t max_bytes = -1;
};

struct GcOutcome {
  std::int64_t scanned = 0;  ///< entries examined
  std::int64_t evicted = 0;  ///< entries removed
  std::int64_t bytes_before = 0;
  std::int64_t bytes_after = 0;
};

/// What a verify() scrub found and did. `corrupt` entries were moved to
/// <root>/quarantine/; everything else was left valid on disk.
struct ScrubOutcome {
  std::int64_t scanned = 0;         ///< entries examined
  std::int64_t ok = 0;              ///< entries that verified clean
  std::int64_t corrupt = 0;         ///< quarantined (bad crc/key/payload)
  std::int64_t upgraded = 0;        ///< v1 entries rewritten as v2
  std::int64_t tmp_removed = 0;     ///< orphaned temp files deleted
  std::int64_t mtime_repaired = 0;  ///< future-dated mtimes clamped to now

  bool clean() const { return corrupt == 0; }
};

class ResultStore {
 public:
  /// Opens (and lazily creates) the store rooted at `root`.
  explicit ResultStore(std::string root);

  const std::string& root() const { return root_; }

  /// True and fills `out` when a valid entry for `key` exists. Counts a
  /// hit or a miss; refreshes the entry's mtime on a hit (LRU signal).
  /// Uncacheable keys count as misses without touching the disk.
  ///
  /// An entry that exists but fails to authenticate or parse (torn bytes,
  /// hand-edited garbage, a hash collision's foreign key) is *quarantined*:
  /// moved to <root>/quarantine/ under a unique name (tmp-style suffix +
  /// rename, so concurrent quarantines of the same entry never collide)
  /// and counted. The lookup degrades to a miss either way — quarantine
  /// just preserves the evidence and stops the corrupt file from being
  /// re-parsed on every lookup.
  bool load(const CellKey& key, SimResult& out);

  /// Publishes `r` under `key` (atomic rename; overwrites any previous
  /// entry). No-op for uncacheable keys.
  void save(const CellKey& key, const SimResult& r);

  /// Absolute path the entry for `key` lives at.
  std::string entry_path(const CellKey& key) const;

  // Process-lifetime lookup counters (thread-safe).
  std::int64_t hits() const { return hits_.load(); }
  std::int64_t misses() const { return misses_.load(); }
  std::int64_t writes() const { return writes_.load(); }
  /// Corrupt entries moved to <root>/quarantine/ by this process.
  std::int64_t quarantined() const { return quarantined_.load(); }
  /// hits / (hits + misses); 0 when no lookups were made.
  double hit_rate() const;

  /// Walks the store: entry count and total bytes.
  StoreStats scan() const;

  /// Evicts by age, then by LRU size bound. See GcOptions.
  GcOutcome gc(const GcOptions& opts) const;

  /// Scrubs the whole store (`afs_sweep cache verify`): every entry is
  /// read and checked — crc (v2), filename-vs-embedded-key address, and
  /// payload parse — with corrupt entries quarantined exactly as load()
  /// would have done on first touch. Clean v1 entries are rewritten as
  /// checksummed v2 entries in place (atomic rename). LRU metadata is
  /// repaired on the way: orphaned `.tmp.` files older than a minute are
  /// removed, and entries whose mtime lies in the future (clock skew,
  /// restored backups) are clamped to now so gc()'s age/LRU ordering
  /// stays meaningful. Safe to run concurrently with readers; run it
  /// while writers are quiescent (an in-flight write's temp file younger
  /// than the grace period is left alone).
  ScrubOutcome verify();

 private:
  /// Moves the corrupt entry at `path` into <root>/quarantine/ (or, if the
  /// quarantine directory cannot be created, removes it) and counts it.
  void quarantine_entry(const std::string& path);

  std::string root_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> writes_{0};
  std::atomic<std::int64_t> quarantined_{0};
};

}  // namespace afs
