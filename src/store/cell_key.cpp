#include "store/cell_key.hpp"

#include <sstream>

#include "sim/engine_version.hpp"
#include "util/hash.hpp"

namespace afs {
namespace {

constexpr const char* kKeySchema = "afs-store-key-v1";

const char* interconnect_name(Interconnect ic) {
  switch (ic) {
    case Interconnect::kBus: return "bus";
    case Interconnect::kSwitch: return "switch";
    case Interconnect::kRing: return "ring";
  }
  return "?";
}

}  // namespace

std::string machine_key(const MachineConfig& m) {
  std::ostringstream os;
  os << "machine name=" << m.name << " procs=" << m.max_processors
     << " ic=" << interconnect_name(m.interconnect)
     << " work=" << key_double(m.work_unit_time)
     << " cache=" << key_double(m.cache_capacity)
     << " miss=" << key_double(m.miss_latency)
     << " xfer=" << key_double(m.transfer_unit_time)
     << " lsync=" << key_double(m.local_sync_time)
     << " rsync=" << key_double(m.remote_sync_time)
     << " modfact=" << key_double(m.modfact_sync_multiplier)
     << " probe=" << key_double(m.probe_time)
     << " inval=" << key_double(m.invalidate_time)
     << " bar=" << key_double(m.barrier_base) << '+'
     << key_double(m.barrier_per_proc)
     << " jitter=" << key_double(m.epoch_jitter);
  return os.str();
}

std::string perturb_key(const PerturbationConfig& p) {
  std::ostringstream os;
  os << "perturb seed=" << p.seed << " delays=[";
  for (std::size_t k = 0; k < p.start_delays.size(); ++k)
    os << (k ? "," : "") << key_double(p.start_delays[k]);
  os << "] stall=" << key_double(p.stall_mean_interval) << '/'
     << key_double(p.stall_duration) << " losses=[";
  for (std::size_t k = 0; k < p.losses.size(); ++k)
    os << (k ? "," : "") << p.losses[k].proc << '@'
       << key_double(p.losses[k].time);
  os << "] spike=" << key_double(p.mem_spike_prob) << '/'
     << key_double(p.mem_spike_latency)
     << " burst=" << key_double(p.burst_mean_interval) << '/'
     << key_double(p.burst_duration) << '/'
     << key_double(p.burst_multiplier);
  return os.str();
}

CellKey make_cell_key(const MachineConfig& machine,
                      const std::string& program_key,
                      const std::string& scheduler_key, int procs,
                      const SimOptions& options) {
  CellKey key;
  key.cacheable = !program_key.empty() && !scheduler_key.empty() &&
                  options.trace == nullptr && !options.time_phases;

  // Fold the deprecated start_delays shim the way MachineSim does, so the
  // two spellings address the same cell. (Setting both is a construction
  // error; here the shim simply wins when present.)
  PerturbationConfig perturb = options.perturb;
  if (!options.start_delays.empty()) perturb.start_delays = options.start_delays;

  // The engine toggles (batching, memory fast path, calendar queue,
  // epoch batching) are part of the key even though all are proven
  // bit-identical: tab7's batching A/B invariant check must actually run
  // both engines, not be served the first one's result twice.
  std::ostringstream os;
  os << kKeySchema << '\n'
     << "engine " << kEngineVersion << '\n'
     << machine_key(machine) << '\n'
     << "program " << program_key << '\n'
     << "scheduler " << scheduler_key << '\n'
     << "procs " << procs << '\n'
     << "jitter_seed " << options.jitter_seed << '\n'
     << "batch " << (options.batch_iterations ? 1 : 0) << '\n'
     << "memfast " << (options.memory_fast_path ? 1 : 0) << '\n'
     << "calendar " << (options.calendar_queue ? 1 : 0) << '\n'
     << "epochbatch " << (options.epoch_batch ? 1 : 0) << '\n'
     << perturb_key(perturb) << '\n';
  key.text = os.str();
  key.hash = fnv1a64(key.text);
  return key;
}

}  // namespace afs
