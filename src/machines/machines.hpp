// The paper's four testbeds as simulator configurations, plus the BBN
// TC2000 used in the §5.1 architecture-trend discussion.
#pragma once

#include "machines/machine_config.hpp"

namespace afs {

/// SGI 4D/480GTX "Iris": 8-processor bus-based cache-coherent workstation,
/// 1 MB second-level caches, fast processors relative to its 64 MB/s bus.
MachineConfig iris();

/// BBN Butterfly I: 60-processor NUMA; no caches, 7 us non-local access,
/// expensive (non-local) work-queue operations.
MachineConfig butterfly1();

/// Sequent Symmetry S81: bus-based, cache-coherent, ~30x slower processors
/// than the Iris with a slightly faster (80 MB/s) bus and small 64 KB caches.
MachineConfig symmetry();

/// KSR-1: 64-processor cache-only (COMA) machine; 32 MB local cache per
/// processor, high-latency ring interconnect, expensive synchronization.
MachineConfig ksr1();

/// BBN TC2000: the §5.1 trend data point — ~60x the Butterfly I's compute,
/// only ~2.5-3.6x its communication. Provided for the trend bench/ablation.
MachineConfig tc2000();

}  // namespace afs
