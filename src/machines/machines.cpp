#include "machines/machines.hpp"

#include <cmath>

#include "util/check.hpp"

namespace afs {
namespace {

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void MachineConfig::validate() const {
  AFS_CHECK_MSG(max_processors >= 1 && max_processors <= 64,
                "MachineConfig.max_processors must be in [1, 64] (got "
                    << max_processors << " for machine '" << name << "')");
  AFS_CHECK_MSG(std::isfinite(work_unit_time) && work_unit_time > 0.0,
                "MachineConfig.work_unit_time must be positive (got "
                    << work_unit_time << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(cache_capacity),
                "MachineConfig.cache_capacity must be finite and >= 0 (got "
                    << cache_capacity << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(miss_latency),
                "MachineConfig.miss_latency must be finite and >= 0 (got "
                    << miss_latency << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(transfer_unit_time),
                "MachineConfig.transfer_unit_time must be finite and >= 0 "
                "(got " << transfer_unit_time << " for machine '" << name
                        << "')");
  AFS_CHECK_MSG(finite_nonneg(local_sync_time),
                "MachineConfig.local_sync_time must be finite and >= 0 (got "
                    << local_sync_time << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(remote_sync_time),
                "MachineConfig.remote_sync_time must be finite and >= 0 (got "
                    << remote_sync_time << " for machine '" << name << "')");
  AFS_CHECK_MSG(
      std::isfinite(modfact_sync_multiplier) && modfact_sync_multiplier >= 1.0,
      "MachineConfig.modfact_sync_multiplier must be >= 1 (got "
          << modfact_sync_multiplier << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(probe_time),
                "MachineConfig.probe_time must be finite and >= 0 (got "
                    << probe_time << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(invalidate_time),
                "MachineConfig.invalidate_time must be finite and >= 0 (got "
                    << invalidate_time << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(barrier_base),
                "MachineConfig.barrier_base must be finite and >= 0 (got "
                    << barrier_base << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(barrier_per_proc),
                "MachineConfig.barrier_per_proc must be finite and >= 0 (got "
                    << barrier_per_proc << " for machine '" << name << "')");
  AFS_CHECK_MSG(finite_nonneg(epoch_jitter),
                "MachineConfig.epoch_jitter must be finite and >= 0 (got "
                    << epoch_jitter << " for machine '" << name << "')");
}

// Units: one "work unit" is one kernel inner-loop step (a few flops); one
// "transfer unit" is one matrix element (8 bytes). Absolute scales are
// arbitrary; the ratios below are chosen from the machines' published
// characteristics (§5.1) so the paper's comparative phenomena emerge:
//
//            compute : transfer : miss-latency : sync(remote)
//  Iris        1     :   1.0    :     20       :    60        (comm-bound)
//  Symmetry   30     :   0.8    :     10       :    60        (compute-bound)
//  Butterfly   1     :   0.5    :      7       :    50        (NUMA, no cache)
//  KSR-1       1     :   0.17   :    100       :   300        (ring + costly sync)

MachineConfig iris() {
  MachineConfig m;
  m.name = "iris";
  m.max_processors = 8;
  m.interconnect = Interconnect::kBus;
  m.work_unit_time = 1.0;
  // 1 MB L2 per processor = 128K doubles.
  m.cache_capacity = 128.0 * 1024;
  m.miss_latency = 20.0;
  m.transfer_unit_time = 1.0;
  // Sync on the Iris is cheap relative to its iterations (§4.6 measures
  // it at <1% of execution time).
  m.local_sync_time = 10.0;
  m.remote_sync_time = 25.0;
  m.probe_time = 2.0;
  m.invalidate_time = 10.0;
  m.barrier_base = 50.0;
  m.barrier_per_proc = 10.0;
  m.epoch_jitter = 100.0;
  return m;
}

MachineConfig symmetry() {
  MachineConfig m;
  m.name = "symmetry";
  m.max_processors = 8;  // S81 boards scale further; the paper plots <= 8-ish
  m.interconnect = Interconnect::kBus;
  // ~30x slower processors than the Iris; slightly faster bus (80 vs 64 MB/s).
  m.work_unit_time = 30.0;
  // 64 KB cache per processor = 8K doubles.
  m.cache_capacity = 8.0 * 1024;
  m.miss_latency = 10.0;
  m.transfer_unit_time = 0.8;
  m.local_sync_time = 30.0;
  m.remote_sync_time = 60.0;
  m.probe_time = 2.0;
  m.invalidate_time = 10.0;
  m.barrier_base = 50.0;
  m.barrier_per_proc = 10.0;
  m.epoch_jitter = 100.0;
  return m;
}

MachineConfig butterfly1() {
  MachineConfig m;
  m.name = "butterfly1";
  m.max_processors = 60;
  m.interconnect = Interconnect::kSwitch;
  m.work_unit_time = 1.0;
  m.cache_capacity = 0.0;  // no caches; §4.4 workloads carry no footprints
  m.miss_latency = 7.0;    // published non-local access cost, in units
  m.transfer_unit_time = 0.5;
  // Every queue is in some node's memory: even "local" queue operations
  // are memory transactions, and remote ones cross the switch (§4.4: "even
  // the distributed work queues require non-local access").
  m.local_sync_time = 25.0;
  m.remote_sync_time = 50.0;
  m.probe_time = 7.0;  // load probes cross the switch
  m.invalidate_time = 0.0;
  m.barrier_base = 100.0;
  m.barrier_per_proc = 7.0;
  m.epoch_jitter = 50.0;
  return m;
}

MachineConfig ksr1() {
  MachineConfig m;
  m.name = "ksr1";
  m.max_processors = 64;
  m.interconnect = Interconnect::kRing;
  m.work_unit_time = 1.0;
  // 32 MB all-cache memory per processor = 4M doubles: capacity misses
  // effectively never occur (§5.3).
  m.cache_capacity = 4.0 * 1024 * 1024;
  m.miss_latency = 100.0;
  // Ring bandwidth chosen so non-affinity schedulers saturate near 12
  // processors on Gauss-1024 (Fig. 15/16): ~2 work units per element
  // moved / 0.167 occupancy => saturation ~ 12 streams.
  m.transfer_unit_time = 1.0 / 6.0;
  m.local_sync_time = 30.0;
  m.remote_sync_time = 300.0;  // synchronization is expensive on the KSR (§5.2)
  m.probe_time = 5.0;
  m.invalidate_time = 30.0;
  m.barrier_base = 200.0;
  m.barrier_per_proc = 20.0;
  m.epoch_jitter = 400.0;
  return m;
}

MachineConfig tc2000() {
  MachineConfig m = butterfly1();
  m.name = "tc2000";
  m.max_processors = 64;
  // ~60x the Butterfly I's compute speed, but only ~3.6x its access
  // latency and 2.5x its bandwidth (§5.1): communication looms larger.
  m.work_unit_time = 1.0 / 60.0;
  m.miss_latency = 7.0 / 3.6;
  m.transfer_unit_time = 0.5 / 2.5;
  m.local_sync_time = 25.0 / 3.6;
  m.remote_sync_time = 50.0 / 3.6;
  m.probe_time = 7.0 / 3.6;
  return m;
}

}  // namespace afs
