// Simulated machine models.
//
// The paper's four testbeds differ in exactly the ratios that decide which
// loop scheduler wins: compute speed vs. interconnect bandwidth, the price
// of a synchronization operation, cache/local-memory capacity, and how
// remote accesses are served (shared bus, multistage switch, or ring).
// MachineConfig captures those ratios. All costs are in abstract time
// units; within one machine the units are consistent, which is all the
// paper's *comparative* curves need.
//
// Calibration rationale (see DESIGN.md §2 and the per-machine notes in
// machines.cpp):
//  * Iris:      fast RISC + modest bus  -> transfer_unit ~ work_unit, so a
//               Gaussian-elimination row costs about as much to move as to
//               compute: the bus saturates near 2 processors for schedulers
//               that move every row (Fig. 4).
//  * Symmetry:  ~30x slower CPUs, slightly faster bus -> communication is
//               nearly free relative to compute (Fig. 14).
//  * Butterfly: NUMA without caches; only work and (expensive, non-local)
//               queue operations matter for the §4.4 synthetic loops.
//  * KSR-1:     large COMA caches, high-latency ring, very expensive
//               synchronization (Figs. 15-17).
#pragma once

#include <cstdint>
#include <string>

namespace afs {

enum class Interconnect {
  kBus,     ///< Single shared resource; transfers serialize (Iris, Symmetry).
  kSwitch,  ///< Point-to-point; fixed latency, no global serialization (Butterfly).
  kRing,    ///< Shared ring; serializes like a bus but with its own bandwidth (KSR-1).
};

struct MachineConfig {
  std::string name;
  int max_processors = 1;
  Interconnect interconnect = Interconnect::kBus;

  /// Time per abstract work unit (a kernel inner-loop step).
  double work_unit_time = 1.0;

  /// Local cache / local-memory capacity, in transfer units (matrix
  /// elements). 0 disables caching entirely (Butterfly: all references go
  /// to fixed-latency memory; our Butterfly workloads carry no footprints).
  double cache_capacity = 0.0;

  /// Fixed latency added to the requesting processor per block miss.
  double miss_latency = 0.0;

  /// Shared-resource occupancy per transfer unit moved on a miss
  /// (bus/ring only).
  double transfer_unit_time = 0.0;

  /// Cost of a removal from the processor's own (local) work queue.
  double local_sync_time = 1.0;

  /// Cost of a removal from a remote or central work queue.
  double remote_sync_time = 1.0;

  /// MOD-FACTORING multiplies its central-queue cost by this factor:
  /// finding the processor's reserved chunk is "considerably more
  /// expensive" than popping the head (§2.3).
  double modfact_sync_multiplier = 2.0;

  /// Cost of scanning one queue's load during AFS victim selection
  /// (an unsynchronized read; small but not free on P queues).
  double probe_time = 0.0;

  /// Cost of invalidating other processors' copies on a write upgrade.
  double invalidate_time = 0.0;

  /// Fork/join barrier between epochs of the sequential outer loop:
  /// barrier_base + barrier_per_proc * P.
  double barrier_base = 0.0;
  double barrier_per_proc = 0.0;

  /// Per-epoch per-processor start-time jitter, uniform in [0, epoch_jitter).
  /// Models OS noise and the "short term fluctuations" that §5.2 blames for
  /// MOD-FACTORING's degradation at scale.
  double epoch_jitter = 0.0;

  /// Throws CheckFailure naming the offending field and value when any
  /// cost or capacity is out of range (negative, non-finite, zero where a
  /// positive value is required). MachineSim validates its config on
  /// construction; callers building configs by hand can validate earlier
  /// to get the error next to the mistake.
  void validate() const;
};

}  // namespace afs
