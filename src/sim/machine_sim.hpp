// The discrete-event multiprocessor simulator.
//
// MachineSim executes a LoopProgram under any Scheduler on a simulated
// machine with P processors, producing the completion times that the
// paper's figures plot. Since the engine refactor it is a thin
// orchestrator over four layered, independently-testable components:
//
//   EventCore    (event_core.hpp)    deterministic (time, proc) heap and
//                                    per-processor completion clocks;
//   MemorySystem (memory_system.hpp) caches + coherence directory +
//                                    interconnect behind one access();
//   SyncModel    (sync_model.hpp)    queue-lock and victim-probe costing
//                                    per GrabKind;
//   MetricsSink  (metrics.hpp)       the accumulator producing SimResult,
//                                    plus opt-in trace sinks
//                                    (trace_sink.hpp) — zero-cost when
//                                    disabled.
//
// One run is one fork/join execution: per epoch, every processor
// repeatedly asks the scheduler for a chunk, pays the modeled
// synchronization cost for the queue it touched, executes the chunk's
// iterations (compute time + cache misses + interconnect serialization),
// and loops until the scheduler reports the loop drained; epochs are
// separated by a barrier.
//
// Determinism: processors are advanced in global simulated-time order with
// processor-id tie-breaking, and all jitter comes from a seeded RNG, so a
// given (machine, program, scheduler, P, seed) always yields bit-identical
// results — with iteration batching on or off (SimOptions::batch_iterations;
// see docs/SIMULATOR.md for the batching invariant). Tests rely on this.
// The same holds under fault injection (SimOptions::perturb): every fault
// stream is seeded and consulted only at points both batching modes visit,
// and with no perturbation configured the engine never touches the model,
// keeping unperturbed results bit-identical to pre-subsystem output.
#pragma once

#include <cstdint>
#include <vector>

#include "machines/machine_config.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_core.hpp"
#include "sim/memory_system.hpp"
#include "sim/metrics.hpp"
#include "sim/perturbation.hpp"
#include "sim/sim_result.hpp"
#include "sim/sync_model.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

struct SimOptions {
  /// Seed for per-epoch processor start jitter (amplitude comes from
  /// MachineConfig::epoch_jitter).
  std::uint64_t jitter_seed = 42;

  /// Compatibility shim for the Table 2 arrival-time experiment: per-
  /// processor start delays for the first loop of the first epoch. Folded
  /// into `perturb.start_delays` at construction; setting both is an
  /// error. Prefer PerturbationConfig directly.
  std::vector<double> start_delays;

  /// Deterministic fault injection (start delays, transient stalls,
  /// processor loss, memory spikes, contention bursts). Default: all off,
  /// with results bit-identical to an engine without the subsystem. See
  /// sim/perturbation.hpp.
  PerturbationConfig perturb;

  /// Iteration-batching fast path (on by default): consecutive iterations
  /// of a grabbed chunk execute without event-heap round-trips whenever
  /// that provably cannot change the serialization order — the processor
  /// still leads every queued event, or the loop has no data footprint at
  /// all. Footprint loops run in a horizon-batched inner loop (scratch
  /// access plan hoisted out of the iteration; on switch interconnects the
  /// heap-top horizon is hoisted too). Results are identical either way;
  /// off exists for A/B tests.
  bool batch_iterations = true;

  /// Calendar-queue EventCore (on by default): the pending events live in
  /// a sorted circular ring — O(1) tail insert / head pop in the
  /// same-cost steady state, a bounded insertion scan otherwise — instead
  /// of the reference binary heap. Drain order is the same (time,
  /// processor-id) total order either way, so results are bit-identical;
  /// off exists for A/B tests (see docs/SIMULATOR.md, "Event queue").
  bool calendar_queue = true;

  /// Epoch batching (on by default): repeated runs on the same warm
  /// simulator reuse the previous run's host-side allocations — the
  /// ProcCache line pools and hash tables, the Directory table, the event
  /// ring — instead of rebuilding them per run. Simulated state still
  /// starts cold every run (same cold caches, same empty directory), so
  /// results are bit-identical; the sweep harness keys warm simulators by
  /// (machine, options) and multi-run tables/figures ride one warmed
  /// engine. Off exists for A/B tests and forces the pre-reuse
  /// rebuild-per-run path.
  bool epoch_batch = true;

  /// MemorySystem exclusive-residency fast path (on by default): accesses
  /// that hit a resident — and, for writes, exclusively-owned — block are
  /// charged from the single residency probe, skipping the directory
  /// bookkeeping the full MSI path would no-op through. Bit-identical
  /// results either way; off exists for A/B tests (see
  /// docs/SIMULATOR.md, "Memory system").
  bool memory_fast_path = true;

  /// Collect the host wall-clock phase breakdown into SimResult::timers
  /// (scheduler / work / footprint / memory / event-core shares). Off by
  /// default: the instrumented engine is noticeably slower (a timer read
  /// brackets every phase), though simulated results stay bit-identical.
  bool time_phases = false;

  /// Optional trace observer (not owned; must outlive the simulator).
  /// Every simulated event is narrated into it — see trace_sink.hpp for
  /// the standard JSONL implementation. Null: tracing disabled, no cost.
  MetricsSink* trace = nullptr;

  /// Optional cooperative cancellation token (not owned; must outlive the
  /// simulator). Polled at every event boundary; when it fires, run()
  /// throws CancelledError and leaves no partial result behind. This is
  /// how the sweep runner (runtime/sweep_runner.hpp) enforces per-cell
  /// wall-clock deadlines. Null: never cancelled, no cost.
  const CancelToken* cancel = nullptr;

  /// Throws CheckFailure (naming the offending field and value) when any
  /// option is inconsistent with itself or with `config`. Called by the
  /// MachineSim constructor after the start_delays shim is folded in.
  void validate(const MachineConfig& config) const;
};

class MachineSim {
 public:
  explicit MachineSim(MachineConfig config, SimOptions options = {});

  /// Runs the program to completion on `p` processors. The scheduler's
  /// stats are reset at the start and captured into the result. Caches
  /// start cold and persist across epochs (this is where affinity pays).
  SimResult run(const LoopProgram& program, Scheduler& sched, int p);

  /// Serial-baseline time: the program's total work executed on one
  /// processor with no scheduling or communication overhead. Used to
  /// report speedups.
  double ideal_serial_time(const LoopProgram& program) const;

  const MachineConfig& config() const { return config_; }

  /// Attaches / detaches the trace observer for subsequent run() calls
  /// (overrides SimOptions::trace). Not owned.
  void set_trace_sink(MetricsSink* sink) { options_.trace = sink; }

  /// Attaches / detaches the cancellation token for subsequent run()
  /// calls (overrides SimOptions::cancel). Not owned. Lets a warm
  /// simulator be reused across sweep cells that each carry their own
  /// token (see SimOptions::epoch_batch).
  void set_cancel(const CancelToken* token) { options_.cancel = token; }

 private:
  /// Executes one parallel loop starting at per-processor times `start`;
  /// leaves per-processor completion times in events_.completion_times().
  /// Dispatches on SimOptions::time_phases to the kTimed instantiation.
  void run_loop(const ParallelLoopSpec& spec, Scheduler& sched, int p,
                const std::vector<double>& start, MetricsFanout& m);

  /// The actual engine loop. kTimed brackets every phase with a
  /// steady_clock read into timers_; the untimed instantiation compiles
  /// the instrumentation away entirely (if constexpr), so the default
  /// path pays nothing.
  template <bool kTimed>
  void run_loop_impl(const ParallelLoopSpec& spec, Scheduler& sched, int p,
                     const std::vector<double>& start, MetricsFanout& m);

  /// The chunk a processor is executing: remaining iterations plus the
  /// data the chunk-level trace event needs (original begin, exec start).
  struct ChunkState {
    IterRange range{};
    std::int64_t first = 0;
    double exec_start = 0.0;
  };

  MachineConfig config_;
  SimOptions options_;
  EventCore events_;
  MemorySystem memory_;
  SyncModel sync_;
  PerturbationModel pert_;
  /// Reusable access-plan scratch, hoisted out of the per-iteration loop
  /// so footprint() fills pre-sized storage instead of a fresh vector.
  std::vector<BlockAccess> plan_;
  /// Reusable per-loop scratch (in-flight chunks, per-processor start
  /// times), hoisted out of the per-epoch loop so repeated loops — and,
  /// under epoch batching, repeated runs — reuse the same storage.
  std::vector<ChunkState> pending_;
  std::vector<double> start_;
  EnginePhaseTimers timers_;  ///< accumulates while time_phases is set
};

}  // namespace afs
