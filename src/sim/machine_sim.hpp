// The discrete-event multiprocessor simulator.
//
// MachineSim executes a LoopProgram under any Scheduler on a simulated
// machine with P processors, producing the completion times that the
// paper's figures plot. One run is one fork/join execution: per epoch,
// every processor repeatedly asks the scheduler for a chunk, pays the
// modeled synchronization cost for the queue it touched, executes the
// chunk's iterations (compute time + cache misses + interconnect
// serialization), and loops until the scheduler reports the loop drained;
// epochs are separated by a barrier.
//
// Determinism: processors are advanced in global simulated-time order with
// processor-id tie-breaking, and all jitter comes from a seeded RNG, so a
// given (machine, program, scheduler, P, seed) always yields bit-identical
// results. Tests rely on this.
#pragma once

#include <cstdint>
#include <vector>

#include "machines/machine_config.hpp"
#include "sched/scheduler.hpp"
#include "sim/cache.hpp"
#include "sim/interconnect.hpp"
#include "sim/sim_result.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

struct SimOptions {
  /// Seed for per-epoch processor start jitter (amplitude comes from
  /// MachineConfig::epoch_jitter).
  std::uint64_t jitter_seed = 42;

  /// Extra per-processor start delays in time units, applied to the first
  /// loop of the first epoch only (the Table 2 arrival-time experiment).
  std::vector<double> start_delays;
};

class MachineSim {
 public:
  explicit MachineSim(MachineConfig config, SimOptions options = {});

  /// Runs the program to completion on `p` processors. The scheduler's
  /// stats are reset at the start and captured into the result. Caches
  /// start cold and persist across epochs (this is where affinity pays).
  SimResult run(const LoopProgram& program, Scheduler& sched, int p);

  /// Serial-baseline time: the program's total work executed on one
  /// processor with no scheduling or communication overhead. Used to
  /// report speedups.
  double ideal_serial_time(const LoopProgram& program) const;

  const MachineConfig& config() const { return config_; }

 private:
  /// Executes one parallel loop starting at per-processor times `start`;
  /// returns per-processor completion times.
  std::vector<double> run_loop(const ParallelLoopSpec& spec, Scheduler& sched,
                               int p, const std::vector<double>& start,
                               SimResult& result);

  /// Charges one data access; returns the processor's new time.
  double access(int proc, const BlockAccess& a, double t, SimResult& result);

  MachineConfig config_;
  SimOptions options_;
  Directory directory_;
  std::vector<ProcCache> caches_;
  ResourceTimeline shared_link_;           // bus or ring; unused for switch
  std::vector<ResourceTimeline> queue_locks_;  // [0..p-1] local, [p] central
};

}  // namespace afs
