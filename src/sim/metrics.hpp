// Metrics layer of the simulation engine: a sink interface the engine
// narrates every simulated event into, plus the two standard sinks.
//
//  * SimResultSink is the always-on accumulator that produces the SimResult
//    every caller sees. It is `final` and held by value inside the engine's
//    MetricsFanout, so its per-event methods compile to plain inlined
//    floating-point adds — routing the accounting through the sink layer
//    costs nothing over the pre-layered engine, and (crucially) performs
//    the *same additions in the same order*, preserving bit-identical
//    results.
//  * Trace sinks (see trace_sink.hpp) are opt-in observers attached via
//    SimOptions::trace. When none is attached the fan-out is a single
//    predicted-not-taken null check per event: tracing is zero-cost when
//    disabled.
//
// Accounting invariants the accumulator maintains (tested in
// tests/sim/conservation_test.cpp via check_time_identity):
//   busy + sync + comm + idle + barrier ~= P * makespan.
#pragma once

#include <cstdint>
#include <string>

#include "machines/machine_config.hpp"
#include "sched/grab.hpp"
#include "sim/sim_result.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

/// Observer interface for one simulator run. All hooks default to no-ops
/// so a sink overrides only the events it cares about. Times are simulated
/// time units; (t0, t1) spans are [event start, event end].
///
/// Granularity: on_work and on_hit fire once per iteration / per resident
/// access and exist for the accumulator; timeline-oriented sinks normally
/// ignore them and reconstruct activity from the chunk-level events
/// (on_grab, on_chunk, on_miss, on_invalidate), which is what keeps trace
/// files proportional to scheduling decisions rather than iterations.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  /// A run begins: `p` processors of machine `m` executing `program` under
  /// scheduler `scheduler`.
  virtual void on_run_begin(const MachineConfig& m, const std::string& program,
                            const std::string& scheduler, int p) {
    (void)m, (void)program, (void)scheduler, (void)p;
  }

  /// A parallel loop of `n` iterations starts within epoch `epoch`.
  virtual void on_loop_begin(int epoch, std::int64_t n, int p) {
    (void)epoch, (void)n, (void)p;
  }

  /// `proc` obtained chunk `g` from the scheduler; the queue operation
  /// (victim probing + lock) occupied [t0, t1].
  virtual void on_grab(int proc, const Grab& g, double t0, double t1) {
    (void)proc, (void)g, (void)t0, (void)t1;
  }

  /// `proc` spent `w` time units computing iteration work. Fired per
  /// iteration (or once for an analytically-summed chunk).
  virtual void on_work(int proc, double w) { (void)proc, (void)w; }

  /// `proc` finished executing chunk [begin, end) over [t0, t1] (compute
  /// plus any memory-system stalls).
  virtual void on_chunk(int proc, std::int64_t begin, std::int64_t end,
                        double t0, double t1) {
    (void)proc, (void)begin, (void)end, (void)t0, (void)t1;
  }

  /// A cache-resident access (no time cost).
  virtual void on_hit(int proc, const BlockAccess& a, double t) {
    (void)proc, (void)a, (void)t;
  }

  /// A miss: block `a.block` moved over the interconnect during [t0, t1]
  /// (includes any wait for a serialized bus/ring).
  virtual void on_miss(int proc, const BlockAccess& a, double t0, double t1) {
    (void)proc, (void)a, (void)t0, (void)t1;
  }

  /// A write upgrade by `proc` invalidated `copies` remote copies of
  /// `block` during [t0, t1].
  virtual void on_invalidate(int proc, std::int64_t block, int copies,
                             double t0, double t1) {
    (void)proc, (void)block, (void)copies, (void)t0, (void)t1;
  }

  /// `proc` drained the scheduler and left the current loop at time t.
  virtual void on_proc_done(int proc, double t) { (void)proc, (void)t; }

  /// `proc` was stalled by an injected fault (start delay or transient
  /// preemption) over [t0, t1].
  virtual void on_stall(int proc, double t0, double t1) {
    (void)proc, (void)t0, (void)t1;
  }

  /// `proc` died permanently at time `t` (processor-loss fault).
  virtual void on_proc_lost(int proc, double t) { (void)proc, (void)t; }

  /// `thief` grabbed `iters` iterations from dead processor queue
  /// `victim_queue` (graceful degradation under processor loss).
  virtual void on_fault_steal(int thief, int victim_queue,
                              std::int64_t iters) {
    (void)thief, (void)victim_queue, (void)iters;
  }

  /// `iters` statically-assigned iterations were abandoned because their
  /// owner died before grabbing them.
  virtual void on_abandoned(std::int64_t iters) { (void)iters; }

  /// The current loop joined at `end`; each processor waited `end - done`.
  virtual void on_loop_end(int epoch, double end) { (void)epoch, (void)end; }

  /// The fork/join barrier after a loop: per-processor cost `cost`,
  /// summed cost `total` (= cost * P).
  virtual void on_barrier(int epoch, double cost, double total) {
    (void)epoch, (void)cost, (void)total;
  }

  /// The run completed with the given makespan.
  virtual void on_run_end(double makespan) { (void)makespan; }
};

/// The accumulator sink: folds the event stream into a SimResult exactly
/// the way the pre-layered engine did (same additions, same order).
class SimResultSink final : public MetricsSink {
 public:
  explicit SimResultSink(SimResult& result) : r_(&result) {}

  void on_grab(int, const Grab& g, double t0, double t1) override {
    r_->sync += t1 - t0;
    r_->iterations += g.range.size();
    switch (g.kind) {
      case GrabKind::kLocal: ++r_->local_grabs; break;
      case GrabKind::kRemote: ++r_->remote_grabs; break;
      case GrabKind::kCentral: ++r_->central_grabs; break;
      case GrabKind::kStatic: break;
      case GrabKind::kNone: break;
    }
  }

  void on_work(int, double w) override { r_->busy += w; }

  void on_hit(int, const BlockAccess&, double) override { ++r_->hits; }

  void on_miss(int, const BlockAccess& a, double t0, double t1) override {
    ++r_->misses;
    r_->units_transferred += a.size;
    r_->comm += t1 - t0;
  }

  void on_invalidate(int, std::int64_t, int copies, double t0,
                     double t1) override {
    r_->invalidations += copies;
    r_->comm += t1 - t0;
  }

  void on_idle(double span) { r_->idle += span; }

  void on_stall(int, double t0, double t1) override {
    r_->stall_time += t1 - t0;
  }

  void on_proc_lost(int, double) override { ++r_->lost_processor_count; }

  void on_fault_steal(int, int, std::int64_t iters) override {
    r_->stolen_under_fault += iters;
  }

  void on_abandoned(std::int64_t iters) override {
    r_->abandoned_iterations += iters;
  }

  /// Accumulator-only (like on_idle): a dead processor's span from death to
  /// the loop join, charged to stall_time so conservation still closes.
  void on_dead_time(double span) { r_->stall_time += span; }

  void on_barrier(int, double, double total) override { r_->barrier += total; }

  void on_run_end(double makespan) override { r_->makespan = makespan; }

 private:
  SimResult* r_;
};

/// The engine's event dispatcher: always feeds the (statically-dispatched,
/// inlined) accumulator, and forwards to the optional trace sink behind a
/// single null check.
class MetricsFanout {
 public:
  MetricsFanout(SimResult& result, MetricsSink* trace)
      : acc_(result), trace_(trace) {}

  void on_run_begin(const MachineConfig& m, const std::string& program,
                    const std::string& scheduler, int p) {
    if (trace_) trace_->on_run_begin(m, program, scheduler, p);
  }
  void on_loop_begin(int epoch, std::int64_t n, int p) {
    if (trace_) trace_->on_loop_begin(epoch, n, p);
  }
  void on_grab(int proc, const Grab& g, double t0, double t1) {
    acc_.on_grab(proc, g, t0, t1);
    if (trace_) trace_->on_grab(proc, g, t0, t1);
  }
  void on_work(int proc, double w) {
    acc_.on_work(proc, w);
    if (trace_) trace_->on_work(proc, w);
  }
  void on_chunk(int proc, std::int64_t begin, std::int64_t end, double t0,
                double t1) {
    if (trace_) trace_->on_chunk(proc, begin, end, t0, t1);
  }
  void on_hit(int proc, const BlockAccess& a, double t) {
    acc_.on_hit(proc, a, t);
    if (trace_) trace_->on_hit(proc, a, t);
  }
  void on_miss(int proc, const BlockAccess& a, double t0, double t1) {
    acc_.on_miss(proc, a, t0, t1);
    if (trace_) trace_->on_miss(proc, a, t0, t1);
  }
  void on_invalidate(int proc, std::int64_t block, int copies, double t0,
                     double t1) {
    acc_.on_invalidate(proc, block, copies, t0, t1);
    if (trace_) trace_->on_invalidate(proc, block, copies, t0, t1);
  }
  void on_proc_done(int proc, double t) {
    if (trace_) trace_->on_proc_done(proc, t);
  }
  void on_stall(int proc, double t0, double t1) {
    acc_.on_stall(proc, t0, t1);
    if (trace_) trace_->on_stall(proc, t0, t1);
  }
  void on_proc_lost(int proc, double t) {
    acc_.on_proc_lost(proc, t);
    if (trace_) trace_->on_proc_lost(proc, t);
  }
  void on_fault_steal(int thief, int victim_queue, std::int64_t iters) {
    acc_.on_fault_steal(thief, victim_queue, iters);
    if (trace_) trace_->on_fault_steal(thief, victim_queue, iters);
  }
  void on_abandoned(std::int64_t iters) {
    acc_.on_abandoned(iters);
    if (trace_) trace_->on_abandoned(iters);
  }
  void on_idle(double span) { acc_.on_idle(span); }
  void on_dead_time(double span) { acc_.on_dead_time(span); }
  void on_loop_end(int epoch, double end) {
    if (trace_) trace_->on_loop_end(epoch, end);
  }
  void on_barrier(int epoch, double cost, double total) {
    acc_.on_barrier(epoch, cost, total);
    if (trace_) trace_->on_barrier(epoch, cost, total);
  }
  void on_run_end(double makespan) {
    acc_.on_run_end(makespan);
    if (trace_) trace_->on_run_end(makespan);
  }

 private:
  SimResultSink acc_;
  MetricsSink* trace_;
};

}  // namespace afs
