#include "sim/machine_sim.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

/// The chunk a processor is executing: remaining iterations plus the data
/// the chunk-level trace event needs (original begin, execution start).
struct ChunkState {
  IterRange range{};
  std::int64_t first = 0;
  double exec_start = 0.0;
};

}  // namespace

void SimOptions::validate(const MachineConfig& config) const {
  AFS_CHECK_MSG(start_delays.empty() || perturb.start_delays.empty(),
                "SimOptions.start_delays and "
                "SimOptions.perturb.start_delays are both set; use one");
  perturb.validate(config.max_processors);
}

MachineSim::MachineSim(MachineConfig config, SimOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  config_.validate();
  // Legacy Table 2 shim: fold SimOptions::start_delays into the
  // perturbation config so there is exactly one delay mechanism inside
  // the engine.
  if (!options_.start_delays.empty() && options_.perturb.start_delays.empty()) {
    options_.perturb.start_delays = options_.start_delays;
    options_.start_delays.clear();
  }
  options_.validate(config_);
}

double MachineSim::ideal_serial_time(const LoopProgram& program) const {
  double total = 0.0;
  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      if (spec.work_sum && !spec.footprint) {
        total += spec.work_sum(0, spec.n);
      } else {
        for (std::int64_t i = 0; i < spec.n; ++i) total += spec.work(i);
      }
    }
  }
  return total * config_.work_unit_time;
}

void MachineSim::run_loop(const ParallelLoopSpec& spec, Scheduler& sched,
                          int p, const std::vector<double>& start,
                          MetricsFanout& m) {
  sched.start_loop(spec.n, p);

  // Fault checks run only when a fault family can alter execution flow
  // (stalls or losses). Delay-only and memory-fault-only configurations —
  // and the default no-fault configuration — keep the exact original loop.
  const bool faulty = pert_.perturbs_execution();
  if (!faulty) {
    events_.reset(start);
  } else {
    std::vector<char> alive(static_cast<std::size_t>(p), 1);
    for (int i = 0; i < p; ++i)
      if (pert_.lost(i)) alive[static_cast<std::size_t>(i)] = 0;
    events_.reset(start, alive);
  }

  std::vector<ChunkState> pending(static_cast<std::size_t>(p));
  std::vector<BlockAccess> accesses;
  const bool batch = options_.batch_iterations;
  std::int64_t executed = 0;  // iterations actually run (fault accounting)

  // Granularity: one event per *iteration* of a loop with a data
  // footprint, not per chunk. Shared resources (the bus, queue locks)
  // serialize requests in global simulated-time order only if no
  // processor's clock runs far ahead of the others between events;
  // executing a whole N/P-iteration chunk in one event would let the
  // first-processed processor reserve the bus for its entire epoch and
  // starve everyone else retroactively.
  //
  // Batching fast path (batch == true): after each step a processor checks
  // EventCore::leads — if it would be popped next anyway, it keeps
  // executing inline, eliminating the heap round-trip without reordering
  // anything. Footprint-free chunks go further and always coalesce to one
  // event: they touch no shared resource, so no interleaving with other
  // processors can observe or affect them (docs/SIMULATOR.md proves both
  // cases). Chunks with an analytic work_sum are charged in O(1) as
  // before (this is what makes Table 2's 2e8-iteration loop tractable).
  //
  // Fault checks (death, transient stalls) happen at iteration/chunk
  // boundaries, which both batching modes visit at identical clock values;
  // the coalescing path below repeats them per iteration so the injected
  // schedule — and therefore the SimResult — is the same either way.
  while (!events_.empty()) {
    auto [t, proc] = events_.pop();
    ChunkState& mine = pending[static_cast<std::size_t>(proc)];
    bool active = true;

    for (;;) {
      if (faulty) {
        if (pert_.death_due(proc, t)) {
          // Permanent loss: the processor stops at this boundary. Its
          // in-flight chunk is abandoned (the iterations are folded into
          // the end-of-loop abandoned count); queued work it owned is left
          // for the survivors to steal or drain.
          pert_.mark_lost(proc, t);
          m.on_proc_lost(proc, t);
          mine.range = IterRange{};
          events_.finish(proc, t);
          active = false;
          break;
        }
        t = pert_.apply_stalls(proc, t, m);
      }

      if (mine.range.empty()) {
        const Grab g = sched.next(proc);
        if (g.done()) {
          events_.finish(proc, t);
          m.on_proc_done(proc, t);
          active = false;
          break;
        }
        // --- synchronization cost for the queue that was touched ---
        const double t_sync0 = t;
        t = sync_.charge(g, t);
        m.on_grab(proc, g, t_sync0, t);
        if (faulty && g.kind == GrabKind::kRemote && pert_.lost(g.queue))
          m.on_fault_steal(proc, g.queue, g.range.size());

        if (!spec.footprint && spec.work_sum) {
          // Analytic chunk: charged in one step (atomic with respect to
          // faults — boundaries are before the grab and after the chunk).
          const double w =
              spec.work_sum(g.range.begin, g.range.end) * config_.work_unit_time;
          m.on_work(proc, w);
          executed += g.range.size();
          const double te = t + w;
          m.on_chunk(proc, g.range.begin, g.range.end, t, te);
          t = te;
        } else {
          mine.range = g.range;
          mine.first = g.range.begin;
          mine.exec_start = t;
        }
      } else if (batch && !spec.footprint) {
        // Footprint-free chunk: coalesce every remaining iteration into
        // this event (no shared-resource interaction to serialize). Under
        // fault injection each iteration still hits the same boundary
        // checks the unbatched path performs.
        while (!mine.range.empty()) {
          const double w = spec.work(mine.range.begin++) * config_.work_unit_time;
          m.on_work(proc, w);
          t += w;
          ++executed;
          if (faulty) {
            if (pert_.death_due(proc, t)) break;  // handled atop next pass
            t = pert_.apply_stalls(proc, t, m);
          }
        }
        if (mine.range.empty())
          m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
      } else {
        // --- execute one iteration ---
        const std::int64_t i = mine.range.begin++;
        const double w = spec.work(i) * config_.work_unit_time;
        m.on_work(proc, w);
        t += w;
        ++executed;
        if (spec.footprint) {
          accesses.clear();
          spec.footprint(i, accesses);
          for (const BlockAccess& a : accesses)
            t = memory_.access(proc, a, t, m);
        }
        if (mine.range.empty())
          m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
      }

      if (!batch || !events_.leads(t, proc)) break;
    }

    if (active) events_.push(t, proc);
  }

  if (faulty) {
    // Whatever was never executed — a dead processor's in-flight chunk
    // plus any statically-assigned range nobody could reclaim — is the
    // loop's graceful-degradation deficit.
    const std::int64_t abandoned = spec.n - executed;
    if (abandoned > 0) m.on_abandoned(abandoned);
  }

  sched.end_loop();
}

SimResult MachineSim::run(const LoopProgram& program, Scheduler& sched, int p) {
  AFS_CHECK(p >= 1 && p <= config_.max_processors);
  AFS_CHECK(program.epochs >= 0 && program.epoch_loops != nullptr);

  SimResult result;
  MetricsFanout m(result, options_.trace);
  events_.set_cancel(options_.cancel);
  pert_.reset(options_.perturb, p);
  memory_.reset(config_, p, &pert_);
  sync_.reset(config_, sched, p, &pert_);
  sched.reset_stats();
  m.on_run_begin(config_, program.name, sched.name(), p);

  Xoshiro256 jitter_rng(options_.jitter_seed);
  double now = 0.0;
  bool first_loop = true;
  const bool fault_aware = pert_.perturbs_execution();

  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      AFS_CHECK(spec.work != nullptr || (spec.work_sum && !spec.footprint));
      std::vector<double> start(static_cast<std::size_t>(p), now);
      for (int i = 0; i < p; ++i) {
        auto& s = start[static_cast<std::size_t>(i)];
        if (config_.epoch_jitter > 0.0)
          s += jitter_rng.next_double() * config_.epoch_jitter;
        if (first_loop) {
          // Start delay = one initial stall (the Table 2 experiment),
          // charged to stall_time so conservation closes over it.
          const double d = pert_.start_delay(i);
          if (d > 0.0) {
            m.on_stall(i, s, s + d);
            s += d;
          }
        }
      }
      first_loop = false;

      m.on_loop_begin(e, spec.n, p);
      run_loop(spec, sched, p, start, m);

      const double end = events_.join_time();
      if (!fault_aware) {
        for (double d : events_.completion_times()) m.on_idle(end - d);
      } else {
        // A live processor's tail is idle time; a dead processor's span
        // from death (or loop start, when it died earlier) to the join is
        // fault time, charged to stall_time so the decomposition still
        // covers P * makespan.
        const std::vector<double>& done = events_.completion_times();
        for (int i = 0; i < p; ++i) {
          const double span = end - done[static_cast<std::size_t>(i)];
          if (pert_.lost(i))
            m.on_dead_time(span);
          else
            m.on_idle(span);
        }
      }
      m.on_loop_end(e, end);
      now = end;

      // Fork/join barrier before the next loop. Dead processors do not
      // participate: their share of the span is fault time, not barrier.
      const double b = config_.barrier_base + config_.barrier_per_proc * p;
      const int lost = pert_.lost_count();
      m.on_barrier(e, b, b * (p - lost));
      if (lost > 0) m.on_dead_time(b * lost);
      now += b;
    }
  }

  result.sched_stats = sched.stats();
  m.on_run_end(now);
  return result;
}

}  // namespace afs
