#include "sim/machine_sim.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

/// The chunk a processor is executing: remaining iterations plus the data
/// the chunk-level trace event needs (original begin, execution start).
struct ChunkState {
  IterRange range{};
  std::int64_t first = 0;
  double exec_start = 0.0;
};

}  // namespace

MachineSim::MachineSim(MachineConfig config, SimOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  AFS_CHECK(config_.work_unit_time > 0.0);
  AFS_CHECK(config_.max_processors >= 1 && config_.max_processors <= 64);
}

double MachineSim::ideal_serial_time(const LoopProgram& program) const {
  double total = 0.0;
  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      if (spec.work_sum && !spec.footprint) {
        total += spec.work_sum(0, spec.n);
      } else {
        for (std::int64_t i = 0; i < spec.n; ++i) total += spec.work(i);
      }
    }
  }
  return total * config_.work_unit_time;
}

void MachineSim::run_loop(const ParallelLoopSpec& spec, Scheduler& sched,
                          int p, const std::vector<double>& start,
                          MetricsFanout& m) {
  sched.start_loop(spec.n, p);
  events_.reset(start);

  std::vector<ChunkState> pending(static_cast<std::size_t>(p));
  std::vector<BlockAccess> accesses;
  const bool batch = options_.batch_iterations;

  // Granularity: one event per *iteration* of a loop with a data
  // footprint, not per chunk. Shared resources (the bus, queue locks)
  // serialize requests in global simulated-time order only if no
  // processor's clock runs far ahead of the others between events;
  // executing a whole N/P-iteration chunk in one event would let the
  // first-processed processor reserve the bus for its entire epoch and
  // starve everyone else retroactively.
  //
  // Batching fast path (batch == true): after each step a processor checks
  // EventCore::leads — if it would be popped next anyway, it keeps
  // executing inline, eliminating the heap round-trip without reordering
  // anything. Footprint-free chunks go further and always coalesce to one
  // event: they touch no shared resource, so no interleaving with other
  // processors can observe or affect them (docs/SIMULATOR.md proves both
  // cases). Chunks with an analytic work_sum are charged in O(1) as
  // before (this is what makes Table 2's 2e8-iteration loop tractable).
  while (!events_.empty()) {
    auto [t, proc] = events_.pop();
    ChunkState& mine = pending[static_cast<std::size_t>(proc)];
    bool active = true;

    for (;;) {
      if (mine.range.empty()) {
        const Grab g = sched.next(proc);
        if (g.done()) {
          events_.finish(proc, t);
          m.on_proc_done(proc, t);
          active = false;
          break;
        }
        // --- synchronization cost for the queue that was touched ---
        const double t_sync0 = t;
        t = sync_.charge(g, t);
        m.on_grab(proc, g, t_sync0, t);

        if (!spec.footprint && spec.work_sum) {
          // Analytic chunk: charged in one step.
          const double w =
              spec.work_sum(g.range.begin, g.range.end) * config_.work_unit_time;
          m.on_work(proc, w);
          const double te = t + w;
          m.on_chunk(proc, g.range.begin, g.range.end, t, te);
          t = te;
        } else {
          mine.range = g.range;
          mine.first = g.range.begin;
          mine.exec_start = t;
        }
      } else if (batch && !spec.footprint) {
        // Footprint-free chunk: coalesce every remaining iteration into
        // this event (no shared-resource interaction to serialize).
        while (!mine.range.empty()) {
          const double w = spec.work(mine.range.begin++) * config_.work_unit_time;
          m.on_work(proc, w);
          t += w;
        }
        m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
      } else {
        // --- execute one iteration ---
        const std::int64_t i = mine.range.begin++;
        const double w = spec.work(i) * config_.work_unit_time;
        m.on_work(proc, w);
        t += w;
        if (spec.footprint) {
          accesses.clear();
          spec.footprint(i, accesses);
          for (const BlockAccess& a : accesses)
            t = memory_.access(proc, a, t, m);
        }
        if (mine.range.empty())
          m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
      }

      if (!batch || !events_.leads(t, proc)) break;
    }

    if (active) events_.push(t, proc);
  }

  sched.end_loop();
}

SimResult MachineSim::run(const LoopProgram& program, Scheduler& sched, int p) {
  AFS_CHECK(p >= 1 && p <= config_.max_processors);
  AFS_CHECK(program.epochs >= 0 && program.epoch_loops != nullptr);

  SimResult result;
  MetricsFanout m(result, options_.trace);
  memory_.reset(config_, p);
  sync_.reset(config_, sched, p);
  sched.reset_stats();
  m.on_run_begin(config_, program.name, sched.name(), p);

  Xoshiro256 jitter_rng(options_.jitter_seed);
  double now = 0.0;
  bool first_loop = true;

  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      AFS_CHECK(spec.work != nullptr || (spec.work_sum && !spec.footprint));
      std::vector<double> start(static_cast<std::size_t>(p), now);
      for (int i = 0; i < p; ++i) {
        auto& s = start[static_cast<std::size_t>(i)];
        if (config_.epoch_jitter > 0.0)
          s += jitter_rng.next_double() * config_.epoch_jitter;
        if (first_loop && static_cast<std::size_t>(i) < options_.start_delays.size())
          s += options_.start_delays[static_cast<std::size_t>(i)];
      }
      first_loop = false;

      m.on_loop_begin(e, spec.n, p);
      run_loop(spec, sched, p, start, m);

      const double end = events_.join_time();
      for (double d : events_.completion_times()) m.on_idle(end - d);
      m.on_loop_end(e, end);
      now = end;

      // Fork/join barrier before the next loop.
      const double b = config_.barrier_base + config_.barrier_per_proc * p;
      m.on_barrier(e, b, b * p);
      now += b;
    }
  }

  result.sched_stats = sched.stats();
  m.on_run_end(now);
  return result;
}

}  // namespace afs
