#include "sim/machine_sim.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

// Phase-timer plumbing (SimOptions::time_phases). The untimed engine
// instantiation never touches any of this.
using Clock = std::chrono::steady_clock;

inline double dsec(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

void SimOptions::validate(const MachineConfig& config) const {
  AFS_CHECK_MSG(start_delays.empty() || perturb.start_delays.empty(),
                "SimOptions.start_delays and "
                "SimOptions.perturb.start_delays are both set; use one");
  perturb.validate(config.max_processors);
}

MachineSim::MachineSim(MachineConfig config, SimOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  config_.validate();
  // Legacy Table 2 shim: fold SimOptions::start_delays into the
  // perturbation config so there is exactly one delay mechanism inside
  // the engine.
  if (!options_.start_delays.empty() && options_.perturb.start_delays.empty()) {
    options_.perturb.start_delays = options_.start_delays;
    options_.start_delays.clear();
  }
  options_.validate(config_);
}

double MachineSim::ideal_serial_time(const LoopProgram& program) const {
  double total = 0.0;
  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      if (spec.work_sum && !spec.footprint) {
        total += spec.work_sum(0, spec.n);
      } else {
        for (std::int64_t i = 0; i < spec.n; ++i) total += spec.work(i);
      }
    }
  }
  return total * config_.work_unit_time;
}

void MachineSim::run_loop(const ParallelLoopSpec& spec, Scheduler& sched,
                          int p, const std::vector<double>& start,
                          MetricsFanout& m) {
  if (options_.time_phases)
    run_loop_impl<true>(spec, sched, p, start, m);
  else
    run_loop_impl<false>(spec, sched, p, start, m);
}

template <bool kTimed>
void MachineSim::run_loop_impl(const ParallelLoopSpec& spec, Scheduler& sched,
                               int p, const std::vector<double>& start,
                               MetricsFanout& m) {
  sched.start_loop(spec.n, p);

  // Fault checks run only when a fault family can alter execution flow
  // (stalls or losses). Delay-only and memory-fault-only configurations —
  // and the default no-fault configuration — keep the exact original loop.
  const bool faulty = pert_.perturbs_execution();
  if (!faulty) {
    events_.reset(start);
  } else {
    std::vector<char> alive(static_cast<std::size_t>(p), 1);
    for (int i = 0; i < p; ++i)
      if (pert_.lost(i)) alive[static_cast<std::size_t>(i)] = 0;
    events_.reset(start, alive);
  }

  pending_.assign(static_cast<std::size_t>(p), ChunkState{});
  std::vector<ChunkState>& pending = pending_;
  const bool batch = options_.batch_iterations;
  // Feedback channel (adaptive schedulers): resolved once per loop, so the
  // paper's nine schedulers pay a single virtual call and nothing else.
  // Reports fire exactly where on_chunk fires — boundaries both batching
  // modes visit at identical clocks in identical order — with one carve-out
  // below: the footprint-free whole-chunk coalesce is sound only when no
  // other agent can observe the interleaving, and a feedback scheduler is
  // such an agent, so feedback runs route through the leads()-checked path.
  const bool feedback = sched.wants_feedback();
  // Horizon hoisting is sound only off the shared-link machines; constant
  // for the whole run, so resolved here rather than per event.
  const bool hoist = !memory_.serialized_link();
  // Uniform-work loops (Gauss, SOR) charge a precomputed per-iteration
  // cost instead of an indirect CostFn call each iteration; the kernel
  // guarantees the same value, so the accounting is bit-identical.
  const bool uniform = spec.uniform_work > 0.0;
  const double uniform_w = spec.uniform_work * config_.work_unit_time;
  std::int64_t executed = 0;  // iterations actually run (fault accounting)

  // Granularity: one event per *iteration* of a loop with a data
  // footprint, not per chunk. Shared resources (the bus, queue locks)
  // serialize requests in global simulated-time order only if no
  // processor's clock runs far ahead of the others between events;
  // executing a whole N/P-iteration chunk in one event would let the
  // first-processed processor reserve the bus for its entire epoch and
  // starve everyone else retroactively.
  //
  // Batching fast path (batch == true): after each step a processor checks
  // EventCore::leads — if it would be popped next anyway, it keeps
  // executing inline, eliminating the heap round-trip without reordering
  // anything. Footprint-free chunks go further and always coalesce to one
  // event: they touch no shared resource, so no interleaving with other
  // processors can observe or affect them. Footprint chunks run in a
  // horizon-batched inner loop — the heap is untouched during an inline
  // run, so on switch interconnects the other-processor horizon is read
  // once per pop instead of once per iteration (docs/SIMULATOR.md proves
  // all three cases). Chunks with an analytic work_sum are charged in O(1)
  // as before (this is what makes Table 2's 2e8-iteration loop tractable).
  //
  // Fault checks (death, transient stalls) happen at iteration/chunk
  // boundaries, which both batching modes visit at identical clock values;
  // the coalescing path below repeats them per iteration so the injected
  // schedule — and therefore the SimResult — is the same either way.
  // Steady-state heap traffic uses the fused EventCore::push_pop — a
  // processor that stops leading swaps itself for the current leader in
  // one sift instead of a push plus a pop. Same event multiset, same
  // total order, bit-identical drain.
  bool draining = !events_.empty();
  EventCore::Event cur = draining ? events_.pop() : EventCore::Event{};
  while (draining) {
    double t = cur.first;
    const int proc = cur.second;
    ChunkState& mine = pending[static_cast<std::size_t>(proc)];
    bool active = true;
    bool yielded = false;  // inner loop already proved !leads

    for (;;) {
      if (faulty) {
        if (pert_.death_due(proc, t)) {
          // Permanent loss: the processor stops at this boundary. Its
          // in-flight chunk is abandoned (the iterations are folded into
          // the end-of-loop abandoned count); queued work it owned is left
          // for the survivors to steal or drain. If it died mid-chunk, the
          // per-iteration on_work records already narrated
          // [first, range.begin) — close them with a truncated chunk
          // record so trace consumers see every executed iteration inside
          // exactly one chunk record. Both batching modes reach this
          // boundary at the same clock, so the record is identical.
          if (!mine.range.empty() && mine.range.begin > mine.first) {
            m.on_chunk(proc, mine.first, mine.range.begin, mine.exec_start, t);
            if (feedback)
              sched.report(
                  {proc, mine.first, mine.range.begin, mine.exec_start, t});
          }
          pert_.mark_lost(proc, t);
          m.on_proc_lost(proc, t);
          mine.range = IterRange{};
          events_.finish(proc, t);
          active = false;
          break;
        }
        t = pert_.apply_stalls(proc, t, m);
      }

      if (mine.range.empty()) {
        Clock::time_point ph{};
        if constexpr (kTimed) ph = Clock::now();
        const Grab g = sched.next(proc);
        if (g.done()) {
          if constexpr (kTimed) timers_.scheduler += dsec(ph, Clock::now());
          events_.finish(proc, t);
          m.on_proc_done(proc, t);
          active = false;
          break;
        }
        // --- synchronization cost for the queue that was touched ---
        const double t_sync0 = t;
        t = sync_.charge(g, t);
        m.on_grab(proc, g, t_sync0, t);
        if constexpr (kTimed) timers_.scheduler += dsec(ph, Clock::now());
        if (faulty && g.kind == GrabKind::kRemote && pert_.lost(g.queue))
          m.on_fault_steal(proc, g.queue, g.range.size());

        if (!spec.footprint && spec.work_sum) {
          // Analytic chunk: charged in one step (atomic with respect to
          // faults — boundaries are before the grab and after the chunk).
          if constexpr (kTimed) ph = Clock::now();
          const double w =
              spec.work_sum(g.range.begin, g.range.end) * config_.work_unit_time;
          m.on_work(proc, w);
          executed += g.range.size();
          const double te = t + w;
          m.on_chunk(proc, g.range.begin, g.range.end, t, te);
          if (feedback) sched.report({proc, g.range.begin, g.range.end, t, te});
          t = te;
          if constexpr (kTimed) timers_.work += dsec(ph, Clock::now());
        } else {
          mine.range = g.range;
          mine.first = g.range.begin;
          mine.exec_start = t;
        }
      } else if (batch && !spec.footprint && !feedback) {
        // Footprint-free chunk: coalesce every remaining iteration into
        // this event (no shared-resource interaction to serialize). Under
        // fault injection each iteration still hits the same boundary
        // checks the unbatched path performs.
        Clock::time_point ph{};
        if constexpr (kTimed) ph = Clock::now();
        while (!mine.range.empty()) {
          const double w =
              uniform ? uniform_w
                      : spec.work(mine.range.begin) * config_.work_unit_time;
          ++mine.range.begin;
          m.on_work(proc, w);
          t += w;
          ++executed;
          if (faulty) {
            if (pert_.death_due(proc, t)) break;  // handled atop next pass
            t = pert_.apply_stalls(proc, t, m);
          }
        }
        if (mine.range.empty())
          m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
        if constexpr (kTimed) timers_.work += dsec(ph, Clock::now());
      } else if (batch && !faulty && spec.footprint) {
        // Horizon-batched footprint execution: the chunk's iterations —
        // memory accesses included — run inline until the chunk drains or
        // this processor would no longer be popped next. The event heap is
        // untouched for the whole inline run (no push/pop/finish until we
        // break), so on a switch interconnect the other-processor horizon
        // (EventCore::top) is hoisted out of the loop; the serialized-link
        // machines keep the original path's per-iteration leads() probe.
        // Both predicates are the same comparison against the same
        // unmoving heap top, so results are bit-identical either way.
        const bool bounded = !events_.empty();
        double horizon_t = 0.0;
        int horizon_p = 0;
        if (hoist && bounded) {
          const EventCore::Event& top = events_.top();
          horizon_t = top.first;
          horizon_p = top.second;
        }
        for (;;) {
          Clock::time_point ph{};
          if constexpr (kTimed) ph = Clock::now();
          const std::int64_t i = mine.range.begin++;
          const double w =
              uniform ? uniform_w : spec.work(i) * config_.work_unit_time;
          m.on_work(proc, w);
          t += w;
          ++executed;
          if constexpr (kTimed) {
            const auto n = Clock::now();
            timers_.work += dsec(ph, n);
            ph = n;
          }
          plan_.clear();
          spec.footprint(i, plan_);
          if constexpr (kTimed) {
            const auto n = Clock::now();
            timers_.footprint += dsec(ph, n);
            ph = n;
          }
          for (const BlockAccess& a : plan_) t = memory_.access(proc, a, t, m);
          if constexpr (kTimed) {
            timers_.memory += dsec(ph, Clock::now());
            timers_.memory_accesses += static_cast<std::int64_t>(plan_.size());
          }
          if (mine.range.empty()) {
            m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
            if (feedback)
              sched.report(
                  {proc, mine.first, mine.range.end, mine.exec_start, t});
            break;  // chunk done — the outer check decides on a regrab
          }
          const bool leads =
              hoist ? (!bounded || t < horizon_t ||
                       (t == horizon_t && proc < horizon_p))
                    : events_.leads(t, proc);
          if (!leads) {
            yielded = true;  // skip the redundant bottom leads() probe
            break;
          }
        }
        if (yielded) break;
      } else {
        // --- execute one iteration (unbatched, or fault-checked) ---
        Clock::time_point ph{};
        if constexpr (kTimed) ph = Clock::now();
        const std::int64_t i = mine.range.begin++;
        const double w =
            uniform ? uniform_w : spec.work(i) * config_.work_unit_time;
        m.on_work(proc, w);
        t += w;
        ++executed;
        if constexpr (kTimed) {
          const auto n = Clock::now();
          timers_.work += dsec(ph, n);
          ph = n;
        }
        if (spec.footprint) {
          plan_.clear();
          spec.footprint(i, plan_);
          if constexpr (kTimed) {
            const auto n = Clock::now();
            timers_.footprint += dsec(ph, n);
            ph = n;
          }
          for (const BlockAccess& a : plan_) t = memory_.access(proc, a, t, m);
          if constexpr (kTimed) {
            timers_.memory += dsec(ph, Clock::now());
            timers_.memory_accesses += static_cast<std::int64_t>(plan_.size());
          }
        }
        if (mine.range.empty()) {
          m.on_chunk(proc, mine.first, mine.range.end, mine.exec_start, t);
          if (feedback)
            sched.report({proc, mine.first, mine.range.end, mine.exec_start, t});
        }
      }

      if (!batch || !events_.leads(t, proc)) break;
    }

    if (active) {
      cur = events_.push_pop(t, proc);
    } else if (!events_.empty()) {
      cur = events_.pop();
    } else {
      draining = false;
    }
  }

  if (faulty) {
    // Whatever was never executed — a dead processor's in-flight chunk
    // plus any statically-assigned range nobody could reclaim — is the
    // loop's graceful-degradation deficit.
    const std::int64_t abandoned = spec.n - executed;
    if (abandoned > 0) m.on_abandoned(abandoned);
  }

  sched.end_loop();
}

SimResult MachineSim::run(const LoopProgram& program, Scheduler& sched, int p) {
  AFS_CHECK(p >= 1 && p <= config_.max_processors);
  AFS_CHECK(program.epochs >= 0 && program.epoch_loops != nullptr);

  SimResult result;
  MetricsFanout m(result, options_.trace);
  events_.set_cancel(options_.cancel);
  events_.set_calendar(options_.calendar_queue);
  pert_.reset(options_.perturb, p);
  memory_.reset(config_, p, &pert_, options_.memory_fast_path,
                /*warm=*/options_.epoch_batch);
  sync_.reset(config_, sched, p, &pert_);
  sched.reset_stats();
  m.on_run_begin(config_, program.name, sched.name(), p);

  timers_ = EnginePhaseTimers{};
  if (plan_.capacity() == 0) plan_.reserve(8);
  Clock::time_point run_t0{};
  if (options_.time_phases) run_t0 = Clock::now();

  Xoshiro256 jitter_rng(options_.jitter_seed);
  double now = 0.0;
  bool first_loop = true;
  const bool fault_aware = pert_.perturbs_execution();

  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      AFS_CHECK(spec.work != nullptr || (spec.work_sum && !spec.footprint));
      start_.assign(static_cast<std::size_t>(p), now);
      std::vector<double>& start = start_;
      for (int i = 0; i < p; ++i) {
        auto& s = start[static_cast<std::size_t>(i)];
        if (config_.epoch_jitter > 0.0)
          s += jitter_rng.next_double() * config_.epoch_jitter;
        if (first_loop) {
          // Start delay = one initial stall (the Table 2 experiment),
          // charged to stall_time so conservation closes over it.
          const double d = pert_.start_delay(i);
          if (d > 0.0) {
            m.on_stall(i, s, s + d);
            s += d;
          }
        }
      }
      first_loop = false;

      m.on_loop_begin(e, spec.n, p);
      run_loop(spec, sched, p, start, m);

      const double end = events_.join_time();
      if (!fault_aware) {
        for (double d : events_.completion_times()) m.on_idle(end - d);
      } else {
        // A live processor's tail is idle time; a dead processor's span
        // from death (or loop start, when it died earlier) to the join is
        // fault time, charged to stall_time so the decomposition still
        // covers P * makespan.
        const std::vector<double>& done = events_.completion_times();
        for (int i = 0; i < p; ++i) {
          const double span = end - done[static_cast<std::size_t>(i)];
          if (pert_.lost(i))
            m.on_dead_time(span);
          else
            m.on_idle(span);
        }
      }
      m.on_loop_end(e, end);
      now = end;

      // Fork/join barrier before the next loop. Dead processors do not
      // participate: their share of the span is fault time, not barrier.
      const double b = config_.barrier_base + config_.barrier_per_proc * p;
      const int lost = pert_.lost_count();
      m.on_barrier(e, b, b * (p - lost));
      if (lost > 0) m.on_dead_time(b * lost);
      now += b;
    }
  }

  result.sched_stats = sched.stats();
  m.on_run_end(now);
  if (options_.time_phases) {
    timers_.total = dsec(run_t0, Clock::now());
    result.timers = timers_;
  }
  return result;
}

}  // namespace afs
