#include "sim/machine_sim.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace afs {

MachineSim::MachineSim(MachineConfig config, SimOptions options)
    : config_(std::move(config)), options_(std::move(options)) {
  AFS_CHECK(config_.work_unit_time > 0.0);
  AFS_CHECK(config_.max_processors >= 1 && config_.max_processors <= 64);
}

double MachineSim::ideal_serial_time(const LoopProgram& program) const {
  double total = 0.0;
  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      if (spec.work_sum && !spec.footprint) {
        total += spec.work_sum(0, spec.n);
      } else {
        for (std::int64_t i = 0; i < spec.n; ++i) total += spec.work(i);
      }
    }
  }
  return total * config_.work_unit_time;
}

double MachineSim::access(int proc, const BlockAccess& a, double t,
                          SimResult& result) {
  ProcCache& cache = caches_[static_cast<std::size_t>(proc)];
  if (!cache.enabled()) return t;  // cache-less machine: cost folded into work

  const bool resident = cache.contains(a.block);
  if (resident) {
    cache.touch(a.block);
    ++result.hits;
  } else {
    // Miss: move the block over the interconnect.
    ++result.misses;
    result.units_transferred += a.size;
    const double t0 = t;
    const double occupancy = a.size * config_.transfer_unit_time;
    if (config_.interconnect == Interconnect::kSwitch) {
      t += config_.miss_latency + occupancy;
    } else {
      t = shared_link_.acquire(t, occupancy) + config_.miss_latency;
    }
    result.comm += t - t0;
    cache.insert(a.block, a.size, [&](std::int64_t evicted) {
      directory_.remove_sharer(evicted, proc);
    });
    // A block larger than the cache streams through without becoming
    // resident; only register a sharer for copies that actually exist.
    if (cache.contains(a.block)) directory_.add_sharer(a.block, proc);
  }

  if (a.write) {
    const std::uint64_t others = directory_.make_exclusive(a.block, proc);
    if (others != 0) {
      for (int q = 0; q < static_cast<int>(caches_.size()); ++q) {
        if (others & Directory::bit(q)) {
          caches_[static_cast<std::size_t>(q)].invalidate(a.block);
          ++result.invalidations;
        }
      }
      const double t0 = t;
      t += config_.invalidate_time;
      result.comm += t - t0;
    }
    // A streamed (cache-bypassing) write leaves no copy; drop the
    // directory entry we just created if the cache did not keep it.
    if (!cache.contains(a.block)) directory_.remove_sharer(a.block, proc);
  }
  return t;
}

std::vector<double> MachineSim::run_loop(const ParallelLoopSpec& spec,
                                         Scheduler& sched, int p,
                                         const std::vector<double>& start,
                                         SimResult& result) {
  sched.start_loop(spec.n, p);

  // Min-heap of (time, proc); proc id breaks ties for determinism.
  //
  // Granularity: one event per *iteration*, not per chunk. Shared
  // resources (the bus, queue locks) serialize requests in global
  // simulated-time order only if no processor's clock runs far ahead of
  // the others between events; executing a whole N/P-iteration chunk in
  // one event would let the first-processed processor reserve the bus for
  // its entire epoch and starve everyone else retroactively. Chunks whose
  // loop has no data footprint carry no shared-resource interaction and
  // are charged in one step via work_sum when available.
  using Event = std::pair<double, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  for (int i = 0; i < p; ++i) heap.emplace(start[static_cast<std::size_t>(i)], i);

  std::vector<double> done(static_cast<std::size_t>(p), 0.0);
  std::vector<IterRange> pending(static_cast<std::size_t>(p));
  std::vector<BlockAccess> accesses;
  const double central_sync =
      config_.remote_sync_time *
      (sched.central_queue_is_indexed() ? config_.modfact_sync_multiplier : 1.0);

  while (!heap.empty()) {
    auto [t, proc] = heap.top();
    heap.pop();
    IterRange& mine = pending[static_cast<std::size_t>(proc)];

    if (mine.empty()) {
      const Grab g = sched.next(proc);
      if (g.done()) {
        done[static_cast<std::size_t>(proc)] = t;
        continue;
      }
      // --- synchronization cost for the queue that was touched ---
      const double t_sync0 = t;
      switch (g.kind) {
        case GrabKind::kLocal:
          t = queue_locks_[static_cast<std::size_t>(g.queue)].acquire(
              t, config_.local_sync_time);
          ++result.local_grabs;
          break;
        case GrabKind::kRemote:
          // Victim selection probes queue load words (unsynchronized reads,
          // paper fn. 4) — all P for the paper's scan, a constant sample
          // for the randomized variant — then the victim's lock is taken.
          t += config_.probe_time * sched.victim_probe_count(p);
          t = queue_locks_[static_cast<std::size_t>(g.queue)].acquire(
              t, config_.remote_sync_time);
          ++result.remote_grabs;
          break;
        case GrabKind::kCentral:
          t = queue_locks_[static_cast<std::size_t>(p)].acquire(t, central_sync);
          ++result.central_grabs;
          break;
        case GrabKind::kStatic:
          break;  // no run-time queue access
        case GrabKind::kNone:
          AFS_CHECK_MSG(false, "non-done grab with kind kNone");
      }
      result.sync += t - t_sync0;
      result.iterations += g.range.size();

      if (!spec.footprint && spec.work_sum) {
        // Memory-less chunk: no shared-resource interaction, charge in one
        // step (this is what makes Table 2's 2e8-iteration loop tractable).
        const double w =
            spec.work_sum(g.range.begin, g.range.end) * config_.work_unit_time;
        result.busy += w;
        heap.emplace(t + w, proc);
        continue;
      }
      mine = g.range;
      heap.emplace(t, proc);
      continue;
    }

    // --- execute one iteration ---
    const std::int64_t i = mine.begin++;
    const double w = spec.work(i) * config_.work_unit_time;
    result.busy += w;
    t += w;
    if (spec.footprint) {
      accesses.clear();
      spec.footprint(i, accesses);
      for (const BlockAccess& a : accesses) t = access(proc, a, t, result);
    }
    heap.emplace(t, proc);
  }

  sched.end_loop();

  const double end = *std::max_element(done.begin(), done.end());
  for (double d : done) result.idle += end - d;
  return done;
}

SimResult MachineSim::run(const LoopProgram& program, Scheduler& sched, int p) {
  AFS_CHECK(p >= 1 && p <= config_.max_processors);
  AFS_CHECK(program.epochs >= 0 && program.epoch_loops != nullptr);

  SimResult result;
  directory_.clear();
  caches_.assign(static_cast<std::size_t>(p), ProcCache(config_.cache_capacity));
  shared_link_.reset();
  queue_locks_.assign(static_cast<std::size_t>(p) + 1, ResourceTimeline{});
  sched.reset_stats();

  Xoshiro256 jitter_rng(options_.jitter_seed);
  double now = 0.0;
  bool first_loop = true;

  for (int e = 0; e < program.epochs; ++e) {
    for (const ParallelLoopSpec& spec : program.epoch_loops(e)) {
      AFS_CHECK(spec.work != nullptr || (spec.work_sum && !spec.footprint));
      std::vector<double> start(static_cast<std::size_t>(p), now);
      for (int i = 0; i < p; ++i) {
        auto& s = start[static_cast<std::size_t>(i)];
        if (config_.epoch_jitter > 0.0)
          s += jitter_rng.next_double() * config_.epoch_jitter;
        if (first_loop && static_cast<std::size_t>(i) < options_.start_delays.size())
          s += options_.start_delays[static_cast<std::size_t>(i)];
      }
      first_loop = false;

      const std::vector<double> done = run_loop(spec, sched, p, start, result);
      now = *std::max_element(done.begin(), done.end());

      // Fork/join barrier before the next loop.
      const double b = config_.barrier_base + config_.barrier_per_proc * p;
      result.barrier += b * p;
      now += b;
    }
  }

  result.makespan = now;
  result.sched_stats = sched.stats();
  return result;
}

}  // namespace afs
