#include "sim/trace_sink.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/atomic_file.hpp"

namespace afs {
namespace {

// Minimal JSON string escaping: our identifiers are ASCII, but machine and
// program names are caller-supplied.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(path + ".tmp"), out_(&file_), final_path_(path) {
  if (!file_) throw std::runtime_error("cannot open trace file: " + path);
}

void JsonlTraceSink::finalize() {
  if (final_path_.empty()) return;
  const std::string path = std::exchange(final_path_, std::string());
  file_.flush();
  if (!file_) throw std::runtime_error("trace write failed: " + path);
  file_.close();
  commit_file_atomic(path + ".tmp", path);
}

void JsonlTraceSink::abandon() {
  if (final_path_.empty()) return;
  const std::string path = std::exchange(final_path_, std::string());
  file_.close();
  std::remove((path + ".tmp").c_str());
}

JsonlTraceSink::~JsonlTraceSink() {
  try {
    finalize();
  } catch (const std::exception& e) {
    std::cerr << "trace finalize failed: " << e.what() << "\n";
  }
}

void JsonlTraceSink::line(const std::string& body) {
  *out_ << '{' << body << "}\n";
  ++lines_;
}

void JsonlTraceSink::on_run_begin(const MachineConfig& m,
                                  const std::string& program,
                                  const std::string& scheduler, int p) {
  line("\"ev\":\"run_begin\",\"machine\":\"" + escaped(m.name) +
       "\",\"program\":\"" + escaped(program) + "\",\"scheduler\":\"" +
       escaped(scheduler) + "\",\"p\":" + std::to_string(p));
}

void JsonlTraceSink::on_loop_begin(int epoch, std::int64_t n, int p) {
  line("\"ev\":\"loop_begin\",\"epoch\":" + std::to_string(epoch) +
       ",\"n\":" + std::to_string(n) + ",\"p\":" + std::to_string(p));
}

void JsonlTraceSink::on_grab(int proc, const Grab& g, double t0, double t1) {
  line("\"ev\":\"grab\",\"proc\":" + std::to_string(proc) + ",\"kind\":\"" +
       std::string(to_string(g.kind)) + "\",\"queue\":" +
       std::to_string(g.queue) + ",\"begin\":" + std::to_string(g.range.begin) +
       ",\"end\":" + std::to_string(g.range.end) + ",\"t0\":" + num(t0) +
       ",\"t1\":" + num(t1));
}

void JsonlTraceSink::on_chunk(int proc, std::int64_t begin, std::int64_t end,
                              double t0, double t1) {
  line("\"ev\":\"chunk\",\"proc\":" + std::to_string(proc) + ",\"begin\":" +
       std::to_string(begin) + ",\"end\":" + std::to_string(end) +
       ",\"t0\":" + num(t0) + ",\"t1\":" + num(t1));
}

void JsonlTraceSink::on_miss(int proc, const BlockAccess& a, double t0,
                             double t1) {
  line("\"ev\":\"miss\",\"proc\":" + std::to_string(proc) + ",\"block\":" +
       std::to_string(a.block) + ",\"size\":" + num(a.size) + ",\"t0\":" +
       num(t0) + ",\"t1\":" + num(t1));
}

void JsonlTraceSink::on_invalidate(int proc, std::int64_t block, int copies,
                                   double t0, double t1) {
  line("\"ev\":\"inval\",\"proc\":" + std::to_string(proc) + ",\"block\":" +
       std::to_string(block) + ",\"copies\":" + std::to_string(copies) +
       ",\"t0\":" + num(t0) + ",\"t1\":" + num(t1));
}

void JsonlTraceSink::on_proc_done(int proc, double t) {
  line("\"ev\":\"done\",\"proc\":" + std::to_string(proc) + ",\"t\":" + num(t));
}

void JsonlTraceSink::on_stall(int proc, double t0, double t1) {
  line("\"ev\":\"stall\",\"proc\":" + std::to_string(proc) + ",\"t0\":" +
       num(t0) + ",\"t1\":" + num(t1));
}

void JsonlTraceSink::on_proc_lost(int proc, double t) {
  line("\"ev\":\"lost\",\"proc\":" + std::to_string(proc) + ",\"t\":" + num(t));
}

void JsonlTraceSink::on_fault_steal(int thief, int victim_queue,
                                    std::int64_t iters) {
  line("\"ev\":\"fault_steal\",\"proc\":" + std::to_string(thief) +
       ",\"queue\":" + std::to_string(victim_queue) + ",\"iters\":" +
       std::to_string(iters));
}

void JsonlTraceSink::on_abandoned(std::int64_t iters) {
  line("\"ev\":\"abandoned\",\"iters\":" + std::to_string(iters));
}

void JsonlTraceSink::on_loop_end(int epoch, double end) {
  line("\"ev\":\"loop_end\",\"epoch\":" + std::to_string(epoch) + ",\"end\":" +
       num(end));
}

void JsonlTraceSink::on_barrier(int epoch, double cost, double total) {
  line("\"ev\":\"barrier\",\"epoch\":" + std::to_string(epoch) + ",\"cost\":" +
       num(cost) + ",\"total\":" + num(total));
}

void JsonlTraceSink::on_run_end(double makespan) {
  line("\"ev\":\"run_end\",\"makespan\":" + num(makespan));
  out_->flush();
}

}  // namespace afs
