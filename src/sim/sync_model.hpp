// SyncModel: the engine's synchronization-cost model. Owns the per-queue
// lock timelines and knows what each GrabKind costs on the current machine
// under the current scheduler:
//
//  * kLocal   — the worker's own queue lock, local_sync_time held;
//  * kRemote  — victim-selection probes (unsynchronized load reads, paper
//               fn. 4) followed by the victim's lock, remote_sync_time;
//  * kCentral — the central queue lock; MOD-FACTORING-style indexed queues
//               pay remote_sync_time * modfact_sync_multiplier because the
//               worker must find its reserved chunk instead of popping the
//               head (§2.3);
//  * kStatic  — no run-time queue access, free.
//
// Lock contention emerges from the FCFS ResourceTimeline per queue: a grab
// arriving while the lock is held waits. The engine guarantees grabs are
// issued in global simulated-time order, which makes the single free-at
// timestamp per lock an exact FCFS queue.
#pragma once

#include <vector>

#include "machines/machine_config.hpp"
#include "sched/grab.hpp"
#include "sched/scheduler.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"

namespace afs {

class PerturbationModel;

class SyncModel {
 public:
  /// Prepares for a fresh run: p local queue locks plus the central-queue
  /// lock, with the per-kind costs captured from `config` and the
  /// scheduler's fixed properties (indexed central queue, probe count).
  /// `pert` (optional) scales remote/central costs during interconnect
  /// contention bursts; consulted only when bursts are configured.
  void reset(const MachineConfig& config, const Scheduler& sched, int p,
             PerturbationModel* pert = nullptr);

  /// Charges the queue operation behind grab `g` issued at time `t`;
  /// returns the time the operation completes. kStatic (and kNone) cost
  /// nothing. `g.kind != kNone` narration is the caller's job via
  /// MetricsFanout::on_grab.
  double charge(const Grab& g, double t);

  double queue_free_at(int queue) const {
    return locks_[static_cast<std::size_t>(queue)].free_at();
  }

 private:
  double local_sync_ = 0.0;
  double remote_sync_ = 0.0;
  double central_sync_ = 0.0;  // remote_sync * multiplier for indexed queues
  double probe_cost_ = 0.0;    // victim-selection probes per remote grab
  int central_lock_ = 0;       // index of the central lock (== p)

  std::vector<ResourceTimeline> locks_;  // [0..p-1] local, [p] central
  PerturbationModel* pert_ = nullptr;    // non-null only when bursts are on
};

}  // namespace afs
