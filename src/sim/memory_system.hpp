// MemorySystem: the engine's memory-hierarchy model — per-processor caches,
// the global coherence directory, and the shared interconnect — behind one
// `access()` call.
//
// The component owns no notion of scheduling or events: it is handed a
// processor, a block access and the processor's current time, charges the
// modeled cost (miss latency, serialized bus/ring occupancy, write
// invalidations), narrates what happened into the metrics layer, and
// returns the new time. See docs/SIMULATOR.md ("Memory system") for the
// cost model.
#pragma once

#include <vector>

#include "machines/machine_config.hpp"
#include "sim/cache.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class PerturbationModel;

class MemorySystem {
 public:
  /// Prepares for a fresh run on `p` processors of machine `config`: cold
  /// caches, empty directory, idle interconnect. The relevant config
  /// fields are captured so `access()` needs no config thereafter.
  /// `pert` (optional) injects per-miss latency spikes and contention-burst
  /// occupancy multipliers; it is consulted only when it actually affects
  /// memory, so the unperturbed miss path is untouched.
  void reset(const MachineConfig& config, int p,
             PerturbationModel* pert = nullptr);

  /// Charges one data access by `proc` at time `t`; returns the new time.
  double access(int proc, const BlockAccess& a, double t, MetricsFanout& m);

  /// True when the machine models caches at all (capacity > 0). When
  /// false, `access()` is the identity: the cache-less machines fold
  /// memory cost into iteration work.
  bool modeled() const { return cache_capacity_ > 0.0; }

  const ProcCache& cache(int proc) const {
    return caches_[static_cast<std::size_t>(proc)];
  }
  const Directory& directory() const { return directory_; }

 private:
  double cache_capacity_ = 0.0;
  double miss_latency_ = 0.0;
  double transfer_unit_time_ = 0.0;
  double invalidate_time_ = 0.0;
  bool serialized_link_ = true;  // bus/ring serialize; a switch does not

  Directory directory_;
  std::vector<ProcCache> caches_;
  ResourceTimeline shared_link_;
  PerturbationModel* pert_ = nullptr;  // non-null only when faults hit memory
};

}  // namespace afs
