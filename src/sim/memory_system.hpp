// MemorySystem: the engine's memory-hierarchy model — per-processor caches,
// the global coherence directory, and the shared interconnect — behind one
// `access()` call.
//
// The component owns no notion of scheduling or events: it is handed a
// processor, a block access and the processor's current time, charges the
// modeled cost (miss latency, serialized bus/ring occupancy, write
// invalidations), narrates what happened into the metrics layer, and
// returns the new time. See docs/SIMULATOR.md ("Memory system") for the
// cost model.
//
// Exclusive-residency fast path: the steady state of an affinity-scheduled
// loop is an access that hits a block the processor already owns — the
// paper's whole argument is that re-executed chunks find their data
// resident. On that path the full MSI sequence degenerates to a no-op: a
// read hit touches no directory state at all, and a write hit on an
// exclusively-owned block rewrites its own sharer mask with the value it
// already holds. `access()` therefore answers both cases from the single
// residency probe (ProcCache::access_hit_state) and skips every further
// lookup; any miss, and any write to a block not known-exclusive, falls
// back to the exact full path (`SimOptions::memory_fast_path` toggles the
// shortcut for A/B runs — results are bit-identical either way).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "machines/machine_config.hpp"
#include "sim/cache.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/perturbation.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class MemorySystem {
 public:
  /// Prepares for a fresh run on `p` processors of machine `config`: cold
  /// caches, empty directory, idle interconnect. The relevant config
  /// fields are captured so `access()` needs no config thereafter.
  /// `pert` (optional) injects per-miss latency spikes and contention-burst
  /// occupancy multipliers; it is consulted only when it actually affects
  /// memory, so the unperturbed miss path is untouched. `fast_path`
  /// enables the exclusive-residency shortcut (see the header comment);
  /// off reproduces the pre-shortcut code path instruction for
  /// instruction. `warm` (epoch batching) clears the existing per-
  /// processor caches in place — line pools and hash tables keep their
  /// capacity — instead of reallocating them per run; the simulated state
  /// is identically cold either way (hash-table capacity carries no
  /// semantics — see cache.hpp's determinism note), so results are
  /// bit-identical, and off reproduces the rebuild-per-run path exactly.
  void reset(const MachineConfig& config, int p,
             PerturbationModel* pert = nullptr, bool fast_path = true,
             bool warm = false);

  /// Charges one data access by `proc` at time `t`; returns the new time.
  /// Inline so the engine's per-iteration access loop pays no cross-TU
  /// call on the hit path.
  double access(int proc, const BlockAccess& a, double t, MetricsFanout& m) {
    ProcCache& cache = caches_[static_cast<std::size_t>(proc)];
    if (!cache.enabled()) return t;  // cache-less machine: cost in work
    if (fast_path_) {
      const ProcCache::Hit h = cache.access_hit_state(a.block);
      if (h == ProcCache::Hit::kMiss) return miss_path(proc, a, t, m);
      m.on_hit(proc, a, t);
      if (!a.write || h == ProcCache::Hit::kExclusive) return t;
      return write_upgrade(proc, a, t, m, /*resident=*/true);
    }
    // Reference path (fast path off): the exact pre-shortcut sequence.
    if (cache.access_hit(a.block)) {
      m.on_hit(proc, a, t);
      return a.write ? write_upgrade(proc, a, t, m, /*resident=*/true) : t;
    }
    return miss_path(proc, a, t, m);
  }

  /// True when the machine models caches at all (capacity > 0). When
  /// false, `access()` is the identity: the cache-less machines fold
  /// memory cost into iteration work.
  bool modeled() const { return cache_capacity_ > 0.0; }

  /// True when misses serialize on a shared bus/ring timeline (false for
  /// a point-to-point switch). The engine's horizon-batched execution
  /// keys off this.
  bool serialized_link() const { return serialized_link_; }

  const ProcCache& cache(int proc) const {
    return caches_[static_cast<std::size_t>(proc)];
  }
  const Directory& directory() const { return directory_; }

 private:
  /// The miss path: moves the block over the interconnect, inserts it
  /// (evictions update the directory), and performs the write upgrade for
  /// write misses. Defined inline below — half of a big sweep's accesses
  /// miss, so the engine TU inlines the whole MSI sequence into its access
  /// loop rather than paying a cross-TU call per miss.
  double miss_path(int proc, const BlockAccess& a, double t, MetricsFanout& m);

  /// The write upgrade: makes `proc` the exclusive owner, invalidating
  /// and charging for remote copies. `resident` says whether the writing
  /// processor actually keeps a copy (false only for streamed blocks).
  /// Inline for the same reason as miss_path.
  double write_upgrade(int proc, const BlockAccess& a, double t,
                       MetricsFanout& m, bool resident);

  double cache_capacity_ = 0.0;
  double miss_latency_ = 0.0;
  double transfer_unit_time_ = 0.0;
  double invalidate_time_ = 0.0;
  bool serialized_link_ = true;  // bus/ring serialize; a switch does not
  bool fast_path_ = true;        // exclusive-residency shortcut enabled

  Directory directory_;
  std::vector<ProcCache> caches_;
  ResourceTimeline shared_link_;
  PerturbationModel* pert_ = nullptr;  // non-null only when faults hit memory
};

inline double MemorySystem::miss_path(int proc, const BlockAccess& a, double t,
                                      MetricsFanout& m) {
  ProcCache& cache = caches_[static_cast<std::size_t>(proc)];
  // Miss: move the block over the interconnect.
  const double t0 = t;
  double occupancy = a.size * transfer_unit_time_;
  double latency = miss_latency_;
  if (pert_) {
    occupancy *= pert_->link_factor(t);
    latency += pert_->miss_spike(proc);
  }
  if (serialized_link_) {
    t = shared_link_.acquire(t, occupancy) + latency;
  } else {
    t += latency + occupancy;
  }
  m.on_miss(proc, a, t0, t);
  // A block larger than the cache streams through without becoming
  // resident; only register a sharer for copies that actually exist.
  const bool resident =
      cache.insert(a.block, a.size, [&](std::int64_t evicted) {
        directory_.remove_sharer(evicted, proc);
      });

  // Writes go straight to the upgrade: make_exclusive installs this
  // processor as the owner whether or not a directory entry existed, so
  // a preceding add_sharer would only be a redundant probe of the same
  // key.
  if (a.write) return write_upgrade(proc, a, t, m, resident);

  if (resident) {
    // Exclusivity hint maintenance (read miss): a lone sharer owns its
    // copy; if exactly one *other* processor shares the block, it may hold
    // the hint from when it was alone and just lost it (we are a second
    // sharer now). With two-plus other sharers nobody can hold the hint —
    // excl implies sole-sharer — so there is nothing to clear. No
    // simulated cost either way.
    const std::uint64_t sharers = directory_.add_sharer(a.block, proc);
    const std::uint64_t others = sharers & ~Directory::bit(proc);
    if (others == 0) {
      cache.set_exclusive_front(a.block);  // insert() just made it MRU
    } else if ((others & (others - 1)) == 0) {
      caches_[static_cast<std::size_t>(std::countr_zero(others))]
          .clear_exclusive(a.block);
    }
  }
  return t;
}

inline double MemorySystem::write_upgrade(int proc, const BlockAccess& a,
                                          double t, MetricsFanout& m,
                                          bool resident) {
  const std::uint64_t others = directory_.make_exclusive(a.block, proc);
  if (others != 0) {
    // Walk only the set sharer bits (ascending processor id, same order
    // the old full scan visited them in).
    int copies = 0;
    std::uint64_t rest = others;
    while (rest != 0) {
      const int q = std::countr_zero(rest);
      rest &= rest - 1;
      caches_[static_cast<std::size_t>(q)].invalidate(a.block);
      ++copies;
    }
    const double t0 = t;
    t += invalidate_time_;
    m.on_invalidate(proc, a.block, copies, t0, t);
  }
  if (resident) {
    // The block sits at the LRU head: every route here just touched it
    // (hit-path relink or miss-path insert), and the invalidation loop
    // above only visited *other* processors' caches.
    caches_[static_cast<std::size_t>(proc)].set_exclusive_front(a.block);
  } else {
    // A streamed (cache-bypassing) write leaves no copy; drop the
    // directory entry we just created if the cache did not keep it.
    directory_.remove_sharer(a.block, proc);
  }
  return t;
}

}  // namespace afs
