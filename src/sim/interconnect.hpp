// Shared-resource timeline for bus/ring interconnects and work-queue locks.
//
// A transfer (or lock-held critical section) occupies the resource for a
// duration; requests arriving while it is busy queue up. Because the
// simulation engine processes processors in global time order, updating a
// single "free at" timestamp yields a correct FCFS serialization — this is
// what produces the Fig. 4 bus-saturation plateau and central-queue
// convoying without any explicit queueing structures.
#pragma once

#include <algorithm>

namespace afs {

class ResourceTimeline {
 public:
  /// Occupies the resource for `duration` starting no earlier than `t`.
  /// Returns the completion time (>= t + duration).
  double acquire(double t, double duration) {
    const double start = std::max(t, free_at_);
    free_at_ = start + duration;
    return free_at_;
  }

  double free_at() const { return free_at_; }
  void reset(double t = 0.0) { free_at_ = t; }

 private:
  double free_at_ = 0.0;
};

}  // namespace afs
