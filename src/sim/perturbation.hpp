// Deterministic fault injection for the simulation engine.
//
// A PerturbationConfig (carried on SimOptions) describes four families of
// faults; PerturbationModel is the per-run state machine the engine
// consults while executing:
//
//  * start delays    — per-processor arrival offsets for the first loop of
//                      the first epoch (the Table 2 experiment, now
//                      expressed as one initial stall);
//  * transient stalls — seeded preemption intervals per processor: at
//                      iteration/chunk boundaries a processor's clock jumps
//                      by stall_duration whenever it crosses its next
//                      scheduled preemption, drawn from a per-processor
//                      xorshift stream;
//  * processor loss  — a processor dies permanently the first time its
//                      clock reaches the configured time; its in-flight
//                      chunk is abandoned, its queued work is stolen
//                      (AFS) or drained (central queues) by the others,
//                      and statically-assigned work it never grabbed is
//                      reported as abandoned_iterations;
//  * memory faults   — per-miss latency spikes (per-processor Bernoulli
//                      streams) and global interconnect contention bursts
//                      (seeded windows during which transfer occupancy and
//                      remote synchronization are multiplied).
//
// Determinism contract: every draw comes from streams derived from
// PerturbationConfig::seed, keyed by processor id (stalls, spikes) or
// generated as a fixed global window sequence (bursts). All fault decisions
// depend only on a processor's own clock trajectory or on the access
// sequence — both of which the batching fast path provably preserves — so
// a fixed seed yields bit-identical SimResults with batching on or off.
// When no perturbation is configured, the engine never consults the model
// and every result is bit-identical to a build without it.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace afs {

/// Permanent loss of processor `proc`: it executes normally until its clock
/// first reaches `time`, then never runs again (for the rest of the run,
/// epochs included).
struct ProcessorLoss {
  int proc = 0;
  double time = 0.0;
};

/// All knobs default to "off": a default-constructed config injects
/// nothing and guarantees bit-identical results to an unperturbed engine.
struct PerturbationConfig {
  /// Root seed for every fault stream (stalls, spikes; bursts).
  std::uint64_t seed = 0xfa517ULL;

  /// Extra per-processor start delays in time units, applied to the first
  /// loop of the first epoch only and accounted as stall_time.
  std::vector<double> start_delays;

  /// Transient preemption: while enabled (mean interval > 0), each
  /// processor is stalled for stall_duration roughly every
  /// stall_mean_interval time units (gap drawn uniform in
  /// [0.5, 1.5) x mean from its xorshift stream). Stalls take effect at
  /// iteration/chunk boundaries.
  double stall_mean_interval = 0.0;
  double stall_duration = 0.0;

  /// Processors lost permanently mid-run. Entries whose proc is >= the
  /// run's P are ignored (the processor is not part of that run).
  std::vector<ProcessorLoss> losses;

  /// Memory-latency spikes: each miss independently pays an extra
  /// mem_spike_latency with probability mem_spike_prob.
  double mem_spike_prob = 0.0;
  double mem_spike_latency = 0.0;

  /// Interconnect contention bursts: windows of burst_duration occur
  /// roughly every burst_mean_interval time units (same uniform gap law as
  /// stalls); during a window, transfer occupancy and remote/central
  /// synchronization costs are multiplied by burst_multiplier.
  double burst_mean_interval = 0.0;
  double burst_duration = 0.0;
  double burst_multiplier = 1.0;

  /// True when any fault family is enabled.
  bool any() const;

  /// Throws CheckFailure naming the offending field and value. `max_procs`
  /// bounds start_delays and loss processor ids.
  void validate(int max_procs) const;
};

/// Per-run fault state. Reset before each MachineSim::run; consulted by the
/// engine (stalls, losses), MemorySystem (spikes, bursts) and SyncModel
/// (bursts). All methods are cheap no-ops for disabled fault families.
class PerturbationModel {
 public:
  /// Prepares streams for a fresh run on `p` processors. `config` must
  /// outlive nothing — it is copied.
  void reset(const PerturbationConfig& config, int p);

  /// Any fault family enabled (including start delays).
  bool active() const { return active_; }
  /// Stalls or losses configured: the engine's per-iteration fault checks
  /// are needed.
  bool perturbs_execution() const { return perturbs_execution_; }
  /// Spikes or bursts configured: MemorySystem must consult the model.
  bool affects_memory() const { return affects_memory_; }
  /// Bursts configured: SyncModel must consult the model.
  bool affects_link() const { return burst_on_; }

  /// Start delay of `proc` for the first loop (0 when none configured).
  double start_delay(int proc) const {
    return static_cast<std::size_t>(proc) < config_.start_delays.size()
               ? config_.start_delays[static_cast<std::size_t>(proc)]
               : 0.0;
  }

  // ----------------------------- losses ----------------------------------

  /// True once `proc` has died (mark_lost was called).
  bool lost(int proc) const { return lost_[static_cast<std::size_t>(proc)]; }
  int lost_count() const { return lost_count_; }

  /// True when `proc` is due to die: alive, has a configured loss, and its
  /// clock `t` has reached the loss time.
  bool death_due(int proc, double t) const {
    return !lost_[static_cast<std::size_t>(proc)] &&
           t >= loss_time_[static_cast<std::size_t>(proc)];
  }

  /// Marks `proc` dead at time `t` (its recorded death time).
  void mark_lost(int proc, double t) {
    lost_[static_cast<std::size_t>(proc)] = true;
    death_time_[static_cast<std::size_t>(proc)] = t;
    ++lost_count_;
  }

  double death_time(int proc) const {
    return death_time_[static_cast<std::size_t>(proc)];
  }

  // ----------------------------- stalls ----------------------------------

  /// Applies every preemption `proc` has crossed by clock time `t`,
  /// narrating each span into `m`; returns the advanced clock. Called at
  /// iteration/chunk boundaries only, which is what keeps the injected
  /// schedule identical with batching on or off.
  double apply_stalls(int proc, double t, MetricsFanout& m);

  // -------------------------- memory faults ------------------------------

  /// Extra latency for the next miss by `proc` (draws the processor's
  /// spike stream; 0 when spikes are disabled).
  double miss_spike(int proc);

  /// Occupancy/sync multiplier at time `t`: burst_multiplier inside a
  /// contention window, 1 outside. Generates windows lazily; deterministic
  /// for any query order (windows are a fixed seeded sequence).
  double link_factor(double t);

 private:
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  double next_gap(XorShift64& rng, double mean) const {
    return mean * (0.5 + rng.next_double());
  }

  PerturbationConfig config_;
  bool active_ = false;
  bool perturbs_execution_ = false;
  bool affects_memory_ = false;
  bool stall_on_ = false;
  bool spike_on_ = false;
  bool burst_on_ = false;
  int lost_count_ = 0;

  std::vector<double> loss_time_;   // per proc; kNever when not configured
  std::vector<char> lost_;          // per proc
  std::vector<double> death_time_;  // per proc; valid when lost_
  std::vector<double> next_stall_;  // per proc: next preemption clock time
  std::vector<XorShift64> stall_rng_;
  std::vector<XorShift64> spike_rng_;

  struct BurstWindow {
    double begin, end;
  };
  std::vector<BurstWindow> bursts_;  // generated lazily, sorted by begin
  double next_burst_ = kNever;       // begin of the first ungenerated window
  XorShift64 burst_rng_{0};
};

}  // namespace afs
