// Simulated per-processor caches with a global coherence directory.
//
// Residency is tracked at block granularity (a matrix row, a vector
// slice). The protocol is a simplified write-invalidate MSI: a read miss
// fetches a copy; a write invalidates all other copies. This is exactly
// enough mechanism to produce the paper's affinity phenomena: rows stay
// resident where they were last used, neighbor reads miss only at chunk
// boundaries, and migrated iterations drag their rows across the
// interconnect.
//
// Representation (hot-path engineering, no semantic content): blocks are
// indexed with FlatMap64 (util/flat_map.hpp) and the LRU chain is an
// intrusive doubly-linked list over a slot vector with a free list —
// several residency/sharer probes happen per simulated access, and the
// straightforward unordered_map + std::list version spent ~25% of a big
// sweep's wall clock on hashing and node allocation. Each line also
// carries an exclusivity hint (excl == true implies the directory lists
// this processor as the block's sole sharer) so MemorySystem's
// exclusive-residency fast path can answer "is this write a coherence
// no-op?" from the residency probe alone, without a directory lookup.
// Determinism note: no behavior may depend on hash-table or allocator
// order — eviction order comes from the LRU chain, and invalidation order
// from the processor-id loop in MemorySystem.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace afs {

/// Global sharer directory: which processors hold a valid copy of each
/// block, as a 64-bit mask (the paper's largest machine has 64 processors).
class Directory {
 public:
  std::uint64_t sharers(std::int64_t block) const {
    const std::uint64_t* m = map_.find(block);
    return m == nullptr ? 0 : *m;
  }
  /// Registers `proc` as a sharer. Returns the resulting sharer mask so
  /// callers that need it (read-miss exclusivity maintenance) pay one map
  /// probe instead of a separate sharers() lookup.
  std::uint64_t add_sharer(std::int64_t block, int proc) {
    std::uint64_t& m = map_[block];
    m |= bit(proc);
    return m;
  }
  void remove_sharer(std::int64_t block, int proc) {
    std::uint64_t* m = map_.find(block);
    if (m == nullptr) return;
    *m &= ~bit(proc);
    if (*m == 0) map_.erase(block);
  }
  /// Makes `proc` the sole owner; returns the mask of *other* processors
  /// whose copies were invalidated.
  std::uint64_t make_exclusive(std::int64_t block, int proc) {
    std::uint64_t& m = map_[block];
    const std::uint64_t others = m & ~bit(proc);
    m = bit(proc);
    return others;
  }
  void clear() { map_.clear(); }

  static std::uint64_t bit(int proc) {
    AFS_DCHECK(proc >= 0 && proc < 64);
    return 1ULL << proc;
  }

 private:
  FlatMap64<std::uint64_t> map_;
};

/// One processor's cache: LRU over variable-size blocks, capacity in
/// transfer units. capacity <= 0 disables caching (every access misses) —
/// used for the cache-less Butterfly.
class ProcCache {
 public:
  ProcCache() = default;
  explicit ProcCache(double capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0.0; }

  bool contains(std::int64_t block) const { return index_.contains(block); }

  /// Residency-probe outcome, with the coherence state the fast path needs.
  enum class Hit : std::uint8_t {
    kMiss,       ///< not resident
    kShared,     ///< resident; other processors may hold copies
    kExclusive,  ///< resident and this processor is the sole sharer
  };

  /// The engine's hit path: one probe — if resident, marks the block
  /// most-recently used and returns true.
  bool access_hit(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    if (slot == nullptr) return false;
    move_to_front(*slot);
    return true;
  }

  /// Like access_hit (same single probe, same LRU relink) but also reports
  /// whether the resident line is exclusively owned, so a write hit on an
  /// exclusive line can skip the directory entirely. Before the index
  /// lookup it probes the two most-recently-used lines directly: loop
  /// kernels touch the same couple of blocks every iteration (pivot row +
  /// own row alternate at the front of the chain), and catching them there
  /// skips the hash probe while leaving the LRU state bit-identical.
  Hit access_hit_state(std::int64_t block) {
    if (head_ != kNil) {
      const Line& h = lines_[static_cast<std::size_t>(head_)];
      if (h.block == block)  // already MRU: move_to_front is a no-op
        return h.excl ? Hit::kExclusive : Hit::kShared;
      const std::int32_t s2 = h.next;
      if (s2 != kNil) {
        const Line& l2 = lines_[static_cast<std::size_t>(s2)];
        if (l2.block == block) {
          const bool excl = l2.excl;
          move_to_front(s2);
          return excl ? Hit::kExclusive : Hit::kShared;
        }
      }
    }
    const std::int32_t* slot = index_.find(block);
    if (slot == nullptr) return Hit::kMiss;
    move_to_front(*slot);
    return lines_[static_cast<std::size_t>(*slot)].excl ? Hit::kExclusive
                                                        : Hit::kShared;
  }

  /// Marks a resident block as exclusively owned. Caller's invariant: the
  /// directory lists this processor as the block's only sharer.
  /// Precondition: contains(block).
  void set_exclusive(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    AFS_DCHECK(slot != nullptr);
    lines_[static_cast<std::size_t>(*slot)].excl = true;
  }

  /// Marks the most-recently-used line exclusive without an index lookup.
  /// Caller's invariant: the last probe or insert on this cache touched
  /// `block` (so it sits at the LRU head) and the directory lists this
  /// processor as the block's only sharer.
  void set_exclusive_front(std::int64_t block) {
    AFS_DCHECK(head_ != kNil &&
               lines_[static_cast<std::size_t>(head_)].block == block);
    (void)block;
    lines_[static_cast<std::size_t>(head_)].excl = true;
  }

  /// Downgrades a resident block to shared (another processor gained a
  /// copy). No-op when the block is not resident here.
  void clear_exclusive(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    if (slot != nullptr) lines_[static_cast<std::size_t>(*slot)].excl = false;
  }

  /// Test/debug view of the exclusivity hint; false when not resident.
  bool exclusive(std::int64_t block) const {
    const std::int32_t* slot = index_.find(block);
    return slot != nullptr && lines_[static_cast<std::size_t>(*slot)].excl;
  }

  /// Marks the block most-recently used. Precondition: contains(block).
  void touch(std::int64_t block) {
    const bool hit = access_hit(block);
    AFS_DCHECK(hit);
    (void)hit;
  }

  /// Inserts a block, evicting LRU blocks as needed; each eviction is
  /// reported so the caller can update the directory. A block larger than
  /// the whole cache is "streamed": it can never fit, so it bypasses the
  /// cache entirely — resident blocks stay put — and is not kept.
  /// Returns whether the block became resident.
  template <typename OnEvict>
  bool insert(std::int64_t block, double size, OnEvict&& on_evict) {
    if (!enabled()) return false;
    AFS_DCHECK(!contains(block));
    if (size > capacity_) return false;  // streamed, never resident
    while (used_ + size > capacity_ && tail_ != kNil) {
      const Line& victim = lines_[static_cast<std::size_t>(tail_)];
      used_ -= victim.size;
      on_evict(victim.block);
      index_.erase(victim.block);
      unlink_tail();
    }
    const std::int32_t slot = alloc_slot();
    Line& line = lines_[static_cast<std::size_t>(slot)];
    line.block = block;
    line.size = size;
    line.excl = false;  // a fresh copy is shared until a write upgrades it
    link_front(slot);
    index_[block] = slot;
    used_ += size;
    return true;
  }

  /// Drops the block if present (coherence invalidation).
  void invalidate(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    if (slot == nullptr) return;
    const std::int32_t s = *slot;
    used_ -= lines_[static_cast<std::size_t>(s)].size;
    unlink(s);
    free_.push_back(s);
    index_.erase(block);
  }

  void clear() {
    lines_.clear();
    free_.clear();
    head_ = tail_ = kNil;
    index_.clear();
    used_ = 0.0;
  }

  double used() const { return used_; }
  double capacity() const { return capacity_; }
  std::size_t resident_blocks() const { return index_.size(); }

 private:
  static constexpr std::int32_t kNil = -1;

  struct Line {
    std::int64_t block = 0;
    double size = 0.0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
    bool excl = false;  ///< directory lists this proc as the sole sharer
  };

  std::int32_t alloc_slot() {
    if (!free_.empty()) {
      const std::int32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    lines_.emplace_back();
    return static_cast<std::int32_t>(lines_.size() - 1);
  }

  void link_front(std::int32_t s) {
    Line& line = lines_[static_cast<std::size_t>(s)];
    line.prev = kNil;
    line.next = head_;
    if (head_ != kNil) lines_[static_cast<std::size_t>(head_)].prev = s;
    head_ = s;
    if (tail_ == kNil) tail_ = s;
  }

  void unlink(std::int32_t s) {
    const Line& line = lines_[static_cast<std::size_t>(s)];
    if (line.prev != kNil)
      lines_[static_cast<std::size_t>(line.prev)].next = line.next;
    else
      head_ = line.next;
    if (line.next != kNil)
      lines_[static_cast<std::size_t>(line.next)].prev = line.prev;
    else
      tail_ = line.prev;
  }

  void unlink_tail() {
    const std::int32_t s = tail_;
    unlink(s);
    free_.push_back(s);
  }

  void move_to_front(std::int32_t s) {
    if (s == head_) return;
    unlink(s);
    link_front(s);
  }

  double capacity_ = 0.0;
  double used_ = 0.0;
  std::int32_t head_ = kNil;  // most recently used
  std::int32_t tail_ = kNil;  // least recently used
  std::vector<Line> lines_;   // slot pool; free slots tracked in free_
  std::vector<std::int32_t> free_;
  FlatMap64<std::int32_t> index_;
};

}  // namespace afs
