// Simulated per-processor caches with a global coherence directory.
//
// Residency is tracked at block granularity (a matrix row, a vector
// slice). The protocol is a simplified write-invalidate MSI: a read miss
// fetches a copy; a write invalidates all other copies. This is exactly
// enough mechanism to produce the paper's affinity phenomena: rows stay
// resident where they were last used, neighbor reads miss only at chunk
// boundaries, and migrated iterations drag their rows across the
// interconnect.
//
// Representation (hot-path engineering, no semantic content): blocks are
// indexed with FlatMap64 (util/flat_map.hpp) and the LRU chain is an
// intrusive doubly-linked list over a slot pool with a free list —
// several residency/sharer probes happen per simulated access, and the
// straightforward unordered_map + std::list version spent ~25% of a big
// sweep's wall clock on hashing and node allocation. The slot pool is
// SoA-packed: the fields the steady-state residency probe reads (block
// tag, exclusivity hint, MRU successor) live in a 16-byte hot record so
// the MRU-2 probe in access_hit_state touches one cache line, while the
// relink/evict-only fields (LRU predecessor, block size) sit in a cold
// array the hit path never loads. Build with -DAFS_CACHE_AOS=ON to
// restore the legacy array-of-structs layout — layout carries no
// semantics, so the two builds are a bit-identical A/B pair. Each line's
// exclusivity hint (excl == true implies the directory lists this
// processor as the block's sole sharer) lets MemorySystem's
// exclusive-residency fast path answer "is this write a coherence
// no-op?" from the residency probe alone, without a directory lookup.
// Determinism note: no behavior may depend on hash-table or allocator
// order — eviction order comes from the LRU chain, and invalidation order
// from the processor-id loop in MemorySystem.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace afs {

/// Global sharer directory: which processors hold a valid copy of each
/// block, as a 64-bit mask (the paper's largest machine has 64 processors).
class Directory {
 public:
  std::uint64_t sharers(std::int64_t block) const {
    const std::uint64_t* m = map_.find(block);
    return m == nullptr ? 0 : *m;
  }
  /// Registers `proc` as a sharer. Returns the resulting sharer mask so
  /// callers that need it (read-miss exclusivity maintenance) pay one map
  /// probe instead of a separate sharers() lookup.
  std::uint64_t add_sharer(std::int64_t block, int proc) {
    std::uint64_t& m = map_[block];
    m |= bit(proc);
    return m;
  }
  void remove_sharer(std::int64_t block, int proc) {
    std::uint64_t* m = map_.find(block);
    if (m == nullptr) return;
    *m &= ~bit(proc);
    if (*m == 0) map_.erase(block);
  }
  /// Makes `proc` the sole owner; returns the mask of *other* processors
  /// whose copies were invalidated.
  std::uint64_t make_exclusive(std::int64_t block, int proc) {
    std::uint64_t& m = map_[block];
    const std::uint64_t others = m & ~bit(proc);
    m = bit(proc);
    return others;
  }
  void clear() { map_.clear(); }

  static std::uint64_t bit(int proc) {
    AFS_DCHECK(proc >= 0 && proc < 64);
    return 1ULL << proc;
  }

 private:
  FlatMap64<std::uint64_t> map_;
};

/// One processor's cache: LRU over variable-size blocks, capacity in
/// transfer units. capacity <= 0 disables caching (every access misses) —
/// used for the cache-less Butterfly.
class ProcCache {
 public:
  ProcCache() = default;
  explicit ProcCache(double capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0.0; }

  bool contains(std::int64_t block) const { return index_.contains(block); }

  /// Residency-probe outcome, with the coherence state the fast path needs.
  enum class Hit : std::uint8_t {
    kMiss,       ///< not resident
    kShared,     ///< resident; other processors may hold copies
    kExclusive,  ///< resident and this processor is the sole sharer
  };

  /// The engine's hit path: one probe — if resident, marks the block
  /// most-recently used and returns true.
  bool access_hit(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    if (slot == nullptr) return false;
    move_to_front(*slot);
    return true;
  }

  /// Like access_hit (same single probe, same LRU relink) but also reports
  /// whether the resident line is exclusively owned, so a write hit on an
  /// exclusive line can skip the directory entirely. Before the index
  /// lookup it probes the two most-recently-used lines directly: loop
  /// kernels touch the same couple of blocks every iteration (pivot row +
  /// own row alternate at the front of the chain), and catching them there
  /// skips the hash probe while leaving the LRU state bit-identical. The
  /// SoA layout puts everything this probe reads — tag, hint, successor —
  /// in one 16-byte hot record per line.
  Hit access_hit_state(std::int64_t block) {
    if (head_ != kNil) {
      if (line_block(head_) == block)  // already MRU: move_to_front no-ops
        return line_excl(head_) ? Hit::kExclusive : Hit::kShared;
      const std::int32_t s2 = line_next(head_);
      if (s2 != kNil && line_block(s2) == block) {
        const bool excl = line_excl(s2);
        move_to_front(s2);
        return excl ? Hit::kExclusive : Hit::kShared;
      }
    }
    const std::int32_t* slot = index_.find(block);
    if (slot == nullptr) return Hit::kMiss;
    move_to_front(*slot);
    return line_excl(*slot) ? Hit::kExclusive : Hit::kShared;
  }

  /// Marks a resident block as exclusively owned. Caller's invariant: the
  /// directory lists this processor as the block's only sharer.
  /// Precondition: contains(block).
  void set_exclusive(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    AFS_DCHECK(slot != nullptr);
    line_excl(*slot) = true;
  }

  /// Marks the most-recently-used line exclusive without an index lookup.
  /// Caller's invariant: the last probe or insert on this cache touched
  /// `block` (so it sits at the LRU head) and the directory lists this
  /// processor as the block's only sharer.
  void set_exclusive_front(std::int64_t block) {
    AFS_DCHECK(head_ != kNil && line_block(head_) == block);
    (void)block;
    line_excl(head_) = true;
  }

  /// Downgrades a resident block to shared (another processor gained a
  /// copy). No-op when the block is not resident here.
  void clear_exclusive(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    if (slot != nullptr) line_excl(*slot) = false;
  }

  /// Test/debug view of the exclusivity hint; false when not resident.
  bool exclusive(std::int64_t block) const {
    const std::int32_t* slot = index_.find(block);
    return slot != nullptr && line_excl(*slot);
  }

  /// Marks the block most-recently used. Precondition: contains(block).
  void touch(std::int64_t block) {
    const bool hit = access_hit(block);
    AFS_DCHECK(hit);
    (void)hit;
  }

  /// Inserts a block, evicting LRU blocks as needed; each eviction is
  /// reported so the caller can update the directory. A block larger than
  /// the whole cache is "streamed": it can never fit, so it bypasses the
  /// cache entirely — resident blocks stay put — and is not kept.
  /// Returns whether the block became resident.
  template <typename OnEvict>
  bool insert(std::int64_t block, double size, OnEvict&& on_evict) {
    if (!enabled()) return false;
    AFS_DCHECK(!contains(block));
    if (size > capacity_) return false;  // streamed, never resident
    while (used_ + size > capacity_ && tail_ != kNil) {
      const std::int64_t victim = line_block(tail_);
      used_ -= line_size(tail_);
      on_evict(victim);
      index_.erase(victim);
      unlink_tail();
    }
    const std::int32_t slot = alloc_slot();
    line_block(slot) = block;
    line_size(slot) = size;
    line_excl(slot) = false;  // a fresh copy is shared until a write upgrades
    link_front(slot);
    index_[block] = slot;
    used_ += size;
    return true;
  }

  /// Drops the block if present (coherence invalidation).
  void invalidate(std::int64_t block) {
    const std::int32_t* slot = index_.find(block);
    if (slot == nullptr) return;
    const std::int32_t s = *slot;
    used_ -= line_size(s);
    unlink(s);
    free_.push_back(s);
    index_.erase(block);
  }

  /// Empties the cache in place: slot pool, free list and hash table keep
  /// their capacity (what MemorySystem's warm reset relies on), but no
  /// resident state survives — a cleared cache is indistinguishable from a
  /// freshly constructed one of the same capacity.
  void clear() {
    clear_slots();
    free_.clear();
    head_ = tail_ = kNil;
    index_.clear();
    used_ = 0.0;
  }

  double used() const { return used_; }
  double capacity() const { return capacity_; }
  std::size_t resident_blocks() const { return index_.size(); }

 private:
  static constexpr std::int32_t kNil = -1;

#if defined(AFS_CACHE_AOS)
  /// Legacy array-of-structs layout (the -DAFS_CACHE_AOS=ON A/B
  /// reference): one 32-byte record per line.
  struct Line {
    std::int64_t block = 0;
    double size = 0.0;
    std::int32_t prev = kNil;
    std::int32_t next = kNil;
    bool excl = false;  ///< directory lists this proc as the sole sharer
  };

  std::int64_t& line_block(std::int32_t s) { return lines_[idx(s)].block; }
  std::int64_t line_block(std::int32_t s) const { return lines_[idx(s)].block; }
  double& line_size(std::int32_t s) { return lines_[idx(s)].size; }
  double line_size(std::int32_t s) const { return lines_[idx(s)].size; }
  std::int32_t& line_prev(std::int32_t s) { return lines_[idx(s)].prev; }
  std::int32_t line_prev(std::int32_t s) const { return lines_[idx(s)].prev; }
  std::int32_t& line_next(std::int32_t s) { return lines_[idx(s)].next; }
  std::int32_t line_next(std::int32_t s) const { return lines_[idx(s)].next; }
  bool& line_excl(std::int32_t s) { return lines_[idx(s)].excl; }
  bool line_excl(std::int32_t s) const { return lines_[idx(s)].excl; }

  std::size_t pool_size() const { return lines_.size(); }
  void grow_pool() { lines_.emplace_back(); }
  void clear_slots() { lines_.clear(); }

  std::vector<Line> lines_;  // slot pool; free slots tracked in free_
#else
  /// SoA slot pool: the residency probe's working set (tag, MRU
  /// successor, exclusivity hint) packs into 16 bytes per line; the
  /// relink/evict-only fields live apart so the hit path never loads them.
  struct LineHot {
    std::int64_t block = 0;
    std::int32_t next = kNil;
    bool excl = false;  ///< directory lists this proc as the sole sharer
  };
  struct LineCold {
    double size = 0.0;
    std::int32_t prev = kNil;
  };
  static_assert(sizeof(LineHot) == 16, "hot line metadata must stay packed");

  std::int64_t& line_block(std::int32_t s) { return hot_[idx(s)].block; }
  std::int64_t line_block(std::int32_t s) const { return hot_[idx(s)].block; }
  double& line_size(std::int32_t s) { return cold_[idx(s)].size; }
  double line_size(std::int32_t s) const { return cold_[idx(s)].size; }
  std::int32_t& line_prev(std::int32_t s) { return cold_[idx(s)].prev; }
  std::int32_t line_prev(std::int32_t s) const { return cold_[idx(s)].prev; }
  std::int32_t& line_next(std::int32_t s) { return hot_[idx(s)].next; }
  std::int32_t line_next(std::int32_t s) const { return hot_[idx(s)].next; }
  bool& line_excl(std::int32_t s) { return hot_[idx(s)].excl; }
  bool line_excl(std::int32_t s) const { return hot_[idx(s)].excl; }

  std::size_t pool_size() const { return hot_.size(); }
  void grow_pool() {
    hot_.emplace_back();
    cold_.emplace_back();
  }
  void clear_slots() {
    hot_.clear();
    cold_.clear();
  }

  std::vector<LineHot> hot_;    // slot pool, probe-path fields
  std::vector<LineCold> cold_;  // slot pool, relink/evict-only fields
#endif

  static std::size_t idx(std::int32_t s) { return static_cast<std::size_t>(s); }

  std::int32_t alloc_slot() {
    if (!free_.empty()) {
      const std::int32_t s = free_.back();
      free_.pop_back();
      return s;
    }
    grow_pool();
    return static_cast<std::int32_t>(pool_size() - 1);
  }

  void link_front(std::int32_t s) {
    line_prev(s) = kNil;
    line_next(s) = head_;
    if (head_ != kNil) line_prev(head_) = s;
    head_ = s;
    if (tail_ == kNil) tail_ = s;
  }

  void unlink(std::int32_t s) {
    const std::int32_t prev = line_prev(s);
    const std::int32_t next = line_next(s);
    if (prev != kNil)
      line_next(prev) = next;
    else
      head_ = next;
    if (next != kNil)
      line_prev(next) = prev;
    else
      tail_ = prev;
  }

  void unlink_tail() {
    const std::int32_t s = tail_;
    unlink(s);
    free_.push_back(s);
  }

  void move_to_front(std::int32_t s) {
    if (s == head_) return;
    unlink(s);
    link_front(s);
  }

  double capacity_ = 0.0;
  double used_ = 0.0;
  std::int32_t head_ = kNil;  // most recently used
  std::int32_t tail_ = kNil;  // least recently used
  std::vector<std::int32_t> free_;
  FlatMap64<std::int32_t> index_;
};

}  // namespace afs
