// Simulated per-processor caches with a global coherence directory.
//
// Residency is tracked at block granularity (a matrix row, a vector
// slice). The protocol is a simplified write-invalidate MSI: a read miss
// fetches a copy; a write invalidates all other copies. This is exactly
// enough mechanism to produce the paper's affinity phenomena: rows stay
// resident where they were last used, neighbor reads miss only at chunk
// boundaries, and migrated iterations drag their rows across the
// interconnect.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "util/check.hpp"

namespace afs {

/// Global sharer directory: which processors hold a valid copy of each
/// block, as a 64-bit mask (the paper's largest machine has 64 processors).
class Directory {
 public:
  std::uint64_t sharers(std::int64_t block) const {
    const auto it = map_.find(block);
    return it == map_.end() ? 0 : it->second;
  }
  void add_sharer(std::int64_t block, int proc) {
    map_[block] |= bit(proc);
  }
  void remove_sharer(std::int64_t block, int proc) {
    const auto it = map_.find(block);
    if (it == map_.end()) return;
    it->second &= ~bit(proc);
    if (it->second == 0) map_.erase(it);
  }
  /// Makes `proc` the sole owner; returns the mask of *other* processors
  /// whose copies were invalidated.
  std::uint64_t make_exclusive(std::int64_t block, int proc) {
    std::uint64_t& m = map_[block];
    const std::uint64_t others = m & ~bit(proc);
    m = bit(proc);
    return others;
  }
  void clear() { map_.clear(); }

  static std::uint64_t bit(int proc) {
    AFS_DCHECK(proc >= 0 && proc < 64);
    return 1ULL << proc;
  }

 private:
  std::unordered_map<std::int64_t, std::uint64_t> map_;
};

/// One processor's cache: LRU over variable-size blocks, capacity in
/// transfer units. capacity <= 0 disables caching (every access misses) —
/// used for the cache-less Butterfly.
class ProcCache {
 public:
  ProcCache() = default;
  explicit ProcCache(double capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0.0; }

  bool contains(std::int64_t block) const {
    return index_.find(block) != index_.end();
  }

  /// Marks the block most-recently used. Precondition: contains(block).
  void touch(std::int64_t block) {
    const auto it = index_.find(block);
    AFS_DCHECK(it != index_.end());
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  /// Inserts a block, evicting LRU blocks as needed; each eviction is
  /// reported so the caller can update the directory. A block larger than
  /// the whole cache is "streamed": it evicts everything and is not kept.
  void insert(std::int64_t block, double size,
              const std::function<void(std::int64_t)>& on_evict) {
    if (!enabled()) return;
    AFS_DCHECK(!contains(block));
    while (used_ + size > capacity_ && !lru_.empty()) {
      const auto& victim = lru_.back();
      used_ -= victim.size;
      on_evict(victim.block);
      index_.erase(victim.block);
      lru_.pop_back();
    }
    if (size > capacity_) return;  // streamed, never resident
    lru_.push_front(Line{block, size});
    index_[block] = lru_.begin();
    used_ += size;
  }

  /// Drops the block if present (coherence invalidation).
  void invalidate(std::int64_t block) {
    const auto it = index_.find(block);
    if (it == index_.end()) return;
    used_ -= it->second->size;
    lru_.erase(it->second);
    index_.erase(it);
  }

  void clear() {
    lru_.clear();
    index_.clear();
    used_ = 0.0;
  }

  double used() const { return used_; }
  double capacity() const { return capacity_; }
  std::size_t resident_blocks() const { return index_.size(); }

 private:
  struct Line {
    std::int64_t block;
    double size;
  };
  double capacity_ = 0.0;
  double used_ = 0.0;
  std::list<Line> lru_;  // front = most recently used
  std::unordered_map<std::int64_t, std::list<Line>::iterator> index_;
};

}  // namespace afs
