#include "sim/perturbation.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace afs {
namespace {

/// Stream seed for (root seed, salt): every processor stream and the burst
/// stream get decorrelated single-word states via SplitMix64.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t salt) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1)));
  return sm.next();
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

bool PerturbationConfig::any() const {
  return !start_delays.empty() || stall_mean_interval > 0.0 ||
         !losses.empty() || mem_spike_prob > 0.0 ||
         burst_mean_interval > 0.0;
}

void PerturbationConfig::validate(int max_procs) const {
  AFS_CHECK_MSG(static_cast<int>(start_delays.size()) <= max_procs,
                "PerturbationConfig.start_delays has "
                    << start_delays.size() << " entries for a machine of "
                    << max_procs << " processors");
  for (std::size_t i = 0; i < start_delays.size(); ++i)
    AFS_CHECK_MSG(finite_nonneg(start_delays[i]),
                  "PerturbationConfig.start_delays[" << i
                      << "] must be finite and >= 0 (got " << start_delays[i]
                      << ")");
  AFS_CHECK_MSG(finite_nonneg(stall_mean_interval),
                "PerturbationConfig.stall_mean_interval must be finite and "
                "    >= 0 (got " << stall_mean_interval << ")");
  if (stall_mean_interval > 0.0)
    AFS_CHECK_MSG(std::isfinite(stall_duration) && stall_duration > 0.0,
                  "PerturbationConfig.stall_duration must be positive when "
                  "stalls are enabled (got " << stall_duration << ")");
  for (std::size_t i = 0; i < losses.size(); ++i) {
    AFS_CHECK_MSG(losses[i].proc >= 0 && losses[i].proc < max_procs,
                  "PerturbationConfig.losses[" << i << "].proc = "
                      << losses[i].proc << " out of range [0, " << max_procs
                      << ")");
    AFS_CHECK_MSG(finite_nonneg(losses[i].time),
                  "PerturbationConfig.losses[" << i
                      << "].time must be finite and >= 0 (got "
                      << losses[i].time << ")");
  }
  AFS_CHECK_MSG(std::isfinite(mem_spike_prob) && mem_spike_prob >= 0.0 &&
                    mem_spike_prob <= 1.0,
                "PerturbationConfig.mem_spike_prob must be in [0, 1] (got "
                    << mem_spike_prob << ")");
  if (mem_spike_prob > 0.0)
    AFS_CHECK_MSG(finite_nonneg(mem_spike_latency),
                  "PerturbationConfig.mem_spike_latency must be finite and "
                  ">= 0 (got " << mem_spike_latency << ")");
  AFS_CHECK_MSG(finite_nonneg(burst_mean_interval),
                "PerturbationConfig.burst_mean_interval must be finite and "
                ">= 0 (got " << burst_mean_interval << ")");
  if (burst_mean_interval > 0.0) {
    AFS_CHECK_MSG(std::isfinite(burst_duration) && burst_duration > 0.0,
                  "PerturbationConfig.burst_duration must be positive when "
                  "bursts are enabled (got " << burst_duration << ")");
    AFS_CHECK_MSG(std::isfinite(burst_multiplier) && burst_multiplier >= 1.0,
                  "PerturbationConfig.burst_multiplier must be >= 1 (got "
                      << burst_multiplier << ")");
  }
}

void PerturbationModel::reset(const PerturbationConfig& config, int p) {
  config_ = config;
  stall_on_ = config_.stall_mean_interval > 0.0;
  spike_on_ = config_.mem_spike_prob > 0.0;
  burst_on_ = config_.burst_mean_interval > 0.0;
  active_ = config_.any();
  perturbs_execution_ = stall_on_ || !config_.losses.empty();
  affects_memory_ = spike_on_ || burst_on_;
  lost_count_ = 0;

  const std::size_t n = static_cast<std::size_t>(p);
  loss_time_.assign(n, kNever);
  lost_.assign(n, 0);
  death_time_.assign(n, kNever);
  for (const ProcessorLoss& l : config_.losses)
    if (l.proc < p)
      loss_time_[static_cast<std::size_t>(l.proc)] =
          std::min(loss_time_[static_cast<std::size_t>(l.proc)], l.time);

  next_stall_.assign(n, kNever);
  stall_rng_.clear();
  spike_rng_.clear();
  if (stall_on_ || spike_on_) {
    stall_rng_.reserve(n);
    spike_rng_.reserve(n);
    for (int i = 0; i < p; ++i) {
      stall_rng_.emplace_back(stream_seed(config_.seed, 2 * i));
      spike_rng_.emplace_back(stream_seed(config_.seed, 2 * i + 1));
      if (stall_on_)
        next_stall_[static_cast<std::size_t>(i)] =
            next_gap(stall_rng_.back(), config_.stall_mean_interval);
    }
  }

  bursts_.clear();
  next_burst_ = kNever;
  if (burst_on_) {
    burst_rng_ = XorShift64(stream_seed(config_.seed, 0x10000));
    next_burst_ = next_gap(burst_rng_, config_.burst_mean_interval);
  }
}

double PerturbationModel::apply_stalls(int proc, double t, MetricsFanout& m) {
  if (!stall_on_) return t;
  double& next = next_stall_[static_cast<std::size_t>(proc)];
  while (next <= t) {
    const double d = config_.stall_duration;
    m.on_stall(proc, t, t + d);
    t += d;
    // Reschedule from the post-stall clock: preemptions recur per unit of
    // the processor's own elapsed time, so a long uninterrupted wait does
    // not bank a burst of catch-up stalls.
    next = t + next_gap(stall_rng_[static_cast<std::size_t>(proc)],
                        config_.stall_mean_interval);
  }
  return t;
}

double PerturbationModel::miss_spike(int proc) {
  if (!spike_on_) return 0.0;
  return spike_rng_[static_cast<std::size_t>(proc)].next_double() <
                 config_.mem_spike_prob
             ? config_.mem_spike_latency
             : 0.0;
}

double PerturbationModel::link_factor(double t) {
  if (!burst_on_) return 1.0;
  // Windows are a fixed seeded sequence in simulated time; generate them up
  // to t. The vector's contents depend only on the largest t queried so
  // far, never on query order, so any interleaving of memory and sync
  // queries sees the same schedule.
  while (next_burst_ <= t) {
    const double b = next_burst_;
    bursts_.push_back({b, b + config_.burst_duration});
    next_burst_ = b + config_.burst_duration +
                  next_gap(burst_rng_, config_.burst_mean_interval);
  }
  // Membership test: the last window starting at or before t.
  auto it = std::upper_bound(
      bursts_.begin(), bursts_.end(), t,
      [](double v, const BurstWindow& w) { return v < w.begin; });
  if (it == bursts_.begin()) return 1.0;
  --it;
  return t < it->end ? config_.burst_multiplier : 1.0;
}

}  // namespace afs
