// EventCore: the deterministic heart of the simulation engine — a min-heap
// of (time, processor) events plus the per-processor completion clocks of
// the loop in flight.
//
// Determinism contract: events are totally ordered by (time, processor-id),
// so a given event population always drains in the same order regardless
// of insertion order. Every layered component above this one (memory
// system, sync model, metrics) relies on that total order.
//
// Batching fast path: `leads(t, proc)` answers "if (t, proc) were pushed
// now, would it be popped next?". When true, the engine may keep executing
// that processor inline — the next heap round-trip would hand control
// straight back to it — which coalesces consecutive iterations of a chunk
// into one event without perturbing the serialization order. See
// docs/SIMULATOR.md ("Iteration batching") for the exactness argument.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/cancel.hpp"
#include "util/check.hpp"

namespace afs {

class EventCore {
 public:
  /// (time, processor); min-heap order with processor id breaking ties.
  using Event = std::pair<double, int>;

  /// Attaches a cooperative cancellation token (not owned; null detaches).
  /// Every pop() polls it and throws CancelledError once it fires — the
  /// deadline/abort hook the sweep runner uses to bound a cell's wall
  /// clock without touching simulated state.
  void set_cancel(const CancelToken* token) { cancel_ = token; }

  /// Starts a new loop: one event per processor at its start time, and all
  /// completion clocks cleared.
  void reset(const std::vector<double>& start) {
    heap_.clear();
    heap_.reserve(start.size());
    for (std::size_t i = 0; i < start.size(); ++i)
      heap_.emplace_back(start[i], static_cast<int>(i));
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    done_.assign(start.size(), 0.0);
  }

  /// Fault-aware reset: processor `i` joins the loop only when `alive[i]`;
  /// a dead processor never gets an event and its completion clock is
  /// pinned at its start time (it contributes nothing past its death).
  void reset(const std::vector<double>& start, const std::vector<char>& alive) {
    AFS_DCHECK(alive.size() == start.size());
    heap_.clear();
    heap_.reserve(start.size());
    done_.assign(start.size(), 0.0);
    for (std::size_t i = 0; i < start.size(); ++i) {
      if (alive[i])
        heap_.emplace_back(start[i], static_cast<int>(i));
      else
        done_[i] = start[i];
    }
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Removes and returns the globally earliest event. Throws
  /// CancelledError when an attached cancellation token has fired.
  Event pop() {
    AFS_DCHECK(!heap_.empty());
    if (cancel_ != nullptr && cancel_->cancelled())
      throw CancelledError(
          "simulation cancelled at event boundary (deadline or sweep abort)");
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

  void push(double t, int proc) {
    heap_.emplace_back(t, proc);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Fused push-then-pop: inserts (t, proc) and removes the globally
  /// earliest event in one motion. Exactly equivalent to push() followed
  /// by pop() — the heap holds the same event multiset afterwards, and
  /// (time, processor-id) is a strict total order, so every later pop
  /// drains identically — but costs at most one top-down sift instead of
  /// a sift-up plus a full pop. This is the engine's steady-state heap
  /// operation: a processor that no longer leads swaps itself for the
  /// current leader. Polls the cancellation token exactly like pop().
  Event push_pop(double t, int proc) {
    if (cancel_ != nullptr && cancel_->cancelled())
      throw CancelledError(
          "simulation cancelled at event boundary (deadline or sweep abort)");
    const Event e(t, proc);
    if (heap_.empty() || !(heap_.front() < e)) return e;
    const Event out = heap_.front();
    sift_down_from_root(e);
    return out;
  }

  /// True when a processor at time `t` would still be popped before every
  /// queued event — i.e. it may continue executing without a heap
  /// round-trip. (`proc` is not in the heap when this is asked.)
  bool leads(double t, int proc) const {
    if (heap_.empty()) return true;
    const Event& top = heap_.front();
    return t < top.first || (t == top.first && proc < top.second);
  }

  /// The earliest queued event — the other-processor horizon an inline
  /// execution run must not cross. Valid while the heap is untouched (an
  /// inline run neither pushes nor pops, so the engine may hoist this out
  /// of its iteration loop). Precondition: !empty().
  const Event& top() const {
    AFS_DCHECK(!heap_.empty());
    return heap_.front();
  }

  /// Records that `proc` drained the scheduler at time `t`.
  void finish(int proc, double t) {
    done_[static_cast<std::size_t>(proc)] = t;
  }

  /// Per-processor completion times of the finished loop.
  const std::vector<double>& completion_times() const { return done_; }

  /// The loop's join time: the latest completion clock.
  double join_time() const {
    AFS_DCHECK(!done_.empty());
    return *std::max_element(done_.begin(), done_.end());
  }

 private:
  /// Places `e` at the root and restores min-heap order top-down,
  /// maintaining the same parent<=child invariant the std::*_heap calls
  /// keep (min-heap under operator<).
  void sift_down_from_root(const Event& e) {
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t c = 2 * i + 1;
      if (c >= n) break;
      if (c + 1 < n && heap_[c + 1] < heap_[c]) ++c;
      if (!(heap_[c] < e)) break;
      heap_[i] = heap_[c];
      i = c;
    }
    heap_[i] = e;
  }

  std::vector<Event> heap_;   // binary min-heap via std::*_heap
  std::vector<double> done_;  // completion clock per processor
  const CancelToken* cancel_ = nullptr;  // not owned; see set_cancel()
};

}  // namespace afs
