// EventCore: the deterministic heart of the simulation engine — the
// pending (time, processor) events plus the per-processor completion
// clocks of the loop in flight.
//
// Determinism contract: events are totally ordered by (time, processor-id),
// so a given event population always drains in the same order regardless
// of insertion order. Every layered component above this one (memory
// system, sync model, metrics) relies on that total order.
//
// Two interchangeable representations implement that contract:
//
//   * Calendar ring (default): the events live fully sorted in a circular
//     buffer — the head slot is the rolling "now" bucket, later slots hold
//     later times. The engine's steady state is a processor finishing a
//     constant-cost iteration: its new event time is >= every queued event,
//     so it lands in the tail bucket in O(1) and pops from the head bucket
//     in O(1) — no sift at all. Irregular costs and perturbed runs fall
//     back to the sorted path: a backward insertion scan from the tail
//     that shifts at most the events the new one overtakes (the queue
//     holds at most one event per processor, so the scan is bounded by P
//     and in practice touches a slot or two). Because the ring is *fully
//     sorted* at all times, the drain order is the (time, processor-id)
//     total order by construction — exactness needs no further argument.
//
//   * Binary heap (reference): the pre-calendar std::*_heap implementation,
//     kept verbatim behind set_calendar(false) for A/B runs and for the
//     randomized equivalence test (tests/sim/event_queue_property_test.cpp)
//     that drains both representations through millions of mixed ops and
//     asserts bit-identical sequences.
//
// Batching fast path: `leads(t, proc)` answers "if (t, proc) were pushed
// now, would it be popped next?". When true, the engine may keep executing
// that processor inline — the next queue round-trip would hand control
// straight back to it — which coalesces consecutive iterations of a chunk
// into one event without perturbing the serialization order. See
// docs/SIMULATOR.md ("Iteration batching" and "Event queue") for the
// exactness arguments.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/cancel.hpp"
#include "util/check.hpp"

namespace afs {

class EventCore {
 public:
  /// (time, processor); min order with processor id breaking ties.
  using Event = std::pair<double, int>;

  /// Attaches a cooperative cancellation token (not owned; null detaches).
  /// Every pop() polls it and throws CancelledError once it fires — the
  /// deadline/abort hook the sweep runner uses to bound a cell's wall
  /// clock without touching simulated state.
  void set_cancel(const CancelToken* token) { cancel_ = token; }

  /// Selects the representation: calendar ring (true, default) or the
  /// reference binary heap. Takes effect at the next reset(); never switch
  /// mid-drain. Both produce bit-identical event sequences — the toggle
  /// exists for A/B runs (SimOptions::calendar_queue).
  void set_calendar(bool on) { calendar_ = on; }
  bool calendar() const { return calendar_; }

  /// Starts a new loop: one event per processor at its start time, and all
  /// completion clocks cleared.
  void reset(const std::vector<double>& start) {
    done_.assign(start.size(), 0.0);
    if (calendar_) {
      ring_reset(start.size());
      for (std::size_t i = 0; i < start.size(); ++i)
        ring_[i] = Event(start[i], static_cast<int>(i));
      count_ = start.size();
      std::sort(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_));
      return;
    }
    heap_.clear();
    heap_.reserve(start.size());
    for (std::size_t i = 0; i < start.size(); ++i)
      heap_.emplace_back(start[i], static_cast<int>(i));
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Fault-aware reset: processor `i` joins the loop only when `alive[i]`;
  /// a dead processor never gets an event and its completion clock is
  /// pinned at its start time (it contributes nothing past its death).
  void reset(const std::vector<double>& start, const std::vector<char>& alive) {
    AFS_DCHECK(alive.size() == start.size());
    done_.assign(start.size(), 0.0);
    if (calendar_) {
      ring_reset(start.size());
      count_ = 0;
      for (std::size_t i = 0; i < start.size(); ++i) {
        if (alive[i])
          ring_[count_++] = Event(start[i], static_cast<int>(i));
        else
          done_[i] = start[i];
      }
      std::sort(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(count_));
      return;
    }
    heap_.clear();
    heap_.reserve(start.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
      if (alive[i])
        heap_.emplace_back(start[i], static_cast<int>(i));
      else
        done_[i] = start[i];
    }
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const { return calendar_ ? count_ == 0 : heap_.empty(); }
  std::size_t size() const { return calendar_ ? count_ : heap_.size(); }

  /// Removes and returns the globally earliest event. Throws
  /// CancelledError when an attached cancellation token has fired.
  Event pop() {
    AFS_DCHECK(!empty());
    poll_cancel();
    if (calendar_) {
      const Event e = ring_[head_];
      head_ = (head_ + 1) & mask_;
      --count_;
      return e;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

  void push(double t, int proc) {
    if (calendar_) {
      ring_insert(Event(t, proc));
      return;
    }
    heap_.emplace_back(t, proc);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Fused push-then-pop: inserts (t, proc) and removes the globally
  /// earliest event in one motion. Exactly equivalent to push() followed
  /// by pop() — the queue holds the same event multiset afterwards, and
  /// (time, processor-id) is a strict total order, so every later pop
  /// drains identically. This is the engine's steady-state queue
  /// operation: a processor that no longer leads swaps itself for the
  /// current leader. Polls the cancellation token exactly like pop().
  ///
  /// Tie-break parity: the keep-running decision here must be *exactly*
  /// the leads() predicate the inline-batching loop uses, or a same-time
  /// different-processor tie could drain in a different order depending on
  /// which path asked. The two predicates differ only on e == front —
  /// two queued events with identical (time, processor) — which the
  /// engine never creates (each processor has at most one event in
  /// flight); the DCHECKs pin the t == top().first boundary.
  Event push_pop(double t, int proc) {
    poll_cancel();
    const Event e(t, proc);
    if (calendar_) {
      if (count_ == 0 || !(ring_[head_] < e)) {
        // Keeping e is correct iff e still leads — or ties the front
        // *exactly*, in which case swapping e for the identical front
        // event is unobservable. The engine itself never queues an exact
        // (time, processor) duplicate.
        AFS_DCHECK(count_ == 0 || leads(t, proc) || e == ring_[head_]);
        return e;
      }
      AFS_DCHECK(!leads(t, proc));
      const Event out = ring_[head_];
      head_ = (head_ + 1) & mask_;
      --count_;
      ring_insert(e);
      return out;
    }
    if (heap_.empty() || !(heap_.front() < e)) {
      AFS_DCHECK(heap_.empty() || leads(t, proc) || e == heap_.front());
      return e;
    }
    AFS_DCHECK(!leads(t, proc));
    const Event out = heap_.front();
    sift_down_from_root(e);
    return out;
  }

  /// True when a processor at time `t` would still be popped before every
  /// queued event — i.e. it may continue executing without a queue
  /// round-trip. (`proc` is not in the queue when this is asked.)
  bool leads(double t, int proc) const {
    if (empty()) return true;
    const Event& front = top();
    return t < front.first || (t == front.first && proc < front.second);
  }

  /// The earliest queued event — the other-processor horizon an inline
  /// execution run must not cross. Valid while the queue is untouched (an
  /// inline run neither pushes nor pops, so the engine may hoist this out
  /// of its iteration loop). Precondition: !empty().
  const Event& top() const {
    AFS_DCHECK(!empty());
    return calendar_ ? ring_[head_] : heap_.front();
  }

  /// Records that `proc` drained the scheduler at time `t`.
  void finish(int proc, double t) {
    done_[static_cast<std::size_t>(proc)] = t;
  }

  /// Per-processor completion times of the finished loop.
  const std::vector<double>& completion_times() const { return done_; }

  /// The loop's join time: the latest completion clock.
  double join_time() const {
    AFS_DCHECK(!done_.empty());
    return *std::max_element(done_.begin(), done_.end());
  }

 private:
  void poll_cancel() const {
    if (cancel_ != nullptr && cancel_->cancelled())
      throw CancelledError(
          "simulation cancelled at event boundary (deadline or sweep abort)");
  }

  // ---- calendar ring ----------------------------------------------------

  /// Sizes the ring for `n` starting events (power-of-two capacity so the
  /// head/tail indices wrap with a mask) and rewinds it. Capacity is kept
  /// across resets — a warmed core re-runs allocation-free.
  void ring_reset(std::size_t n) {
    const std::size_t cap = std::bit_ceil(n < 2 ? std::size_t{2} : n);
    if (ring_.size() < cap) ring_.resize(cap);
    mask_ = ring_.size() - 1;
    head_ = 0;
    count_ = 0;
  }

  /// Sorted insert. The same-cost steady state — `e` at or past every
  /// queued event — appends to the tail bucket without entering the loop;
  /// anything earlier takes the sorted path, shifting exactly the events
  /// it overtakes one slot right. Equal events stay in insertion order,
  /// which for equal (time, proc) keys is indistinguishable anyway.
  void ring_insert(const Event& e) {
    if (count_ == ring_.size()) ring_grow();
    std::size_t idx = (head_ + count_) & mask_;
    std::size_t remaining = count_;
    while (remaining > 0) {
      const std::size_t prev = (idx + mask_) & mask_;
      if (!(e < ring_[prev])) break;
      ring_[idx] = ring_[prev];
      idx = prev;
      --remaining;
    }
    ring_[idx] = e;
    ++count_;
  }

  /// Doubles the ring, linearizing the live events to the front. Only
  /// reachable through push() beyond the reset population (the engine
  /// never does; tests may).
  void ring_grow() {
    const std::size_t cap = ring_.empty() ? 16 : ring_.size() * 2;
    std::vector<Event> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i)
      bigger[i] = ring_[(head_ + i) & mask_];
    ring_ = std::move(bigger);
    mask_ = cap - 1;
    head_ = 0;
  }

  // ---- reference binary heap --------------------------------------------

  /// Places `e` at the root and restores min-heap order top-down,
  /// maintaining the same parent<=child invariant the std::*_heap calls
  /// keep (min-heap under operator<).
  void sift_down_from_root(const Event& e) {
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t c = 2 * i + 1;
      if (c >= n) break;
      if (c + 1 < n && heap_[c + 1] < heap_[c]) ++c;
      if (!(heap_[c] < e)) break;
      heap_[i] = heap_[c];
      i = c;
    }
    heap_[i] = e;
  }

  bool calendar_ = true;      // representation toggle; see set_calendar()
  std::vector<Event> ring_;   // sorted circular buffer (power-of-two size)
  std::size_t mask_ = 0;      // ring_.size() - 1
  std::size_t head_ = 0;      // index of the earliest event
  std::size_t count_ = 0;     // live events in the ring
  std::vector<Event> heap_;   // binary min-heap via std::*_heap (reference)
  std::vector<double> done_;  // completion clock per processor
  const CancelToken* cancel_ = nullptr;  // not owned; see set_cancel()
};

}  // namespace afs
