// Aggregate metrics produced by one simulator run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sched/stats.hpp"

namespace afs {

/// Host wall-clock phase breakdown of one engine run, in seconds.
/// Collected only when SimOptions::time_phases is set; all-zero otherwise.
/// This measures the simulator itself, not the simulated machine: the
/// fields are excluded from sweep checkpoints and from every determinism
/// comparison (a timed run still produces bit-identical simulated
/// results). The instrumentation inflates exactly the phases it brackets,
/// so read the *fractions*, not the absolute sums.
struct EnginePhaseTimers {
  double total = 0.0;      ///< MachineSim::run wall clock
  double scheduler = 0.0;  ///< Scheduler::next + SyncModel::charge (grabs)
  double work = 0.0;       ///< work() cost-function calls + busy accounting
  double footprint = 0.0;  ///< footprint() calls filling the access plan
  double memory = 0.0;     ///< MemorySystem::access
  std::int64_t memory_accesses = 0;  ///< access() calls timed into `memory`

  bool collected() const { return total > 0.0; }

  /// Event-heap and engine-control time: everything `total` covers that
  /// no bracketed phase explains. Meaningful only when collected().
  double event_core_other() const {
    return total - scheduler - work - footprint - memory;
  }

  EnginePhaseTimers& operator+=(const EnginePhaseTimers& o) {
    total += o.total;
    scheduler += o.scheduler;
    work += o.work;
    footprint += o.footprint;
    memory += o.memory;
    memory_accesses += o.memory_accesses;
    return *this;
  }
};

struct SimResult {
  /// Total simulated time across all epochs and barriers (time units).
  double makespan = 0.0;

  // Time decomposition, summed over processors (so busy/P ~ useful time
  // per processor). busy + sync + comm + idle + barrier ~ P * makespan.
  double busy = 0.0;     ///< executing iterations
  double sync = 0.0;     ///< waiting for + operating on work-queue locks
  double comm = 0.0;     ///< waiting for the interconnect + miss latency
  double idle = 0.0;     ///< finished early, waiting at the epoch join
  double barrier = 0.0;  ///< fork/join overhead itself
  double stall_time = 0.0;  ///< injected faults: delays, preemptions, loss

  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t invalidations = 0;
  double units_transferred = 0.0;  ///< transfer units moved over the interconnect

  std::int64_t local_grabs = 0;
  std::int64_t remote_grabs = 0;   ///< AFS steals
  std::int64_t central_grabs = 0;
  std::int64_t iterations = 0;

  // Fault-injection accounting (all zero when no PerturbationConfig is
  // active; see src/sim/perturbation.hpp).
  std::int64_t lost_processor_count = 0;  ///< processors that died mid-run
  std::int64_t stolen_under_fault = 0;    ///< iterations drained from a dead
                                          ///< processor's queue
  std::int64_t abandoned_iterations = 0;  ///< statically-assigned work a dead
                                          ///< processor never executed

  SyncStats sched_stats;  ///< the scheduler's own accounting (Tables 3-5)

  // Trace-derived enrichment (frontier_tradeoff): filled by experiments
  // that analyze a binary trace of the run and want the derived scores to
  // ride the result store with the simulated metrics. Negative means "not
  // computed". Properties of ONE run, so operator+= deliberately skips
  // them (a sum of affinity scores means nothing).
  double trace_affinity_score = -1.0;  ///< analyze_trace affinity_score()
  double trace_imbalance = -1.0;       ///< max/mean exec time - 1 across procs

  /// Host wall-clock phase breakdown (opt-in via SimOptions::time_phases;
  /// all-zero otherwise). Not simulated state: never checkpointed, never
  /// part of a determinism comparison.
  EnginePhaseTimers timers;

  /// Parallel speedup helper: serial_time / makespan.
  double speedup_vs(double serial_time) const {
    return makespan > 0.0 ? serial_time / makespan : 0.0;
  }

  /// Aggregates another run (or partial result) into this one: every time
  /// component and counter sums, makespans add (back-to-back runs), and
  /// scheduler queue stats merge index-wise.
  SimResult& operator+=(const SimResult& o) {
    makespan += o.makespan;
    busy += o.busy;
    sync += o.sync;
    comm += o.comm;
    idle += o.idle;
    barrier += o.barrier;
    stall_time += o.stall_time;
    hits += o.hits;
    misses += o.misses;
    invalidations += o.invalidations;
    units_transferred += o.units_transferred;
    local_grabs += o.local_grabs;
    remote_grabs += o.remote_grabs;
    central_grabs += o.central_grabs;
    iterations += o.iterations;
    lost_processor_count += o.lost_processor_count;
    stolen_under_fault += o.stolen_under_fault;
    abandoned_iterations += o.abandoned_iterations;
    if (sched_stats.queues.size() < o.sched_stats.queues.size())
      sched_stats.queues.resize(o.sched_stats.queues.size());
    for (std::size_t q = 0; q < o.sched_stats.queues.size(); ++q)
      sched_stats.queues[q] += o.sched_stats.queues[q];
    sched_stats.loops += o.sched_stats.loops;
    timers += o.timers;
    return *this;
  }
};

/// The part of a run's wall time the decomposition explains:
/// busy + sync + comm + idle + barrier + stall_time (the last is zero
/// outside fault-injection runs).
inline double accounted_time(const SimResult& r) {
  return r.busy + r.sync + r.comm + r.idle + r.barrier + r.stall_time;
}

/// The engine's conservation law: with deterministic (jitter-free) starts
/// every processor is accounted for from fork to join, so
/// accounted_time(r) ~= P * makespan to relative tolerance `rel_tol`.
/// Returns true when the identity holds.
inline bool check_time_identity(const SimResult& r, int p,
                                double rel_tol = 1e-6) {
  const double accounted = accounted_time(r);
  const double expected = static_cast<double>(p) * r.makespan;
  const double scale = std::max(std::abs(accounted), std::abs(expected));
  return std::abs(accounted - expected) <= rel_tol * scale;
}

}  // namespace afs
