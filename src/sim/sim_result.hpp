// Aggregate metrics produced by one simulator run.
#pragma once

#include <cstdint>

#include "sched/stats.hpp"

namespace afs {

struct SimResult {
  /// Total simulated time across all epochs and barriers (time units).
  double makespan = 0.0;

  // Time decomposition, summed over processors (so busy/P ~ useful time
  // per processor). busy + sync + comm + idle + barrier ~ P * makespan.
  double busy = 0.0;     ///< executing iterations
  double sync = 0.0;     ///< waiting for + operating on work-queue locks
  double comm = 0.0;     ///< waiting for the interconnect + miss latency
  double idle = 0.0;     ///< finished early, waiting at the epoch join
  double barrier = 0.0;  ///< fork/join overhead itself

  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t invalidations = 0;
  double units_transferred = 0.0;  ///< transfer units moved over the interconnect

  std::int64_t local_grabs = 0;
  std::int64_t remote_grabs = 0;   ///< AFS steals
  std::int64_t central_grabs = 0;
  std::int64_t iterations = 0;

  SyncStats sched_stats;  ///< the scheduler's own accounting (Tables 3-5)

  /// Parallel speedup helper: serial_time / makespan.
  double speedup_vs(double serial_time) const {
    return makespan > 0.0 ? serial_time / makespan : 0.0;
  }
};

}  // namespace afs
