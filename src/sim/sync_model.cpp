#include "sim/sync_model.hpp"

#include "sim/perturbation.hpp"
#include "util/check.hpp"

namespace afs {

void SyncModel::reset(const MachineConfig& config, const Scheduler& sched,
                      int p, PerturbationModel* pert) {
  local_sync_ = config.local_sync_time;
  remote_sync_ = config.remote_sync_time;
  central_sync_ =
      config.remote_sync_time *
      (sched.central_queue_is_indexed() ? config.modfact_sync_multiplier : 1.0);
  probe_cost_ = config.probe_time * sched.victim_probe_count(p);
  central_lock_ = p;
  locks_.assign(static_cast<std::size_t>(p) + 1, ResourceTimeline{});
  pert_ = (pert && pert->affects_link()) ? pert : nullptr;
}

double SyncModel::charge(const Grab& g, double t) {
  switch (g.kind) {
    case GrabKind::kLocal:
      return locks_[static_cast<std::size_t>(g.queue)].acquire(t, local_sync_);
    case GrabKind::kRemote: {
      // Probe queue loads first, then take the victim's lock. Remote
      // operations cross the interconnect, so contention bursts scale them.
      const double f = pert_ ? pert_->link_factor(t) : 1.0;
      t += probe_cost_ * f;
      return locks_[static_cast<std::size_t>(g.queue)].acquire(
          t, remote_sync_ * f);
    }
    case GrabKind::kCentral: {
      const double f = pert_ ? pert_->link_factor(t) : 1.0;
      return locks_[static_cast<std::size_t>(central_lock_)].acquire(
          t, central_sync_ * f);
    }
    case GrabKind::kStatic:
      return t;  // no run-time queue access
    case GrabKind::kNone:
      break;
  }
  AFS_CHECK_MSG(false, "non-done grab with kind kNone");
  return t;
}

}  // namespace afs
