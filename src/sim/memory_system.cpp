#include "sim/memory_system.hpp"

#include "sim/perturbation.hpp"

namespace afs {

void MemorySystem::reset(const MachineConfig& config, int p,
                         PerturbationModel* pert) {
  cache_capacity_ = config.cache_capacity;
  miss_latency_ = config.miss_latency;
  transfer_unit_time_ = config.transfer_unit_time;
  invalidate_time_ = config.invalidate_time;
  serialized_link_ = config.interconnect != Interconnect::kSwitch;
  pert_ = (pert && pert->affects_memory()) ? pert : nullptr;

  directory_.clear();
  caches_.assign(static_cast<std::size_t>(p), ProcCache(cache_capacity_));
  shared_link_.reset();
}

double MemorySystem::access(int proc, const BlockAccess& a, double t,
                            MetricsFanout& m) {
  ProcCache& cache = caches_[static_cast<std::size_t>(proc)];
  if (!cache.enabled()) return t;  // cache-less machine: cost folded into work

  bool resident = cache.access_hit(a.block);
  if (resident) {
    m.on_hit(proc, a, t);
  } else {
    // Miss: move the block over the interconnect.
    const double t0 = t;
    double occupancy = a.size * transfer_unit_time_;
    double latency = miss_latency_;
    if (pert_) {
      occupancy *= pert_->link_factor(t);
      latency += pert_->miss_spike(proc);
    }
    if (serialized_link_) {
      t = shared_link_.acquire(t, occupancy) + latency;
    } else {
      t += latency + occupancy;
    }
    m.on_miss(proc, a, t0, t);
    // A block larger than the cache streams through without becoming
    // resident; only register a sharer for copies that actually exist.
    resident = cache.insert(a.block, a.size, [&](std::int64_t evicted) {
      directory_.remove_sharer(evicted, proc);
    });
    if (resident) directory_.add_sharer(a.block, proc);
  }

  if (a.write) {
    const std::uint64_t others = directory_.make_exclusive(a.block, proc);
    if (others != 0) {
      int copies = 0;
      for (int q = 0; q < static_cast<int>(caches_.size()); ++q) {
        if (others & Directory::bit(q)) {
          caches_[static_cast<std::size_t>(q)].invalidate(a.block);
          ++copies;
        }
      }
      const double t0 = t;
      t += invalidate_time_;
      m.on_invalidate(proc, a.block, copies, t0, t);
    }
    // A streamed (cache-bypassing) write leaves no copy; drop the
    // directory entry we just created if the cache did not keep it.
    if (!resident) directory_.remove_sharer(a.block, proc);
  }
  return t;
}

}  // namespace afs
