#include "sim/memory_system.hpp"

namespace afs {

void MemorySystem::reset(const MachineConfig& config, int p,
                         PerturbationModel* pert, bool fast_path, bool warm) {
  cache_capacity_ = config.cache_capacity;
  miss_latency_ = config.miss_latency;
  transfer_unit_time_ = config.transfer_unit_time;
  invalidate_time_ = config.invalidate_time;
  serialized_link_ = config.interconnect != Interconnect::kSwitch;
  fast_path_ = fast_path;
  pert_ = (pert && pert->affects_memory()) ? pert : nullptr;

  directory_.clear();
  const std::size_t n = static_cast<std::size_t>(p);
  if (warm && !caches_.empty() && caches_[0].capacity() == cache_capacity_) {
    // Epoch batching: keep the warmed line pools and hash tables (every
    // cache shares one capacity, so checking the first suffices). Shrink
    // or grow the per-processor vector to this run's P — surviving caches
    // clear in place, new ones start from scratch like a cold reset.
    if (caches_.size() > n) caches_.resize(n);
    for (ProcCache& c : caches_) c.clear();
    while (caches_.size() < n) caches_.emplace_back(cache_capacity_);
  } else {
    caches_.assign(n, ProcCache(cache_capacity_));
  }
  shared_link_.reset();
}

}  // namespace afs
