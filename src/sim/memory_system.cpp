#include "sim/memory_system.hpp"

namespace afs {

void MemorySystem::reset(const MachineConfig& config, int p,
                         PerturbationModel* pert, bool fast_path) {
  cache_capacity_ = config.cache_capacity;
  miss_latency_ = config.miss_latency;
  transfer_unit_time_ = config.transfer_unit_time;
  invalidate_time_ = config.invalidate_time;
  serialized_link_ = config.interconnect != Interconnect::kSwitch;
  fast_path_ = fast_path;
  pert_ = (pert && pert->affects_memory()) ? pert : nullptr;

  directory_.clear();
  caches_.assign(static_cast<std::size_t>(p), ProcCache(cache_capacity_));
  shared_link_.reset();
}

}  // namespace afs
