// JsonlTraceSink: an opt-in MetricsSink that streams a per-processor
// timeline of one (or more) simulator runs as JSON Lines.
//
// One JSON object per line, each with an "ev" discriminator. The schema
// (documented in docs/SIMULATOR.md, "Trace schema"):
//
//   {"ev":"run_begin","machine":..,"program":..,"scheduler":..,"p":N}
//   {"ev":"loop_begin","epoch":E,"n":N,"p":P}
//   {"ev":"grab","proc":Q,"kind":"local|remote|central|static",
//    "queue":I,"begin":B,"end":E,"t0":..,"t1":..}
//   {"ev":"chunk","proc":Q,"begin":B,"end":E,"t0":..,"t1":..}
//   {"ev":"miss","proc":Q,"block":B,"size":S,"t0":..,"t1":..}
//   {"ev":"inval","proc":Q,"block":B,"copies":C,"t0":..,"t1":..}
//   {"ev":"done","proc":Q,"t":..}
//   {"ev":"stall","proc":Q,"t0":..,"t1":..}
//   {"ev":"lost","proc":Q,"t":..}
//   {"ev":"fault_steal","proc":Q,"queue":V,"iters":N}
//   {"ev":"abandoned","iters":N}
//   {"ev":"loop_end","epoch":E,"end":..}
//   {"ev":"barrier","epoch":E,"cost":..,"total":..}
//   {"ev":"run_end","makespan":..}
//
// Volume is proportional to scheduling decisions and misses, not
// iterations: the per-iteration on_work/on_hit micro-events are
// intentionally not serialized (their aggregates are in SimResult).
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "sim/metrics.hpp"

namespace afs {

/// A MetricsSink that streams to a file with crash-safe publication:
/// records go to `<path>.tmp`, and the final name appears only when
/// finalize() commits it (fsync + rename). The sweep harness writes one
/// such sink per (scheduler, P) cell — finalize() on success, abandon()
/// on failure — so parallel cells never interleave records, a crashed
/// cell never publishes a partial trace, and a resumed sweep never
/// truncates a completed one.
class FileTraceSink : public MetricsSink {
 public:
  /// Publishes the temp file onto the final path. Idempotent.
  virtual void finalize() = 0;

  /// Discards the trace: closes and removes the temp file without ever
  /// touching the final path. Idempotent; finalize() afterwards is a
  /// no-op. Never throws (failure cleanup must be safe in catch blocks).
  virtual void abandon() = 0;
};

class JsonlTraceSink : public FileTraceSink {
 public:
  /// Streams to `out` (not owned; must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out);

  /// Streams to `path + ".tmp"` (truncates), published to `path` by
  /// finalize() — so a crash mid-trace never leaves a truncated file
  /// under the advertised name, only the clearly-partial .tmp. Throws
  /// std::runtime_error when the file cannot be opened; parent
  /// directories are not created.
  explicit JsonlTraceSink(const std::string& path);

  /// Path mode only: flushes, fsyncs and renames the temp file onto the
  /// final path. Idempotent; called by the destructor if not already
  /// (destructor swallows publication errors — call explicitly to see
  /// them). No-op for the ostream constructor.
  void finalize() override;

  /// Path mode only: closes and unlinks the temp file; the final path is
  /// never created (or, on a re-run, keeps its previous complete
  /// contents). No-op for the ostream constructor.
  void abandon() override;

  ~JsonlTraceSink() override;

  std::int64_t lines_written() const { return lines_; }

  void on_run_begin(const MachineConfig& m, const std::string& program,
                    const std::string& scheduler, int p) override;
  void on_loop_begin(int epoch, std::int64_t n, int p) override;
  void on_grab(int proc, const Grab& g, double t0, double t1) override;
  void on_chunk(int proc, std::int64_t begin, std::int64_t end, double t0,
                double t1) override;
  void on_miss(int proc, const BlockAccess& a, double t0, double t1) override;
  void on_invalidate(int proc, std::int64_t block, int copies, double t0,
                     double t1) override;
  void on_proc_done(int proc, double t) override;
  void on_stall(int proc, double t0, double t1) override;
  void on_proc_lost(int proc, double t) override;
  void on_fault_steal(int thief, int victim_queue, std::int64_t iters) override;
  void on_abandoned(std::int64_t iters) override;
  void on_loop_end(int epoch, double end) override;
  void on_barrier(int epoch, double cost, double total) override;
  void on_run_end(double makespan) override;

 private:
  void line(const std::string& body);

  std::ofstream file_;       // used by the path constructor
  std::ostream* out_;        // always valid
  std::string final_path_;   // non-empty = path mode, not yet finalized
  std::int64_t lines_ = 0;
};

}  // namespace afs
