// The simulation-engine version string that keys every content-addressed
// result-store entry (src/store/).
//
// Bump this constant whenever a change alters ANY simulated number — a
// cost-model fix, a scheduler tie-break change, an RNG reordering, a new
// accounting field that feeds the CSVs. Bumping invalidates exactly the
// store entries computed by the old engine (their keys embed the old
// version) while leaving unrelated entries untouched; forgetting to bump
// serves stale results forever. Pure host-side optimizations that are
// proven bit-identical (iteration batching, the memory fast path, phase
// timers) do NOT require a bump — the golden determinism tests and the
// A/B sweeps in CI are the proof obligation.
//
// History:
//   afs-sim-1  — engine as of the trace-analysis milestone (PR 5): all 27
//                fig/tab CSVs pinned bit-identical to the seed.
#pragma once

namespace afs {

inline constexpr const char* kEngineVersion = "afs-sim-1";

}  // namespace afs
