// Helpers for the loop shapes the paper cares about.
//
// * run_epochs: the canonical "parallel loop nested in a sequential loop"
//   — reuses one scheduler across epochs (which is what lets AFS preserve
//   affinity) and implicitly joins between epochs.
// * Index2D / coalesce: nested parallel loops flattened into one index
//   space, the transformation the paper cites ([23], [24]) for multi-way
//   nests like L4.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/parallel_for.hpp"
#include "util/check.hpp"

namespace afs {

/// Runs `epochs` instances of an n-iteration parallel loop under one
/// scheduler. `body(epoch, i, worker)` is invoked for every (epoch, i).
inline void run_epochs(ThreadPool& pool, Scheduler& sched, int epochs,
                       std::int64_t n,
                       const std::function<void(int, std::int64_t, int)>& body) {
  AFS_CHECK(epochs >= 0);
  for (int e = 0; e < epochs; ++e) {
    parallel_for(pool, sched, n, [&body, e](IterRange r, int worker) {
      for (std::int64_t i = r.begin; i < r.end; ++i) body(e, i, worker);
    });
  }
}

/// A coalesced 2-D rectangular index space: flat index k in
/// [0, rows*cols) maps to (k / cols, k % cols). Row-major so that
/// consecutive flat indices share a row — preserving whatever row affinity
/// the nest has.
struct Index2D {
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  std::int64_t size() const { return rows * cols; }
  std::int64_t row(std::int64_t flat) const { return flat / cols; }
  std::int64_t col(std::int64_t flat) const { return flat % cols; }
  std::int64_t flat(std::int64_t r, std::int64_t c) const {
    return r * cols + c;
  }
};

/// Coalesced doubly-nested parallel loop:
///   DO PARALLEL i = 0, rows; DO PARALLEL j = 0, cols: body(i, j)
/// executed as one parallel loop of rows*cols iterations.
inline void parallel_for_2d(
    ThreadPool& pool, Scheduler& sched, std::int64_t rows, std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t, int)>& body) {
  AFS_CHECK(rows >= 0 && cols >= 0);
  const Index2D space{rows, cols};
  parallel_for(pool, sched, space.size(),
               [&body, space](IterRange r, int worker) {
                 for (std::int64_t k = r.begin; k < r.end; ++k)
                   body(space.row(k), space.col(k), worker);
               });
}

}  // namespace afs
