// Crash-safe parallel sweep runner.
//
// A figure/table sweep is a grid of independent *cells* — one simulation
// per (scheduler, P) — that the legacy harness ran serially in one
// process, where any crash or Ctrl-C lost everything and could leave a
// truncated CSV behind. run_sweep() executes the same cells on the
// in-repo ThreadPool with production-harness semantics:
//
//   * per-cell fault isolation — an exception inside one cell becomes a
//     structured CellFailure record; the rest of the sweep completes;
//   * deadline + retry — each cell gets a wall-clock timeout (enforced
//     cooperatively via CancelToken at simulation event boundaries) and
//     transient errors are retried with bounded exponential backoff whose
//     schedule is derived from a seed, so reruns behave identically;
//   * checkpoint/resume — each finished cell's SimResult is serialized to
//     a per-cell file under a manifest directory with the atomic
//     tmp+fsync+rename protocol; a killed sweep restarted with
//     SweepOptions::resume recomputes only the missing cells and merges
//     to a byte-identical result;
//   * graceful degradation — the caller still gets every completed cell
//     plus the failure list; only invariant breaks (CheckFailure) are
//     meant to fail a binary.
//
// Determinism: each cell builds a fresh simulator and scheduler, so its
// SimResult depends only on (machine, program, scheduler, P, seed) — not
// on which thread ran it or in what order. results are keyed maps, so the
// merged output of a serial run, a parallel run, and a resumed run are
// bit-identical. See docs/SWEEP_RUNNER.md.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/sim_result.hpp"
#include "util/cancel.hpp"

namespace afs {

class ThreadPool;

/// One independent unit of a sweep. `run` must be thread-safe against the
/// other cells' closures (each should build its own simulator/scheduler)
/// and should poll the token (SimOptions::cancel does this) so deadlines
/// can interrupt it.
struct SweepCellSpec {
  std::string label;  ///< scheduler label (first results key)
  int procs = 0;      ///< processor count (second results key)
  std::function<SimResult(const CancelToken&)> run;
};

/// Structured record of a cell that did not produce a result.
struct CellFailure {
  std::string label;
  int procs = 0;
  /// "timeout"   — the cell's own deadline fired;
  /// "cancelled" — the sweep-level token fired (deadline/abort) before or
  ///               during the cell, including queued cells never started;
  /// "invariant" — CheckFailure: a broken engine/scheduler contract;
  /// "poison"    — PoisonedCellError: the cell crashed its executor's
  ///               workers repeatedly and is blacklisted (never retried);
  /// "degraded"  — DegradedError: the executor is in cache-only mode
  ///               (worker restart budget exhausted; never retried);
  /// "error"     — any other exception, after retries were exhausted.
  std::string kind;
  std::string message;  ///< what() of the final attempt
  int attempts = 0;     ///< attempts actually made (0 = never started)
};

struct SweepOptions {
  int jobs = 1;              ///< worker threads; 1 = serial in-caller-thread
  double cell_timeout = 0.0;   ///< seconds of wall clock per attempt; 0 = off
  double sweep_timeout = 0.0;  ///< seconds for the whole sweep; 0 = off
  int max_retries = 2;         ///< re-attempts after the first try
  double backoff_base = 0.05;  ///< seconds; first retry delay scale
  double backoff_max = 2.0;    ///< seconds; backoff growth cap
  std::uint64_t retry_seed = 0xaf55eedULL;  ///< jitters the retry schedule
  std::string checkpoint_dir;  ///< empty = checkpointing off
  bool resume = false;         ///< load completed cells from checkpoint_dir
  /// Borrowed worker pool (not owned). When set, the sweep submits its
  /// cells here instead of constructing a private ThreadPool, so many
  /// sweeps in one process (the afs_sweep driver) share one set of worker
  /// threads. The pool must be idle when run_sweep is called; run_sweep
  /// drains it before returning and resets its cancel token. `jobs` still
  /// selects serial mode: with jobs == 1 the pool is ignored and cells run
  /// in the caller's thread in declaration order (the bit-identity
  /// reference ordering).
  ThreadPool* pool = nullptr;
  /// Optional parent cancellation token (not owned; must outlive the
  /// sweep). The sweep-level token is created as a child of it, so a
  /// caller-side abort — a service request deadline, a SIGINT in the
  /// batch driver — cancels queued cells exactly like a sweep timeout:
  /// running cells stop at the next event boundary, queued cells are
  /// discarded by the pool, completed cells keep their checkpoints.
  const CancelToken* cancel = nullptr;
  /// Test hook: replaces the real backoff sleep (argument in seconds).
  std::function<void(double)> sleep_fn;

  /// Throws CheckFailure naming the offending field on invalid values.
  void validate() const;
};

struct SweepOutcome {
  /// results[label][procs] — completed cells only.
  std::map<std::string, std::map<int, SimResult>> results;
  /// Failed cells, sorted by (label, procs) for deterministic reporting.
  std::vector<CellFailure> failures;
  int cells_total = 0;
  int cells_resumed = 0;  ///< loaded from checkpoints instead of computed

  bool complete() const { return failures.empty(); }
  /// True when any failure is an invariant break — the only class that
  /// should make a reproduction binary exit nonzero.
  bool invariant_break() const;
};

/// Runs the cells under `opts`. `sweep_id` names the sweep in logs, the
/// checkpoint manifest and the failure report. Per-cell progress/retry
/// lines go to `log` when non-null. Duplicate (label, procs) cells are a
/// CheckFailure.
SweepOutcome run_sweep(const std::string& sweep_id,
                       const std::vector<SweepCellSpec>& cells,
                       const SweepOptions& opts, std::ostream* log = nullptr);

/// The deterministic retry schedule: the delay (seconds) before retry
/// `attempt` (1-based: the delay after the attempt-th failed try) of cell
/// (label, procs). Exponential in `attempt` with seeded jitter in
/// [0.5, 1.5), clamped to opts.backoff_max. Pure — two calls with the same
/// arguments always agree, which is what makes reruns reproducible.
double retry_backoff(const SweepOptions& opts, const std::string& label,
                     int procs, int attempt);

/// Exact text serialization of a SimResult (hexfloat doubles, decimal
/// integers, trailing end marker). parse_sim_result round-trips it
/// bit-identically; it returns false on any truncation, unknown schema or
/// malformed field, which resume treats as "recompute this cell".
std::string serialize_sim_result(const SimResult& r);
bool parse_sim_result(const std::string& text, SimResult& out);

/// Checkpoint path of cell (label, procs) under `dir`: a sanitized label
/// plus a label hash (labels may collide after sanitization) and the
/// processor count, ending in ".cell".
std::string cell_checkpoint_path(const std::string& dir,
                                 const std::string& label, int procs);

/// Machine-readable failure report (schema "afs-sweep-failures-v1"; see
/// docs/SWEEP_RUNNER.md). One JSON object with the sweep id, cell counts
/// and an array of failures sorted like SweepOutcome::failures.
std::string failure_report_json(const std::string& sweep_id,
                                const SweepOutcome& outcome);

}  // namespace afs
