#include "runtime/parallel_for.hpp"

#include <thread>

#include "util/check.hpp"

namespace afs {

void parallel_for(ThreadPool& pool, Scheduler& sched, std::int64_t n,
                  const ChunkBody& body, const ParallelForOptions& options) {
  AFS_CHECK(n >= 0);
  sched.start_loop(n, pool.size());
  pool.run_on_all([&](int worker) {
    const auto w = static_cast<std::size_t>(worker);
    if (w < options.start_delays.size() && options.start_delays[w] > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.start_delays[w]));
    }
    for (;;) {
      const Grab g = sched.next(worker);
      if (g.done()) break;
      AFS_DCHECK(!g.range.empty());
      body(g.range, worker);
    }
  });
  sched.end_loop();
}

void parallel_for_each(ThreadPool& pool, Scheduler& sched, std::int64_t n,
                       const IterBody& body,
                       const ParallelForOptions& options) {
  parallel_for(
      pool, sched, n,
      [&body](IterRange r, int worker) {
        for (std::int64_t i = r.begin; i < r.end; ++i) body(i, worker);
      },
      options);
}

}  // namespace afs
