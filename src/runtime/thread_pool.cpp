#include "runtime/thread_pool.hpp"

#include "util/check.hpp"

namespace afs {

ThreadPool::ThreadPool(int workers) {
  AFS_CHECK(workers >= 1);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::worker_main(int id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    try {
      (*job)(id);
    } catch (...) {
      std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::scoped_lock lock(mutex_);
      if (--running_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& job) {
  std::unique_lock lock(mutex_);
  AFS_CHECK_MSG(running_ == 0, "run_on_all is not reentrant");
  job_ = &job;
  running_ = size();
  first_error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace afs
