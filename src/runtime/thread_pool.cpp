#include "runtime/thread_pool.hpp"

#include <utility>

#include "util/check.hpp"

namespace afs {

ThreadPool::ThreadPool(int workers) {
  AFS_CHECK(workers >= 1);
  threads_.reserve(static_cast<std::size_t>(workers));
  try {
    for (int i = 0; i < workers; ++i)
      threads_.emplace_back([this, i] { worker_main(i); });
  } catch (...) {
    // Partial construction: the jthread members already started will join
    // in their destructors, and they park on cv_start_ with no stop
    // condition — without this they would wait forever.
    {
      std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    cv_start_.notify_all();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  // jthread joins in its destructor; workers drain any queued tasks first.
}

void ThreadPool::worker_main(int id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation || !tasks_.empty();
      });
      if (generation_ != seen_generation) {
        seen_generation = generation_;
        job = job_;
      } else if (!tasks_.empty()) {
        // A fired cancellation token supersedes the queue: everything not
        // yet started is discarded, never run (the sweep-deadline
        // contract). Otherwise tasks are drained even when stop_ is set:
        // shutdown must not drop work that was accepted by submit().
        if (discard_if_cancelled()) continue;
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++tasks_running_;
      } else {
        return;  // stop_ set and nothing left to run
      }
    }
    if (job) {
      try {
        (*job)(id);
      } catch (...) {
        std::scoped_lock lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::scoped_lock lock(mutex_);
      if (--running_ == 0) cv_done_.notify_all();
    } else {
      try {
        task();
      } catch (...) {
        std::scoped_lock lock(mutex_);
        if (!first_task_error_) first_task_error_ = std::current_exception();
      }
      std::scoped_lock lock(mutex_);
      if (--tasks_running_ == 0 && tasks_.empty()) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& job) {
  std::unique_lock lock(mutex_);
  AFS_CHECK_MSG(running_ == 0, "run_on_all is not reentrant");
  job_ = &job;
  running_ = size();
  first_error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::submit(std::function<void()> task) {
  AFS_CHECK(task != nullptr);
  {
    std::scoped_lock lock(mutex_);
    AFS_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    tasks_.push_back(std::move(task));
  }
  cv_start_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] {
    // Re-checked on every wakeup: a sweep deadline that fires while tasks
    // are in flight must clear the backlog the moment a worker finishes,
    // not start it.
    discard_if_cancelled();
    return tasks_.empty() && tasks_running_ == 0;
  });
  if (first_task_error_) {
    std::exception_ptr err = std::exchange(first_task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::set_cancel(const CancelToken* token) {
  std::scoped_lock lock(mutex_);
  cancel_ = token;
}

std::size_t ThreadPool::discarded() const {
  std::scoped_lock lock(mutex_);
  return discarded_;
}

bool ThreadPool::discard_if_cancelled() {
  if (cancel_ == nullptr || tasks_.empty() || !cancel_->cancelled())
    return false;
  discarded_ += tasks_.size();
  tasks_.clear();
  if (tasks_running_ == 0) cv_done_.notify_all();
  return true;
}

}  // namespace afs
