// Persistent worker pool for the real-thread substrate.
//
// Workers are created once and reused for every parallel loop (CP.41:
// minimize thread creation), parked on a condition variable between jobs
// (CP.42: never wait without a condition). The pool intentionally allows
// more workers than hardware threads: the library must stay correct when
// reproducing a 64-processor algorithm on a small host, where workers are
// simply time-sliced.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace afs {

class ThreadPool {
 public:
  /// Spawns `workers` >= 1 threads, parked until run_on_all().
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs job(worker_id) once on every worker, concurrently; blocks the
  /// caller until all workers have finished. Exceptions thrown by the job
  /// are rethrown on the caller thread (first one wins).
  void run_on_all(const std::function<void(int)>& job);

  /// Enqueues `task` to run on whichever worker frees up first. Tasks run
  /// concurrently with each other (but a run_on_all job has priority once
  /// started). A task that throws never crashes a worker or wedges the
  /// pool: the first exception is held and rethrown by the next drain().
  /// Tasks still queued at destruction are executed, not dropped.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception, if any (clearing it).
  ///
  /// Cancellation interaction: when a token attached via set_cancel() has
  /// fired, queued tasks that have not started are *discarded*, never
  /// started — both by workers (checked at dequeue) and by drain itself —
  /// so a sweep-level deadline cannot leak new cells into execution.
  /// Tasks already running are left to finish (they observe the token
  /// cooperatively). Discarded tasks are counted, not treated as errors.
  void drain();

  /// Attaches a cancellation token (not owned; null detaches). Once the
  /// token fires, not-yet-started queued tasks are discarded at the next
  /// dequeue or drain() instead of being run. Set it before submitting
  /// the work it should govern; destruction still runs queued tasks when
  /// no token (or an unfired one) is attached.
  void set_cancel(const CancelToken* token);

  /// Tasks discarded after the cancellation token fired (cumulative).
  std::size_t discarded() const;

 private:
  void worker_main(int id);

  mutable std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int running_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;       // from the current run_on_all job
  std::deque<std::function<void()>> tasks_;
  int tasks_running_ = 0;
  std::exception_ptr first_task_error_;  // from submitted tasks, for drain()
  const CancelToken* cancel_ = nullptr;  // not owned; see set_cancel()
  std::size_t discarded_ = 0;            // tasks dropped after cancellation
  std::vector<std::jthread> threads_;

  /// Pre: mutex_ held. Discards every queued task when the attached token
  /// has fired; returns true when anything was dropped.
  bool discard_if_cancelled();
};

}  // namespace afs
