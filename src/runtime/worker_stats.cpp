#include "runtime/worker_stats.hpp"

#include <algorithm>

#include "util/align.hpp"
#include "util/stopwatch.hpp"

namespace afs {

namespace {
double max_over_mean(const std::vector<WorkerStats>& workers,
                     double (*metric)(const WorkerStats&)) {
  if (workers.empty()) return 1.0;
  double sum = 0.0, mx = 0.0;
  for (const auto& w : workers) {
    const double v = metric(w);
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / static_cast<double>(workers.size());
  return mean > 0.0 ? mx / mean : 1.0;
}
}  // namespace

double RunStats::iteration_imbalance() const {
  return max_over_mean(workers, [](const WorkerStats& w) {
    return static_cast<double>(w.iterations);
  });
}

double RunStats::time_imbalance() const {
  return max_over_mean(workers,
                       [](const WorkerStats& w) { return w.busy_seconds; });
}

RunStats parallel_for_timed(ThreadPool& pool, Scheduler& sched,
                            std::int64_t n, const ChunkBody& body,
                            const ParallelForOptions& options) {
  std::vector<CacheAligned<WorkerStats>> per_worker(
      static_cast<std::size_t>(pool.size()));
  Stopwatch total;
  parallel_for(
      pool, sched, n,
      [&body, &per_worker](IterRange r, int worker) {
        WorkerStats& w = per_worker[static_cast<std::size_t>(worker)].value;
        Stopwatch sw;
        body(r, worker);
        w.busy_seconds += sw.seconds();
        ++w.chunks;
        w.iterations += r.size();
      },
      options);

  RunStats stats;
  stats.elapsed_seconds = total.seconds();
  stats.workers.reserve(per_worker.size());
  for (const auto& w : per_worker) stats.workers.push_back(w.value);
  return stats;
}

}  // namespace afs
