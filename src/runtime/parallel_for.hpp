// parallel_for: execute a parallel loop on real threads under any
// Scheduler. This is the library's primary public entry point for
// applications (the examples and the kernel implementations all go through
// it); the simulator substrate mirrors the same semantics in virtual time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sched/scheduler.hpp"

namespace afs {

/// Chunk-granularity body: invoked with each granted range and the worker
/// that executes it. Iterations inside a range run in ascending order.
using ChunkBody = std::function<void(IterRange, int worker)>;

/// Iteration-granularity body.
using IterBody = std::function<void(std::int64_t i, int worker)>;

struct ParallelForOptions {
  /// Per-worker artificial start delays (seconds); shorter vectors are
  /// zero-padded. Used by the Table 2 processor-arrival-time experiment.
  std::vector<double> start_delays;
};

/// Runs iterations [0, n) under `sched` on all workers of `pool`.
/// Calls sched.start_loop / end_loop around the execution.
void parallel_for(ThreadPool& pool, Scheduler& sched, std::int64_t n,
                  const ChunkBody& body, const ParallelForOptions& options = {});

/// Convenience wrapper that invokes `body` once per iteration.
void parallel_for_each(ThreadPool& pool, Scheduler& sched, std::int64_t n,
                       const IterBody& body,
                       const ParallelForOptions& options = {});

}  // namespace afs
