#include "runtime/sweep_runner.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "runtime/cell_executor.hpp"
#include "runtime/thread_pool.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

constexpr const char* kCellSchema = "afs-cell-v1";
constexpr const char* kManifestSchema = "afs-sweep-manifest-v1";
constexpr const char* kManifestName = "MANIFEST";

/// The sweep's identity: its id plus the full cell grid (and the cell
/// schema version, so a format change invalidates old checkpoints). A
/// manifest whose identity differs describes a different sweep — its
/// checkpoints must not be merged into this one.
std::string sweep_identity(const std::string& sweep_id,
                           const std::vector<SweepCellSpec>& cells) {
  std::uint64_t h = fnv1a64(kCellSchema);
  h = fnv1a64(sweep_id, h);
  for (const SweepCellSpec& c : cells) {
    h = fnv1a64(c.label, h);
    h = fnv1a64(std::to_string(c.procs), h);
  }
  return hex64(h);
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);  // hexfloat: exact round-trip
  return buf;
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double elapsed_s(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string fmt_secs(double s, int precision = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, s);
  return buf;
}

}  // namespace

void SweepOptions::validate() const {
  AFS_CHECK_MSG(jobs >= 1 && jobs <= 256, "SweepOptions.jobs " << jobs
                                              << " outside 1..256");
  AFS_CHECK_MSG(cell_timeout >= 0.0, "SweepOptions.cell_timeout < 0");
  AFS_CHECK_MSG(sweep_timeout >= 0.0, "SweepOptions.sweep_timeout < 0");
  AFS_CHECK_MSG(max_retries >= 0, "SweepOptions.max_retries < 0");
  AFS_CHECK_MSG(backoff_base >= 0.0, "SweepOptions.backoff_base < 0");
  AFS_CHECK_MSG(backoff_max >= backoff_base,
                "SweepOptions.backoff_max < backoff_base");
}

bool SweepOutcome::invariant_break() const {
  for (const CellFailure& f : failures)
    if (f.kind == "invariant") return true;
  return false;
}

double retry_backoff(const SweepOptions& opts, const std::string& label,
                     int procs, int attempt) {
  AFS_CHECK(attempt >= 1);
  // A zero base means "retry immediately" regardless of attempt — and
  // keeps the 0 exact instead of 0 * jitter's signed-zero edge cases.
  if (opts.backoff_base <= 0.0) return 0.0;
  // One independent, reproducible stream per (seed, cell, attempt): the
  // jitter decorrelates cells retrying at once without wall-clock input.
  std::uint64_t h = fnv1a64(label, opts.retry_seed ^ 0x9e3779b97f4a7c15ULL);
  h = fnv1a64(std::to_string(procs), h);
  h = fnv1a64(std::to_string(attempt), h);
  Xoshiro256 rng(h);
  const double jitter = 0.5 + rng.next_double();  // [0.5, 1.5)
  // base * 2^(attempt-1), with the exponent clamped so a huge attempt
  // count cannot push ldexp to +inf (inf * jitter is still inf, which
  // min() would hide — but an inf intermediate is UB bait under
  // -ffast-math and trips UBSan-adjacent checks; clamp deterministically
  // instead). 64 doublings already exceed any finite backoff_max.
  const int doublings = std::min(attempt - 1, 64);
  const double exp = std::ldexp(opts.backoff_base, doublings);
  return std::min(exp * jitter, opts.backoff_max);
}

std::string serialize_sim_result(const SimResult& r) {
  std::ostringstream os;
  os << kCellSchema << '\n';
  auto d = [&](const char* key, double v) {
    os << key << ' ' << fmt_double(v) << '\n';
  };
  auto i = [&](const char* key, std::int64_t v) {
    os << key << ' ' << v << '\n';
  };
  d("makespan", r.makespan);
  d("busy", r.busy);
  d("sync", r.sync);
  d("comm", r.comm);
  d("idle", r.idle);
  d("barrier", r.barrier);
  d("stall", r.stall_time);
  i("hits", r.hits);
  i("misses", r.misses);
  i("inval", r.invalidations);
  d("units", r.units_transferred);
  i("local", r.local_grabs);
  i("remote", r.remote_grabs);
  i("central", r.central_grabs);
  i("iters", r.iterations);
  i("lost", r.lost_processor_count);
  i("stolen", r.stolen_under_fault);
  i("abandoned", r.abandoned_iterations);
  i("loops", r.sched_stats.loops);
  i("queues", static_cast<std::int64_t>(r.sched_stats.queues.size()));
  for (const QueueStats& q : r.sched_stats.queues)
    os << "q " << q.local_grabs << ' ' << q.remote_grabs << ' '
       << q.iters_local << ' ' << q.iters_remote << '\n';
  // Optional trace-derived enrichment: written only when computed, so
  // cells serialized before the fields existed stay byte-identical and
  // the parser below accepts both generations under the same schema id.
  if (r.trace_affinity_score >= 0.0)
    d("xaff", r.trace_affinity_score);
  if (r.trace_imbalance >= 0.0) d("ximb", r.trace_imbalance);
  os << "end\n";
  return os.str();
}

bool parse_sim_result(const std::string& text, SimResult& out) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kCellSchema) return false;

  SimResult r;
  auto next_kv = [&](const char* key, std::string& value) {
    if (!std::getline(is, line)) return false;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || line.substr(0, sp) != key) return false;
    value = line.substr(sp + 1);
    return !value.empty();
  };
  auto d = [&](const char* key, double& v) {
    std::string value;
    if (!next_kv(key, value)) return false;
    char* end = nullptr;
    v = std::strtod(value.c_str(), &end);  // strtod accepts %a hexfloats
    return end != value.c_str() && *end == '\0';
  };
  auto i = [&](const char* key, std::int64_t& v) {
    std::string value;
    if (!next_kv(key, value)) return false;
    char* end = nullptr;
    v = std::strtoll(value.c_str(), &end, 10);
    return end != value.c_str() && *end == '\0';
  };

  std::int64_t queues = 0;
  if (!(d("makespan", r.makespan) && d("busy", r.busy) && d("sync", r.sync) &&
        d("comm", r.comm) && d("idle", r.idle) && d("barrier", r.barrier) &&
        d("stall", r.stall_time) && i("hits", r.hits) &&
        i("misses", r.misses) && i("inval", r.invalidations) &&
        d("units", r.units_transferred) && i("local", r.local_grabs) &&
        i("remote", r.remote_grabs) && i("central", r.central_grabs) &&
        i("iters", r.iterations) && i("lost", r.lost_processor_count) &&
        i("stolen", r.stolen_under_fault) &&
        i("abandoned", r.abandoned_iterations) &&
        i("loops", r.sched_stats.loops) && i("queues", queues)))
    return false;
  if (queues < 0 || queues > 1 << 20) return false;

  r.sched_stats.queues.resize(static_cast<std::size_t>(queues));
  for (QueueStats& q : r.sched_stats.queues) {
    if (!std::getline(is, line)) return false;
    std::istringstream qs(line);
    std::string tag;
    if (!(qs >> tag >> q.local_grabs >> q.remote_grabs >> q.iters_local >>
          q.iters_remote) ||
        tag != "q")
      return false;
  }
  // Between the q-lines and "end": optional `xaff`/`ximb` enrichment
  // lines (absent in entries written before those fields existed).
  auto parse_x = [&](const std::string& value, double& v) {
    char* end = nullptr;
    v = std::strtod(value.c_str(), &end);
    return end != value.c_str() && *end == '\0';
  };
  for (;;) {
    if (!std::getline(is, line)) return false;
    if (line == "end") break;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) return false;
    const std::string key = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (key == "xaff") {
      if (!parse_x(value, r.trace_affinity_score)) return false;
    } else if (key == "ximb") {
      if (!parse_x(value, r.trace_imbalance)) return false;
    } else {
      return false;
    }
  }

  out = r;
  return true;
}

std::string cell_checkpoint_path(const std::string& dir,
                                 const std::string& label, int procs) {
  std::string safe;
  safe.reserve(label.size());
  for (char c : label)
    safe += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
             c == '.')
                ? c
                : '_';
  return dir + "/" + safe + "-" + hex64(fnv1a64(label)).substr(8) + "_P" +
         std::to_string(procs) + ".cell";
}

std::string failure_report_json(const std::string& sweep_id,
                                const SweepOutcome& outcome) {
  std::ostringstream os;
  os << "{\"schema\":\"afs-sweep-failures-v1\",\"sweep\":\""
     << json_escaped(sweep_id) << "\",\"cells_total\":" << outcome.cells_total
     << ",\"cells_completed\":"
     << outcome.cells_total - static_cast<int>(outcome.failures.size())
     << ",\"cells_failed\":" << outcome.failures.size() << ",\"failures\":[";
  for (std::size_t k = 0; k < outcome.failures.size(); ++k) {
    const CellFailure& f = outcome.failures[k];
    if (k) os << ',';
    os << "{\"scheduler\":\"" << json_escaped(f.label)
       << "\",\"procs\":" << f.procs << ",\"kind\":\"" << json_escaped(f.kind)
       << "\",\"attempts\":" << f.attempts << ",\"message\":\""
       << json_escaped(f.message) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

namespace {

/// Removes every per-cell checkpoint (and stray temp file) under `dir`.
void clear_checkpoints(const std::filesystem::path& dir) {
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.size() >= 5 && (name.ends_with(".cell") ||
                             name.ends_with(".cell.tmp")))
      std::filesystem::remove(e.path(), ec);
  }
  std::filesystem::remove(dir / kManifestName, ec);
}

bool manifest_matches(const std::filesystem::path& dir,
                      const std::string& identity) {
  std::ifstream in(dir / kManifestName);
  if (!in) return false;
  std::string schema, key, value;
  if (!std::getline(in, schema) || schema != kManifestSchema) return false;
  while (in >> key >> value)
    if (key == "identity") return value == identity;
  return false;
}

std::string manifest_content(const std::string& sweep_id,
                             const std::vector<SweepCellSpec>& cells,
                             const std::string& identity) {
  std::ostringstream os;
  os << kManifestSchema << '\n'
     << "sweep " << sweep_id << '\n'
     << "cells " << cells.size() << '\n'
     << "identity " << identity << '\n';
  return os.str();
}

enum class CellState : char { kPending, kOk, kFailed };

}  // namespace

SweepOutcome run_sweep(const std::string& sweep_id,
                       const std::vector<SweepCellSpec>& cells,
                       const SweepOptions& opts, std::ostream* log) {
  opts.validate();
  for (std::size_t a = 0; a < cells.size(); ++a) {
    AFS_CHECK_MSG(cells[a].run != nullptr && !cells[a].label.empty(),
                  "sweep cell " << a << " has no runner or empty label");
    for (std::size_t b = a + 1; b < cells.size(); ++b)
      AFS_CHECK_MSG(cells[a].label != cells[b].label ||
                        cells[a].procs != cells[b].procs,
                    "duplicate sweep cell (" << cells[a].label << ", P="
                                             << cells[a].procs << ")");
  }

  SweepOutcome outcome;
  outcome.cells_total = static_cast<int>(cells.size());
  std::vector<CellState> state(cells.size(), CellState::kPending);

  // ---- checkpoint directory: load (resume) or reset (cold start) ----
  const bool ckpt = !opts.checkpoint_dir.empty();
  const std::filesystem::path dir(opts.checkpoint_dir);
  if (ckpt) {
    std::filesystem::create_directories(dir);
    const std::string identity = sweep_identity(sweep_id, cells);
    const bool match = manifest_matches(dir, identity);
    if (opts.resume && match) {
      for (std::size_t k = 0; k < cells.size(); ++k) {
        std::ifstream in(
            cell_checkpoint_path(opts.checkpoint_dir, cells[k].label,
                                 cells[k].procs));
        if (!in) continue;
        std::ostringstream buf;
        buf << in.rdbuf();
        SimResult r;
        if (!parse_sim_result(buf.str(), r)) continue;  // corrupt: recompute
        outcome.results[cells[k].label][cells[k].procs] = r;
        state[k] = CellState::kOk;
        ++outcome.cells_resumed;
      }
      if (log)
        *log << "  [sweep " << sweep_id << "] resumed " << outcome.cells_resumed
             << "/" << cells.size() << " cells from " << opts.checkpoint_dir
             << "\n";
    } else {
      if (opts.resume && log)
        *log << "  [sweep " << sweep_id << "] no matching checkpoint manifest"
             << " in " << opts.checkpoint_dir << "; recomputing all cells\n";
      clear_checkpoints(dir);
      write_file_atomic((dir / kManifestName).string(),
                        manifest_content(sweep_id, cells, identity));
    }
  }

  // ---- execute the remaining cells ----
  CancelToken sweep_token(opts.cancel);
  if (opts.sweep_timeout > 0.0) sweep_token.set_timeout(opts.sweep_timeout);

  std::mutex mu;  // guards outcome, state and log

  auto record_failure = [&](std::size_t k, std::string kind,
                            std::string message, int attempts) {
    std::scoped_lock lock(mu);
    state[k] = CellState::kFailed;
    outcome.failures.push_back({cells[k].label, cells[k].procs,
                                std::move(kind), std::move(message), attempts});
    const CellFailure& f = outcome.failures.back();
    if (log)
      *log << "  " << f.label << " P=" << f.procs << ": FAILED [" << f.kind
           << "] after " << f.attempts << " attempt(s): " << f.message << "\n";
  };

  auto run_cell = [&](std::size_t k) {
    const SweepCellSpec& cell = cells[k];
    const auto cell_start = std::chrono::steady_clock::now();
    int attempts = 0;
    for (;;) {
      if (sweep_token.cancelled()) {
        record_failure(k, "cancelled", "sweep deadline/abort fired", attempts);
        return;
      }
      ++attempts;
      CancelToken token(&sweep_token);
      if (opts.cell_timeout > 0.0) token.set_timeout(opts.cell_timeout);
      try {
        SimResult r = cell.run(token);
        if (ckpt)
          write_file_atomic(
              cell_checkpoint_path(opts.checkpoint_dir, cell.label, cell.procs),
              serialize_sim_result(r));
        std::scoped_lock lock(mu);
        state[k] = CellState::kOk;
        outcome.results[cell.label][cell.procs] = std::move(r);
        if (log)
          *log << "  " << cell.label << " P=" << cell.procs << ": done ("
               << fmt_secs(elapsed_s(cell_start)) << "s"
               << (attempts > 1 ? ", retried" : "") << ")\n";
        return;
      } catch (const CancelledError& e) {
        // Sweep-wide cancellation and a cell deadline both surface here;
        // the sweep token disambiguates. Neither is retried — a timed-out
        // cell would time out again.
        record_failure(k, sweep_token.cancelled() ? "cancelled" : "timeout",
                       e.what(), attempts);
        return;
      } catch (const CheckFailure& e) {
        // Broken invariant: deterministic, never transient. Not retried.
        record_failure(k, "invariant", e.what(), attempts);
        return;
      } catch (const PoisonedCellError& e) {
        // The cell is blacklisted by its executor (it crashed workers
        // repeatedly): deterministic for the executor's lifetime, so a
        // retry would only burn another restart token. Not retried.
        record_failure(k, "poison", e.what(), attempts);
        return;
      } catch (const DegradedError& e) {
        // The executor is in cache-only mode (restart budget exhausted).
        // Recovery is time-based, not attempt-based — retrying here would
        // spin against an empty token bucket. Not retried.
        record_failure(k, "degraded", e.what(), attempts);
        return;
      } catch (const std::exception& e) {
        if (attempts > opts.max_retries) {
          record_failure(k, "error", e.what(), attempts);
          return;
        }
        const double delay =
            retry_backoff(opts, cell.label, cell.procs, attempts);
        if (log) {
          std::scoped_lock lock(mu);
          *log << "  " << cell.label << " P=" << cell.procs << ": attempt "
               << attempts << " failed (" << e.what() << "); retrying in "
               << fmt_secs(delay, 3) << "s\n";
        }
        if (opts.sleep_fn)
          opts.sleep_fn(delay);
        else
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
  };

  if (opts.jobs == 1) {
    // Serial mode runs in the caller's thread in declaration order — the
    // exact legacy execution order, kept as the bit-identity reference.
    for (std::size_t k = 0; k < cells.size(); ++k)
      if (state[k] == CellState::kPending) run_cell(k);
  } else {
    // A borrowed pool (driver-wide) or a private one per sweep. Either
    // way the pool's cancel token is scoped to this sweep: installed
    // before submission, cleared after the drain so the next sweep on a
    // shared pool starts with a clean slate.
    std::optional<ThreadPool> own;
    ThreadPool& pool = opts.pool ? *opts.pool : own.emplace(opts.jobs);
    pool.set_cancel(&sweep_token);
    for (std::size_t k = 0; k < cells.size(); ++k)
      if (state[k] == CellState::kPending)
        pool.submit([&run_cell, k] { run_cell(k); });
    pool.drain();
    pool.set_cancel(nullptr);
  }

  // Cells the pool discarded after a sweep-wide cancellation never ran.
  for (std::size_t k = 0; k < cells.size(); ++k)
    if (state[k] == CellState::kPending)
      record_failure(k, "cancelled", "sweep cancelled before the cell started",
                     0);

  std::sort(outcome.failures.begin(), outcome.failures.end(),
            [](const CellFailure& a, const CellFailure& b) {
              return a.label != b.label ? a.label < b.label
                                        : a.procs < b.procs;
            });
  return outcome;
}

}  // namespace afs
