// Parallel reduction over a loop's iterations, scheduled like any other
// parallel loop. Each worker folds its chunks into a private accumulator
// (no sharing, no atomics in the hot path); partials are combined in
// worker-id order at the end.
//
// Determinism note: the *set* of iterations each worker receives depends
// on the scheduler, so floating-point reductions are deterministic only up
// to re-association (exactly like OpenMP reductions). Integer / exact
// reductions are schedule-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "util/align.hpp"

namespace afs {

/// Reduces map(range) over [0, n): each worker computes
/// acc = combine(acc, map(range)) over its chunks, starting from
/// `identity`; partials are combined left-to-right by worker id.
template <typename T>
T parallel_reduce(ThreadPool& pool, Scheduler& sched, std::int64_t n,
                  T identity,
                  const std::function<T(IterRange, int)>& map,
                  const std::function<T(T, T)>& combine,
                  const ParallelForOptions& options = {}) {
  std::vector<CacheAligned<T>> partial(static_cast<std::size_t>(pool.size()),
                                       CacheAligned<T>(identity));
  parallel_for(
      pool, sched, n,
      [&map, &combine, &partial](IterRange r, int worker) {
        T& acc = partial[static_cast<std::size_t>(worker)].value;
        acc = combine(acc, map(r, worker));
      },
      options);
  T result = identity;
  for (const auto& p : partial) result = combine(result, p.value);
  return result;
}

/// Convenience: sums value(i) over [0, n).
template <typename T>
T parallel_sum(ThreadPool& pool, Scheduler& sched, std::int64_t n,
               const std::function<T(std::int64_t)>& value) {
  return parallel_reduce<T>(
      pool, sched, n, T{},
      [&value](IterRange r, int) {
        T acc{};
        for (std::int64_t i = r.begin; i < r.end; ++i) acc += value(i);
        return acc;
      },
      [](T a, T b) { return a + b; });
}

}  // namespace afs
