// Abstract out-of-process execution of sweep cells.
//
// The sweep runner's default mode executes a cell's closure in-process:
// fast, but a segfault or abort() inside the engine takes down the whole
// daemon and every in-flight request with it. A CellExecutor is the seam
// that lets the service layer substitute a supervised worker subprocess
// (service/worker.hpp) without the runtime layer depending on the service
// layer: the experiment harness calls `execute()` for any cell it can
// describe declaratively, and the implementation decides where the
// simulation actually runs.
//
// Cells are closures and closures do not serialize, so an executor does
// not ship code — it ships a *recipe* (CellExecSpec): either the id of a
// registered experiment or the grid spec strings the `afs_sweep run
// --kernel=...` grammar already parses. The worker rebuilds the same
// FigureSpec from the recipe, finds the scheduler by label, and runs the
// one (scheduler, P) cell. Determinism makes this sound: a cell's result
// is a pure function of (machine, program, scheduler, P, options), so the
// subprocess result is bit-identical to the in-process one.
//
// Failure taxonomy (what the sweep runner maps each exception to):
//   std::runtime_error  — worker crashed or misbehaved; transient,
//                         retried under the runner's backoff schedule;
//   PoisonedCellError   — the cell crashed workers `poison_strikes` times
//                         and is blacklisted for the executor's lifetime;
//                         CellFailure kind "poison", never retried;
//   DegradedError       — the executor's restart budget is exhausted and
//                         no worker is available; CellFailure kind
//                         "degraded", never retried (store hits are still
//                         served upstream — degraded mode is cache-only);
//   CancelledError      — the cell's deadline or the request's token
//                         fired; the worker was killed; classified as
//                         timeout/cancelled exactly like in-process runs;
//   CheckFailure        — the worker reported a broken engine invariant
//                         (deterministic; not retried).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sim_result.hpp"
#include "util/cancel.hpp"

namespace afs {

/// Declarative recipe a worker subprocess rebuilds a cell from. Exactly
/// one of the two shapes is populated:
///   * `experiment` — id of a registered experiment whose FigureSpec the
///     registry can rebuild (figures; never bespoke tables);
///   * the grid fields — the same spec strings `afs_sweep run --kernel=`
///     parses, for ad-hoc grids that exist in no registry.
struct CellExecSpec {
  std::string experiment;  ///< registered experiment id; empty for grids
  std::string kernel;      ///< parse_kernel_spec grammar
  std::string machine;     ///< parse_machine_spec grammar
  std::string schedulers;  ///< comma-separated make_scheduler specs
  std::string perturb;     ///< parse_perturb_spec grammar; empty = none
  std::vector<int> procs;  ///< the grid's processor sweep

  bool valid() const { return !experiment.empty() || !kernel.empty(); }
};

/// The engine A/B toggles a cell run carries besides its recipe — the
/// only SimOptions a CLI can change that the recipe does not already
/// encode. All four are proven bit-identical on/off; they exist so A/B
/// sweeps (and the store keys derived from them) actually exercise both
/// engines.
struct EngineToggles {
  bool batch_iterations = true;  ///< iteration-batching fast path
  bool memory_fast_path = true;  ///< exclusive-residency shortcut
  bool calendar_queue = true;    ///< calendar-ring EventCore
  bool epoch_batch = true;       ///< warm-state reuse across runs
};

/// The cell is blacklisted: it crashed workers `poison_strikes` times.
/// Deterministic for the executor's lifetime — never retried.
class PoisonedCellError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The executor is in degraded (cache-only) mode: its worker restart
/// budget is exhausted. Misses are rejected until the budget refills.
class DegradedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CellExecutor {
 public:
  virtual ~CellExecutor() = default;

  /// Executes one (label, procs) cell of the sweep `spec` describes.
  /// `toggles` carries the caller's engine A/B switches. Blocks until the
  /// result is available; polls `token` and kills the worker when it
  /// fires. Throws per the taxonomy in the header comment.
  virtual SimResult execute(const CellExecSpec& spec, const std::string& label,
                            int procs, const EngineToggles& toggles,
                            const CancelToken& token) = 0;
};

}  // namespace afs
