// Per-worker execution statistics for the real-thread substrate.
//
// The paper's analysis revolves around who executed what and how evenly
// the work spread; WorkerStats makes that observable on real threads so
// applications (and our integration tests) can measure imbalance and
// migration without a profiler.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace afs {

struct WorkerStats {
  std::int64_t chunks = 0;      ///< grabs executed by this worker
  std::int64_t iterations = 0;  ///< iterations executed by this worker
  double busy_seconds = 0.0;    ///< wall time inside the loop body
};

struct RunStats {
  std::vector<WorkerStats> workers;
  double elapsed_seconds = 0.0;  ///< wall time of the whole parallel_for

  std::int64_t total_iterations() const {
    std::int64_t t = 0;
    for (const auto& w : workers) t += w.iterations;
    return t;
  }

  /// max/mean of per-worker iteration counts: 1.0 = perfectly even.
  double iteration_imbalance() const;

  /// max/mean of per-worker busy time: the paper's real imbalance metric.
  double time_imbalance() const;
};

/// parallel_for that additionally measures per-worker work. Body semantics
/// are identical to parallel_for.
RunStats parallel_for_timed(ThreadPool& pool, Scheduler& sched,
                            std::int64_t n, const ChunkBody& body,
                            const ParallelForOptions& options = {});

}  // namespace afs
