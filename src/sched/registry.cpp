#include "sched/registry.hpp"

#include <algorithm>
#include <cctype>

#include "sched/adaptive/adapt_scheduler.hpp"
#include "sched/adaptive/afs_nn.hpp"
#include "sched/adaptive/tailor_scheduler.hpp"
#include "sched/adaptive/workshare_scheduler.hpp"
#include "sched/affinity_scheduler.hpp"
#include "sched/central_scheduler.hpp"
#include "sched/mod_factoring_scheduler.hpp"
#include "sched/reverse_scheduler.hpp"
#include "sched/static_scheduler.hpp"
#include "util/check.hpp"

namespace afs {

namespace {

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

// Parses "NAME(<arg>)" -> arg string; empty if no parenthesis.
bool split_arg(const std::string& spec, const std::string& prefix,
               std::string* arg) {
  if (spec.rfind(prefix + "(", 0) != 0 || spec.back() != ')') return false;
  *arg = spec.substr(prefix.size() + 1,
                     spec.size() - prefix.size() - 2);
  return true;
}

// Numeric parsers that turn malformed specs into CheckFailure with the
// offending text instead of leaking std::invalid_argument from stoi.
std::int64_t parse_int(const std::string& arg, const std::string& spec) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(arg, &used);
    AFS_CHECK_MSG(used == arg.size(), "trailing junk in " << spec);
    return v;
  } catch (const CheckFailure&) {
    throw;
  } catch (const std::exception&) {
    AFS_CHECK_MSG(false, "bad integer argument in scheduler spec " << spec);
  }
  return 0;  // unreachable
}

double parse_double(const std::string& arg, const std::string& spec) {
  try {
    std::size_t used = 0;
    const double v = std::stod(arg, &used);
    AFS_CHECK_MSG(used == arg.size(), "trailing junk in " << spec);
    return v;
  } catch (const CheckFailure&) {
    throw;
  } catch (const std::exception&) {
    AFS_CHECK_MSG(false, "bad numeric argument in scheduler spec " << spec);
  }
  return 0;  // unreachable
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& raw_spec) {
  const std::string spec = upper(raw_spec);
  std::string arg;

  if (spec.rfind("REV:", 0) == 0)
    return std::make_unique<ReverseScheduler>(
        make_scheduler(raw_spec.substr(4)));

  if (spec == "SS") return std::make_unique<CentralScheduler>(make_self_sched());
  if (split_arg(spec, "CHUNK", &arg))
    return std::make_unique<CentralScheduler>(
        make_fixed_chunk(parse_int(arg, raw_spec)));
  if (spec == "GSS") return std::make_unique<CentralScheduler>(make_gss());
  if (split_arg(spec, "GSS", &arg))
    return std::make_unique<CentralScheduler>(
        make_gss(static_cast<int>(parse_int(arg, raw_spec))));
  if (spec == "FACTORING" || spec == "FACT")
    return std::make_unique<CentralScheduler>(make_factoring());
  if (spec == "TRAPEZOID" || spec == "TSS")
    return std::make_unique<CentralScheduler>(make_trapezoid());
  if (split_arg(spec, "TAPER", &arg))
    return std::make_unique<CentralScheduler>(
        make_taper(parse_double(arg, raw_spec)));
  if (spec == "STATIC") return std::make_unique<StaticScheduler>();
  if (spec == "BEST-STATIC" || spec == "BEST")
    return std::make_unique<BestStaticScheduler>(IterationCostFn{});
  if (spec == "MOD-FACTORING" || spec == "MODFACT")
    return std::make_unique<ModFactoringScheduler>();
  if (spec == "AFS") return std::make_unique<AffinityScheduler>();
  if (spec == "AFS-LE") {
    AffinityOptions o;
    o.seeding = AffinityOptions::Seeding::kLastExecuted;
    return std::make_unique<AffinityScheduler>(o);
  }
  if (spec == "AFS-RAND") {
    AffinityOptions o;
    o.victim = AffinityOptions::Victim::kRandomProbe;
    return std::make_unique<AffinityScheduler>(o);
  }
  if (split_arg(spec, "AFS-RAND", &arg)) {
    AffinityOptions o;
    o.victim = AffinityOptions::Victim::kRandomProbe;
    o.probe_count = static_cast<int>(parse_int(arg, raw_spec));
    return std::make_unique<AffinityScheduler>(o);
  }
  if (spec == "WS") {
    // Randomized work stealing as a modern baseline: owners take half of
    // their queue per grab, thieves probe random victims and steal half.
    AffinityOptions o;
    o.k = 2;
    o.steal_denom = 2;
    o.victim = AffinityOptions::Victim::kRandomProbe;
    return std::make_unique<AffinityScheduler>(o);
  }
  if (split_arg(spec, "AFS", &arg)) {
    AffinityOptions o;
    if (arg.rfind("K=", 0) == 0) {
      o.k = static_cast<int>(parse_int(arg.substr(2), raw_spec));
    } else if (arg.rfind("STEAL=", 0) == 0) {
      o.steal_denom = static_cast<int>(parse_int(arg.substr(6), raw_spec));
    } else {
      o.k = static_cast<int>(parse_int(arg, raw_spec));
    }
    return std::make_unique<AffinityScheduler>(o);
  }
  if (spec == "ADAPT") return std::make_unique<AdaptScheduler>();
  if (spec == "TAILOR") return std::make_unique<TailorScheduler>();
  if (split_arg(spec, "TAILOR", &arg)) {
    TailorOptions o;
    o.threshold = parse_double(arg, raw_spec);
    AFS_CHECK_MSG(o.threshold >= 0.0 && o.threshold <= 1.0,
                  "TAILOR threshold must be in [0, 1]: " << raw_spec);
    return std::make_unique<TailorScheduler>(o);
  }
  if (spec == "WORKSHARE") return std::make_unique<WorkshareScheduler>();
  if (spec == "AFS-NN") return make_afs_nn();

  // Unknown spec: fail with the whole grammar, so the message from a typo
  // in a sweep config or daemon request is self-service.
  std::string grammar;
  for (const SchedulerSpecInfo& info : scheduler_spec_infos())
    grammar += "\n  " + info.spec + "  - " + info.description;
  AFS_CHECK_MSG(false, "unknown scheduler spec: " << raw_spec
                                                  << "\nvalid specs:" << grammar);
  return nullptr;  // unreachable
}

std::vector<std::string> paper_scheduler_specs() {
  return {"STATIC",    "SS",         "GSS", "FACTORING", "TRAPEZOID",
          "MOD-FACTORING", "AFS", "BEST-STATIC"};
}

std::vector<std::string> butterfly_scheduler_specs() {
  return {"GSS", "TRAPEZOID", "AFS"};
}

std::vector<std::string> adaptive_scheduler_specs() {
  return {"ADAPT", "TAILOR(0.5)", "WORKSHARE", "AFS-NN"};
}

const std::vector<SchedulerSpecInfo>& scheduler_spec_infos() {
  static const std::vector<SchedulerSpecInfo> kInfos = {
      {"STATIC", "pre-split N/P blocks, no run-time queue access"},
      {"BEST-STATIC", "static blocks balanced by the cost oracle"},
      {"SS", "self-scheduling: one iteration per central-queue grab"},
      {"CHUNK(<K>)", "fixed chunks of K iterations from a central queue"},
      {"GSS", "guided self-scheduling: grab ceil(remaining/P)"},
      {"GSS(<k>)", "GSS with a minimum chunk of k iterations"},
      {"FACTORING", "batched halving: P chunks of ceil(remaining/2P)"},
      {"TRAPEZOID", "trapezoid self-scheduling: linearly decreasing chunks"},
      {"TAPER(<cv>)", "Lucco's taper for iteration-cost variation cv"},
      {"MOD-FACTORING", "factoring with indexed central-queue accesses"},
      {"AFS", "affinity scheduling: per-proc queues, most-loaded steal"},
      {"AFS(k=<k>)", "AFS taking 1/k of the local queue per grab"},
      {"AFS(steal=<d>)", "AFS stealing 1/d of the victim's queue"},
      {"AFS-LE", "AFS seeding epochs with last-executed iterations"},
      {"AFS-RAND", "AFS with randomized two-choice victim probing"},
      {"AFS-RAND(<n>)", "AFS probing n random victims per steal"},
      {"WS", "randomized work stealing: take/steal half, random victims"},
      {"ADAPT", "adaptive self-scheduling: chunk size from an EWMA of "
                "observed per-chunk runtimes"},
      {"TAILOR", "AFS re-homing iteration ranges to their previous "
                 "executor when epoch affinity drops below 0.5"},
      {"TAILOR(<threshold>)", "TAILOR with an explicit re-home threshold "
                              "in [0, 1]"},
      {"WORKSHARE", "sender-initiated sharing: overloaded processors push "
                    "chunks to the most-idle processor"},
      {"AFS-NN", "AFS stealing from the nearest non-empty queue by ring "
                 "distance"},
      {"REV:<spec>", "run <spec> over the reversed index space"},
  };
  return kInfos;
}

}  // namespace afs
