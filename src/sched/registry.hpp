// String-spec scheduler factory, used by benches, examples and tests so an
// algorithm can be selected from the command line.
//
// Grammar (case-insensitive; see scheduler_spec_infos() for the same list
// with descriptions, and docs/SCHEDULERS.md for the algorithms):
//   "SS" | "CHUNK(<K>)" | "GSS" | "GSS(<k>)" | "FACTORING" | "FACT"
//   | "TRAPEZOID" | "TSS" | "TAPER(<cv>)" | "STATIC" | "BEST-STATIC"
//   | "MOD-FACTORING" | "MODFACT" | "AFS" | "AFS(k=<k>)"
//   | "AFS(steal=<d>)" | "AFS-LE" | "AFS-RAND" | "AFS-RAND(<n>)" | "WS"
//   | "ADAPT" | "TAILOR" | "TAILOR(<threshold>)" | "WORKSHARE" | "AFS-NN"
//   | "REV:<spec>"
//
// BEST-STATIC built through the registry has a uniform cost oracle; use
// BestStaticScheduler directly (or set_cost_model) when the oracle must
// know the input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace afs {

/// Creates a scheduler from a spec string. Throws CheckFailure on an
/// unknown spec; the message lists every valid spec form.
std::unique_ptr<Scheduler> make_scheduler(const std::string& spec);

/// The eight algorithms the paper evaluates head-to-head on the Iris
/// (§4.1), in the paper's order.
std::vector<std::string> paper_scheduler_specs();

/// The dynamic subset used for the Butterfly / Symmetry experiments.
std::vector<std::string> butterfly_scheduler_specs();

/// The feedback-driven / topology-aware frontier beyond the paper's nine
/// (src/sched/adaptive/), in the order the frontier experiments sweep them.
std::vector<std::string> adaptive_scheduler_specs();

/// One entry per spec form make_scheduler() accepts.
struct SchedulerSpecInfo {
  std::string spec;         ///< canonical form, e.g. "TAILOR(<threshold>)"
  std::string description;  ///< one line, shown by `afs_sweep list --schedulers`
};

/// The registry's full grammar, in declaration order. Single source of
/// truth for `afs_sweep list --schedulers` and the unknown-spec error.
const std::vector<SchedulerSpecInfo>& scheduler_spec_infos();

}  // namespace afs
