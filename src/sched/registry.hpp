// String-spec scheduler factory, used by benches, examples and tests so an
// algorithm can be selected from the command line.
//
// Grammar (case-insensitive):
//   "SS" | "CHUNK(<K>)" | "GSS" | "GSS(<k>)" | "FACTORING" | "FACT"
//   | "TRAPEZOID" | "TSS" | "TAPER(<cv>)" | "STATIC" | "BEST-STATIC"
//   | "MOD-FACTORING" | "MODFACT" | "AFS" | "AFS(k=<k>)" | "AFS-LE"
//   | "REV:<spec>"
//
// BEST-STATIC built through the registry has a uniform cost oracle; use
// BestStaticScheduler directly (or set_cost_model) when the oracle must
// know the input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace afs {

/// Creates a scheduler from a spec string. Throws CheckFailure on an
/// unknown spec.
std::unique_ptr<Scheduler> make_scheduler(const std::string& spec);

/// The eight algorithms the paper evaluates head-to-head on the Iris
/// (§4.1), in the paper's order.
std::vector<std::string> paper_scheduler_specs();

/// The dynamic subset used for the Butterfly / Symmetry experiments.
std::vector<std::string> butterfly_scheduler_specs();

}  // namespace afs
