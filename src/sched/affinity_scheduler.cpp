#include "sched/affinity_scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace afs {

IterRange affinity_initial_chunk(std::int64_t n, int p, int i) {
  AFS_CHECK(p >= 1 && i >= 0 && i < p);
  const std::int64_t begin = ceil_div(static_cast<std::int64_t>(i) * n, p);
  const std::int64_t end =
      std::min(n, ceil_div((static_cast<std::int64_t>(i) + 1) * n, p));
  return {begin, std::max(begin, end)};
}

AffinityScheduler::AffinityScheduler(AffinityOptions options)
    : options_(options) {
  AFS_CHECK(options_.k >= 0);
  AFS_CHECK(options_.steal_denom >= 0);
  AFS_CHECK(options_.probe_count >= 1);
  name_ = "AFS";
  if (options_.k > 0) name_ += "(k=" + std::to_string(options_.k) + ")";
  if (options_.steal_denom > 0)
    name_ += "(steal=1/" + std::to_string(options_.steal_denom) + ")";
  if (options_.seeding == AffinityOptions::Seeding::kLastExecuted)
    name_ += "-LE";
  if (options_.victim == AffinityOptions::Victim::kRandomProbe)
    name_ += "-RAND(" + std::to_string(options_.probe_count) + ")";
  if (options_.victim == AffinityOptions::Victim::kNearestNeighbor)
    name_ += "-NN";
}

const std::string& AffinityScheduler::name() const { return name_; }

void AffinityScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  n_ = n;
  k_ = options_.k > 0 ? options_.k : p;
  steal_denom_ = options_.steal_denom > 0 ? options_.steal_denom : p;

  if (p != p_) {
    // (Re)build per-processor queues; preserve nothing across P changes.
    queues_.clear();
    exec_log_.clear();
    probe_rng_.clear();
    for (int i = 0; i < p; ++i) {
      queues_.push_back(std::make_unique<CacheAligned<LocalQueue>>());
      exec_log_.push_back(
          std::make_unique<CacheAligned<std::vector<IterRange>>>());
      probe_rng_.push_back(std::make_unique<CacheAligned<Xoshiro256>>(
          Xoshiro256(options_.probe_seed + static_cast<std::uint64_t>(i))));
    }
    p_ = p;
    have_seed_ = false;
  }

  const bool use_seed = options_.seeding ==
                            AffinityOptions::Seeding::kLastExecuted &&
                        have_seed_ && seed_n_ == n && seed_p_ == p;
  for (int i = 0; i < p_; ++i) {
    LocalQueue& q = queues_[i]->value;
    q.ranges.clear();
    std::int64_t total = 0;
    if (use_seed) {
      for (const IterRange& r : next_seed_[i]) {
        q.ranges.push_back(r);
        total += r.size();
      }
    } else {
      const IterRange r = affinity_initial_chunk(n, p, i);
      if (!r.empty()) {
        q.ranges.push_back(r);
        total = r.size();
      }
    }
    q.size.store(total, std::memory_order_relaxed);
    exec_log_[i]->value.clear();
  }
  ++loops_;
}

Grab AffinityScheduler::local_grab(int worker) {
  LocalQueue& q = queues_[worker]->value;
  std::scoped_lock lock(q.mutex);
  std::int64_t total = q.size.load(std::memory_order_relaxed);
  if (total <= 0) return {};
  // Take ceil(total/k) iterations, clipped to the front range: a grab is a
  // single contiguous range (fragmented queues — only possible under
  // last-executed seeding — may need more grabs, which is exactly the
  // fragmentation cost the paper discusses in §4.3).
  const std::int64_t want = ceil_div(total, k_);
  IterRange& front = q.ranges.front();
  const IterRange taken = front.take_front(want);
  if (front.empty()) q.ranges.pop_front();
  q.size.store(total - taken.size(), std::memory_order_relaxed);
  ++q.stats.local_grabs;
  q.stats.iters_local += taken.size();
  return {taken, GrabKind::kLocal, worker};
}

int AffinityScheduler::find_victim(int thief) {
  // Reading loads requires no synchronization (paper, footnote 4).
  if (options_.victim == AffinityOptions::Victim::kNearestNeighbor) {
    // Locality-aware victim order: scan outward from the thief by ring
    // distance (right neighbor before left at each distance) and steal
    // from the first non-empty queue. On a ring or mesh the nearest
    // victim's cache lines are the cheapest to migrate; the scan still
    // covers every queue, so termination detection stays exact.
    for (int dist = 1; dist < p_; ++dist) {
      for (const int cand : {(thief + dist) % p_, (thief - dist + p_) % p_}) {
        if (cand == thief) continue;
        if (queues_[static_cast<std::size_t>(cand)]->value.size.load(
                std::memory_order_relaxed) > 0)
          return cand;
      }
    }
    return -1;
  }
  if (options_.victim == AffinityOptions::Victim::kRandomProbe) {
    // Scalable variant: sample probe_count queues; if none of the sample
    // has work, fall back to a full scan so termination detection stays
    // exact (returning -1 means "the loop is drained").
    Xoshiro256& rng = probe_rng_[static_cast<std::size_t>(thief)]->value;
    int victim = -1;
    std::int64_t best = 0;
    for (int probe = 0; probe < options_.probe_count; ++probe) {
      const int i = static_cast<int>(rng.next_in(0, p_ - 1));
      const std::int64_t s =
          queues_[i]->value.size.load(std::memory_order_relaxed);
      if (s > best) {
        best = s;
        victim = i;
      }
    }
    if (victim >= 0) return victim;
  }
  int victim = -1;
  std::int64_t best = 0;
  for (int i = 0; i < p_; ++i) {
    const std::int64_t s = queues_[i]->value.size.load(std::memory_order_relaxed);
    if (s > best) {
      best = s;
      victim = i;
    }
  }
  return victim;
}

Grab AffinityScheduler::steal(int thief, int victim) {
  (void)thief;  // the queue's stats attribute steals to the victim side
  LocalQueue& q = queues_[victim]->value;
  std::scoped_lock lock(q.mutex);
  const std::int64_t total = q.size.load(std::memory_order_relaxed);
  if (total <= 0) return {};  // Drained while we were scanning; retry.
  const std::int64_t want = ceil_div(total, steal_denom_);
  IterRange& back = q.ranges.back();
  const IterRange taken = back.take_back(want);
  if (back.empty()) q.ranges.pop_back();
  q.size.store(total - taken.size(), std::memory_order_relaxed);
  ++q.stats.remote_grabs;
  q.stats.iters_remote += taken.size();
  return {taken, GrabKind::kRemote, victim};
}

Grab AffinityScheduler::next(int worker) {
  AFS_CHECK(worker >= 0 && worker < p_);
  Grab g = local_grab(worker);
  while (g.done()) {
    const int victim = find_victim(worker);
    if (victim < 0) return {};  // All queues empty: loop finished.
    g = steal(worker, victim);
    // A failed steal (victim drained between scan and lock) retries the scan.
  }
  if (options_.seeding == AffinityOptions::Seeding::kLastExecuted)
    exec_log_[worker]->value.push_back(g.range);
  return g;
}

void AffinityScheduler::end_loop() {
  if (options_.seeding != AffinityOptions::Seeding::kLastExecuted) return;
  // Build next epoch's seed: each processor keeps what it executed, with
  // adjacent ranges coalesced to limit fragmentation.
  next_seed_.assign(p_, {});
  for (int i = 0; i < p_; ++i) {
    auto ranges = exec_log_[i]->value;
    std::sort(ranges.begin(), ranges.end(),
              [](const IterRange& a, const IterRange& b) {
                return a.begin < b.begin;
              });
    for (const IterRange& r : ranges) {
      if (r.empty()) continue;
      if (!next_seed_[i].empty() && next_seed_[i].back().end == r.begin) {
        next_seed_[i].back().end = r.end;
      } else {
        next_seed_[i].push_back(r);
      }
    }
  }
  have_seed_ = true;
  seed_n_ = n_;
  seed_p_ = p_;
}

SyncStats AffinityScheduler::stats() const {
  SyncStats s;
  s.loops = loops_;
  s.queues.reserve(queues_.size());
  for (const auto& q : queues_) {
    std::scoped_lock lock(q->value.mutex);
    s.queues.push_back(q->value.stats);
  }
  return s;
}

void AffinityScheduler::reset_stats() {
  for (auto& q : queues_) {
    std::scoped_lock lock(q->value.mutex);
    q->value.stats = {};
  }
  loops_ = 0;
}

std::unique_ptr<Scheduler> AffinityScheduler::clone() const {
  return std::make_unique<AffinityScheduler>(options_);
}

}  // namespace afs
