// The result of one scheduling decision, annotated with enough detail for
// both the sync-operation accounting of Tables 3-5 and the simulator's
// cost model (which queue was locked, local vs remote).
#pragma once

#include <cstdint>
#include <string_view>

#include "sched/range.hpp"

namespace afs {

enum class GrabKind : std::uint8_t {
  kNone,     ///< No iterations left anywhere: the worker is done.
  kCentral,  ///< Removed a chunk from the (single) central work queue.
  kLocal,    ///< Removed a chunk from the worker's own local queue (AFS).
  kRemote,   ///< Stole a chunk from another processor's queue (AFS).
  kStatic,   ///< Statically pre-assigned chunk; no queue access at run time.
};

constexpr std::string_view to_string(GrabKind k) {
  switch (k) {
    case GrabKind::kNone: return "none";
    case GrabKind::kCentral: return "central";
    case GrabKind::kLocal: return "local";
    case GrabKind::kRemote: return "remote";
    case GrabKind::kStatic: return "static";
  }
  return "?";
}

struct Grab {
  IterRange range{};                 ///< Iterations to execute (may be empty).
  GrabKind kind = GrabKind::kNone;   ///< How they were obtained.
  int queue = -1;                    ///< Queue index touched (0 for central).

  bool done() const { return kind == GrabKind::kNone; }
};

}  // namespace afs
