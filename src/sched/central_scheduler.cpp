#include "sched/central_scheduler.hpp"

#include "util/check.hpp"

namespace afs {

CentralScheduler::CentralScheduler(std::unique_ptr<ChunkPolicy> policy)
    : policy_(std::move(policy)) {
  AFS_CHECK(policy_ != nullptr);
}

const std::string& CentralScheduler::name() const { return policy_->name(); }

void CentralScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  next_ = 0;
  end_ = n;
  policy_->reset(n, p);
  ++loops_;
}

Grab CentralScheduler::next(int worker) {
  (void)worker;  // A central queue serves all workers identically.
  std::scoped_lock lock(mutex_);
  const std::int64_t remaining = end_ - next_;
  if (remaining <= 0) return {};
  const std::int64_t c = policy_->next_chunk(remaining);
  AFS_DCHECK(c >= 1 && c <= remaining);
  Grab g{{next_, next_ + c}, GrabKind::kCentral, 0};
  next_ += c;
  ++queue_stats_.local_grabs;
  queue_stats_.iters_local += c;
  return g;
}

SyncStats CentralScheduler::stats() const {
  std::scoped_lock lock(mutex_);
  return SyncStats{{queue_stats_}, loops_};
}

void CentralScheduler::reset_stats() {
  std::scoped_lock lock(mutex_);
  queue_stats_ = {};
  loops_ = 0;
}

std::unique_ptr<Scheduler> CentralScheduler::clone() const {
  return std::make_unique<CentralScheduler>(policy_->clone());
}

}  // namespace afs
