// Half-open iteration ranges — the currency of every scheduler.
#pragma once

#include <cstdint>
#include <ostream>

namespace afs {

/// A half-open range [begin, end) of loop-iteration indices.
struct IterRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  constexpr std::int64_t size() const { return end - begin; }
  constexpr bool empty() const { return end <= begin; }

  /// Splits off the first `n` iterations (clipped to size()).
  constexpr IterRange take_front(std::int64_t n) {
    const std::int64_t m = n < size() ? n : size();
    IterRange r{begin, begin + m};
    begin += m;
    return r;
  }

  /// Splits off the last `n` iterations (clipped to size()).
  constexpr IterRange take_back(std::int64_t n) {
    const std::int64_t m = n < size() ? n : size();
    IterRange r{end - m, end};
    end -= m;
    return r;
  }

  friend constexpr bool operator==(const IterRange&, const IterRange&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const IterRange& r) {
  return os << '[' << r.begin << ',' << r.end << ')';
}

/// Ceiling division for non-negative operands.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace afs
