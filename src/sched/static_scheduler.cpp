#include "sched/static_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "sched/affinity_scheduler.hpp"  // affinity_initial_chunk
#include "util/check.hpp"

namespace afs {

// ---------------------------------------------------------------- STATIC --

StaticScheduler::StaticScheduler() = default;

const std::string& StaticScheduler::name() const { return name_; }

void StaticScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  n_ = n;
  if (p != p_) {
    taken_.clear();
    for (int i = 0; i < p; ++i)
      taken_.push_back(std::make_unique<CacheAligned<std::atomic<bool>>>());
    p_ = p;
  }
  for (auto& t : taken_) t->value.store(false, std::memory_order_relaxed);
  ++loops_;
}

Grab StaticScheduler::next(int worker) {
  AFS_CHECK(worker >= 0 && worker < p_);
  if (taken_[worker]->value.exchange(true, std::memory_order_relaxed))
    return {};
  const IterRange r = affinity_initial_chunk(n_, p_, worker);
  if (r.empty()) return {};
  return {r, GrabKind::kStatic, worker};
}

SyncStats StaticScheduler::stats() const {
  // Static scheduling performs no run-time queue operations.
  SyncStats s;
  s.loops = loops_;
  s.queues.assign(static_cast<std::size_t>(std::max(p_, 1)), QueueStats{});
  return s;
}

void StaticScheduler::reset_stats() { loops_ = 0; }

std::unique_ptr<Scheduler> StaticScheduler::clone() const {
  return std::make_unique<StaticScheduler>();
}

// ----------------------------------------------------------- BEST-STATIC --

std::vector<IterRange> balanced_contiguous_partition(
    std::int64_t n, int p, const IterationCostFn& costs) {
  AFS_CHECK(n >= 0 && p >= 1);
  std::vector<IterRange> blocks;
  if (n == 0) {
    blocks.assign(static_cast<std::size_t>(p), IterRange{});
    return blocks;
  }

  std::vector<double> cost(static_cast<std::size_t>(n));
  double total = 0.0, maxc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double c = costs ? std::max(0.0, costs(i)) : 1.0;
    cost[static_cast<std::size_t>(i)] = c;
    total += c;
    maxc = std::max(maxc, c);
  }

  // Greedy feasibility test: can [0,n) be covered by <= p contiguous blocks
  // each of cost <= t?
  auto fits = [&](double t) {
    int blocks_used = 1;
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double c = cost[static_cast<std::size_t>(i)];
      if (acc + c > t) {
        if (++blocks_used > p) return false;
        acc = c;
      } else {
        acc += c;
      }
    }
    return true;
  };

  double lo = std::max(maxc, total / p);
  double hi = total;
  for (int it = 0; it < 64 && hi - lo > 1e-9 * std::max(1.0, total); ++it) {
    const double mid = 0.5 * (lo + hi);
    (fits(mid) ? hi : lo) = mid;
  }

  // Materialize the partition at the feasible bottleneck `hi`.
  blocks.reserve(static_cast<std::size_t>(p));
  std::int64_t begin = 0;
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double c = cost[static_cast<std::size_t>(i)];
    if (acc + c > hi && static_cast<int>(blocks.size()) < p - 1 && i > begin) {
      blocks.push_back({begin, i});
      begin = i;
      acc = c;
    } else {
      acc += c;
    }
  }
  blocks.push_back({begin, n});
  while (static_cast<int>(blocks.size()) < p) blocks.push_back({n, n});
  return blocks;
}

BestStaticScheduler::BestStaticScheduler(IterationCostFn costs)
    : costs_(std::move(costs)) {}

BestStaticScheduler::BestStaticScheduler(EpochCostProvider provider)
    : provider_(std::move(provider)) {}

const std::string& BestStaticScheduler::name() const { return name_; }

void BestStaticScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  if (provider_) costs_ = provider_(loop_ordinal_);
  ++loop_ordinal_;
  if (p != p_) {
    taken_.clear();
    for (int i = 0; i < p; ++i)
      taken_.push_back(std::make_unique<CacheAligned<std::atomic<bool>>>());
    p_ = p;
  }
  blocks_ = balanced_contiguous_partition(n, p, costs_);
  for (auto& t : taken_) t->value.store(false, std::memory_order_relaxed);
  ++loops_;
}

Grab BestStaticScheduler::next(int worker) {
  AFS_CHECK(worker >= 0 && worker < p_);
  if (taken_[worker]->value.exchange(true, std::memory_order_relaxed))
    return {};
  const IterRange r = blocks_[static_cast<std::size_t>(worker)];
  if (r.empty()) return {};
  return {r, GrabKind::kStatic, worker};
}

SyncStats BestStaticScheduler::stats() const {
  SyncStats s;
  s.loops = loops_;
  s.queues.assign(static_cast<std::size_t>(std::max(p_, 1)), QueueStats{});
  return s;
}

void BestStaticScheduler::reset_stats() { loops_ = 0; }

std::unique_ptr<Scheduler> BestStaticScheduler::clone() const {
  if (provider_) return std::make_unique<BestStaticScheduler>(provider_);
  return std::make_unique<BestStaticScheduler>(costs_);
}

}  // namespace afs
