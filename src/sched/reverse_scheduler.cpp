#include "sched/reverse_scheduler.hpp"

#include "util/check.hpp"

namespace afs {

ReverseScheduler::ReverseScheduler(std::unique_ptr<Scheduler> inner)
    : inner_(std::move(inner)) {
  AFS_CHECK(inner_ != nullptr);
  name_ = "REV:" + inner_->name();
}

const std::string& ReverseScheduler::name() const { return name_; }

void ReverseScheduler::start_loop(std::int64_t n, int p) {
  n_ = n;
  inner_->start_loop(n, p);
}

Grab ReverseScheduler::next(int worker) {
  Grab g = inner_->next(worker);
  if (!g.done()) g.range = {n_ - g.range.end, n_ - g.range.begin};
  return g;
}

void ReverseScheduler::end_loop() { inner_->end_loop(); }

SyncStats ReverseScheduler::stats() const { return inner_->stats(); }

void ReverseScheduler::reset_stats() { inner_->reset_stats(); }

std::unique_ptr<Scheduler> ReverseScheduler::clone() const {
  return std::make_unique<ReverseScheduler>(inner_->clone());
}

}  // namespace afs
