// Static scheduling: iterations are split into P contiguous blocks before
// the loop starts; no run-time queue access at all. Also BEST-STATIC, the
// paper's hand-optimized oracle baseline (§4.1): a cost-balanced contiguous
// partition computed from *known* per-iteration costs, which maximizes
// locality while minimizing load imbalance — realizable only with full
// knowledge of the application and its input, exactly as in the paper.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/align.hpp"

namespace afs {

class StaticScheduler final : public Scheduler {
 public:
  StaticScheduler();

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;

 private:
  std::string name_ = "STATIC";
  int p_ = 0;
  std::int64_t n_ = 0;
  std::vector<std::unique_ptr<CacheAligned<std::atomic<bool>>>> taken_;
  std::int64_t loops_ = 0;
};

/// Per-iteration cost model: cost(i) >= 0 in arbitrary consistent units.
using IterationCostFn = std::function<double(std::int64_t)>;

/// Supplies the oracle cost model for the loop_ordinal-th parallel loop
/// executed (0-based count of start_loop calls). Lets BEST-STATIC follow
/// workloads whose shape changes across epochs (Gauss, transitive closure).
using EpochCostProvider = std::function<IterationCostFn(int loop_ordinal)>;

class BestStaticScheduler final : public Scheduler {
 public:
  /// `costs` is the oracle's knowledge of the workload. A null function
  /// means uniform costs (degenerates to plain static scheduling).
  explicit BestStaticScheduler(IterationCostFn costs);

  /// Epoch-aware oracle: re-queries the provider at every start_loop.
  explicit BestStaticScheduler(EpochCostProvider provider);

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;

  /// Replaces the oracle cost model (e.g. when the parallel loop's shape
  /// changes between epochs, as in Gaussian elimination). Call between loops.
  void set_cost_model(IterationCostFn costs) { costs_ = std::move(costs); }

  /// The partition computed for the current loop (exposed for tests).
  const std::vector<IterRange>& partition() const { return blocks_; }

 private:
  IterationCostFn costs_;
  EpochCostProvider provider_;
  int loop_ordinal_ = 0;
  std::string name_ = "BEST-STATIC";
  int p_ = 0;
  std::vector<IterRange> blocks_;
  std::vector<std::unique_ptr<CacheAligned<std::atomic<bool>>>> taken_;
  std::int64_t loops_ = 0;
};

/// Contiguous partition of [0,n) into at most p blocks minimizing the
/// maximum block cost (binary search over the bottleneck value). Exposed
/// for direct testing. Blocks are padded with empty ranges up to size p.
std::vector<IterRange> balanced_contiguous_partition(
    std::int64_t n, int p, const IterationCostFn& costs);

}  // namespace afs
