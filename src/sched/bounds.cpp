#include "sched/bounds.hpp"

#include <cmath>

#include "sched/chunk_policy.hpp"
#include "sched/range.hpp"
#include "util/check.hpp"

namespace afs {

std::int64_t drain_count(std::int64_t n, std::int64_t k) {
  AFS_CHECK(n >= 0 && k >= 1);
  std::int64_t count = 0;
  while (n > 0) {
    n -= ceil_div(n, k);
    ++count;
  }
  return count;
}

std::int64_t afs_queue_sync_bound(std::int64_t n, int p, int k) {
  AFS_CHECK(n >= 0 && p >= 1 && k >= 1);
  const std::int64_t per_queue = ceil_div(n, p);
  return drain_count(per_queue, k) + drain_count(per_queue, p);
}

double afs_imbalance_bound(std::int64_t n, int p, int k) {
  AFS_CHECK(n >= 0 && p >= 1 && k >= 1);
  if (p == 1) return 1.0;  // Degenerate: a single processor cannot be skewed.
  return static_cast<double>(n) * static_cast<double>(p - k) /
             (static_cast<double>(p) * static_cast<double>(p - 1) *
              static_cast<double>(k)) +
         1.0;
}

std::int64_t theorem33_chunk(std::int64_t remaining, int p, int poly_degree) {
  AFS_CHECK(remaining >= 0 && p >= 1 && poly_degree >= 0);
  if (remaining == 0) return 0;
  const std::int64_t c =
      remaining / (static_cast<std::int64_t>(poly_degree + 1) * p);
  return c > 1 ? c : 1;
}

double leading_work_fraction(std::int64_t remaining, std::int64_t chunk,
                             int poly_degree) {
  AFS_CHECK(remaining > 0 && chunk >= 0 && chunk <= remaining);
  AFS_CHECK(poly_degree >= 0);
  long double head = 0, total = 0;
  for (std::int64_t x = 0; x < remaining; ++x) {
    const long double w =
        std::pow(static_cast<long double>(remaining - x), poly_degree);
    total += w;
    if (x < chunk) head += w;
  }
  return static_cast<double>(head / total);
}

std::int64_t gss_sync_count(std::int64_t n, int p) {
  return drain_count(n, p);
}

std::int64_t trapezoid_chunk_count(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  if (n == 0) return 0;
  auto policy = make_trapezoid();
  policy->reset(n, p);
  std::int64_t remaining = n;
  std::int64_t count = 0;
  while (remaining > 0) {
    remaining -= policy->next_chunk(remaining);
    ++count;
  }
  return count;
}

}  // namespace afs
