// TAILOR — dynamic locality-aware reassignment (Affinity-Tailor style).
//
// AFS places chunk i on processor i's queue every epoch and relies on
// steals being rare for its cache-reuse argument. When steals are NOT rare
// — persistent imbalance, a perturbed processor, a workload whose cost
// profile drifts — the deterministic placement keeps seeding work on the
// wrong processor and every epoch re-pays the migration.
//
// TAILOR keeps AFS's per-processor queues and most-loaded stealing, but
// adds AFS-style previous-owner bookkeeping through the feedback channel:
// report() records which processor actually executed each chunk. At
// end_loop() the scheduler computes an affinity estimate for the epoch,
//
//     estimate = (iterations executed by their current home owner) / N,
//
// and when the estimate drops below `threshold` it re-homes: next epoch's
// queues are seeded with exactly the ranges each processor executed this
// epoch (coalesced), so the placement chases where the data now lives.
// While the estimate stays above the threshold the homes are left alone
// and TAILOR is operationally identical to AFS — which is why its
// affinity score can only match or beat AFS when locality is already good.
//
// Re-homing only happens when every iteration of the epoch was reported
// (under processor deaths or fault injection some are lost; the stale but
// complete partition is then safer than a partial one).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace afs {

struct TailorOptions {
  /// Re-home when the epoch's affinity estimate falls below this.
  double threshold = 0.5;

  /// Owner grab fraction: take ceil(size/k) of the local queue. 0 => P.
  int k = 0;

  /// Steal fraction: take ceil(size/steal_denom) from the victim. 0 => P.
  int steal_denom = 0;
};

class TailorScheduler final : public Scheduler {
 public:
  explicit TailorScheduler(TailorOptions options = {});

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  void end_loop() override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;
  bool wants_feedback() const override { return true; }
  void report(const ChunkFeedback& fb) override;

  /// The affinity estimate of the most recently completed epoch (1.0
  /// before any epoch finishes).
  double last_affinity_estimate() const;

  /// How many epochs ended with a re-homing since construction.
  std::int64_t rehome_count() const;

  const TailorOptions& options() const { return options_; }

 private:
  struct ProcState {
    std::deque<IterRange> queue;       // owner front, thieves back
    std::int64_t size = 0;             // total iterations queued
    QueueStats stats;
    std::vector<IterRange> executed;   // chunks reported this epoch
  };

  TailorOptions options_;
  std::string name_;
  mutable std::mutex mutex_;
  int p_ = 0;
  std::int64_t n_ = -1;
  int k_ = 1;
  int steal_denom_ = 1;
  std::vector<ProcState> procs_;
  std::vector<std::vector<IterRange>> homes_;  // sorted, disjoint per proc
  double last_estimate_ = 1.0;
  std::int64_t rehomes_ = 0;
  std::int64_t loops_ = 0;
};

}  // namespace afs
