// AFS-NN — affinity scheduling with nearest-neighbor-first victim order.
//
// The paper's AFS steals from the most-loaded queue, which on a ring or
// mesh interconnect can migrate a chunk across the whole machine while a
// neighbor one hop away also had surplus. AFS-NN scans outward from the
// thief by ring distance (right neighbor before left at each distance) and
// steals from the FIRST non-empty queue it finds: the cheapest migration
// wins even when a farther queue is fuller.
//
// The variant lives entirely inside AffinityScheduler as
// AffinityOptions::Victim::kNearestNeighbor (sched/affinity_scheduler.cpp);
// this header is the adaptive-frontier entry point for building it. It is
// not feedback-driven — it rides with the frontier because it adapts the
// MIGRATION pattern to machine topology, where ADAPT/TAILOR/WORKSHARE
// adapt to observed runtimes.
#pragma once

#include <memory>

#include "sched/affinity_scheduler.hpp"

namespace afs {

inline std::unique_ptr<AffinityScheduler> make_afs_nn() {
  AffinityOptions o;
  o.victim = AffinityOptions::Victim::kNearestNeighbor;
  return std::make_unique<AffinityScheduler>(o);
}

}  // namespace afs
