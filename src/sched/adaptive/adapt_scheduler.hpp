// ADAPT — adaptive self-scheduling over a central queue.
//
// The paper's central-queue algorithms (SS, GSS, FACTORING, TAPER) fix
// their chunk-size rule before the loop starts, from assumptions about the
// iteration-cost distribution. ADAPT instead learns the distribution
// on-line through the feedback channel: every completed chunk reports its
// simulated runtime, and the scheduler maintains an EWMA of the
// per-iteration cost (mean_) together with an EWMA of the absolute
// deviation of per-chunk means (dev_).
//
// Grab rule: a grab takes
//
//     ceil( (remaining / P) * mean / (mean + dev) )
//
// iterations. With a uniform workload dev -> 0 and ADAPT converges to
// GSS's remaining/P rule (few grabs, low sync overhead). With a highly
// variable workload dev grows, the factor mean/(mean+dev) shrinks, and
// chunks approach self-scheduling's single iterations (fine-grained
// balancing). Before the first report the factor is 1/initial_divisor —
// a deliberately conservative probe while nothing is known.
//
// Everything is driven by simulated times delivered at deterministic
// points, so the chunk-size trajectory is a pure function of the workload
// and options: bit-identical across --jobs, batching and queue toggles.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace afs {

struct AdaptOptions {
  /// EWMA smoothing factor for both the per-iteration cost mean and the
  /// absolute-deviation estimate.
  double alpha = 0.25;

  /// Before any feedback arrives, a grab takes remaining/(P*initial_divisor)
  /// iterations: a GSS-sized chunk shrunk by this factor so one bad first
  /// chunk cannot dominate the loop.
  int initial_divisor = 2;

  /// Lower clamp on every chunk.
  std::int64_t min_chunk = 1;
};

class AdaptScheduler final : public Scheduler {
 public:
  explicit AdaptScheduler(AdaptOptions options = {});

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;
  bool wants_feedback() const override { return true; }
  void report(const ChunkFeedback& fb) override;

  /// Every chunk size granted since construction (or reset_stats()), in
  /// grant order. This is the scheduler's entire observable decision
  /// sequence, golden-pinned by tests to guard determinism.
  std::vector<std::int64_t> chunk_history() const;

  const AdaptOptions& options() const { return options_; }

 private:
  std::int64_t next_chunk_locked(std::int64_t remaining) const;

  AdaptOptions options_;
  std::string name_ = "ADAPT";
  mutable std::mutex mutex_;
  std::int64_t next_ = 0;
  std::int64_t end_ = 0;
  int p_ = 1;
  bool have_mean_ = false;
  double mean_ = 0.0;  // EWMA per-iteration simulated time
  double dev_ = 0.0;   // EWMA absolute deviation of per-chunk means
  QueueStats queue_stats_;
  std::int64_t loops_ = 0;
  std::vector<std::int64_t> history_;
};

}  // namespace afs
