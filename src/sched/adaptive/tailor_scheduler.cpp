#include "sched/adaptive/tailor_scheduler.hpp"

#include <algorithm>
#include <cstdio>

#include "sched/affinity_scheduler.hpp"
#include "util/check.hpp"

namespace afs {

namespace {

// Sorts and coalesces a range list in place; drops empties.
void coalesce(std::vector<IterRange>* ranges) {
  std::sort(ranges->begin(), ranges->end(),
            [](const IterRange& a, const IterRange& b) {
              return a.begin < b.begin;
            });
  std::vector<IterRange> out;
  for (const IterRange& r : *ranges) {
    if (r.empty()) continue;
    if (!out.empty() && out.back().end == r.begin) {
      out.back().end = r.end;
    } else {
      out.push_back(r);
    }
  }
  *ranges = std::move(out);
}

// Iterations common to two sorted, disjoint range lists.
std::int64_t overlap(const std::vector<IterRange>& a,
                     const std::vector<IterRange>& b) {
  std::int64_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].begin, b[j].begin);
    const std::int64_t hi = std::min(a[i].end, b[j].end);
    if (hi > lo) common += hi - lo;
    if (a[i].end < b[j].end) ++i; else ++j;
  }
  return common;
}

}  // namespace

TailorScheduler::TailorScheduler(TailorOptions options) : options_(options) {
  AFS_CHECK(options_.threshold >= 0.0 && options_.threshold <= 1.0);
  AFS_CHECK(options_.k >= 0);
  AFS_CHECK(options_.steal_denom >= 0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", options_.threshold);
  name_ = std::string("TAILOR(") + buf + ")";
}

const std::string& TailorScheduler::name() const { return name_; }

void TailorScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  std::scoped_lock lock(mutex_);
  k_ = options_.k > 0 ? options_.k : p;
  steal_denom_ = options_.steal_denom > 0 ? options_.steal_denom : p;

  if (p != p_ || n != n_) {
    // Shape change: start over from the paper's deterministic partition.
    p_ = p;
    n_ = n;
    procs_.assign(static_cast<std::size_t>(p), {});
    homes_.assign(static_cast<std::size_t>(p), {});
    for (int i = 0; i < p; ++i) {
      const IterRange r = affinity_initial_chunk(n, p, i);
      if (!r.empty()) homes_[static_cast<std::size_t>(i)].push_back(r);
    }
  }

  for (int i = 0; i < p_; ++i) {
    ProcState& ps = procs_[static_cast<std::size_t>(i)];
    ps.queue.clear();
    ps.size = 0;
    ps.executed.clear();
    for (const IterRange& r : homes_[static_cast<std::size_t>(i)]) {
      ps.queue.push_back(r);
      ps.size += r.size();
    }
  }
  ++loops_;
}

Grab TailorScheduler::next(int worker) {
  std::scoped_lock lock(mutex_);
  AFS_CHECK(worker >= 0 && worker < p_);
  ProcState& me = procs_[static_cast<std::size_t>(worker)];
  if (me.size > 0) {
    const std::int64_t want = ceil_div(me.size, k_);
    IterRange& front = me.queue.front();
    const IterRange taken = front.take_front(want);
    if (front.empty()) me.queue.pop_front();
    me.size -= taken.size();
    ++me.stats.local_grabs;
    me.stats.iters_local += taken.size();
    return {taken, GrabKind::kLocal, worker};
  }
  // Steal from the most-loaded queue, AFS-style.
  int victim = -1;
  std::int64_t best = 0;
  for (int i = 0; i < p_; ++i) {
    if (procs_[static_cast<std::size_t>(i)].size > best) {
      best = procs_[static_cast<std::size_t>(i)].size;
      victim = i;
    }
  }
  if (victim < 0) return {};  // Drained: the loop is finished.
  ProcState& v = procs_[static_cast<std::size_t>(victim)];
  const std::int64_t want = ceil_div(v.size, steal_denom_);
  IterRange& back = v.queue.back();
  const IterRange taken = back.take_back(want);
  if (back.empty()) v.queue.pop_back();
  v.size -= taken.size();
  ++v.stats.remote_grabs;
  v.stats.iters_remote += taken.size();
  return {taken, GrabKind::kRemote, victim};
}

void TailorScheduler::report(const ChunkFeedback& fb) {
  if (fb.end <= fb.begin) return;
  std::scoped_lock lock(mutex_);
  AFS_CHECK(fb.proc >= 0 && fb.proc < p_);
  procs_[static_cast<std::size_t>(fb.proc)].executed.push_back(
      {fb.begin, fb.end});
}

void TailorScheduler::end_loop() {
  std::scoped_lock lock(mutex_);
  std::int64_t total = 0;
  std::int64_t at_home = 0;
  for (int i = 0; i < p_; ++i) {
    ProcState& ps = procs_[static_cast<std::size_t>(i)];
    coalesce(&ps.executed);
    for (const IterRange& r : ps.executed) total += r.size();
    at_home += overlap(ps.executed, homes_[static_cast<std::size_t>(i)]);
  }
  if (total <= 0) return;  // Nothing reported (n == 0): keep everything.
  last_estimate_ = static_cast<double>(at_home) / static_cast<double>(total);
  // Re-home only from a complete epoch: under deaths or fault injection
  // some iterations are never reported, and a partition missing them
  // would leak iterations out of the next epoch's seed.
  if (last_estimate_ < options_.threshold && total == n_) {
    for (int i = 0; i < p_; ++i)
      homes_[static_cast<std::size_t>(i)] =
          procs_[static_cast<std::size_t>(i)].executed;
    ++rehomes_;
  }
}

SyncStats TailorScheduler::stats() const {
  std::scoped_lock lock(mutex_);
  SyncStats s;
  s.loops = loops_;
  s.queues.reserve(procs_.size());
  for (const ProcState& ps : procs_) s.queues.push_back(ps.stats);
  return s;
}

void TailorScheduler::reset_stats() {
  std::scoped_lock lock(mutex_);
  for (ProcState& ps : procs_) ps.stats = {};
  loops_ = 0;
}

std::unique_ptr<Scheduler> TailorScheduler::clone() const {
  return std::make_unique<TailorScheduler>(options_);
}

double TailorScheduler::last_affinity_estimate() const {
  std::scoped_lock lock(mutex_);
  return last_estimate_;
}

std::int64_t TailorScheduler::rehome_count() const {
  std::scoped_lock lock(mutex_);
  return rehomes_;
}

}  // namespace afs
