#include "sched/adaptive/adapt_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace afs {

AdaptScheduler::AdaptScheduler(AdaptOptions options) : options_(options) {
  AFS_CHECK(options_.alpha > 0.0 && options_.alpha <= 1.0);
  AFS_CHECK(options_.initial_divisor >= 1);
  AFS_CHECK(options_.min_chunk >= 1);
}

const std::string& AdaptScheduler::name() const { return name_; }

void AdaptScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  std::scoped_lock lock(mutex_);
  next_ = 0;
  end_ = n;
  p_ = p;
  // mean_/dev_ persist across loop instances: the enclosing sequential
  // loop of SOR/Gauss re-runs the same body, so learned costs stay valid.
  ++loops_;
}

std::int64_t AdaptScheduler::next_chunk_locked(std::int64_t remaining) const {
  const double share = static_cast<double>(remaining) / p_;
  double frac = 1.0 / options_.initial_divisor;
  if (have_mean_)
    frac = (mean_ + dev_) > 0.0 ? mean_ / (mean_ + dev_) : 1.0;
  const auto want = static_cast<std::int64_t>(std::ceil(share * frac));
  return std::min(remaining, std::max(options_.min_chunk, want));
}

Grab AdaptScheduler::next(int worker) {
  (void)worker;  // A central queue serves all workers identically.
  std::scoped_lock lock(mutex_);
  const std::int64_t remaining = end_ - next_;
  if (remaining <= 0) return {};
  const std::int64_t c = next_chunk_locked(remaining);
  AFS_DCHECK(c >= 1 && c <= remaining);
  Grab g{{next_, next_ + c}, GrabKind::kCentral, 0};
  next_ += c;
  ++queue_stats_.local_grabs;
  queue_stats_.iters_local += c;
  history_.push_back(c);
  return g;
}

void AdaptScheduler::report(const ChunkFeedback& fb) {
  if (fb.iterations() <= 0) return;
  std::scoped_lock lock(mutex_);
  const double x =
      fb.duration() / static_cast<double>(fb.iterations());
  if (!have_mean_) {
    mean_ = x;
    dev_ = 0.0;
    have_mean_ = true;
    return;
  }
  const double delta = x - mean_;
  dev_ += options_.alpha * (std::abs(delta) - dev_);
  mean_ += options_.alpha * delta;
}

SyncStats AdaptScheduler::stats() const {
  std::scoped_lock lock(mutex_);
  return SyncStats{{queue_stats_}, loops_};
}

void AdaptScheduler::reset_stats() {
  std::scoped_lock lock(mutex_);
  queue_stats_ = {};
  loops_ = 0;
  history_.clear();
}

std::unique_ptr<Scheduler> AdaptScheduler::clone() const {
  return std::make_unique<AdaptScheduler>(options_);
}

std::vector<std::int64_t> AdaptScheduler::chunk_history() const {
  std::scoped_lock lock(mutex_);
  return history_;
}

}  // namespace afs
