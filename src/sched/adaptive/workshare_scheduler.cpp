#include "sched/adaptive/workshare_scheduler.hpp"

#include <algorithm>

#include "sched/affinity_scheduler.hpp"
#include "util/check.hpp"

namespace afs {

WorkshareScheduler::WorkshareScheduler(WorkshareOptions options)
    : options_(options) {
  AFS_CHECK(options_.alpha > 0.0 && options_.alpha <= 1.0);
  AFS_CHECK(options_.k >= 0);
}

const std::string& WorkshareScheduler::name() const { return name_; }

void WorkshareScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  std::scoped_lock lock(mutex_);
  k_ = options_.k > 0 ? options_.k : p;
  if (p != p_) {
    procs_.assign(static_cast<std::size_t>(p), {});
    p_ = p;
  }
  for (int i = 0; i < p_; ++i) {
    ProcState& ps = procs_[static_cast<std::size_t>(i)];
    ps.queue.clear();
    ps.size = 0;
    ps.done = false;
    // ewma persists across epochs: the cost profile it learned is still
    // the best available estimate when the same loop body re-runs.
    const IterRange r = affinity_initial_chunk(n, p, i);
    if (!r.empty()) {
      ps.queue.push_back({r, i});
      ps.size = r.size();
    }
  }
  ++loops_;
}

Grab WorkshareScheduler::next(int worker) {
  std::scoped_lock lock(mutex_);
  AFS_CHECK(worker >= 0 && worker < p_);
  ProcState& me = procs_[static_cast<std::size_t>(worker)];
  if (me.size <= 0) {
    // No stealing: an empty queue ends this processor's loop. Mark it so
    // report()-driven pushes never strand work on it.
    me.done = true;
    return {};
  }
  const std::int64_t want = ceil_div(me.size, k_);
  Entry& front = me.queue.front();
  const int origin = front.origin;
  const IterRange taken = front.range.take_front(want);
  if (front.range.empty()) me.queue.pop_front();
  me.size -= taken.size();
  if (origin == worker) {
    ++me.stats.local_grabs;
    me.stats.iters_local += taken.size();
    return {taken, GrabKind::kLocal, worker};
  }
  // Migrated work: the data is warm in the origin's cache, so the grab
  // pays remote sync against the origin's queue (probe cost is zero).
  ProcState& from = procs_[static_cast<std::size_t>(origin)];
  ++from.stats.remote_grabs;
  from.stats.iters_remote += taken.size();
  return {taken, GrabKind::kRemote, origin};
}

void WorkshareScheduler::report(const ChunkFeedback& fb) {
  if (fb.iterations() <= 0) return;
  std::scoped_lock lock(mutex_);
  AFS_CHECK(fb.proc >= 0 && fb.proc < p_);
  ProcState& me = procs_[static_cast<std::size_t>(fb.proc)];
  const double x = fb.duration() / static_cast<double>(fb.iterations());
  if (!me.have_ewma) {
    me.ewma = x;
    me.have_ewma = true;
  } else {
    me.ewma += options_.alpha * (x - me.ewma);
  }
  if (me.done || me.size < 2 || me.ewma <= 0.0) return;

  // Remaining-work estimates over active processors; unknown costs borrow
  // the reporter's estimate so the comparison stays well-defined.
  const double my_r = static_cast<double>(me.size) * me.ewma;
  double sum = 0.0;
  int active = 0;
  int target = -1;
  double target_r = 0.0;
  for (int j = 0; j < p_; ++j) {
    const ProcState& ps = procs_[static_cast<std::size_t>(j)];
    if (ps.done) continue;
    const double e = ps.have_ewma ? ps.ewma : me.ewma;
    const double r = static_cast<double>(ps.size) * e;
    sum += r;
    ++active;
    if (j != fb.proc && (target < 0 || r < target_r)) {
      target = j;
      target_r = r;
    }
  }
  if (active < 2 || target < 0) return;
  const double mean = sum / active;
  if (my_r <= mean) return;

  // Push half the excess, capped at half the queue so the sender keeps
  // a working set of its own.
  std::int64_t want =
      static_cast<std::int64_t>((my_r - mean) / (2.0 * me.ewma));
  want = std::min(want, me.size / 2);
  if (want < 1) return;
  ProcState& to = procs_[static_cast<std::size_t>(target)];
  while (want > 0 && !me.queue.empty()) {
    Entry& back = me.queue.back();
    const int origin = back.origin;
    const IterRange taken = back.range.take_back(want);
    if (back.range.empty()) me.queue.pop_back();
    want -= taken.size();
    me.size -= taken.size();
    to.queue.push_back({taken, origin});
    to.size += taken.size();
    ++pushes_;
  }
}

SyncStats WorkshareScheduler::stats() const {
  std::scoped_lock lock(mutex_);
  SyncStats s;
  s.loops = loops_;
  s.queues.reserve(procs_.size());
  for (const ProcState& ps : procs_) s.queues.push_back(ps.stats);
  return s;
}

void WorkshareScheduler::reset_stats() {
  std::scoped_lock lock(mutex_);
  for (ProcState& ps : procs_) ps.stats = {};
  pushes_ = 0;
  loops_ = 0;
}

std::unique_ptr<Scheduler> WorkshareScheduler::clone() const {
  return std::make_unique<WorkshareScheduler>(options_);
}

std::int64_t WorkshareScheduler::push_count() const {
  std::scoped_lock lock(mutex_);
  return pushes_;
}

}  // namespace afs
