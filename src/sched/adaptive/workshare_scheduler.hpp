// WORKSHARE — interrupt-driven work sharing (AFS's steal direction
// inverted).
//
// AFS is receiver-initiated: an idle processor scans queues and steals.
// WORKSHARE is sender-initiated: processors only ever grab from their own
// queue, and an OVERLOADED processor pushes work away. The trigger is the
// feedback channel: each chunk-completion report refreshes the reporting
// processor's EWMA of per-iteration cost, and when its remaining-work
// estimate (queue size x EWMA) exceeds the mean estimate over active
// processors, it pushes roughly half the excess to the processor with the
// smallest estimate — the simulated analogue of raising an interrupt on
// the idle processor.
//
// Because idle processors never probe, victim_probe_count() is 0 and an
// empty queue means the processor is done for this loop (it is then
// excluded as a push target so no work can be stranded on a processor the
// engine will never run again). Pushed ranges keep their origin tag; when
// the receiver grabs one, the grab is kRemote against the origin's queue,
// so migration pays the same remote-sync cost a steal would.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace afs {

struct WorkshareOptions {
  /// EWMA smoothing factor for the per-iteration cost estimates.
  double alpha = 0.25;

  /// Owner grab fraction: take ceil(size/k) of the local queue. 0 => P.
  int k = 0;
};

class WorkshareScheduler final : public Scheduler {
 public:
  explicit WorkshareScheduler(WorkshareOptions options = {});

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;
  /// Sender-initiated: nobody probes queue loads.
  int victim_probe_count(int p) const override {
    (void)p;
    return 0;
  }
  bool wants_feedback() const override { return true; }
  void report(const ChunkFeedback& fb) override;

  /// Ranges pushed to another processor since construction.
  std::int64_t push_count() const;

  const WorkshareOptions& options() const { return options_; }

 private:
  struct Entry {
    IterRange range;
    int origin;  // whose cache the data is warm in
  };
  struct ProcState {
    std::deque<Entry> queue;  // owner front; pushes land at the back
    std::int64_t size = 0;
    QueueStats stats;
    bool done = false;    // returned kNone: never push to it again
    double ewma = 0.0;    // per-iteration simulated time
    bool have_ewma = false;
  };

  WorkshareOptions options_;
  std::string name_ = "WORKSHARE";
  mutable std::mutex mutex_;
  int p_ = 0;
  int k_ = 1;
  std::vector<ProcState> procs_;
  std::int64_t pushes_ = 0;
  std::int64_t loops_ = 0;
};

}  // namespace afs
