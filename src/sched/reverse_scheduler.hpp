// Reverse-index adapter (paper §4.3, Figure 8): schedules the loop
// backwards, so the cheap tail iterations of a decreasing workload are
// executed first and the expensive head iterations last, where their
// absolute imbalance is negligible relative to total completion time.
//
// Wraps any scheduler: the inner scheduler works in a virtual index space
// v in [0, n); the adapter maps a granted virtual range [b, e) to the real
// range [n-e, n-b).
#pragma once

#include <memory>

#include "sched/scheduler.hpp"

namespace afs {

class ReverseScheduler final : public Scheduler {
 public:
  explicit ReverseScheduler(std::unique_ptr<Scheduler> inner);

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  void end_loop() override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;
  bool central_queue_is_indexed() const override {
    return inner_->central_queue_is_indexed();
  }
  bool wants_feedback() const override { return inner_->wants_feedback(); }
  /// Chunk reports arrive in real index space; the inner scheduler thinks
  /// in the virtual (reversed) space, so map [b, e) back to [n-e, n-b).
  void report(const ChunkFeedback& fb) override {
    ChunkFeedback v = fb;
    v.begin = n_ - fb.end;
    v.end = n_ - fb.begin;
    inner_->report(v);
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::string name_;
  std::int64_t n_ = 0;
};

}  // namespace afs
