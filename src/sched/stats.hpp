// Synchronization-operation accounting (paper §4.6, Tables 3-5).
//
// The paper's metric is "the number of times a processor removes iterations
// from a work queue". Counts are kept per queue so affinity scheduling can
// report local and remote operations separately, exactly as Tables 3-5 do.
#pragma once

#include <cstdint>
#include <vector>

namespace afs {

struct QueueStats {
  std::int64_t local_grabs = 0;   ///< Owner removals (central queue: all grabs).
  std::int64_t remote_grabs = 0;  ///< Removals by a non-owner (AFS steals).
  std::int64_t iters_local = 0;   ///< Iterations taken by the owner.
  std::int64_t iters_remote = 0;  ///< Iterations migrated away by steals.

  std::int64_t total_grabs() const { return local_grabs + remote_grabs; }

  QueueStats& operator+=(const QueueStats& o) {
    local_grabs += o.local_grabs;
    remote_grabs += o.remote_grabs;
    iters_local += o.iters_local;
    iters_remote += o.iters_remote;
    return *this;
  }
};

struct SyncStats {
  std::vector<QueueStats> queues;  ///< One entry per work queue (1 if central).
  std::int64_t loops = 0;          ///< Parallel-loop instances accumulated.

  QueueStats total() const {
    QueueStats t;
    for (const auto& q : queues) t += q;
    return t;
  }

  /// Average local (owner) removals per queue per loop — the "local" column
  /// of Tables 3-5.
  double local_per_queue_per_loop() const {
    if (queues.empty() || loops == 0) return 0.0;
    return static_cast<double>(total().local_grabs) /
           static_cast<double>(queues.size()) / static_cast<double>(loops);
  }

  /// Average remote removals per queue per loop — the "remote" column.
  double remote_per_queue_per_loop() const {
    if (queues.empty() || loops == 0) return 0.0;
    return static_cast<double>(total().remote_grabs) /
           static_cast<double>(queues.size()) / static_cast<double>(loops);
  }

  /// Total removals per loop — the single number reported for the
  /// central-queue algorithms.
  double grabs_per_loop() const {
    if (loops == 0) return 0.0;
    return static_cast<double>(total().total_grabs()) /
           static_cast<double>(loops);
  }
};

}  // namespace afs
