// Analytic results from §3 of the paper, used as test oracles and by the
// ablation bench.
//
// Theorem 3.1 bounds the sync ops per AFS work queue; Theorem 3.2 bounds
// finish-time imbalance under delayed processor arrival; Theorem 3.3 gives
// the chunk fraction that caps a grab at 1/P of the remaining *work* for
// polynomially decreasing workloads. Alongside the O()-form bounds we
// provide exact recurrence counts, which make much sharper test oracles.
#pragma once

#include <cstdint>

namespace afs {

/// Exact number of removals needed to drain a queue of n iterations when
/// each removal takes ceil(remaining/k): the recurrence behind Lemma 3.1.
/// (Lemma 3.1 states this is O(k log(n/k)).)
std::int64_t drain_count(std::int64_t n, std::int64_t k);

/// Theorem 3.1: worst-case sync operations on one AFS work queue,
/// O(k log(N/(Pk)) + P log(N/P^2)) — returned in its exact recurrence form
/// drain_count(N/P, k) + drain_count(N/P, P), an upper bound on any real
/// execution because owner grabs and steals both shrink the queue at least
/// as fast as either alone.
std::int64_t afs_queue_sync_bound(std::int64_t n, int p, int k);

/// Theorem 3.2: with uniform iteration costs and non-uniform processor
/// start times, all processors finish within N(P-k)/(P(P-1)k) + 1
/// iterations of each other.
double afs_imbalance_bound(std::int64_t n, int p, int k);

/// Theorem 3.3: for a loop whose i-th iteration costs ~ (N-i)^k, a chunk of
/// R/((k+1)P) iterations holds at most 1/P of the remaining work. Returns
/// the chunk size for `remaining` iterations.
std::int64_t theorem33_chunk(std::int64_t remaining, int p, int poly_degree);

/// Fraction of the remaining *work* contained in the first `chunk`
/// iterations of a decreasing-polynomial workload with `remaining`
/// iterations: sum_{x<chunk} (R-x)^k / sum_{x<R} (R-x)^k. Used by tests to
/// verify Theorem 3.3 numerically.
double leading_work_fraction(std::int64_t remaining, std::int64_t chunk,
                             int poly_degree);

/// Worst-case central-queue sync-op counts quoted in §3 for comparison:
/// GSS: O(P log(N/P)); exact recurrence: drain_count(N, P).
std::int64_t gss_sync_count(std::int64_t n, int p);

/// Trapezoid: exactly the number of chunks, ~ 4P for the default config.
std::int64_t trapezoid_chunk_count(std::int64_t n, int p);

}  // namespace afs
