// Chunk-size policies for central-work-queue loop schedulers.
//
// Each policy answers one question: given R remaining iterations, how many
// should the next idle processor remove? The policies implemented here are
// the ones the paper compares (§1, §4.1):
//
//   SelfSchedPolicy   — SS: one iteration per removal [Smith 81, Tang/Yew 86]
//   FixedChunkPolicy  — uniform-sized chunking, K per removal [Kruskal/Weiss 85]
//   GssPolicy         — guided self-scheduling, ceil(R/(kP)) [Polychronopoulos/Kuck 87]
//   FactoringPolicy   — phase-based, P chunks of ceil(alpha*R/P) [Hummel et al 92]
//   TrapezoidPolicy   — linear decrease from N/(2P) to 1 [Tzen/Ni 93]
//   TaperPolicy       — variance-aware chunk shrink (simplified Lucco 92;
//                       included as an extension, not evaluated in the paper)
//
// Policies are stateful per loop instance and NOT thread-safe: the owning
// scheduler serializes calls (which is faithful — a central queue is a
// serialization point by construction).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace afs {

class ChunkPolicy {
 public:
  virtual ~ChunkPolicy() = default;

  /// Begins a new loop instance of `n` iterations on `p` processors.
  virtual void reset(std::int64_t n, int p) = 0;

  /// Size of the next chunk given `remaining` > 0 iterations.
  /// Returns a value in [1, remaining].
  virtual std::int64_t next_chunk(std::int64_t remaining) = 0;

  virtual const std::string& name() const = 0;

  /// Fresh policy with the same configuration (for per-run isolation).
  virtual std::unique_ptr<ChunkPolicy> clone() const = 0;
};

/// SS: chunk size 1.
std::unique_ptr<ChunkPolicy> make_self_sched();

/// Uniform chunking: fixed chunk size k >= 1.
std::unique_ptr<ChunkPolicy> make_fixed_chunk(std::int64_t k);

/// GSS(k): chunk = ceil(R / (k*P)). k = 1 is classic GSS; the paper (§4.3)
/// discusses k > 1 as the "trivial change" that improves GSS load balance.
std::unique_ptr<ChunkPolicy> make_gss(int k = 1);

/// Factoring with batch fraction `alpha` (default 1/2): each phase carves
/// P chunks of ceil(alpha * R / P).
std::unique_ptr<ChunkPolicy> make_factoring(double alpha = 0.5);

/// Trapezoid self-scheduling with first chunk ceil(N/(2P)) and last chunk 1.
std::unique_ptr<ChunkPolicy> make_trapezoid();

/// Trapezoid with explicit first/last chunk sizes.
std::unique_ptr<ChunkPolicy> make_trapezoid(std::int64_t first, std::int64_t last);

/// Simplified tapering: chunk = ceil(R / ((1 + cv) * P)) where cv is the
/// (profiled) coefficient of variation of iteration times. With cv = 0 this
/// degenerates to GSS. Extension beyond the paper's evaluated set.
std::unique_ptr<ChunkPolicy> make_taper(double cv);

}  // namespace afs
