#include "sched/mod_factoring_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "sched/range.hpp"
#include "util/check.hpp"

namespace afs {

ModFactoringScheduler::ModFactoringScheduler(double alpha) : alpha_(alpha) {
  AFS_CHECK(alpha > 0.0 && alpha <= 1.0);
}

const std::string& ModFactoringScheduler::name() const { return name_; }

void ModFactoringScheduler::start_loop(std::int64_t n, int p) {
  AFS_CHECK(n >= 0 && p >= 1);
  std::scoped_lock lock(mutex_);
  p_ = p;
  next_ = 0;
  remaining_ = n;
  slots_.assign(static_cast<std::size_t>(p), IterRange{});
  if (remaining_ > 0) new_phase();
  ++loops_;
}

void ModFactoringScheduler::new_phase() {
  const auto chunk = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(alpha_ * static_cast<double>(remaining_) / p_)));
  for (int i = 0; i < p_; ++i) {
    const std::int64_t c = std::min(chunk, remaining_);
    slots_[static_cast<std::size_t>(i)] = {next_, next_ + c};
    next_ += c;
    remaining_ -= c;
  }
}

Grab ModFactoringScheduler::next(int worker) {
  AFS_CHECK(worker >= 0 && worker < p_);
  std::scoped_lock lock(mutex_);
  for (;;) {
    // Preferred: this processor's reserved chunk for the current phase.
    IterRange& own = slots_[static_cast<std::size_t>(worker)];
    if (!own.empty()) {
      const IterRange r = own;
      own = {};
      ++queue_stats_.local_grabs;
      queue_stats_.iters_local += r.size();
      ++affine_;
      return {r, GrabKind::kCentral, 0};
    }
    // Fallback: the first unclaimed chunk in the queue.
    for (auto& slot : slots_) {
      if (!slot.empty()) {
        const IterRange r = slot;
        slot = {};
        ++queue_stats_.local_grabs;
        queue_stats_.iters_local += r.size();
        ++fallback_;
        return {r, GrabKind::kCentral, 0};
      }
    }
    if (remaining_ <= 0) return {};
    new_phase();
  }
}

SyncStats ModFactoringScheduler::stats() const {
  std::scoped_lock lock(mutex_);
  return SyncStats{{queue_stats_}, loops_};
}

void ModFactoringScheduler::reset_stats() {
  std::scoped_lock lock(mutex_);
  queue_stats_ = {};
  affine_ = 0;
  fallback_ = 0;
  loops_ = 0;
}

std::int64_t ModFactoringScheduler::affine_grabs() const {
  std::scoped_lock lock(mutex_);
  return affine_;
}

std::int64_t ModFactoringScheduler::fallback_grabs() const {
  std::scoped_lock lock(mutex_);
  return fallback_;
}

std::unique_ptr<Scheduler> ModFactoringScheduler::clone() const {
  return std::make_unique<ModFactoringScheduler>(alpha_);
}

}  // namespace afs
