#include "sched/chunk_policy.hpp"

#include <algorithm>
#include <cmath>

#include "sched/range.hpp"
#include "util/check.hpp"

namespace afs {

namespace {

class SelfSchedPolicy final : public ChunkPolicy {
 public:
  void reset(std::int64_t n, int p) override {
    AFS_CHECK(n >= 0 && p >= 1);
  }
  std::int64_t next_chunk(std::int64_t remaining) override {
    AFS_CHECK(remaining > 0);
    return 1;
  }
  const std::string& name() const override {
    static const std::string kName = "SS";
    return kName;
  }
  std::unique_ptr<ChunkPolicy> clone() const override {
    return std::make_unique<SelfSchedPolicy>();
  }
};

class FixedChunkPolicy final : public ChunkPolicy {
 public:
  explicit FixedChunkPolicy(std::int64_t k)
      : k_(k), name_("CHUNK(" + std::to_string(k) + ")") {
    AFS_CHECK(k >= 1);
  }
  void reset(std::int64_t n, int p) override {
    AFS_CHECK(n >= 0 && p >= 1);
  }
  std::int64_t next_chunk(std::int64_t remaining) override {
    AFS_CHECK(remaining > 0);
    return std::min(k_, remaining);
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<ChunkPolicy> clone() const override {
    return std::make_unique<FixedChunkPolicy>(k_);
  }

 private:
  std::int64_t k_;
  std::string name_;
};

class GssPolicy final : public ChunkPolicy {
 public:
  explicit GssPolicy(int k)
      : k_(k), name_(k == 1 ? "GSS" : "GSS(" + std::to_string(k) + ")") {
    AFS_CHECK(k >= 1);
  }
  void reset(std::int64_t n, int p) override {
    AFS_CHECK(n >= 0 && p >= 1);
    p_ = p;
  }
  std::int64_t next_chunk(std::int64_t remaining) override {
    AFS_CHECK(remaining > 0);
    return std::min(remaining,
                    std::max<std::int64_t>(1, ceil_div(remaining, static_cast<std::int64_t>(k_) * p_)));
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<ChunkPolicy> clone() const override {
    return std::make_unique<GssPolicy>(k_);
  }

 private:
  int k_;
  int p_ = 1;
  std::string name_;
};

class FactoringPolicy final : public ChunkPolicy {
 public:
  explicit FactoringPolicy(double alpha)
      : alpha_(alpha),
        name_(alpha == 0.5 ? "FACTORING"
                           : "FACTORING(" + std::to_string(alpha) + ")") {
    AFS_CHECK(alpha > 0.0 && alpha <= 1.0);
  }
  void reset(std::int64_t n, int p) override {
    AFS_CHECK(n >= 0 && p >= 1);
    p_ = p;
    slots_left_ = 0;
    chunk_ = 0;
  }
  std::int64_t next_chunk(std::int64_t remaining) override {
    AFS_CHECK(remaining > 0);
    if (slots_left_ == 0) {
      // New phase: P chunks of ceil(alpha * R / P) each.
      chunk_ = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 std::ceil(alpha_ * static_cast<double>(remaining) / p_)));
      slots_left_ = p_;
    }
    --slots_left_;
    return std::min(chunk_, remaining);
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<ChunkPolicy> clone() const override {
    return std::make_unique<FactoringPolicy>(alpha_);
  }

 private:
  double alpha_;
  int p_ = 1;
  int slots_left_ = 0;
  std::int64_t chunk_ = 0;
  std::string name_;
};

class TrapezoidPolicy final : public ChunkPolicy {
 public:
  // first/last == 0 means "derive from N and P at reset time"
  // (first = ceil(N/(2P)), last = 1), which is the configuration the paper
  // benchmarks.
  TrapezoidPolicy(std::int64_t first, std::int64_t last)
      : conf_first_(first), conf_last_(last) {
    AFS_CHECK(first >= 0 && last >= 0 && last <= std::max<std::int64_t>(first, 1));
    name_ = (first == 0) ? "TRAPEZOID"
                         : "TRAPEZOID(" + std::to_string(first) + "," +
                               std::to_string(last) + ")";
  }
  void reset(std::int64_t n, int p) override {
    AFS_CHECK(n >= 0 && p >= 1);
    first_ = conf_first_ > 0 ? conf_first_
                             : std::max<std::int64_t>(1, ceil_div(n, 2 * p));
    last_ = conf_last_ > 0 ? std::min(conf_last_, first_) : 1;
    // Tzen & Ni: number of chunks n_c = ceil(2N / (f + l)); consecutive
    // chunks shrink by the constant delta = (f - l) / (n_c - 1).
    const std::int64_t nc = std::max<std::int64_t>(1, ceil_div(2 * n, first_ + last_));
    delta_ = nc > 1 ? static_cast<double>(first_ - last_) /
                          static_cast<double>(nc - 1)
                    : 0.0;
    step_ = 0;
  }
  std::int64_t next_chunk(std::int64_t remaining) override {
    AFS_CHECK(remaining > 0);
    const auto c = static_cast<std::int64_t>(
        std::llround(static_cast<double>(first_) - delta_ * static_cast<double>(step_)));
    ++step_;
    return std::clamp<std::int64_t>(c, 1, remaining);
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<ChunkPolicy> clone() const override {
    return std::make_unique<TrapezoidPolicy>(conf_first_, conf_last_);
  }

 private:
  std::int64_t conf_first_, conf_last_;
  std::int64_t first_ = 1, last_ = 1;
  double delta_ = 0.0;
  std::int64_t step_ = 0;
  std::string name_;
};

class TaperPolicy final : public ChunkPolicy {
 public:
  explicit TaperPolicy(double cv) : cv_(cv) {
    AFS_CHECK(cv >= 0.0);
    name_ = "TAPER(" + std::to_string(cv) + ")";
  }
  void reset(std::int64_t n, int p) override {
    AFS_CHECK(n >= 0 && p >= 1);
    p_ = p;
  }
  std::int64_t next_chunk(std::int64_t remaining) override {
    AFS_CHECK(remaining > 0);
    const double denom = (1.0 + cv_) * static_cast<double>(p_);
    const auto c = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(remaining) / denom));
    return std::clamp<std::int64_t>(c, 1, remaining);
  }
  const std::string& name() const override { return name_; }
  std::unique_ptr<ChunkPolicy> clone() const override {
    return std::make_unique<TaperPolicy>(cv_);
  }

 private:
  double cv_;
  int p_ = 1;
  std::string name_;
};

}  // namespace

std::unique_ptr<ChunkPolicy> make_self_sched() {
  return std::make_unique<SelfSchedPolicy>();
}
std::unique_ptr<ChunkPolicy> make_fixed_chunk(std::int64_t k) {
  return std::make_unique<FixedChunkPolicy>(k);
}
std::unique_ptr<ChunkPolicy> make_gss(int k) {
  return std::make_unique<GssPolicy>(k);
}
std::unique_ptr<ChunkPolicy> make_factoring(double alpha) {
  return std::make_unique<FactoringPolicy>(alpha);
}
std::unique_ptr<ChunkPolicy> make_trapezoid() {
  return std::make_unique<TrapezoidPolicy>(0, 0);
}
std::unique_ptr<ChunkPolicy> make_trapezoid(std::int64_t first, std::int64_t last) {
  return std::make_unique<TrapezoidPolicy>(first, last);
}
std::unique_ptr<ChunkPolicy> make_taper(double cv) {
  return std::make_unique<TaperPolicy>(cv);
}

}  // namespace afs
