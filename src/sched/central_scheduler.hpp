// Central-work-queue scheduler: one shared queue, chunk sizes from a
// pluggable ChunkPolicy. Covers SS, CHUNK(K), GSS(k), FACTORING,
// TRAPEZOID and TAPER — all of the paper's "traditional" dynamic methods.
#pragma once

#include <mutex>

#include "sched/chunk_policy.hpp"
#include "sched/scheduler.hpp"

namespace afs {

class CentralScheduler final : public Scheduler {
 public:
  explicit CentralScheduler(std::unique_ptr<ChunkPolicy> policy);

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;

 private:
  std::unique_ptr<ChunkPolicy> policy_;
  mutable std::mutex mutex_;  // The central queue *is* a serialization point.
  std::int64_t next_ = 0;
  std::int64_t end_ = 0;
  QueueStats queue_stats_;
  std::int64_t loops_ = 0;
};

}  // namespace afs
