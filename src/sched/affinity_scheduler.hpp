// Affinity scheduling (AFS) — the paper's contribution (§2.2, Figure 1).
//
// Per-processor work queues. Chunk i of ceil(N/P) iterations is always
// placed on processor i's queue (deterministic assignment), so repeated
// executions of the loop find their data already cached. Owners remove
// 1/k of their local queue per grab (k = P by default); a processor whose
// queue is empty finds the most-loaded queue and steals 1/P of it. Stolen
// chunks are executed indivisibly, so an iteration migrates at most once
// per loop instance.
//
// Two extensions beyond the evaluated algorithm, both flagged in DESIGN.md:
//  * `steal_denom` generalizes the 1/P steal fraction.
//  * Seeding::kLastExecuted implements the §4.3 variant that seeds each
//    epoch's queues with the iterations each processor executed in the
//    previous epoch (fewer re-steals under persistent imbalance, at the
//    cost of queue fragmentation).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"

namespace afs {

struct AffinityOptions {
  /// Owner grab fraction: take ceil(size/k) from the local queue.
  /// 0 means "use k = P", the paper's default.
  int k = 0;

  /// Steal fraction: take ceil(size/steal_denom) from the victim.
  /// 0 means "use P", the paper's choice.
  int steal_denom = 0;

  enum class Seeding {
    kDeterministic,  ///< chunk i -> processor i, every epoch (paper default)
    kLastExecuted,   ///< seed with what each processor ran last epoch (§4.3)
  };
  Seeding seeding = Seeding::kDeterministic;

  /// How an idle processor picks its steal victim. The paper scans every
  /// queue for the most loaded one and notes (§2.2) that "on a large-scale
  /// machine a scalable or randomized policy would be more appropriate":
  /// kRandomProbe samples `probe_count` random queues and steals from the
  /// most loaded of the sample.
  enum class Victim {
    kMostLoaded,       ///< full scan (paper default)
    kRandomProbe,      ///< sample probe_count queues, pick the fullest
    kNearestNeighbor,  ///< first non-empty queue by ring distance (AFS-NN)
  };
  Victim victim = Victim::kMostLoaded;
  int probe_count = 2;            ///< for kRandomProbe
  std::uint64_t probe_seed = 17;  ///< deterministic probing
};

class AffinityScheduler final : public Scheduler {
 public:
  explicit AffinityScheduler(AffinityOptions options = {});

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  void end_loop() override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;
  int victim_probe_count(int p) const override {
    return options_.victim == AffinityOptions::Victim::kRandomProbe
               ? options_.probe_count
               : p;
  }

  const AffinityOptions& options() const { return options_; }

 private:
  struct LocalQueue {
    std::mutex mutex;
    std::deque<IterRange> ranges;     // owner takes from front, thieves from back
    std::atomic<std::int64_t> size{0};  // lock-free load estimate (paper fn. 4)
    QueueStats stats;                 // guarded by mutex
  };

  Grab local_grab(int worker);
  int find_victim(int thief);
  Grab steal(int thief, int victim);

  AffinityOptions options_;
  std::string name_;
  int p_ = 0;
  std::int64_t n_ = 0;
  int k_ = 1;            // effective owner divisor for this loop
  int steal_denom_ = 1;  // effective steal divisor for this loop
  std::vector<std::unique_ptr<CacheAligned<LocalQueue>>> queues_;
  // Execution log for last-executed seeding: per worker, ranges executed
  // during the current loop. Guarded by the worker's queue mutex is wrong
  // (steals execute on the thief), so each worker logs its own grabs — a
  // worker only appends to its own log, no lock needed.
  std::vector<std::unique_ptr<CacheAligned<std::vector<IterRange>>>> exec_log_;
  // Per-worker RNG streams for random-probe victim selection: each worker
  // only touches its own stream, so no locking is needed.
  std::vector<std::unique_ptr<CacheAligned<Xoshiro256>>> probe_rng_;
  std::vector<std::vector<IterRange>> next_seed_;  // built by end_loop()
  bool have_seed_ = false;
  std::int64_t seed_n_ = -1;
  int seed_p_ = -1;
  std::int64_t loops_ = 0;
};

/// The deterministic initial partition of the paper's loop_initialization():
/// processor i gets [ceil(i*N/P), min(N, ceil((i+1)*N/P))).
IterRange affinity_initial_chunk(std::int64_t n, int p, int i);

}  // namespace afs
