// The scheduler interface shared by both execution substrates.
//
// A Scheduler hands out chunks of loop iterations to workers. The same
// object drives the real std::thread runtime (src/runtime) and the
// discrete-event machine simulator (src/sim): `next()` is thread-safe, and
// every Grab it returns is annotated with the queue touched and whether the
// access was central / local / remote so the substrates can charge the
// right synchronization and communication costs.
//
// Protocol per parallel loop instance:
//   start_loop(n, p);            // single-threaded
//   ... workers call next(w) until it returns done() ...
//   end_loop();                  // single-threaded
//
// start_loop/end_loop may be called repeatedly — this is how the enclosing
// sequential loop of SOR/Gauss/transitive-closure is expressed, and it is
// what gives affinity scheduling its deterministic chunk-to-processor
// re-assignment across epochs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sched/grab.hpp"
#include "sched/stats.hpp"

namespace afs {

/// One completed chunk, reported back to a feedback-driven scheduler: the
/// executing processor, the iteration range it ran, and the simulated
/// interval the execution occupied (compute plus memory-system stalls,
/// excluding the grab's own sync cost). A chunk truncated by a processor
/// death reports only the executed prefix.
struct ChunkFeedback {
  int proc = -1;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  double t_start = 0.0;
  double t_end = 0.0;

  std::int64_t iterations() const { return end - begin; }
  double duration() const { return t_end - t_start; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable algorithm name ("AFS", "GSS", ...).
  virtual const std::string& name() const = 0;

  /// Begins a parallel loop of n iterations on p workers (0..p-1).
  /// Not thread-safe. n >= 0, p >= 1.
  virtual void start_loop(std::int64_t n, int p) = 0;

  /// Removes the next chunk for `worker`. Thread-safe. Returns a Grab with
  /// kind kNone once no iterations remain anywhere.
  virtual Grab next(int worker) = 0;

  /// Ends the current loop instance. Not thread-safe.
  virtual void end_loop() {}

  /// Sync-op statistics accumulated over all loops since construction (or
  /// reset_stats()). Call only between loops.
  virtual SyncStats stats() const = 0;

  /// Clears accumulated statistics. Call only between loops.
  virtual void reset_stats() = 0;

  /// A fresh scheduler with identical configuration and empty statistics.
  virtual std::unique_ptr<Scheduler> clone() const = 0;

  /// True when central-queue accesses must search the queue for the
  /// caller's reserved chunk instead of popping the head (MOD-FACTORING,
  /// §2.3). The simulator charges such accesses
  /// MachineConfig::modfact_sync_multiplier times the normal cost.
  virtual bool central_queue_is_indexed() const { return false; }

  /// Number of queue-load probes a remote grab performs during victim
  /// selection, for the simulator's cost model. The paper's AFS scans all
  /// P queues; its randomized variant samples a constant number.
  virtual int victim_probe_count(int p) const { return p; }

  /// True when the scheduler consumes per-chunk completion reports. The
  /// execution substrates check this once per loop; when false (the
  /// default, and the case for all nine paper schedulers) report() is
  /// never called and the feedback channel is provably zero-cost.
  virtual bool wants_feedback() const { return false; }

  /// Delivers one completed chunk to a feedback-driven scheduler
  /// (src/sched/adaptive/). Called at every chunk-completion boundary —
  /// a point both batched and unbatched engine modes visit at identical
  /// simulated clocks and in identical order, which is what keeps
  /// feedback-driven scheduling bit-identical across engine toggles.
  /// Thread-safe, like next().
  virtual void report(const ChunkFeedback& fb) { (void)fb; }
};

}  // namespace afs
