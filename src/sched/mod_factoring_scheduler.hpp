// Modified factoring (paper §2.3): factoring's phase structure, but during
// each phase the i-th chunk is *reserved* for processor i. A processor
// whose reserved chunk is gone (it arrived late, or load imbalance let
// someone else take it) removes the first unclaimed chunk instead. The
// deterministic chunk-to-processor mapping preserves affinity across
// epochs; the cost is that every access to the central queue is more
// expensive than plain factoring's (the queue must be searched for the
// processor's chunk), which the simulator charges via a cost multiplier.
#pragma once

#include <mutex>
#include <vector>

#include "sched/scheduler.hpp"

namespace afs {

class ModFactoringScheduler final : public Scheduler {
 public:
  /// `alpha` is the factoring batch fraction (1/2 in the paper).
  explicit ModFactoringScheduler(double alpha = 0.5);

  const std::string& name() const override;
  void start_loop(std::int64_t n, int p) override;
  Grab next(int worker) override;
  SyncStats stats() const override;
  void reset_stats() override;
  std::unique_ptr<Scheduler> clone() const override;
  bool central_queue_is_indexed() const override { return true; }

  /// Grabs that went to the grabber's own reserved chunk (affinity hits)
  /// vs. fallback grabs — a diagnostic for the §5.2 discussion of why
  /// MOD-FACTORING degrades with many processors.
  std::int64_t affine_grabs() const;
  std::int64_t fallback_grabs() const;

 private:
  void new_phase();  // requires lock held, remaining_ > 0

  double alpha_;
  std::string name_ = "MOD-FACTORING";
  mutable std::mutex mutex_;
  int p_ = 0;
  std::int64_t next_ = 0;
  std::int64_t remaining_ = 0;
  std::vector<IterRange> slots_;  // one reserved chunk per processor
  QueueStats queue_stats_;
  std::int64_t affine_ = 0;
  std::int64_t fallback_ = 0;
  std::int64_t loops_ = 0;
};

}  // namespace afs
