#include "kernels/adjoint_convolution.hpp"

#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace afs {

AdjointConvolutionKernel::AdjointConvolutionKernel(std::int64_t n,
                                                   std::uint64_t seed)
    : m_(n * n) {
  AFS_CHECK(n >= 1);
  Xoshiro256 rng(seed);
  x_ = rng.next_double() + 0.5;
  a_.assign(static_cast<std::size_t>(m_), 0.0);
  b_.resize(static_cast<std::size_t>(m_));
  c_.resize(static_cast<std::size_t>(m_));
  for (auto& v : b_) v = rng.next_double() - 0.5;
  for (auto& v : c_) v = rng.next_double() - 0.5;
}

void AdjointConvolutionKernel::run_serial() {
  for (std::int64_t i = 0; i < m_; ++i) {
    double acc = a_[static_cast<std::size_t>(i)];
    for (std::int64_t k = i; k < m_; ++k)
      acc += x_ * b_[static_cast<std::size_t>(k)] *
             c_[static_cast<std::size_t>(k - i)];
    a_[static_cast<std::size_t>(i)] = acc;
  }
}

void AdjointConvolutionKernel::run_parallel(ThreadPool& pool,
                                            Scheduler& sched) {
  parallel_for(pool, sched, m_, [this](IterRange r, int) {
    for (std::int64_t i = r.begin; i < r.end; ++i) {
      double acc = a_[static_cast<std::size_t>(i)];
      for (std::int64_t k = i; k < m_; ++k)
        acc += x_ * b_[static_cast<std::size_t>(k)] *
               c_[static_cast<std::size_t>(k - i)];
      a_[static_cast<std::size_t>(i)] = acc;
    }
  });
}

double AdjointConvolutionKernel::checksum() const {
  double sum = 0.0;
  for (std::int64_t i = 0; i < m_; ++i)
    sum += a_[static_cast<std::size_t>(i)] * (1.0 + 1e-9 * static_cast<double>(i));
  return sum;
}

LoopProgram AdjointConvolutionKernel::program(std::int64_t n,
                                              double unit_work) {
  const std::int64_t m = n * n;
  ParallelLoopSpec spec;
  spec.n = m;
  spec.work = [m, unit_work](std::int64_t i) {
    return static_cast<double>(m - i) * unit_work;
  };
  spec.work_sum = [m, unit_work](std::int64_t b, std::int64_t e) {
    // sum_{i=b}^{e-1} (m - i) = (e - b) * (2m - b - e + 1) / 2
    const double len = static_cast<double>(e - b);
    return unit_work * len *
           (2.0 * static_cast<double>(m) - static_cast<double>(b) -
            static_cast<double>(e) + 1.0) /
           2.0;
  };
  LoopProgram p = single_loop_program("adjoint-" + std::to_string(n), 1,
                                      [spec](int) { return spec; });
  p.key = "adjoint(n=" + std::to_string(n) + ",w=" + key_double(unit_work) +
          ")";
  return p;
}

CostFn AdjointConvolutionKernel::cost(std::int64_t n) {
  const std::int64_t m = n * n;
  return [m](std::int64_t i) { return static_cast<double>(m - i); };
}

}  // namespace afs
