// Calibrated busy work for kernels whose cost is specified in abstract
// units (L4, the synthetic §4.4 loops): burns a fixed number of dependent
// floating-point operations per unit so real-thread runs have costs
// proportional to the simulated ones.
#pragma once

#include <cstdint>

namespace afs {

/// Executes ~4 dependent flops per unit and returns a data-dependent value
/// so the optimizer cannot elide the loop. Deterministic.
double compute_units(double units);

/// Sink for results of computations whose value is irrelevant; prevents
/// dead-code elimination without volatile tricks at every call site.
void consume(double value);

}  // namespace afs
