#include "kernels/transitive_closure.hpp"

#include <memory>
#include <utility>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace afs {

TransitiveClosureKernel::TransitiveClosureKernel(BoolMatrix graph)
    : n_(graph.rows()), a_(std::move(graph)) {
  AFS_CHECK(a_.rows() == a_.cols());
}

void TransitiveClosureKernel::run_serial() {
  for (std::int64_t k = 0; k < n_; ++k) {
    for (std::int64_t j = 0; j < n_; ++j) {
      if (!a_(j, k) || j == k) continue;
      for (std::int64_t i = 0; i < n_; ++i)
        if (a_(k, i)) a_(j, i) = 1;
    }
  }
}

void TransitiveClosureKernel::run_parallel(ThreadPool& pool, Scheduler& sched) {
  for (std::int64_t k = 0; k < n_; ++k) {
    parallel_for(pool, sched, n_, [this, k](IterRange r, int) {
      for (std::int64_t j = r.begin; j < r.end; ++j) {
        if (!a_(j, k) || j == k) continue;
        for (std::int64_t i = 0; i < n_; ++i)
          if (a_(k, i)) a_(j, i) = 1;
      }
    });
  }
}

std::int64_t TransitiveClosureKernel::reachable_pairs() const {
  std::int64_t c = 0;
  for (std::int64_t j = 0; j < n_; ++j)
    for (std::int64_t i = 0; i < n_; ++i)
      if (a_(j, i)) ++c;
  return c;
}

std::vector<std::vector<std::uint8_t>> TransitiveClosureKernel::active_trace(
    BoolMatrix graph) {
  const std::int64_t n = graph.rows();
  std::vector<std::vector<std::uint8_t>> active(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(static_cast<std::size_t>(n), 0));
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t j = 0; j < n; ++j)
      active[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] =
          graph(j, k);
    for (std::int64_t j = 0; j < n; ++j) {
      if (!graph(j, k) || j == k) continue;
      for (std::int64_t i = 0; i < n; ++i)
        if (graph(k, i)) graph(j, i) = 1;
    }
  }
  return active;
}

LoopProgram TransitiveClosureKernel::program(const BoolMatrix& graph,
                                             double work_per_element) {
  const std::int64_t n = graph.rows();
  // A boolean row moves far fewer bytes than a double row: with 2-byte
  // logicals, n entries = n/4 transfer units (one unit = 8 bytes).
  const double row_units = static_cast<double>(n) / 4.0;
  auto trace = std::make_shared<std::vector<std::vector<std::uint8_t>>>(
      active_trace(graph));

  LoopProgram p;
  p.name = "tc-" + std::to_string(n);
  // Identical dimensions with different edges are different programs, so
  // the key embeds a content hash of the adjacency matrix.
  p.key = "tc(n=" + std::to_string(n) + ",w=" + key_double(work_per_element) +
          ",graph=" +
          hex64(fnv1a64_bytes(
              graph.data(),
              static_cast<std::size_t>(graph.rows()) *
                  static_cast<std::size_t>(graph.cols()))) +
          ")";
  p.epochs = static_cast<int>(n);
  p.epoch_loops = [n, work_per_element, row_units, trace](int k) {
    ParallelLoopSpec spec;
    spec.n = n;
    spec.work = [n, work_per_element, trace, k](std::int64_t j) {
      return (*trace)[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]
                 ? static_cast<double>(n) * work_per_element
                 : 1.0;
    };
    spec.footprint = [row_units, trace, k](std::int64_t j,
                                           std::vector<BlockAccess>& out) {
      if (!(*trace)[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)])
        return;  // inactive iteration: the O(1) edge test touches nothing big
      out.push_back({static_cast<std::int64_t>(k), row_units, false});
      out.push_back({j, row_units, true});
    };
    return std::vector<ParallelLoopSpec>{spec};
  };
  return p;
}

}  // namespace afs
