#include "kernels/sor.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace afs {

SorKernel::SorKernel(std::int64_t n, double omega)
    : n_(n), omega_(omega), src_(n, n), dst_(n, n) {
  AFS_CHECK(n >= 1);
  AFS_CHECK(omega > 0.0 && omega < 2.0);
}

void SorKernel::init(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::int64_t j = 0; j < n_; ++j)
    for (std::int64_t k = 0; k < n_; ++k) src_(j, k) = rng.next_double();
  dst_ = src_;
}

void SorKernel::update_row(std::int64_t j) {
  // Boundary rows are fixed (Dirichlet); interior points relax toward the
  // 4-neighbor average of the previous sweep.
  if (j == 0 || j == n_ - 1) {
    for (std::int64_t k = 0; k < n_; ++k) dst_(j, k) = src_(j, k);
    return;
  }
  dst_(j, 0) = src_(j, 0);
  dst_(j, n_ - 1) = src_(j, n_ - 1);
  for (std::int64_t k = 1; k < n_ - 1; ++k) {
    const double avg = 0.25 * (src_(j - 1, k) + src_(j + 1, k) +
                               src_(j, k - 1) + src_(j, k + 1));
    dst_(j, k) = src_(j, k) + omega_ * (avg - src_(j, k));
  }
}

void SorKernel::epoch_serial() {
  for (std::int64_t j = 0; j < n_; ++j) update_row(j);
  std::swap(src_, dst_);
}

void SorKernel::epoch_parallel(ThreadPool& pool, Scheduler& sched) {
  parallel_for(pool, sched, n_, [this](IterRange r, int) {
    for (std::int64_t j = r.begin; j < r.end; ++j) update_row(j);
  });
  std::swap(src_, dst_);
}

double SorKernel::checksum() const {
  double sum = 0.0;
  for (std::int64_t j = 0; j < n_; ++j)
    for (std::int64_t k = 0; k < n_; ++k) sum += src_(j, k) * (1.0 + 1e-6 * j);
  return sum;
}

LoopProgram SorKernel::program(std::int64_t n, int epochs,
                               double work_per_element) {
  ParallelLoopSpec spec;
  spec.n = n;
  spec.work = [n, work_per_element](std::int64_t) {
    return static_cast<double>(n) * work_per_element;
  };
  spec.uniform_work = static_cast<double>(n) * work_per_element;
  spec.footprint = [n](std::int64_t j, std::vector<BlockAccess>& out) {
    const double row_units = static_cast<double>(n);
    if (j > 0) out.push_back({j - 1, row_units, false});
    if (j + 1 < n) out.push_back({j + 1, row_units, false});
    out.push_back({j, row_units, true});
  };
  LoopProgram p = single_loop_program("sor-" + std::to_string(n), epochs,
                                      [spec](int) { return spec; });
  p.key = "sor(n=" + std::to_string(n) + ",epochs=" + std::to_string(epochs) +
          ",w=" + key_double(work_per_element) + ")";
  return p;
}

}  // namespace afs
