// The synthetic single-loop workloads of §4.4-§4.6: pure cost shapes with
// no memory accesses, used to study load balancing and synchronization in
// isolation on the Butterfly, and the 200-million-iteration balanced loop
// of the Table 2 arrival-time experiment.
#pragma once

#include <cstdint>

#include "workload/loop_spec.hpp"

namespace afs {

/// Fig. 10: iteration i costs (n - i) units (triangular).
LoopProgram triangular_program(std::int64_t n);

/// Fig. 11: iteration i costs (n - i)^2 units (decreasing parabolic).
LoopProgram parabolic_program(std::int64_t n);

/// Fig. 12: the first `fraction` of iterations cost `heavy`, the rest
/// `light` (paper: 10% at 100 units, 90% at 1 unit, n = 50000).
LoopProgram head_heavy_program(std::int64_t n, double fraction = 0.1,
                               double heavy = 100.0, double light = 1.0);

/// Fig. 13 / Table 2: a perfectly balanced loop, `unit` work per iteration.
/// Carries an O(1) work_sum so even n = 2e8 simulates instantly.
LoopProgram balanced_program(std::int64_t n, double unit = 1.0);

/// An iterative simulation whose load hotspot drifts slowly across the
/// iteration space — the situation §4.3 sketches when motivating the
/// last-executed AFS variant ("the conditions that produce load imbalance
/// do not vary wildly from one simulation step to the next"). Epoch e has
/// a heavy band of `width` iterations starting at floor(e * speed) mod n,
/// costing `heavy` each; the rest cost `light`. When `row_units` > 0,
/// iteration i also reads+writes data block i, so schedulers additionally
/// compete on affinity.
LoopProgram drifting_hotspot_program(std::int64_t n, int epochs,
                                     std::int64_t width, double speed,
                                     double heavy = 50.0, double light = 1.0,
                                     double row_units = 0.0);

}  // namespace afs
