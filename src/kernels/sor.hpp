// Successive Over-Relaxation (paper §4.2, first kernel).
//
//   DO SEQUENTIAL I = 1, MAXITERATIONS
//     DO PARALLEL J = 1, N
//       DO SEQUENTIAL K = 1, N
//         A(J,K) = UPDATE(A,J,K)
//
// Iteration J of the parallel loop always touches row J (plus its
// neighbors): perfect affinity, no load imbalance. The real implementation
// uses a weighted-Jacobi sweep (double-buffered) rather than in-place
// Gauss-Seidel so results are bit-identical under every schedule — same
// loop structure, same row-per-iteration footprint; the substitution is
// recorded in DESIGN.md.
#pragma once

#include <cstdint>

#include "runtime/parallel_for.hpp"
#include "util/array2d.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class SorKernel {
 public:
  /// n x n grid; omega is the relaxation weight.
  explicit SorKernel(std::int64_t n, double omega = 0.8);

  /// Deterministic pseudo-random initial grid.
  void init(std::uint64_t seed);

  /// One reference sweep on the calling thread.
  void epoch_serial();

  /// One sweep executed as a parallel loop over rows.
  void epoch_parallel(ThreadPool& pool, Scheduler& sched);

  /// Grid checksum for cross-schedule verification.
  double checksum() const;

  std::int64_t n() const { return n_; }
  const Array2D<double>& grid() const { return src_; }

  /// Simulator descriptor: `epochs` sweeps over an n x n grid.
  /// work_per_element ~ flops per grid point; Fig. 17 raises it to model
  /// the KSR-1's software floating-point division.
  static LoopProgram program(std::int64_t n, int epochs,
                             double work_per_element = 5.0);

 private:
  void update_row(std::int64_t j);

  std::int64_t n_;
  double omega_;
  Array2D<double> src_;
  Array2D<double> dst_;
};

}  // namespace afs
