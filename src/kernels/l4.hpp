// The L4 hybrid benchmark (paper §4.2, Figure 2; originally from
// Polychronopoulos & Kuck's GSS paper).
//
//   DO SEQUENTIAL I1 = 1,50
//     DO PARALLEL I2=1,10; I3=1,10; I4=1,10:  {10} [if C then {50}]
//     DO PARALLEL I5=1,100: {50}
//       DO PARALLEL I6=1,5: {100} [if C then {30}]
//     DO PARALLEL I7=1,20; I8=1,4: {30}
//
// {u} denotes u abstract work units; each `if C` is an independent coin
// flip with P(true) = 0.5. Nested parallel loops are coalesced into single
// loops (the transformation the paper cites [23]): three parallel loops of
// 1000, 100 and 80 iterations per outer epoch. No memory accesses, so no
// affinity — L4 isolates scheduling overhead and mild imbalance.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

struct L4Config {
  int outer = 50;            ///< sequential epochs
  std::uint64_t seed = 7;    ///< coin-flip stream
  double if_prob = 0.5;      ///< probability each conditional block executes
};

class L4Kernel {
 public:
  explicit L4Kernel(L4Config config = {});

  /// Total work units over all epochs (the deterministic oracle value).
  double total_units() const;

  /// Executes the busy-work on real threads; returns the total units
  /// actually executed (must equal total_units() under any schedule).
  double run_parallel(ThreadPool& pool, Scheduler& sched) const;

  /// Reference single-thread execution; also returns units executed.
  double run_serial() const;

  /// Simulator descriptor: three parallel loops per epoch.
  LoopProgram program() const;

  /// Per-iteration unit costs for epoch e, loop l in {0,1,2} (exposed for
  /// tests and the BEST-STATIC oracle).
  const std::vector<double>& costs(int epoch, int loop) const;

 private:
  L4Config config_;
  // costs_[epoch][loop][i] = work units of iteration i.
  std::vector<std::vector<std::vector<double>>> costs_;
};

}  // namespace afs
