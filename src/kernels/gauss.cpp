#include "kernels/gauss.hpp"

#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace afs {

GaussKernel::GaussKernel(std::int64_t n) : n_(n), a_(n, n) {
  AFS_CHECK(n >= 1);
}

void GaussKernel::init(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < n_; ++i) {
    double off_diag = 0.0;
    for (std::int64_t j = 0; j < n_; ++j) {
      a_(i, j) = rng.next_double() - 0.5;
      if (i != j) off_diag += std::abs(a_(i, j));
    }
    a_(i, i) = off_diag + 1.0;  // strict diagonal dominance
  }
}

void GaussKernel::eliminate_rows(std::int64_t e, IterRange rows) {
  // rows are iteration indices: row = e + 1 + idx.
  for (std::int64_t idx = rows.begin; idx < rows.end; ++idx) {
    const std::int64_t i = e + 1 + idx;
    const double factor = a_(i, e) / a_(e, e);
    for (std::int64_t j = e; j < n_; ++j) a_(i, j) -= factor * a_(e, j);
  }
}

void GaussKernel::eliminate_serial() {
  for (std::int64_t e = 0; e < n_ - 1; ++e)
    eliminate_rows(e, {0, n_ - e - 1});
}

void GaussKernel::eliminate_parallel(ThreadPool& pool, Scheduler& sched) {
  for (std::int64_t e = 0; e < n_ - 1; ++e) {
    parallel_for(pool, sched, n_ - e - 1, [this, e](IterRange r, int) {
      eliminate_rows(e, r);
    });
  }
}

double GaussKernel::checksum() const {
  double sum = 0.0;
  for (std::int64_t i = 0; i < n_; ++i)
    for (std::int64_t j = 0; j < n_; ++j) sum += a_(i, j) * (1.0 + 1e-6 * i);
  return sum;
}

LoopProgram GaussKernel::program(std::int64_t n, double work_per_element) {
  LoopProgram p;
  p.name = "gauss-" + std::to_string(n);
  p.key = "gauss(n=" + std::to_string(n) +
          ",w=" + key_double(work_per_element) + ")";
  p.epochs = static_cast<int>(n - 1);
  p.epoch_loops = [n, work_per_element](int e) {
    ParallelLoopSpec spec;
    spec.n = n - e - 1;
    const double active = static_cast<double>(n - e);
    spec.work = [active, work_per_element](std::int64_t) {
      return active * work_per_element;
    };
    spec.uniform_work = active * work_per_element;
    spec.footprint = [e, active](std::int64_t idx,
                                 std::vector<BlockAccess>& out) {
      out.push_back({static_cast<std::int64_t>(e), active, false});  // pivot row
      out.push_back({e + 1 + idx, active, true});                   // own row
    };
    return std::vector<ParallelLoopSpec>{spec};
  };
  return p;
}

CostFn GaussKernel::epoch_cost(std::int64_t n, int e) {
  return uniform_cost(static_cast<double>(n - e));
}

}  // namespace afs
