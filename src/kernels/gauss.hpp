// Gaussian elimination (paper §4.2, second kernel).
//
//   DO SEQUENTIAL K = 2, N
//     DO PARALLEL I = K, N
//       DO SEQUENTIAL J = K-1, N+1
//         A[I][J] -= A[K-1][J] * A[I][K-1] / A[K-1][K-1]
//
// Epoch e eliminates column e below the pivot: the parallel loop shrinks
// by one iteration per epoch, every iteration writes its own row and reads
// the shared pivot row. Moderate affinity (rows shift slowly across the
// chunk grid as the loop base advances) with mild load imbalance — the
// Fig. 4/14/15 workhorse.
#pragma once

#include <cstdint>

#include "runtime/parallel_for.hpp"
#include "util/array2d.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class GaussKernel {
 public:
  explicit GaussKernel(std::int64_t n);

  /// Random diagonally-dominant matrix: elimination is numerically stable
  /// without pivoting, so all schedules produce bit-identical results.
  void init(std::uint64_t seed);

  /// Full elimination on the calling thread (reference).
  void eliminate_serial();

  /// Full elimination with each epoch's row updates as a parallel loop.
  void eliminate_parallel(ThreadPool& pool, Scheduler& sched);

  double checksum() const;
  std::int64_t n() const { return n_; }
  const Array2D<double>& matrix() const { return a_; }

  /// Simulator descriptor: n-1 epochs; epoch e has n-e-1 iterations of
  /// (n-e) * work_per_element units each, reading pivot row e and writing
  /// row e+1+idx.
  static LoopProgram program(std::int64_t n, double work_per_element = 2.0);

  /// Oracle cost model for BEST-STATIC at epoch e (uniform across the
  /// epoch's iterations — Gauss's imbalance is across epochs, not within).
  static CostFn epoch_cost(std::int64_t n, int e);

 private:
  void eliminate_rows(std::int64_t e, IterRange rows);

  std::int64_t n_;
  Array2D<double> a_;
};

}  // namespace afs
