#include "kernels/compute.hpp"

#include <atomic>
#include <cmath>

namespace afs {

double compute_units(double units) {
  const auto steps = static_cast<std::int64_t>(std::llround(units)) * 4;
  double x = 1.000000001;
  for (std::int64_t i = 0; i < steps; ++i) x = x * 1.0000001 + 1e-12;
  return x;
}

namespace {
std::atomic<double> sink{0.0};
}

void consume(double value) {
  sink.store(value, std::memory_order_relaxed);
}

}  // namespace afs
