#include "kernels/synthetic.hpp"

#include "util/check.hpp"
#include "util/hash.hpp"
#include "workload/cost_models.hpp"

namespace afs {

namespace {
// sum_{i=b}^{e-1} (n - i) — arithmetic series.
double triangular_sum(std::int64_t n, std::int64_t b, std::int64_t e) {
  const double len = static_cast<double>(e - b);
  return len *
         (2.0 * static_cast<double>(n) - static_cast<double>(b) -
          static_cast<double>(e) + 1.0) /
         2.0;
}

// sum_{k=1}^{m} k^2 = m(m+1)(2m+1)/6.
double square_pyramid(double m) { return m * (m + 1.0) * (2.0 * m + 1.0) / 6.0; }

// sum_{i=b}^{e-1} (n - i)^2 = sum_{k=n-e+1}^{n-b} k^2.
double parabolic_sum(std::int64_t n, std::int64_t b, std::int64_t e) {
  return square_pyramid(static_cast<double>(n - b)) -
         square_pyramid(static_cast<double>(n - e));
}
}  // namespace

LoopProgram triangular_program(std::int64_t n) {
  AFS_CHECK(n >= 0);
  ParallelLoopSpec spec;
  spec.n = n;
  spec.work = triangular_cost(n);
  spec.work_sum = [n](std::int64_t b, std::int64_t e) {
    return triangular_sum(n, b, e);
  };
  LoopProgram p = single_loop_program("triangular-" + std::to_string(n), 1,
                                      [spec](int) { return spec; });
  p.key = "triangular(n=" + std::to_string(n) + ")";
  return p;
}

LoopProgram parabolic_program(std::int64_t n) {
  AFS_CHECK(n >= 0);
  ParallelLoopSpec spec;
  spec.n = n;
  spec.work = parabolic_cost(n);
  spec.work_sum = [n](std::int64_t b, std::int64_t e) {
    return parabolic_sum(n, b, e);
  };
  LoopProgram p = single_loop_program("parabolic-" + std::to_string(n), 1,
                                      [spec](int) { return spec; });
  p.key = "parabolic(n=" + std::to_string(n) + ")";
  return p;
}

LoopProgram head_heavy_program(std::int64_t n, double fraction, double heavy,
                               double light) {
  AFS_CHECK(n >= 0);
  const auto cutoff =
      static_cast<std::int64_t>(fraction * static_cast<double>(n));
  ParallelLoopSpec spec;
  spec.n = n;
  spec.work = head_heavy_cost(n, fraction, heavy, light);
  spec.work_sum = [cutoff, heavy, light](std::int64_t b, std::int64_t e) {
    const std::int64_t heavy_count =
        std::max<std::int64_t>(0, std::min(e, cutoff) - b);
    const std::int64_t light_count = (e - b) - heavy_count;
    return static_cast<double>(heavy_count) * heavy +
           static_cast<double>(light_count) * light;
  };
  LoopProgram p = single_loop_program("head-heavy-" + std::to_string(n), 1,
                                      [spec](int) { return spec; });
  p.key = "head-heavy(n=" + std::to_string(n) +
          ",f=" + key_double(fraction) + ",hi=" + key_double(heavy) +
          ",lo=" + key_double(light) + ")";
  return p;
}

LoopProgram drifting_hotspot_program(std::int64_t n, int epochs,
                                     std::int64_t width, double speed,
                                     double heavy, double light,
                                     double row_units) {
  AFS_CHECK(n >= 0 && epochs >= 1 && width >= 0 && width <= n);
  AFS_CHECK(heavy >= 0.0 && light >= 0.0 && row_units >= 0.0);
  LoopProgram p;
  p.name = "drifting-hotspot-" + std::to_string(n);
  p.key = "drifting-hotspot(n=" + std::to_string(n) +
          ",epochs=" + std::to_string(epochs) +
          ",width=" + std::to_string(width) + ",speed=" + key_double(speed) +
          ",hi=" + key_double(heavy) + ",lo=" + key_double(light) +
          ",row=" + key_double(row_units) + ")";
  p.epochs = epochs;
  p.epoch_loops = [n, width, speed, heavy, light, row_units](int e) {
    const std::int64_t start =
        n > 0 ? static_cast<std::int64_t>(e * speed) % n : 0;
    auto in_band = [n, width, start](std::int64_t i) {
      // The band may wrap around the end of the iteration space.
      const std::int64_t offset = (i - start % n + n) % n;
      return offset < width;
    };
    ParallelLoopSpec spec;
    spec.n = n;
    spec.work = [in_band, heavy, light](std::int64_t i) {
      return in_band(i) ? heavy : light;
    };
    if (row_units > 0.0) {
      spec.footprint = [row_units](std::int64_t i,
                                   std::vector<BlockAccess>& out) {
        out.push_back({i, row_units, true});
      };
    }
    return std::vector<ParallelLoopSpec>{spec};
  };
  return p;
}

LoopProgram balanced_program(std::int64_t n, double unit) {
  AFS_CHECK(n >= 0 && unit >= 0.0);
  ParallelLoopSpec spec;
  spec.n = n;
  spec.work = uniform_cost(unit);
  spec.uniform_work = unit;
  spec.work_sum = [unit](std::int64_t b, std::int64_t e) {
    return static_cast<double>(e - b) * unit;
  };
  LoopProgram p = single_loop_program("balanced-" + std::to_string(n), 1,
                                      [spec](int) { return spec; });
  p.key = "balanced(n=" + std::to_string(n) + ",unit=" + key_double(unit) +
          ")";
  return p;
}

}  // namespace afs
