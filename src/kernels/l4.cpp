#include "kernels/l4.hpp"

#include <atomic>

#include "kernels/compute.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace afs {

L4Kernel::L4Kernel(L4Config config) : config_(config) {
  AFS_CHECK(config_.outer >= 1);
  AFS_CHECK(config_.if_prob >= 0.0 && config_.if_prob <= 1.0);
  Xoshiro256 rng(config_.seed);
  costs_.resize(static_cast<std::size_t>(config_.outer));
  for (auto& epoch : costs_) {
    epoch.resize(3);
    // Loop A: I2 x I3 x I4 = 1000 iterations of {10} [+ {50} w.p. p].
    epoch[0].resize(1000);
    for (auto& c : epoch[0])
      c = 10.0 + (rng.next_bool(config_.if_prob) ? 50.0 : 0.0);
    // Loop B: I5 = 100 iterations of {50} + 5 inner of {100} [+ {30}].
    epoch[1].resize(100);
    for (auto& c : epoch[1]) {
      c = 50.0;
      for (int inner = 0; inner < 5; ++inner)
        c += 100.0 + (rng.next_bool(config_.if_prob) ? 30.0 : 0.0);
    }
    // Loop C: I7 x I8 = 80 iterations of {30}.
    epoch[2].assign(80, 30.0);
  }
}

const std::vector<double>& L4Kernel::costs(int epoch, int loop) const {
  AFS_CHECK(epoch >= 0 && epoch < config_.outer && loop >= 0 && loop < 3);
  return costs_[static_cast<std::size_t>(epoch)][static_cast<std::size_t>(loop)];
}

double L4Kernel::total_units() const {
  double total = 0.0;
  for (const auto& epoch : costs_)
    for (const auto& loop : epoch)
      for (double c : loop) total += c;
  return total;
}

double L4Kernel::run_serial() const {
  double executed = 0.0;
  for (const auto& epoch : costs_)
    for (const auto& loop : epoch)
      for (double c : loop) {
        consume(compute_units(c));
        executed += c;
      }
  return executed;
}

double L4Kernel::run_parallel(ThreadPool& pool, Scheduler& sched) const {
  std::atomic<std::int64_t> executed{0};  // units are small integers: exact
  for (const auto& epoch : costs_) {
    for (const auto& loop : epoch) {
      parallel_for(pool, sched, static_cast<std::int64_t>(loop.size()),
                   [&loop, &executed](IterRange r, int) {
                     double units = 0.0;
                     for (std::int64_t i = r.begin; i < r.end; ++i) {
                       const double c = loop[static_cast<std::size_t>(i)];
                       consume(compute_units(c));
                       units += c;
                     }
                     executed.fetch_add(static_cast<std::int64_t>(units),
                                        std::memory_order_relaxed);
                   });
    }
  }
  return static_cast<double>(executed.load());
}

LoopProgram L4Kernel::program() const {
  LoopProgram p;
  p.name = "l4";
  p.key = "l4(outer=" + std::to_string(config_.outer) +
          ",seed=" + std::to_string(config_.seed) +
          ",ifp=" + key_double(config_.if_prob) + ")";
  p.epochs = config_.outer;
  // Copy the cost tables into the closure so the program is self-contained.
  auto costs = costs_;
  p.epoch_loops = [costs](int e) {
    std::vector<ParallelLoopSpec> loops;
    for (const auto& loop : costs[static_cast<std::size_t>(e)]) {
      ParallelLoopSpec spec;
      spec.n = static_cast<std::int64_t>(loop.size());
      spec.work = [&loop](std::int64_t i) {
        return loop[static_cast<std::size_t>(i)];
      };
      loops.push_back(std::move(spec));
    }
    return loops;
  };
  return p;
}

}  // namespace afs
