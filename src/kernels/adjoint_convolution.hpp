// Adjoint convolution (paper §4.2, fourth kernel).
//
//   DO PARALLEL I = 1, N*N
//     DO SEQUENTIAL K = I, N*N
//       A(I) = A(I) + X*B(K)*C(I-K)
//
// A single parallel loop (no enclosing sequential loop, hence no affinity
// to exploit) with strongly decreasing costs: iteration i takes O(N*N - i)
// time. The pure load-balancing stress test of Figs. 7-8, and the natural
// home of the reverse-index adapter.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class AdjointConvolutionKernel {
 public:
  /// Arrays have m = n*n elements (the paper's N = 75 gives m = 5625).
  AdjointConvolutionKernel(std::int64_t n, std::uint64_t seed);

  void run_serial();
  /// `reverse` wraps the scheduler in the reverse-index adapter externally;
  /// here the body just executes whatever range it is given.
  void run_parallel(ThreadPool& pool, Scheduler& sched);

  double checksum() const;
  std::int64_t m() const { return m_; }

  /// Simulator descriptor: single loop, work(i) = (m - i) * unit_work,
  /// no footprint (the paper treats this kernel as affinity-free).
  static LoopProgram program(std::int64_t n, double unit_work = 1.0);

  /// Oracle cost model for BEST-STATIC.
  static CostFn cost(std::int64_t n);

 private:
  std::int64_t m_;
  double x_;
  std::vector<double> a_, b_, c_;
};

}  // namespace afs
