// Warshall transitive closure (paper §4.2, third kernel).
//
//   DO SEQUENTIAL K = 1, N
//     DO PARALLEL J = 1, N
//       IF (A(J,K)) THEN
//         DO SEQUENTIAL I = 1, N
//           IF (A(K,I)) A(J,I) = TRUE
//
// Iteration J costs O(N) when edge (J,K) exists and O(1) otherwise — load
// is input-dependent (random graph: averaged out; clique graph: all the
// work in the clique rows). Iteration J always touches row J: affinity.
// The parallel epoch is race-free: within epoch K only iteration J writes
// row J, and the only writer of the shared row K (iteration J = K) is a
// no-op, so results are schedule-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "workload/graphs.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class TransitiveClosureKernel {
 public:
  explicit TransitiveClosureKernel(BoolMatrix graph);

  void run_serial();
  void run_parallel(ThreadPool& pool, Scheduler& sched);

  const BoolMatrix& matrix() const { return a_; }
  std::int64_t reachable_pairs() const;

  /// Simulator descriptor. The per-epoch active set (is edge (J,K) present
  /// when epoch K starts?) depends on the algorithm's own progress, so it
  /// is captured by running the serial algorithm once and recording a
  /// trace — the simulated costs then follow the real data-dependent
  /// execution exactly.
  static LoopProgram program(const BoolMatrix& graph,
                             double work_per_element = 2.0);

  /// Oracle per-iteration costs for BEST-STATIC at epoch k, from the same
  /// trace machinery.
  static std::vector<std::vector<std::uint8_t>> active_trace(BoolMatrix graph);

 private:
  std::int64_t n_;
  BoolMatrix a_;
};

}  // namespace afs
