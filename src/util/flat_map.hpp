// FlatMap64: a small open-addressing hash map with int64 keys, built for
// the simulator's hot paths (cache residency index, coherence directory).
//
// Why not std::unordered_map: the engine performs several residency/sharer
// lookups per simulated memory access, and the node-based std::unordered_map
// spends most of that in pointer chasing and modulo hashing — it showed up
// as ~20% of the KSR-1 Gauss sweep's wall clock. This map stores slots
// contiguously, uses Fibonacci hashing with linear probing, and deletes by
// backward shift (no tombstones), so lookups are one multiply plus a short
// contiguous scan.
//
// Semantics are the subset of std::unordered_map the simulator needs:
// find / operator[] / erase / clear / size. Iteration order is not
// provided (nothing in the engine may depend on hash order — determinism).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace afs {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent.
  V* find(std::int64_t key) {
    if (size_ == 0) return nullptr;
    for (std::size_t i = index(key);; i = (i + 1) & mask_) {
      if (!full_[i]) return nullptr;
      if (slots_[i].key == key) return &slots_[i].value;
    }
  }
  const V* find(std::int64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  bool contains(std::int64_t key) const { return find(key) != nullptr; }

  /// Value for `key`, default-constructed and inserted when absent.
  V& operator[](std::int64_t key) {
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3) grow();
    for (std::size_t i = index(key);; i = (i + 1) & mask_) {
      if (!full_[i]) {
        full_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = V{};
        ++size_;
        return slots_[i].value;
      }
      if (slots_[i].key == key) return slots_[i].value;
    }
  }

  /// Removes `key`; returns whether it was present. Backward-shift
  /// deletion keeps probe chains contiguous without tombstones.
  bool erase(std::int64_t key) {
    if (size_ == 0) return false;
    std::size_t i = index(key);
    for (;; i = (i + 1) & mask_) {
      if (!full_[i]) return false;
      if (slots_[i].key == key) break;
    }
    for (std::size_t j = i;;) {
      j = (j + 1) & mask_;
      if (!full_[j]) break;
      const std::size_t ideal = index(slots_[j].key);
      // Move j back into the hole unless it already sits in (i, j].
      if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    full_[i] = 0;
    --size_;
    return true;
  }

  void clear() {
    full_.assign(full_.size(), 0);
    size_ = 0;
  }

 private:
  struct Slot {
    std::int64_t key;
    V value;
  };

  std::size_t capacity() const { return slots_.size(); }

  std::size_t index(std::int64_t key) const {
    // Fibonacci hashing: one multiply spreads consecutive block ids well.
    const std::uint64_t h =
        static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_) & mask_;
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : capacity() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_full = std::move(full_);
    slots_.assign(cap, Slot{});
    full_.assign(cap, 0);
    mask_ = cap - 1;
    shift_ = 64 - log2_floor(cap);
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i)
      if (old_full[i]) (*this)[old_slots[i].key] = std::move(old_slots[i].value);
  }

  static unsigned log2_floor(std::size_t v) {
    unsigned r = 0;
    while (v > 1) {
      v >>= 1;
      ++r;
    }
    return r;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> full_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
};

}  // namespace afs
