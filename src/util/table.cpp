#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace afs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AFS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  AFS_CHECK_MSG(cells.size() == headers_.size(),
                "row arity " << cells.size() << " != header arity "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  // Crash-safe publication: a reader (or a resumed sweep) never sees a
  // half-written CSV — the file appears complete or not at all.
  write_file_atomic(path, to_csv());
}

}  // namespace afs
