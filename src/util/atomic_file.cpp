#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace afs {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// fsync a file descriptor, tolerating filesystems (and CI tmpfs overlays)
/// that reject fsync on special files with EINVAL — durability degrades
/// but atomic visibility via rename still holds there.
bool fsync_fd(int fd) { return ::fsync(fd) == 0 || errno == EINVAL; }

void fsync_parent_dir(const std::filesystem::path& p) {
  const std::filesystem::path dir =
      p.has_parent_path() ? p.parent_path() : std::filesystem::path(".");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: rename already happened
  (void)fsync_fd(fd);
  ::close(fd);
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::filesystem::path target(path);
  if (target.has_parent_path())
    std::filesystem::create_directories(target.parent_path());

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot open", tmp);

  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      fail("cannot write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }

  if (!fsync_fd(fd)) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot close", tmp);
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot rename into", path);
  }
  fsync_parent_dir(target);
}

void commit_file_atomic(const std::string& tmp_path,
                        const std::string& final_path) {
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot reopen", tmp_path);
  const bool synced = fsync_fd(fd);
  const int saved = errno;
  ::close(fd);
  if (!synced) {
    errno = saved;
    fail("cannot fsync", tmp_path);
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    fail("cannot rename into", final_path);
  fsync_parent_dir(std::filesystem::path(final_path));
}

}  // namespace afs
