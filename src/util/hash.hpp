// Stable 64-bit content hashing (FNV-1a) shared by everything that needs
// a deterministic, platform-independent digest: sweep checkpoint
// identities, content-addressed result-store keys, graph content keys.
//
// FNV-1a is not cryptographic; collisions are handled by the consumers
// (the result store records the full key text in every entry and compares
// it on lookup, the sweep manifest stores the identity it was written
// with), so the hash only has to be stable across runs, compilers and
// machines — which a fixed-width integer recurrence is.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace afs {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over a byte string; `h` chains multi-field hashes.
inline std::uint64_t fnv1a64(std::string_view s,
                             std::uint64_t h = kFnvOffsetBasis) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over a raw byte buffer (e.g. a graph adjacency matrix).
inline std::uint64_t fnv1a64_bytes(const void* data, std::size_t size,
                                   std::uint64_t h = kFnvOffsetBasis) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t k = 0; k < size; ++k) {
    h ^= p[k];
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed-width lowercase hex rendering (16 digits).
inline std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

/// Canonical double rendering for key/identity text: hexfloat, which is an
/// exact bijection on the value (no rounding, no locale), so two builds
/// that compute the same double always produce the same key bytes.
inline std::string key_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

}  // namespace afs
