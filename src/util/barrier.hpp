// Reusable thread barrier.
//
// The real-thread substrate uses this between the epochs of a sequential
// outer loop (every worker must finish parallel-loop epoch e before any
// worker starts epoch e+1). A condition-variable implementation is chosen
// over a spin barrier because the library must behave well even when the
// number of workers exceeds the number of hardware threads (the paper's
// machines had up to 64 processors; CI hosts may have one core).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace afs {

class Barrier {
 public:
  /// Creates a barrier for `count` participating threads. count >= 1.
  explicit Barrier(int count);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all `count` threads have called arrive_and_wait().
  /// Reusable: generation counting makes back-to-back phases safe.
  void arrive_and_wait();

  int participant_count() const { return count_; }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const int count_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace afs
