#include "util/barrier.hpp"

#include "util/check.hpp"

namespace afs {

Barrier::Barrier(int count) : count_(count) { AFS_CHECK(count >= 1); }

void Barrier::arrive_and_wait() {
  std::unique_lock lock(mutex_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == count_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

}  // namespace afs
