// Lightweight precondition / invariant checking.
//
// AFS_CHECK is always on (it guards API misuse: schedulers driven with an
// invalid processor count, simulator configured with negative costs, ...).
// AFS_DCHECK compiles away in release builds and guards internal invariants
// on hot paths (queue bookkeeping, cache residency counts).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace afs {

/// Thrown by AFS_CHECK on contract violation. Deriving from logic_error
/// signals a programming error rather than an environmental failure.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace afs

#define AFS_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::afs::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AFS_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream afs_check_os_;                                \
      afs_check_os_ << msg;                                            \
      ::afs::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                  afs_check_os_.str());                \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define AFS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define AFS_DCHECK(expr) AFS_CHECK(expr)
#endif
