// Minimal ASCII table / CSV rendering for bench output.
//
// Every reproduction binary prints the paper's rows with this formatter
// and mirrors them to CSV so EXPERIMENTS.md can be regenerated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace afs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);

  /// Renders with aligned columns and a header rule.
  std::string to_ascii() const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our content).
  std::string to_csv() const;

  /// Writes CSV to `path` atomically (temp file + fsync + rename),
  /// creating parent directories if needed: a crash mid-write never
  /// leaves a truncated CSV behind. Throws std::runtime_error on I/O
  /// failure.
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace afs
