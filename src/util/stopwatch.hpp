// Wall-clock stopwatch used by the real-thread substrate and benches.
#pragma once

#include <chrono>

namespace afs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace afs
