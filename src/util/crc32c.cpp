#include "util/crc32c.hpp"

#include <array>

namespace afs {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    t[i] = crc;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace afs
