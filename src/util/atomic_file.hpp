// Crash-safe file writes: publish-by-rename.
//
// A file written in place can be left truncated by a crash, an OOM kill or
// a Ctrl-C between open() and the final flush. Every durable artifact in
// this repository (CSV tables, sweep checkpoints, JSONL traces) therefore
// goes through the same protocol: write the full content to `<path>.tmp`,
// fsync the data, rename(2) over the final name, and fsync the directory
// so the rename itself survives a power cut. Readers either see the old
// complete file or the new complete file — never a prefix.
#pragma once

#include <string>

namespace afs {

/// Writes `content` to `path` via the tmp+fsync+rename protocol above.
/// Parent directories are created as needed. Throws std::runtime_error
/// (with errno context) on any I/O failure; the temp file is unlinked on
/// the failure path so retries start clean.
void write_file_atomic(const std::string& path, const std::string& content);

/// Publishes an already-written temp file: fsyncs `tmp_path`, renames it
/// to `final_path`, fsyncs the parent directory. Used by streaming writers
/// (e.g. the JSONL trace sink) that cannot buffer their whole output.
/// Throws std::runtime_error on failure, leaving `tmp_path` in place.
void commit_file_atomic(const std::string& tmp_path,
                        const std::string& final_path);

}  // namespace afs
