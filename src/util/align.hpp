// Cache-line alignment helpers for contended per-processor state.
#pragma once

#include <cstddef>
#include <new>

namespace afs {

// A fixed 64 bytes rather than std::hardware_destructive_interference_size:
// the constant is part of the ABI (GCC warns when it leaks into headers),
// and 64 is correct for every x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

/// Pads T to its own cache line so per-worker counters and queue heads do
/// not false-share. Use in arrays indexed by worker id.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}
  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace afs
