// Small deterministic RNGs.
//
// Every stochastic input in this repository (random graphs, L4's coin
// flips, workload jitter) is driven by these generators with explicit
// seeds, so all experiments and tests are exactly reproducible.
#pragma once

#include <cstdint>

namespace afs {

/// SplitMix64: tiny, fast, passes BigCrush for seeding purposes.
/// Used both directly and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xorshift64*: a tiny single-word stream. One instance per fault stream in
/// the perturbation model, so every processor's preemption/spike draws are
/// independent of every other's (and of how many streams exist).
class XorShift64 {
 public:
  using result_type = std::uint64_t;

  /// A zero seed would be a fixed point of the xorshift; remap it.
  explicit XorShift64(std::uint64_t seed)
      : state_(seed ? seed : 0x2545f4914f6cdd1dULL) {}

  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  std::uint64_t operator()() { return next(); }

  /// xorshift64* never emits 0: the xorshift core is a bijection on
  /// nonzero 64-bit states (zero is its only fixed point, and the
  /// constructor remaps a zero seed), and multiplying a nonzero value by
  /// an odd constant is nonzero mod 2^64. Declaring min() == 0 would
  /// violate the UniformRandomBitGenerator contract and subtly bias any
  /// std::uniform_int_distribution built on top of this generator.
  static constexpr std::uint64_t min() { return 1; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace afs
