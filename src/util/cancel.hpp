// Cooperative cancellation for long-running simulations.
//
// A CancelToken is a cheap, thread-safe "should I keep going?" flag with
// two optional extras: a wall-clock deadline (checked lazily, a throttled
// steady_clock read every kClockStride-th poll so polling stays ~free on
// the event hot path) and a parent token (a sweep-level token that cancels
// every cell derived from it at once).
//
// The simulator polls the token at event boundaries (EventCore::pop) and
// raises CancelledError when it fires; the sweep runner (runtime/
// sweep_runner.hpp) turns that into a structured per-cell failure instead
// of aborting the whole sweep. Cancellation is cooperative: a simulation
// that never pops an event (e.g. a fully analytic loop charged in O(1))
// can overrun its deadline until the next boundary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace afs {

/// Raised by the engine when a CancelToken fires mid-simulation. Derives
/// from runtime_error, not CheckFailure: a deadline is an environmental
/// condition, not a broken invariant.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: fires when `parent` fires (or on its own deadline /
  /// explicit cancel). `parent` is not owned and must outlive the child.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a wall-clock deadline. Call before sharing the token with the
  /// running simulation (the deadline fields themselves are not atomic).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Arms a deadline `seconds` of wall clock from now.
  void set_timeout(double seconds) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }

  /// Explicitly fires the token. Safe from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// True when a deadline is armed on this token (not the parent chain).
  /// The worker-pool supervisor uses the pair below to mirror a cell's
  /// deadline onto its own poll loop: its low-frequency polling would
  /// otherwise see the lazily-checked deadline only every kClockStride-th
  /// call. Read-only; valid once set_deadline() returned.
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// True once the token has fired (explicitly, via the parent, or by
  /// passing its deadline). Latches: once true, always true.
  bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->cancelled()) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_ &&
        (tick_.fetch_add(1, std::memory_order_relaxed) % kClockStride) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  /// Deadline polls read the clock on the first call and then every
  /// kClockStride-th call; in between, a poll is two relaxed atomic ops.
  static constexpr std::uint32_t kClockStride = 1024;

  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint32_t> tick_{0};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace afs
