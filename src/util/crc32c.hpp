// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// the checksum iSCSI and ext4 use, chosen here for the result store's
// per-entry payload checksums because its error-detection properties for
// short-to-medium payloads are much stronger than CRC32's and it has a
// well-known test-vector suite (RFC 3720 appendix B.4) to pin the
// implementation against.
//
// Software, table-driven, byte at a time: store entries are ~1 KiB, so
// throughput is irrelevant next to the fsync that follows; what matters
// is zero dependencies and bit-exact stability across platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace afs {

/// CRC32C of `data` (standard form: init 0xFFFFFFFF, final xor-out).
/// crc32c("") == 0; crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(const void* data, std::size_t size);

inline std::uint32_t crc32c(std::string_view s) {
  return crc32c(s.data(), s.size());
}

}  // namespace afs
