// Row-major dense 2-D array.
//
// Rows are the unit of processor affinity throughout this repository
// (the paper's kernels all touch "the i-th row" in iteration i), so the
// interface is deliberately row-centric.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace afs {

template <typename T>
class Array2D {
 public:
  Array2D() = default;

  Array2D(std::int64_t rows, std::int64_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {
    AFS_CHECK(rows >= 0 && cols >= 0);
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  T& operator()(std::int64_t r, std::int64_t c) {
    AFS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& operator()(std::int64_t r, std::int64_t c) const {
    AFS_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  std::span<T> row(std::int64_t r) {
    AFS_DCHECK(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const T> row(std::int64_t r) const {
    AFS_DCHECK(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<std::size_t>(cols_)};
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  bool operator==(const Array2D&) const = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace afs
