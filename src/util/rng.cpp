#include "util/rng.hpp"

#include "util/check.hpp"

namespace afs {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Xoshiro256::next_in(std::int64_t lo, std::int64_t hi) {
  AFS_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny vs 2^64 in all uses.
  return lo + static_cast<std::int64_t>(next() % span);
}

bool Xoshiro256::next_bool(double p) {
  AFS_CHECK(p >= 0.0 && p <= 1.0);
  return next_double() < p;
}

}  // namespace afs
