// The beyond-the-paper experiments: the AFS design-choice ablations, the
// §5.1 architecture-trend argument made quantitative, and the
// google-benchmark microbenchmark entry. Bodies moved verbatim from the
// former standalone bench binaries, with every simulator invocation
// routed through run_cell_cached().
#include <iostream>
#include <string>
#include <vector>

#include "experiments/expectations.hpp"
#include "experiments/registry.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "util/table.hpp"
#include "workload/graphs.hpp"

namespace afs {

namespace {

// Ablations for the design choices DESIGN.md calls out (beyond the
// paper's evaluated configurations):
//   (a) k sweep           — §3's sync-vs-balance trade-off, measured;
//   (b) steal fraction    — 1/P (paper) vs 1/2 (greedy stealing);
//   (c) cache capacity    — §2.1's eviction discussion: affinity's benefit
//                           disappears when the working set stops fitting;
//   (d) AFS vs AFS-LE     — the §4.3 last-executed variant under a
//                           persistently imbalanced workload;
//   (e) victim selection  — full scan vs randomized probing at KSR scale.
int run_ablation(const ExperimentContext& ctx, std::ostream& out) {
  const bench::BenchCli& cli = ctx.cli;
  out << "== ablation: AFS design choices (Iris model) ==\n\n";

  // (a) k sweep on a head-heavy imbalanced loop: larger k = finer local
  // chunks = better balance at the cost of more local queue operations.
  {
    out << "-- (a) AFS k sweep, transitive closure skewed 320/640 --\n";
    const auto prog = TransitiveClosureKernel::program(clique_graph(640, 320));
    Table t({"k", "time", "local grabs", "steals"});
    for (const char* spec : {"AFS(k=1)", "AFS(k=2)", "AFS(k=4)", "AFS"}) {
      const SimResult r = run_cell_cached(ctx, iris(), prog, spec, 8);
      t.add_row({scheduler_display_name(spec), Table::num(r.makespan, 0),
                 Table::num(r.local_grabs), Table::num(r.remote_grabs)});
    }
    out << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_k"));
  }

  // (b) steal fraction.
  {
    out << "\n-- (b) AFS steal fraction, same workload --\n";
    const auto prog = TransitiveClosureKernel::program(clique_graph(640, 320));
    Table t({"steal", "time", "steals", "iters stolen"});
    for (const char* spec : {"AFS", "AFS(steal=2)", "AFS(steal=4)"}) {
      const SimResult r = run_cell_cached(ctx, iris(), prog, spec, 8);
      std::int64_t stolen = 0;
      for (const auto& q : r.sched_stats.queues) stolen += q.iters_remote;
      t.add_row({scheduler_display_name(spec), Table::num(r.makespan, 0),
                 Table::num(r.remote_grabs), Table::num(stolen)});
    }
    out << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_steal"));
  }

  // (c) cache capacity sweep: shrink the Iris caches until the SOR working
  // set stops fitting; AFS's advantage over GSS should collapse.
  {
    out << "\n-- (c) cache capacity sweep, SOR N=512, P=8 --\n";
    const auto prog = SorKernel::program(512, 8);
    Table t({"capacity (rows/proc)", "AFS", "GSS", "GSS/AFS"});
    for (double rows_per_proc : {128.0, 64.0, 32.0, 8.0, 2.0}) {
      MachineConfig m = iris();
      m.cache_capacity = rows_per_proc * 512.0;
      const double ta = run_cell_cached(ctx, m, prog, "AFS", 8).makespan;
      const double tg = run_cell_cached(ctx, m, prog, "GSS", 8).makespan;
      t.add_row({Table::num(rows_per_proc, 0), Table::num(ta, 0),
                 Table::num(tg, 0), Table::num(tg / ta, 2)});
    }
    out << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_cache"));
    out << "(SOR needs 64 rows/processor at P=8: below that, "
           "affinity has nothing to preserve)\n";
  }

  // (d) AFS vs AFS-LE: persistent imbalance means AFS re-steals the same
  // iterations every epoch; AFS-LE seeds queues with last epoch's actual
  // execution and steals less after the first epoch. Shown on both the
  // skewed transitive closure and §4.3's motivating case — a slowly
  // drifting hotspot.
  {
    out << "\n-- (d) deterministic vs last-executed seeding, P=8 --\n";
    Table t({"workload", "variant", "time", "steals", "local grabs"});
    const auto tc = TransitiveClosureKernel::program(clique_graph(640, 320));
    const auto drift = drifting_hotspot_program(
        /*n=*/2048, /*epochs=*/64, /*width=*/256, /*speed=*/4.0,
        /*heavy=*/50.0, /*light=*/1.0, /*row_units=*/64.0);
    for (const auto* prog : {&tc, &drift}) {
      for (const char* spec : {"AFS", "AFS-LE"}) {
        const SimResult r = run_cell_cached(ctx, iris(), *prog, spec, 8);
        t.add_row({prog->name, scheduler_display_name(spec),
                   Table::num(r.makespan, 0), Table::num(r.remote_grabs),
                   Table::num(r.local_grabs)});
      }
    }
    out << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_le"));
    out << "(AFS-LE should steal far less on the drifting hotspot, at\n"
           " the price of fragmented queues — §4.3's predicted trade)\n";
  }

  // (e) victim selection: the paper's full scan vs the randomized probing
  // it recommends for large machines, at KSR scale.
  {
    out << "\n-- (e) victim selection at scale, TC 1024 on KSR-1, "
           "P=57 --\n";
    const auto prog = TransitiveClosureKernel::program(clique_graph(1024, 409));
    Table t({"variant", "time", "steals"});
    for (const char* spec : {"AFS", "AFS-RAND(2)", "AFS-RAND(4)", "WS"}) {
      const SimResult r = run_cell_cached(ctx, ksr1(), prog, spec, 57);
      t.add_row({scheduler_display_name(spec), Table::num(r.makespan, 0),
                 Table::num(r.remote_grabs)});
    }
    out << t.to_ascii();
    t.write_csv(bench::csv_path(cli, "ablation_victim"));
  }

  out << "\n(csv: " << cli.out_dir << "/ablation_*.csv)\n";
  return 0;
}

// §5.1's architecture-trend argument, made quantitative: as processor
// speed grows faster than interconnect speed, the payoff of affinity
// scheduling grows. We run the same Gaussian elimination on (i) the
// Symmetry model (slow CPUs — the "previous generation"), (ii) the Iris
// model (the paper's "modern" machine), and (iii) a projected future
// machine (Iris with 4x faster CPUs, same bus), and report AFS's
// advantage over GSS on each.
int run_trend(const ExperimentContext& ctx, std::ostream& out) {
  const bench::BenchCli& cli = ctx.cli;
  out << "== trend: AFS advantage vs compute/communication ratio ==\n";

  MachineConfig future = iris();
  future.name = "future(4x cpu)";
  future.work_unit_time = iris().work_unit_time / 4.0;

  const auto prog = GaussKernel::program(256);
  Table t({"machine", "comm/compute", "AFS", "GSS", "GSS/AFS"});
  double prev_adv = 0.0;
  bool monotone = true;
  for (const MachineConfig& m : {symmetry(), iris(), future}) {
    const double ta = run_cell_cached(ctx, m, prog, "AFS", 8).makespan;
    const double tg = run_cell_cached(ctx, m, prog, "GSS", 8).makespan;
    const double ratio = m.transfer_unit_time / m.work_unit_time;
    const double adv = tg / ta;
    t.add_row({m.name, Table::num(ratio, 3), Table::num(ta, 0),
               Table::num(tg, 0), Table::num(adv, 2)});
    monotone &= adv >= prev_adv * 0.98;
    prev_adv = adv;
  }
  out << t.to_ascii();
  t.write_csv(bench::csv_path(cli, "trend"));
  out << "(csv: " << bench::csv_path(cli, "trend") << ")\n";
  report_shape(out, monotone,
               "AFS advantage grows with the comm/compute ratio (§5.1)");

  // The TC2000 vs Butterfly I data point quoted in §5.1.
  const auto b = butterfly1();
  const auto tc = tc2000();
  out << "BBN trend check: compute sped up "
      << Table::num(b.work_unit_time / tc.work_unit_time, 0)
      << "x, remote access only "
      << Table::num(b.miss_latency / tc.miss_latency, 1)
      << "x (paper: 60x vs 3.6x)\n";
  return 0;
}

}  // namespace

void register_extra_experiments(std::vector<Experiment>& experiments) {
  experiments.push_back(table_experiment(
      "ablation_afs", "AFS design-choice ablations (Iris model)",
      {"ablation_k", "ablation_steal", "ablation_cache", "ablation_le",
       "ablation_victim"},
      run_ablation));
  experiments.push_back(table_experiment(
      "trend_comm_ratio", "AFS advantage vs compute/communication ratio",
      {"trend"}, run_trend));
  Experiment micro;
  micro.id = "micro_queues";
  micro.title = "Queue/scheduler microbenchmarks (google-benchmark)";
  micro.kind = ExperimentKind::kMicro;
  micro.run = [](const ExperimentContext&, std::ostream&) { return 0; };
  experiments.push_back(micro);
}

}  // namespace afs
