// The shared command-line interface of every reproduction entry point —
// the per-figure bench binaries (now thin shims) and the afs_sweep batch
// driver both parse exactly these flags, so `bench_fig04_gauss_iris
// --jobs=4 --trace` and `afs_sweep run fig04 --jobs=4 --trace` mean the
// same thing.
//
//   --procs=1,2,4     override the processor sweep (figures only)
//   --out-dir=DIR     write CSVs (and traces) under DIR [bench_results]
//   --trace           also write an event trace per (scheduler, P) cell
//   --trace-format=F  trace encoding: jsonl | binary (implies --trace)
//   --jobs=N          run (scheduler, P) cells on N threads [1]
//   --resume          reload finished cells from the sweep checkpoint
//   --cell-timeout=S  wall-clock deadline (seconds) per cell attempt
//   --cell-retries=N  re-attempts per cell after the first failed try
//   --sweep-timeout=S wall-clock deadline for the whole sweep
//   --store=DIR       serve/fill the content-addressed result store at DIR
//   --no-store        disable the store (afs_sweep enables it by default)
//   --help            usage
//
// Lives in src/experiments (not bench/) because the experiment registry
// and the driver are the real consumers; the bench binaries just forward
// argv to shim_main(). See docs/SWEEP_SERVICE.md.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/sweep_runner.hpp"
#include "trace/trace_record.hpp"

namespace afs::bench {

/// Options common to every bench binary and the driver. Defaults reproduce
/// the paper configuration exactly; anything else is an explicit
/// deviation.
struct BenchCli {
  std::vector<int> procs;                 ///< empty = the figure's own sweep
  std::string out_dir = "bench_results";  ///< CSV / trace destination
  bool trace = false;  ///< write one trace per (scheduler, P) cell under
                       ///< <out_dir> (see trace_cell_path)
  TraceFormat trace_format = TraceFormat::kJsonl;  ///< encoding when tracing
  bool time_phases = false;  ///< collect engine phase timers; write
                             ///< <out_dir>/<id>.phases.json
  bool no_batch = false;     ///< A/B: disable iteration batching
  bool no_memory_fast_path = false;  ///< A/B: disable the exclusive-
                                     ///< residency memory fast path
  bool no_calendar_queue = false;    ///< A/B: reference binary-heap
                                     ///< EventCore instead of the ring
  bool no_epoch_batch = false;       ///< A/B: rebuild engine state per run
                                     ///< instead of warm-state reuse
  int jobs = 1;                ///< sweep-runner worker threads
  bool resume = false;         ///< reload checkpointed cells
  double cell_timeout = 0.0;   ///< seconds per cell attempt; 0 = unlimited
  double sweep_timeout = 0.0;  ///< seconds for the whole sweep; 0 = unlimited
  int cell_retries = -1;       ///< re-attempts per cell; -1 = runner default
  std::string store_dir;       ///< content-addressed store root; empty = off
  bool no_store = false;       ///< force the store off (driver default is on)

  /// True when any sweep-runner flag deviates from its default.
  bool runner_flags_set() const {
    return jobs != 1 || resume || cell_timeout > 0.0 || sweep_timeout > 0.0 ||
           cell_retries >= 0;
  }
};

inline void print_usage(const char* argv0, std::ostream& out) {
  out << "usage: " << argv0
      << " [--procs=1,2,4] [--out-dir=DIR] [--trace] [--trace-format=F]\n"
      << "       [--time-phases] [--no-batch] [--no-memory-fast-path]\n"
      << "       [--no-calendar-queue] [--no-epoch-batch]\n"
      << "       [--jobs=N] [--resume] [--cell-timeout=S] [--sweep-timeout=S]\n"
      << "       [--cell-retries=N] [--store=DIR] [--no-store]\n"
      << "  --procs=LIST   comma-separated processor counts overriding the\n"
      << "                 figure's standard sweep\n"
      << "  --out-dir=DIR  directory for CSV output (default bench_results)\n"
      << "  --trace        also stream an event trace per (scheduler, P)\n"
      << "                 cell to <out-dir>/<id>.p<P>.<scheduler>.*\n"
      << "                 (see docs/SIMULATOR.md, \"Trace schema\");\n"
      << "                 composes with --jobs/--resume\n"
      << "  --trace-format=F  trace encoding: jsonl (default) or binary\n"
      << "                 (.cctrace, ~10x smaller; implies --trace; render\n"
      << "                 either with tools/trace_report)\n"
      << "  --time-phases  collect the engine's host wall-clock phase\n"
      << "                 breakdown and write <out-dir>/<id>.phases.json\n"
      << "                 (simulated results stay bit-identical; see\n"
      << "                 tools/phase_report.py)\n"
      << "  --no-batch     disable iteration batching (A/B check; results\n"
      << "                 are bit-identical, only slower)\n"
      << "  --no-memory-fast-path  disable the memory system's exclusive-\n"
      << "                 residency fast path (A/B check; bit-identical)\n"
      << "  --no-calendar-queue  use the reference binary-heap event queue\n"
      << "                 instead of the calendar ring (A/B check;\n"
      << "                 bit-identical, only slower)\n"
      << "  --no-epoch-batch  rebuild engine state per run instead of\n"
      << "                 reusing a warmed simulator across cells (A/B\n"
      << "                 check; bit-identical, only slower)\n"
      << "  --jobs=N       run independent (scheduler, P) sweep cells on N\n"
      << "                 threads (default 1 = serial; results identical)\n"
      << "  --resume       reload finished cells from the sweep checkpoint\n"
      << "                 under <out-dir>/.sweep/<id> instead of rerunning\n"
      << "  --cell-timeout=S  per-cell wall-clock deadline in seconds\n"
      << "  --sweep-timeout=S sweep-wide wall-clock deadline in seconds\n"
      << "                 (timed-out cells are reported, not fatal —\n"
      << "                  see docs/SWEEP_RUNNER.md)\n"
      << "  --cell-retries=N  re-attempts after a cell's first failed try\n"
      << "                 (default " << SweepOptions{}.max_retries
      << "; 0 disables retries)\n"
      << "  --store=DIR    serve cells from (and fill) the content-\n"
      << "                 addressed result store rooted at DIR; a cell\n"
      << "                 simulated once is never simulated again\n"
      << "                 (docs/SWEEP_SERVICE.md)\n"
      << "  --no-store     disable the store (afs_sweep defaults it to\n"
      << "                 <out-dir>/.store; the per-figure binaries\n"
      << "                 default it off)\n";
}

/// Pure parser behind parse_cli, exposed so tests can drive it without a
/// process exit. Parses `args` (argv[1..]) into `cli`. Returns false with
/// `error` describing the offending flag/value on malformed input; sets
/// `want_help` (and returns true) when --help / -h is present.
inline bool parse_cli_args(const std::vector<std::string>& args, BenchCli& cli,
                           std::string& error, bool& want_help) {
  error.clear();
  want_help = false;
  const auto parse_seconds = [&error](const std::string& arg,
                                      std::size_t prefix_len, const char* flag,
                                      double& out_v) {
    const std::string tok = arg.substr(prefix_len);
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE ||
        !(v > 0.0) || v > 86400.0) {
      error = std::string("bad ") + flag + " value '" + tok +
              "' (need seconds in (0, 86400])";
      return false;
    }
    out_v = v;
    return true;
  };
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      want_help = true;
      return true;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      const std::string tok = arg.substr(15);
      if (tok == "jsonl") {
        cli.trace_format = TraceFormat::kJsonl;
      } else if (tok == "binary") {
        cli.trace_format = TraceFormat::kBinary;
      } else {
        error = "bad --trace-format value '" + tok +
                "' (need jsonl or binary)";
        return false;
      }
      cli.trace = true;  // choosing an encoding is asking for a trace
    } else if (arg == "--time-phases") {
      cli.time_phases = true;
    } else if (arg == "--no-batch") {
      cli.no_batch = true;
    } else if (arg == "--no-memory-fast-path") {
      cli.no_memory_fast_path = true;
    } else if (arg == "--no-calendar-queue") {
      cli.no_calendar_queue = true;
    } else if (arg == "--no-epoch-batch") {
      cli.no_epoch_batch = true;
    } else if (arg.rfind("--cell-retries=", 0) == 0) {
      const std::string tok = arg.substr(15);
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || end == tok.c_str() || *end != '\0' ||
          errno == ERANGE || v < 0 || v > 100) {
        error = "bad --cell-retries value '" + tok +
                "' (need an integer in 0..100)";
        return false;
      }
      cli.cell_retries = static_cast<int>(v);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      cli.out_dir = arg.substr(10);
      if (cli.out_dir.empty()) {
        error = "--out-dir needs a non-empty directory";
        return false;
      }
    } else if (arg.rfind("--store=", 0) == 0) {
      cli.store_dir = arg.substr(8);
      if (cli.store_dir.empty()) {
        error = "--store needs a non-empty directory";
        return false;
      }
      cli.no_store = false;
    } else if (arg == "--no-store") {
      cli.no_store = true;
      cli.store_dir.clear();
    } else if (arg.rfind("--procs=", 0) == 0) {
      cli.procs.clear();
      const std::string list = arg.substr(8);
      if (list.empty()) {
        error = "--procs needs at least one value";
        return false;
      }
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma - pos);
        char* end = nullptr;
        errno = 0;
        const long v = std::strtol(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0' || errno == ERANGE || v < 1 ||
            v > 64) {
          error = "bad --procs entry '" + tok + "' (need integers in 1..64)";
          return false;
        }
        cli.procs.push_back(static_cast<int>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;  // a trailing comma leaves an empty (bad) token
      }
    } else if (arg == "--resume") {
      cli.resume = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const std::string tok = arg.substr(7);
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (tok.empty() || end == tok.c_str() || *end != '\0' ||
          errno == ERANGE || v < 1 || v > 256) {
        error = "bad --jobs value '" + tok + "' (need an integer in 1..256)";
        return false;
      }
      cli.jobs = static_cast<int>(v);
    } else if (arg.rfind("--cell-timeout=", 0) == 0) {
      if (!parse_seconds(arg, 15, "--cell-timeout", cli.cell_timeout))
        return false;
    } else if (arg.rfind("--sweep-timeout=", 0) == 0) {
      if (!parse_seconds(arg, 16, "--sweep-timeout", cli.sweep_timeout))
        return false;
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  return true;
}

/// Parses the shared flags; prints usage and exits on --help or on
/// anything unrecognized (these are batch reproduction binaries — a typo
/// should fail loudly, not silently run the default 20-minute sweep).
inline BenchCli parse_cli(int argc, char** argv) {
  BenchCli cli;
  std::string error;
  bool want_help = false;
  if (!parse_cli_args(std::vector<std::string>(argv + 1, argv + argc), cli,
                      error, want_help)) {
    std::cerr << argv[0] << ": " << error << "\n";
    print_usage(argv[0], std::cerr);
    std::exit(2);
  }
  if (want_help) {
    print_usage(argv[0], std::cout);
    std::exit(EXIT_SUCCESS);
  }
  return cli;
}

/// CSV path for a non-figure table under the chosen output directory.
inline std::string csv_path(const BenchCli& cli, const std::string& id) {
  return cli.out_dir + "/" + id + ".csv";
}

}  // namespace afs::bench
