// The experiment registry: every figure/table reproduction the repo knows
// how to run, keyed by id ("fig03".."fig17", "tab2".."tab7",
// "ablation_afs", "micro_queues", "trend_comm_ratio").
//
// Each entry owns what used to live in its bench/*.cpp binary — the
// FigureSpec (or bespoke table body) and the paper shape checks — so a
// per-figure binary is now a five-line shim over shim_main(), and the
// afs_sweep driver can run any subset of experiments in one process,
// sharing one worker pool and one content-addressed result store
// (docs/SWEEP_SERVICE.md).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "experiments/bench_cli.hpp"
#include "experiments/figure.hpp"
#include "sim/machine_sim.hpp"

namespace afs {

class ResultStore;
class ThreadPool;

enum class ExperimentKind {
  kFigure,  ///< a FigureSpec sweep through the crash-safe sweep runner
  kTable,   ///< a bespoke table (interdependent rows; runs serially)
  kMicro,   ///< a google-benchmark binary; listed, not runnable in-process
};

/// Everything an experiment needs from its caller. The store and pool are
/// borrowed (not owned) and optional: without a store every cell is
/// simulated; without a pool each figure sweep builds its own workers
/// (bespoke tables always run serially in the caller's thread).
struct ExperimentContext {
  bench::BenchCli cli;
  ResultStore* store = nullptr;
  ThreadPool* pool = nullptr;
  /// Optional caller-side cancellation (not owned): a service request
  /// deadline or the batch driver's SIGINT/SIGTERM token. Figure sweeps
  /// chain it under SweepOptions::cancel; bespoke tables observe it via
  /// run_cell_cached, whose simulations raise CancelledError at the next
  /// event boundary once it fires.
  const CancelToken* cancel = nullptr;
  /// Optional out-of-process cell executor (not owned): the supervised
  /// worker sandbox under --isolation=process. Figure sweeps dispatch
  /// store-missed, untraced, untimed cells through it; bespoke tables
  /// (whose programs exist only as closures) always run in-process.
  CellExecutor* executor = nullptr;
  /// Optional observer of per-cell failures, invoked once per failed cell
  /// after each figure sweep completes (experiment id + the structured
  /// failure). The daemon uses it to stream "cell_error" responses for
  /// poisoned/degraded cells without re-parsing the failure report file.
  std::function<void(const std::string&, const CellFailure&)> on_cell_failure;
};

struct Experiment {
  std::string id;
  std::string title;
  ExperimentKind kind = ExperimentKind::kFigure;
  /// CSV basenames this experiment writes under out_dir (without ".csv"):
  /// usually just {id}; ablation_afs writes five.
  std::vector<std::string> csv_ids;
  /// Runs the experiment under `ctx`, streaming human-readable progress to
  /// the ostream. Returns a process exit code (nonzero only for invariant
  /// breaks, never for shape mismatches — those are data).
  std::function<int(const ExperimentContext&, std::ostream&)> run;
  /// Rebuilds the experiment's FigureSpec (figure experiments only; null
  /// for tables and micros). This is what lets a sandbox worker rerun one
  /// cell of a registered figure from nothing but the experiment id.
  std::function<FigureSpec()> make_spec;
};

/// All registered experiments in canonical order (figures, tables,
/// extras). Stable across calls.
const std::vector<Experiment>& all_experiments();

/// Lookup by id; nullptr when unknown.
const Experiment* find_experiment(const std::string& id);

/// Runs one experiment (including the kind-appropriate handling of
/// runner flags) and returns its exit code.
int run_experiment(const Experiment& e, const ExperimentContext& ctx,
                   std::ostream& out);

// ---------------- helpers for registering experiments ---------------------

/// Packages a lazily-built FigureSpec + shape checks as an Experiment.
/// The run function applies the shared CLI to the spec (procs override,
/// out-dir, sim-option toggles, per-cell tracing), wires in the context's
/// store and pool, checkpoints under <out-dir>/.sweep/<id>, and reports
/// shapes only on a complete grid — exactly the contract the standalone
/// binaries have always had.
Experiment figure_experiment(
    std::string id, std::string title, std::function<FigureSpec()> make_spec,
    std::function<bool(const FigureResult&, std::ostream&)> shapes);

/// Packages a bespoke table body as an Experiment. Tables with
/// interdependent rows accept the runner flags for CLI uniformity but run
/// serially (run_experiment prints the note when the flags are set).
Experiment table_experiment(
    std::string id, std::string title, std::vector<std::string> csv_ids,
    std::function<int(const ExperimentContext&, std::ostream&)> run);

/// One simulated cell, served from the context's store when possible: the
/// bespoke tables' replacement for a shared MachineSim + sim.run() call.
/// A fresh MachineSim per cell produces bit-identical numbers to the
/// legacy shared instance (a run resets all per-run state), which is what
/// makes the cell a pure function of its key. `sched_spec` must be a
/// make_scheduler() spec string — it doubles as the scheduler's store key.
SimResult run_cell_cached(const ExperimentContext& ctx,
                          const MachineConfig& machine,
                          const LoopProgram& program,
                          const std::string& sched_spec, int procs,
                          const SimOptions& options = {});

/// Display name of the scheduler a spec string builds (e.g. "AFS" ->
/// "AFS(k=P)") without running anything — the bespoke tables label rows
/// with scheduler names, not spec strings.
std::string scheduler_display_name(const std::string& sched_spec);

// Family registration hooks (one translation unit per family); each
// appends its experiments in canonical order.
void register_iris_experiments(std::vector<Experiment>& experiments);       // fig03-09
void register_butterfly_experiments(std::vector<Experiment>& experiments);  // fig10-13
void register_scale_experiments(std::vector<Experiment>& experiments);      // fig14-17
void register_table_experiments(std::vector<Experiment>& experiments);      // tab2-7
void register_extra_experiments(std::vector<Experiment>& experiments);  // ablation etc.
void register_frontier_experiments(std::vector<Experiment>& experiments);  // adaptive frontier

}  // namespace afs
