// The bespoke tables (Tables 2-7): experiments whose rows are not a plain
// (scheduler, P) grid — delayed-start perturbations, sync-operation
// counts, a single-point scaling check, and the fault-injection extension.
// Bodies moved verbatim from the former standalone bench binaries, with
// every simulator invocation routed through run_cell_cached() so the
// content-addressed store serves repeated cells.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "experiments/expectations.hpp"
#include "experiments/registry.hpp"
#include "kernels/adjoint_convolution.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "sched/bounds.hpp"
#include "sched/registry.hpp"
#include "util/table.hpp"
#include "workload/graphs.hpp"

namespace afs {

namespace {

// Table 2: execution time of a simple balanced loop (200M iterations, no
// memory accesses) on the Iris, with one of 8 processors delayed by
// 0.0625N .. 0.25N iterations' worth of time. Paper shape: GSS, TRAPEZOID,
// FACTORING and AFS(k=P) are all equivalent (finish within one iteration);
// AFS(k=2) is the worst but within ~10%.
int run_tab2(const ExperimentContext& ctx, std::ostream& out) {
  const bench::BenchCli& cli = ctx.cli;
  const std::int64_t n = 200'000'000;
  const int p = 8;
  const std::vector<double> delays{0.0625, 0.125, 0.1875,
                                   0.2031, 0.2187, 0.25};
  const std::vector<std::string> specs{"GSS", "TRAPEZOID", "FACTORING",
                                       "AFS(k=2)", "AFS"};

  out << "== tab2: balanced loop (N=2e8) with one delayed processor, "
         "Iris model ==\n";
  MachineConfig machine = iris();
  machine.epoch_jitter = 0.0;  // the delay is the experiment's only skew
  const LoopProgram program = balanced_program(n);

  Table table({"delay", "GSS", "TRAPEZOID", "FACTORING", "AFS(k=2)",
               "AFS(k=P)"});
  bool all_close = true;
  double worst_k2_ratio = 0.0;
  double worst_k2_excess = 0.0;  // absolute time excess over the row's best
  for (double frac : delays) {
    std::vector<std::string> row{Table::num(frac, 4) + "N"};
    double best = 1e300;
    std::vector<double> times;
    for (const auto& spec : specs) {
      // The delayed start is expressed through the fault-injection model:
      // one initial stall on processor 0 (accounted as stall_time).
      SimOptions opts;
      opts.perturb.start_delays.assign(p, 0.0);
      opts.perturb.start_delays[0] = frac * static_cast<double>(n);
      const double t =
          run_cell_cached(ctx, machine, program, spec, p, opts).makespan;
      times.push_back(t);
      best = std::min(best, t);
    }
    for (std::size_t i = 0; i < times.size(); ++i) {
      row.push_back(Table::num(times[i], 0));
      const double ratio = times[i] / best;
      if (specs[i] == "AFS(k=2)") {
        worst_k2_ratio = std::max(worst_k2_ratio, ratio);
        worst_k2_excess = std::max(worst_k2_excess, times[i] - best);
      } else if (ratio > 1.02) {
        all_close = false;
      }
    }
    table.add_row(std::move(row));
  }
  out << table.to_ascii();
  table.write_csv(bench::csv_path(cli, "tab2"));
  out << "(csv: " << bench::csv_path(cli, "tab2") << ")\n";

  report_shape(out, all_close,
               "GSS/TRAPEZOID/FACTORING/AFS(k=P) within ~2% of each other");
  // AFS(k=2)'s excess must respect the Theorem 3.2 imbalance bound
  // N(P-k)/(P(P-1)k)+1 iterations. (The paper measured ~10% on the real
  // Iris; our worst case is larger because the simulator's zero-jitter
  // schedule hits the theorem's adversarial alignment exactly —
  // see EXPERIMENTS.md.)
  const double bound = afs_imbalance_bound(n, p, 2);
  report_shape(out, worst_k2_ratio >= 1.0,
               "AFS(k=2) is the worst variant (measured +" +
                   Table::num((worst_k2_ratio - 1.0) * 100.0, 1) + "%)");
  report_shape(out, worst_k2_excess <= bound + 4.0,
               "AFS(k=2)'s excess respects the Theorem 3.2 bound");
  return 0;
}

// Shared driver for the Tables 3-5 synchronization-operation counts: run a
// program under each scheduler for P in {1,2,4,6,8} on the Iris model and
// report removals per loop (central algorithms) and per-queue local /
// remote removals per loop (AFS), exactly the columns of the paper.
int run_sync_ops_table(const std::string& id, const std::string& title,
                       const LoopProgram& program,
                       const ExperimentContext& ctx, std::ostream& out) {
  out << "== " << id << ": " << title << " ==\n";
  Table table({"P", "SS", "GSS", "FACTORING", "TRAPEZOID", "AFS remote/queue",
               "AFS local/queue"});
  const MachineConfig machine = iris();

  for (int p : {1, 2, 4, 6, 8}) {
    std::vector<std::string> row{std::to_string(p)};
    for (const char* spec : {"SS", "GSS", "FACTORING", "TRAPEZOID"}) {
      const SimResult r = run_cell_cached(ctx, machine, program, spec, p);
      row.push_back(Table::num(r.sched_stats.grabs_per_loop(), 1));
    }
    const SimResult r = run_cell_cached(ctx, machine, program, "AFS", p);
    row.push_back(Table::num(r.sched_stats.remote_per_queue_per_loop(), 2));
    row.push_back(Table::num(r.sched_stats.local_per_queue_per_loop(), 2));
    table.add_row(std::move(row));
  }
  out << table.to_ascii();
  const std::string csv = bench::csv_path(ctx.cli, id);
  table.write_csv(csv);
  out << "(csv: " << csv << ")\n\n";
  return 0;
}

// §5.3's table: Gaussian elimination on a 4096 x 4096 matrix with 16
// processors on the KSR-1 — the problem-size scaling check. Paper values
// (minutes): AFS 20.6, STATIC 20.9, MOD-FACTORING 22.7, FACTORING 47.3,
// TRAPEZOID 50.7, GSS 73.7. The shape to reproduce: AFS ~ STATIC <
// MOD-FACTORING << FACTORING < TRAPEZOID < GSS, with AFS >2x over the
// non-affinity schedulers even at this size.
int run_tab6(const ExperimentContext& ctx, std::ostream& out) {
  out << "== tab6: Gaussian elimination N=4096, P=16, KSR-1 model ==\n";
  const auto program = GaussKernel::program(4096);
  const MachineConfig machine = ksr1();
  const double serial = MachineSim(machine).ideal_serial_time(program);

  Table table({"scheduler", "completion time", "vs AFS", "speedup"});
  std::vector<std::pair<std::string, double>> results;
  for (const char* spec : {"AFS", "STATIC", "MOD-FACTORING", "FACTORING",
                           "TRAPEZOID", "GSS"}) {
    const SimResult r = run_cell_cached(ctx, machine, program, spec, 16);
    results.emplace_back(spec, r.makespan);
    out << "  " << spec << ": done\n";
  }
  const double afs_time = results.front().second;
  for (const auto& [spec, t] : results) {
    table.add_row({spec, Table::num(t, 0), Table::num(t / afs_time, 2),
                   Table::num(serial / t, 2)});
  }
  out << table.to_ascii();
  table.write_csv(bench::csv_path(ctx.cli, "tab6"));
  out << "(csv: " << bench::csv_path(ctx.cli, "tab6") << ")\n";

  auto t = [&](const char* name) {
    for (const auto& [spec, v] : results)
      if (spec == name) return v;
    return 0.0;
  };
  report_shape(out, t("AFS") <= t("STATIC") * 1.05,
               "AFS ~ STATIC (paper: 20.6 vs 20.9 min)");
  report_shape(out, t("MOD-FACTORING") < t("FACTORING"),
               "MOD-FACTORING well ahead of FACTORING");
  // The paper measured 2.3x (FACTORING) to 3.6x (GSS) over AFS at P=16 on
  // the real KSR-1; our ring model saturates a little later, so the gap at
  // P=16 is smaller (it reaches ~4x by P=57 — see fig15). The robust
  // shape: every non-affinity scheduler pays a clear ring penalty while
  // AFS/STATIC/MOD-FACTORING do not.
  report_shape(out, t("FACTORING") > 1.2 * t("AFS"),
               "FACTORING pays a clear ring penalty over AFS (paper: 2.3x)");
  report_shape(out,
               t("GSS") > 1.2 * t("AFS") && t("TRAPEZOID") > 1.2 * t("AFS"),
               "GSS and TRAPEZOID pay it too (paper: 3.6x / 2.5x)");
  return 0;
}

/// Bitwise equality of every accumulator the engine produces: the
/// batching-invariance check under fault injection.
bool identical(const SimResult& a, const SimResult& b) {
  return a.makespan == b.makespan && a.busy == b.busy && a.sync == b.sync &&
         a.comm == b.comm && a.idle == b.idle && a.barrier == b.barrier &&
         a.stall_time == b.stall_time && a.hits == b.hits &&
         a.misses == b.misses && a.iterations == b.iterations &&
         a.remote_grabs == b.remote_grabs &&
         a.lost_processor_count == b.lost_processor_count &&
         a.stolen_under_fault == b.stolen_under_fault &&
         a.abandoned_iterations == b.abandoned_iterations;
}

// Table 7 (extension, not in the paper): graceful degradation under
// deterministic fault injection. For each machine (Iris, Butterfly,
// KSR-1) and scheduler (AFS, the full central-queue line-up, STATIC) we
// run Gaussian elimination unperturbed to get a baseline, then re-run
// under increasing fault intensity and report the slowdown plus the fault
// counters. Unlike the paper-reproduction experiments, this one *fails*
// (nonzero exit) when a resilience invariant breaks.
int run_tab7(const ExperimentContext& ctx, std::ostream& out) {
  out << "== tab7: scheduler resilience vs. fault intensity "
         "(Gauss, deterministic fault injection) ==\n";

  struct MachineCase {
    MachineConfig config;
    int procs;
    std::int64_t n;  // Gauss matrix order
  };
  std::vector<MachineCase> machines;
  {
    MachineCase iris_case{iris(), 8, 256};
    iris_case.config.epoch_jitter = 0.0;  // faults are the only skew
    machines.push_back(iris_case);
    MachineCase butterfly_case{butterfly1(), 16, 256};
    butterfly_case.config.epoch_jitter = 0.0;
    machines.push_back(butterfly_case);
    MachineCase ksr_case{ksr1(), 16, 256};
    ksr_case.config.epoch_jitter = 0.0;
    machines.push_back(ksr_case);
  }
  // AFS, every central-queue discipline the registry offers, and STATIC:
  // the fault model must hold for each queue topology, not just the four
  // schedulers the original extension sampled.
  const std::vector<std::string> specs{"AFS",       "SS",
                                       "CHUNK(8)",  "GSS",
                                       "FACTORING", "TRAPEZOID",
                                       "TAPER(1.3)", "STATIC"};
  const std::vector<std::string> levels{"none", "stall-low", "stall-high",
                                        "mem-faults", "proc-loss"};

  Table table({"machine", "sched", "fault", "makespan", "slowdown", "stall%",
               "stolen", "abandoned"});
  bool conservation_ok = true;
  bool batching_ok = true;
  bool afs_loss_ok = false;
  bool static_loss_ok = false;

  // Shared fault ladder for any scheduler lineup: the paper lineup fills
  // the golden tab7.csv; the adaptive frontier rides the same ladder (and
  // the same invariants) into its own CSV so tab7.csv stays byte-stable.
  auto run_lineup = [&](const std::vector<std::string>& lineup,
                        Table& rows) {
  for (const MachineCase& mc : machines) {
    const LoopProgram program = GaussKernel::program(mc.n);
    for (const std::string& spec : lineup) {
      double baseline = 0.0;
      for (const std::string& level : levels) {
        SimOptions opts;
        PerturbationConfig& pc = opts.perturb;
        if (level == "stall-low") {
          pc.stall_mean_interval = baseline * 0.05;
          pc.stall_duration = baseline * 0.0025;  // ~5% of time stalled
        } else if (level == "stall-high") {
          pc.stall_mean_interval = baseline * 0.02;
          pc.stall_duration = baseline * 0.004;  // ~20% of time stalled
        } else if (level == "mem-faults") {
          pc.mem_spike_prob = 0.1;
          pc.mem_spike_latency = 5.0 * mc.config.miss_latency;
          pc.burst_mean_interval = baseline * 0.1;
          pc.burst_duration = baseline * 0.02;
          pc.burst_multiplier = 4.0;
        } else if (level == "proc-loss") {
          pc.losses.push_back({0, baseline * 0.3});
        }

        const SimResult r =
            run_cell_cached(ctx, mc.config, program, spec, mc.procs, opts);
        if (level == "none") baseline = r.makespan;

        if (!check_time_identity(r, mc.procs)) {
          conservation_ok = false;
          std::cerr << "conservation violated: " << mc.config.name << " "
                    << spec << " " << level << " accounted="
                    << accounted_time(r) << " expected="
                    << mc.procs * r.makespan << "\n";
        }
        if (level != "none") {
          SimOptions unbatched = opts;
          unbatched.batch_iterations = false;
          const SimResult r_ab = run_cell_cached(ctx, mc.config, program,
                                                 spec, mc.procs, unbatched);
          if (!identical(r, r_ab)) {
            batching_ok = false;
            std::cerr << "batching divergence: " << mc.config.name << " "
                      << spec << " " << level << "\n";
          }
        }
        if (level == "proc-loss" && spec == "AFS" &&
            r.lost_processor_count == 1 && r.stolen_under_fault > 0)
          afs_loss_ok = true;
        if (level == "proc-loss" && spec == "STATIC" &&
            r.abandoned_iterations > 0)
          static_loss_ok = true;

        rows.add_row(
            {mc.config.name, spec, level, Table::num(r.makespan, 0),
             Table::num(baseline > 0.0 ? r.makespan / baseline : 1.0, 3),
             Table::num(r.makespan > 0.0
                            ? 100.0 * r.stall_time /
                                  (mc.procs * r.makespan)
                            : 0.0,
                        1),
             Table::num(r.stolen_under_fault),
             Table::num(r.abandoned_iterations)});
      }
    }
  }
  };
  run_lineup(specs, table);

  out << table.to_ascii();
  table.write_csv(bench::csv_path(ctx.cli, "tab7"));
  out << "(csv: " << bench::csv_path(ctx.cli, "tab7") << ")\n";

  // The adaptive frontier under the same fault ladder: their rows land in
  // tab7_adaptive.csv, but every run still feeds the conservation and
  // batching-invariance checks above — a feedback scheduler must degrade
  // as gracefully as the paper's nine.
  Table adaptive_table({"machine", "sched", "fault", "makespan", "slowdown",
                        "stall%", "stolen", "abandoned"});
  run_lineup(adaptive_scheduler_specs(), adaptive_table);
  out << adaptive_table.to_ascii();
  adaptive_table.write_csv(bench::csv_path(ctx.cli, "tab7_adaptive"));
  out << "(csv: " << bench::csv_path(ctx.cli, "tab7_adaptive") << ")\n";

  report_shape(out, conservation_ok,
               "extended conservation (incl. stall_time) holds in every run");
  report_shape(out, batching_ok,
               "perturbed runs bit-identical with batching on/off");
  report_shape(out, afs_loss_ok,
               "AFS completes processor loss and steals the dead queue "
               "(stolen_under_fault > 0)");
  report_shape(out, static_loss_ok,
               "STATIC reports the dead processor's share as abandoned");

  const bool ok =
      conservation_ok && batching_ok && afs_loss_ok && static_loss_ok;
  return ok ? 0 : 1;
}

}  // namespace

void register_table_experiments(std::vector<Experiment>& experiments) {
  experiments.push_back(table_experiment(
      "tab2", "Balanced loop (N=2e8) with one delayed processor, Iris model",
      {"tab2"}, run_tab2));
  experiments.push_back(table_experiment(
      "tab3", "Sync operations per loop, SOR N=512", {"tab3"},
      [](const ExperimentContext& ctx, std::ostream& out) {
        return run_sync_ops_table("tab3",
                                  "sync operations per loop, SOR N=512",
                                  SorKernel::program(512, 4), ctx, out);
      }));
  experiments.push_back(table_experiment(
      "tab4", "Sync operations per loop, transitive closure (640, skewed)",
      {"tab4"}, [](const ExperimentContext& ctx, std::ostream& out) {
        return run_sync_ops_table(
            "tab4",
            "sync operations per loop, transitive closure (640, skewed)",
            TransitiveClosureKernel::program(clique_graph(640, 320)), ctx,
            out);
      }));
  experiments.push_back(table_experiment(
      "tab5", "Sync operations, adjoint convolution N=75", {"tab5"},
      [](const ExperimentContext& ctx, std::ostream& out) {
        return run_sync_ops_table(
            "tab5", "sync operations, adjoint convolution N=75",
            AdjointConvolutionKernel::program(75), ctx, out);
      }));
  experiments.push_back(table_experiment(
      "tab6", "Gaussian elimination N=4096, P=16, KSR-1 model", {"tab6"},
      run_tab6));
  experiments.push_back(table_experiment(
      "tab7", "Scheduler resilience vs. fault intensity (fault injection)",
      {"tab7", "tab7_adaptive"}, run_tab7));
}

}  // namespace afs
