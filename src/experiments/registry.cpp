#include "experiments/registry.hpp"

#include <cstdlib>
#include <iostream>

#include "sched/registry.hpp"
#include "store/cell_key.hpp"
#include "store/result_store.hpp"

namespace afs {

const std::vector<Experiment>& all_experiments() {
  static const std::vector<Experiment> experiments = [] {
    std::vector<Experiment> out;
    register_iris_experiments(out);
    register_butterfly_experiments(out);
    register_scale_experiments(out);
    register_table_experiments(out);
    register_extra_experiments(out);
    register_frontier_experiments(out);
    return out;
  }();
  return experiments;
}

const Experiment* find_experiment(const std::string& id) {
  for (const Experiment& e : all_experiments())
    if (e.id == id) return &e;
  return nullptr;
}

int run_experiment(const Experiment& e, const ExperimentContext& ctx,
                   std::ostream& out) {
  if (e.kind == ExperimentKind::kMicro) {
    out << e.id << ": " << e.title << "\n"
        << "(google-benchmark binary — run build/bench/bench_micro_queues "
           "directly; not an in-process sweep)\n";
    return EXIT_SUCCESS;
  }
  if (e.kind == ExperimentKind::kTable && ctx.cli.runner_flags_set()) {
    std::cerr << e.id
              << ": note: this table's rows are interdependent; "
                 "--jobs/--resume/--*-timeout are accepted but the table "
                 "runs serially without checkpoints\n";
  }
  return e.run(ctx, out);
}

Experiment figure_experiment(
    std::string id, std::string title, std::function<FigureSpec()> make_spec,
    std::function<bool(const FigureResult&, std::ostream&)> shapes) {
  Experiment e;
  e.id = id;
  e.title = std::move(title);
  e.kind = ExperimentKind::kFigure;
  e.csv_ids = {id};
  e.make_spec = make_spec;
  e.run = [id, make_spec = std::move(make_spec), shapes = std::move(shapes)](
              const ExperimentContext& ctx, std::ostream& out) -> int {
    FigureSpec spec = make_spec();
    const bench::BenchCli& cli = ctx.cli;
    if (!cli.procs.empty()) spec.procs = cli.procs;
    spec.out_dir = cli.out_dir;
    if (cli.time_phases) spec.sim_options.time_phases = true;
    if (cli.no_batch) spec.sim_options.batch_iterations = false;
    if (cli.no_memory_fast_path) spec.sim_options.memory_fast_path = false;
    if (cli.no_calendar_queue) spec.sim_options.calendar_queue = false;
    if (cli.no_epoch_batch) spec.sim_options.epoch_batch = false;
    // Tracing is per sweep cell (each cell constructs, finalizes, or
    // abandons its own sink inside run_figure), which is what lets
    // --trace compose with --jobs=N and --resume.
    if (cli.trace) spec.trace_format = cli.trace_format;
    spec.store = ctx.store;
    // Out-of-process isolation: registered figures are rebuildable from
    // their id (grids arrive with the recipe pre-filled by
    // make_grid_experiment); a --procs override does not change the
    // recipe, because the worker is told the exact (label, P) to run.
    spec.executor = ctx.executor;
    if (!spec.exec.valid()) spec.exec.experiment = id;

    // Every run checkpoints under <out-dir>/.sweep/<id> so a killed sweep
    // is resumable with --resume even when the first invocation never
    // asked for it; a clean finish costs one small file per cell.
    SweepOptions sweep;
    sweep.jobs = cli.jobs;
    sweep.cell_timeout = cli.cell_timeout;
    sweep.sweep_timeout = cli.sweep_timeout;
    if (cli.cell_retries >= 0) sweep.max_retries = cli.cell_retries;
    sweep.resume = cli.resume;
    sweep.checkpoint_dir = cli.out_dir + "/.sweep/" + spec.id;
    sweep.pool = ctx.pool;
    sweep.cancel = ctx.cancel;

    // Shape mismatches are reported but do not fail the run: they are
    // data, recorded in EXPERIMENTS.md. Failed cells degrade gracefully —
    // the CSV still covers every completed cell — and only an *invariant*
    // break (a simulator bug, not a deadline) is fatal: shape checks are
    // skipped (they assume a full grid) and the exit code stays 0 for
    // timeouts/cancellations so batch drivers can --resume later.
    try {
      const FigureResult result = run_figure(spec, out, sweep);
      if (ctx.on_cell_failure)
        for (const CellFailure& f : result.failures) ctx.on_cell_failure(id, f);
      if (result.failures.empty()) {
        if (shapes) shapes(result, out);
      } else {
        out << "(skipping shape checks: " << result.failures.size() << " of "
            << result.cells_total << " cells have no result)\n";
      }
      out << std::endl;
      for (const CellFailure& f : result.failures)
        if (f.kind == "invariant") return EXIT_FAILURE;
      return EXIT_SUCCESS;
    } catch (const std::exception& ex) {
      std::cerr << id << " failed: " << ex.what() << "\n";
      return EXIT_FAILURE;
    }
  };
  return e;
}

Experiment table_experiment(
    std::string id, std::string title, std::vector<std::string> csv_ids,
    std::function<int(const ExperimentContext&, std::ostream&)> run) {
  Experiment e;
  e.id = std::move(id);
  e.title = std::move(title);
  e.kind = ExperimentKind::kTable;
  e.csv_ids = std::move(csv_ids);
  e.run = std::move(run);
  return e;
}

SimResult run_cell_cached(const ExperimentContext& ctx,
                          const MachineConfig& machine,
                          const LoopProgram& program,
                          const std::string& sched_spec, int procs,
                          const SimOptions& options) {
  // Thread the context's cancellation into the simulation (the token is
  // not part of the cell key, so cacheability is unchanged): a fired
  // token is CancelledError at the next event boundary — the bespoke
  // tables' path to the cancelled taxonomy.
  SimOptions opts = options;
  if (opts.cancel == nullptr) opts.cancel = ctx.cancel;
  CellKey key;
  if (ctx.store) {
    key = make_cell_key(machine, program.key, sched_spec, procs, opts);
    SimResult cached;
    if (ctx.store->load(key, cached)) return cached;
  }
  if (opts.cancel != nullptr && opts.cancel->cancelled())
    throw CancelledError("cell cancelled before simulation started");
  auto sched = make_scheduler(sched_spec);
  SimResult r;
  if (opts.epoch_batch) {
    // Epoch batching: the bespoke tables re-run the same machine many
    // times (tab6 alone runs six schedulers over one program), so ride
    // this thread's warmed simulator instead of rebuilding per row.
    r = warm_machine_sim(machine, opts).run(program, *sched, procs);
  } else {
    MachineSim sim(machine, opts);
    r = sim.run(program, *sched, procs);
  }
  if (ctx.store && key.cacheable) ctx.store->save(key, r);
  return r;
}

std::string scheduler_display_name(const std::string& sched_spec) {
  return make_scheduler(sched_spec)->name();
}

}  // namespace afs
