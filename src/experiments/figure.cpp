#include "experiments/figure.hpp"

#include <algorithm>
#include <chrono>

#include "sched/registry.hpp"
#include "util/check.hpp"

namespace afs {

SchedulerEntry entry(const std::string& spec) {
  return {spec, [spec] { return make_scheduler(spec); }};
}

SchedulerEntry entry(std::string label,
                     std::function<std::unique_ptr<Scheduler>()> make) {
  return {std::move(label), std::move(make)};
}

double FigureResult::time(const std::string& label, int p) const {
  const auto s = results.find(label);
  AFS_CHECK_MSG(s != results.end(), "no scheduler " << label);
  const auto r = s->second.find(p);
  AFS_CHECK_MSG(r != s->second.end(), "no P=" << p << " for " << label);
  return r->second.makespan;
}

double FigureResult::advantage(const std::string& a, const std::string& b,
                               int p) const {
  return time(b, p) / time(a, p);
}

Table FigureResult::completion_table() const {
  std::vector<std::string> headers{"P"};
  for (const auto& [label, _] : results) headers.push_back(label);
  Table t(std::move(headers));

  // Row set: union of P values (identical across schedulers in practice).
  std::vector<int> procs;
  for (const auto& [_, by_p] : results)
    for (const auto& [p, __] : by_p)
      if (std::find(procs.begin(), procs.end(), p) == procs.end())
        procs.push_back(p);
  std::sort(procs.begin(), procs.end());

  for (int p : procs) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& [label, by_p] : results) {
      const auto it = by_p.find(p);
      row.push_back(it == by_p.end() ? "-" : Table::num(it->second.makespan, 0));
    }
    t.add_row(std::move(row));
  }
  return t;
}

FigureResult run_figure(const FigureSpec& spec, std::ostream& out) {
  AFS_CHECK(!spec.procs.empty() && !spec.schedulers.empty());
  out << "== " << spec.id << ": " << spec.title << " ==\n";
  out << "machine: " << spec.machine.name << ", program: " << spec.program.name
      << "\n";

  FigureResult result;
  result.id = spec.id;

  MachineSim sim(spec.machine, spec.sim_options);
  result.serial_time = sim.ideal_serial_time(spec.program);

  for (const SchedulerEntry& se : spec.schedulers) {
    const auto phase_start = std::chrono::steady_clock::now();
    for (int p : spec.procs) {
      AFS_CHECK_MSG(p <= spec.machine.max_processors,
                    "P=" << p << " exceeds " << spec.machine.name);
      auto sched = se.make();
      result.results[se.label][p] = sim.run(spec.program, *sched, p);
    }
    const std::chrono::duration<double> phase =
        std::chrono::steady_clock::now() - phase_start;
    out << "  " << se.label << ": done (" << Table::num(phase.count(), 2)
        << "s)\n";
  }

  const std::string csv = spec.out_dir + "/" + spec.id + ".csv";
  out << result.completion_table().to_ascii();
  write_figure_csv(result, csv);
  out << "(csv: " << csv << ")\n\n";
  return result;
}

void write_figure_csv(const FigureResult& result, const std::string& path) {
  Table csv({"figure", "scheduler", "procs", "time", "speedup", "busy", "sync",
             "comm", "idle", "misses", "remote_grabs", "central_grabs"});
  for (const auto& [label, by_p] : result.results) {
    for (const auto& [p, r] : by_p) {
      csv.add_row({result.id, label, std::to_string(p), Table::num(r.makespan, 1),
                   Table::num(r.speedup_vs(result.serial_time), 3),
                   Table::num(r.busy, 1), Table::num(r.sync, 1),
                   Table::num(r.comm, 1), Table::num(r.idle, 1),
                   Table::num(r.misses), Table::num(r.remote_grabs),
                   Table::num(r.central_grabs)});
    }
  }
  csv.write_csv(path);
}

}  // namespace afs
