#include "experiments/figure.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>

#include "sched/registry.hpp"
#include "sim/trace_sink.hpp"
#include "store/cell_key.hpp"
#include "store/result_store.hpp"
#include "trace/binary_sink.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

/// Test-only chaos hook: AFS_CRASH_CELL="<id>:<label>:<P>" in the
/// environment makes exactly that cell abort() the process running it.
/// Sits inside run_figure_cell so that under --isolation=process the
/// abort fires in the sandbox worker (which inherits the environment) —
/// the daemon-smoke CI stage's way of proving a crash kills one worker,
/// not the daemon. The id prefix keeps a poisoned grid cell from also
/// killing same-labelled cells of registered figures.
void maybe_crash_cell_for_test(const std::string& id, const std::string& label,
                               int procs) {
  const char* spec = std::getenv("AFS_CRASH_CELL");
  if (spec == nullptr || *spec == '\0') return;
  const std::string s(spec);
  const std::size_t first = s.find(':');
  const std::size_t last = s.rfind(':');
  if (first == std::string::npos || last == first) return;  // malformed: off
  if (s.compare(0, first, id) != 0) return;
  if (s.substr(first + 1, last - first - 1) != label) return;
  char* end = nullptr;
  const long p = std::strtol(s.c_str() + last + 1, &end, 10);
  if (end == s.c_str() + last + 1 || *end != '\0') return;
  if (static_cast<int>(p) == procs) std::abort();
}

}  // namespace

SchedulerEntry entry(const std::string& spec) {
  return {spec, spec, [spec] { return make_scheduler(spec); }};
}

SchedulerEntry entry(std::string label,
                     std::function<std::unique_ptr<Scheduler>()> make) {
  return {std::move(label), std::string(), std::move(make)};
}

SchedulerEntry entry(std::string label, std::string key,
                     std::function<std::unique_ptr<Scheduler>()> make) {
  return {std::move(label), std::move(key), std::move(make)};
}

double FigureResult::time(const std::string& label, int p) const {
  const auto s = results.find(label);
  AFS_CHECK_MSG(s != results.end(), "no scheduler " << label);
  const auto r = s->second.find(p);
  AFS_CHECK_MSG(r != s->second.end(), "no P=" << p << " for " << label);
  return r->second.makespan;
}

double FigureResult::advantage(const std::string& a, const std::string& b,
                               int p) const {
  return time(b, p) / time(a, p);
}

Table FigureResult::completion_table() const {
  std::vector<std::string> headers{"P"};
  for (const auto& [label, _] : results) headers.push_back(label);
  Table t(std::move(headers));

  // Row set: union of P values (identical across schedulers in practice).
  std::vector<int> procs;
  for (const auto& [_, by_p] : results)
    for (const auto& [p, __] : by_p)
      if (std::find(procs.begin(), procs.end(), p) == procs.end())
        procs.push_back(p);
  std::sort(procs.begin(), procs.end());

  for (int p : procs) {
    std::vector<std::string> row{std::to_string(p)};
    for (const auto& [label, by_p] : results) {
      const auto it = by_p.find(p);
      row.push_back(it == by_p.end() ? "-" : Table::num(it->second.makespan, 0));
    }
    t.add_row(std::move(row));
  }
  return t;
}

FigureResult run_figure(const FigureSpec& spec, std::ostream& out) {
  return run_figure(spec, out, SweepOptions{});
}

MachineSim& warm_machine_sim(const MachineConfig& machine,
                             const SimOptions& options) {
  // One warm simulator per sweep thread, keyed by everything MachineSim
  // captures at construction except the per-cell observer pointers (trace
  // sink, cancellation token), which have setters. A key match means the
  // cached simulator is behaviorally identical to a fresh one — run()
  // resets all simulated state — so the reuse only carries the warmed
  // host-side allocations across cells (SimOptions::epoch_batch).
  thread_local std::string warm_key;
  thread_local std::unique_ptr<MachineSim> warm;

  std::ostringstream os;
  PerturbationConfig perturb = options.perturb;
  if (!options.start_delays.empty()) perturb.start_delays = options.start_delays;
  os << machine_key(machine) << '\n'
     << perturb_key(perturb) << '\n'
     << "jitter_seed " << options.jitter_seed << " batch "
     << options.batch_iterations << " memfast " << options.memory_fast_path
     << " calendar " << options.calendar_queue << " epochbatch "
     << options.epoch_batch << " phases " << options.time_phases;
  std::string key = os.str();

  if (warm == nullptr || key != warm_key) {
    warm = std::make_unique<MachineSim>(machine, options);
    warm_key = std::move(key);
  }
  warm->set_trace_sink(options.trace);
  warm->set_cancel(options.cancel);
  return *warm;
}

SimResult run_figure_cell(const FigureSpec& spec, const SchedulerEntry& se,
                          int procs, const SimOptions& options) {
  maybe_crash_cell_for_test(spec.id, se.label, procs);
  auto sched = se.make();
  if (!options.epoch_batch) {
    // Epoch batching off: the pre-reuse path, one simulator per cell.
    MachineSim sim(spec.machine, options);
    return sim.run(spec.program, *sched, procs);
  }
  return warm_machine_sim(spec.machine, options)
      .run(spec.program, *sched, procs);
}

FigureResult run_figure(const FigureSpec& spec, std::ostream& out,
                        const SweepOptions& sweep) {
  AFS_CHECK(!spec.procs.empty() && !spec.schedulers.empty());
  out << "== " << spec.id << ": " << spec.title << " ==\n";
  out << "machine: " << spec.machine.name << ", program: " << spec.program.name
      << "\n";

  FigureResult result;
  result.id = spec.id;
  {
    MachineSim sim(spec.machine, spec.sim_options);
    result.serial_time = sim.ideal_serial_time(spec.program);
  }

  if (spec.trace_format != TraceFormat::kNone) {
    std::filesystem::create_directories(spec.out_dir);
    out << "(tracing per cell to " << spec.out_dir << "/" << spec.id
        << ".p<P>.<scheduler>" << trace_extension(spec.trace_format) << ")\n";
  }

  // One sweep cell per (scheduler, P): a fresh simulator and scheduler per
  // cell, so results depend only on the cell's own inputs and the merged
  // sweep is bit-identical whether cells run serially, in parallel, or are
  // reloaded from a checkpoint. (A simulator run resets all per-run state
  // anyway — the legacy shared-instance loop produced the same numbers.)
  std::vector<SweepCellSpec> cells;
  cells.reserve(spec.schedulers.size() * spec.procs.size());
  for (const SchedulerEntry& se : spec.schedulers) {
    for (int p : spec.procs) {
      AFS_CHECK_MSG(p <= spec.machine.max_processors,
                    "P=" << p << " exceeds " << spec.machine.name);
      cells.push_back(
          {se.label, p, [&spec, &se, p](const CancelToken& token) {
             SimOptions options = spec.sim_options;
             options.cancel = &token;
             // Each cell owns its trace writer, so tracing composes with
             // parallel sweeps; the trace is published atomically only
             // when the cell completes (a failed or cancelled attempt
             // leaves no partial file, and a retry starts clean).
             std::unique_ptr<FileTraceSink> trace;
             if (spec.trace_format != TraceFormat::kNone) {
               const std::string path = trace_cell_path(
                   spec.out_dir, spec.id, se.label, p, spec.trace_format);
               if (spec.trace_format == TraceFormat::kBinary)
                 trace = std::make_unique<BinaryTraceSink>(path);
               else
                 trace = std::make_unique<JsonlTraceSink>(path);
               options.trace = trace.get();
             }
             // Consult the store first (traced/timed cells key as
             // uncacheable, so those always simulate). The key is built
             // after the trace sink is wired in so cacheability sees the
             // real options.
             CellKey key;
             if (spec.store) {
               key = make_cell_key(spec.machine, spec.program.key, se.key, p,
                                   options);
               SimResult cached;
               if (spec.store->load(key, cached)) return cached;
             }
             // Store miss: dispatch to the sandbox executor when one is
             // wired in and the cell's outputs survive the wire (traces
             // and phase timers do not — those cells stay in-process).
             // Store hits above are served either way, which is what the
             // executor's degraded cache-only mode relies on.
             if (spec.executor != nullptr && spec.exec.valid() &&
                 trace == nullptr && !options.time_phases) {
               SimResult r = spec.executor->execute(
                   spec.exec, se.label, p,
                   EngineToggles{options.batch_iterations,
                                 options.memory_fast_path,
                                 options.calendar_queue, options.epoch_batch},
                   token);
               if (spec.store && key.cacheable) spec.store->save(key, r);
               return r;
             }
             try {
               SimResult r = run_figure_cell(spec, se, p, options);
               if (trace) trace->finalize();
               if (spec.store && key.cacheable) spec.store->save(key, r);
               return r;
             } catch (...) {
               if (trace) trace->abandon();
               throw;
             }
           }});
    }
  }

  SweepOutcome outcome = run_sweep(spec.id, cells, sweep, &out);

  // Graceful degradation: completed cells are published either way; failed
  // cells get a machine-readable report next to the CSV (and any stale
  // report from an earlier degraded run is removed on full success).
  const std::string report = spec.out_dir + "/" + spec.id + ".failures.json";
  if (!outcome.failures.empty()) {
    write_file_atomic(report, failure_report_json(spec.id, outcome));
  } else {
    std::error_code ec;
    std::filesystem::remove(report, ec);
  }

  result.results = std::move(outcome.results);
  result.failures = std::move(outcome.failures);
  result.cells_total = outcome.cells_total;
  result.cells_resumed = outcome.cells_resumed;

  const std::string csv = spec.out_dir + "/" + spec.id + ".csv";
  out << result.completion_table().to_ascii();
  write_figure_csv(result, csv);
  out << "(csv: " << csv << ")\n";
  if (spec.sim_options.time_phases) {
    const std::string phases = spec.out_dir + "/" + spec.id + ".phases.json";
    write_phases_json(result, phases);
    out << "(phase timers: " << phases << ")\n";
  }
  if (!result.failures.empty())
    out << "(" << result.failures.size() << " of " << result.cells_total
        << " cells failed — report: " << report << ")\n";
  out << "\n";
  return result;
}

void write_phases_json(const FigureResult& result, const std::string& path) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  const auto emit = [&os](const EnginePhaseTimers& t, int cells,
                          int untimed) {
    os << "{\"cells_timed\": " << cells << ", \"cells_untimed\": " << untimed
       << ", \"total_s\": " << t.total << ", \"scheduler_s\": " << t.scheduler
       << ", \"work_s\": " << t.work << ", \"footprint_s\": " << t.footprint
       << ", \"memory_s\": " << t.memory
       << ", \"event_core_other_s\": " << t.event_core_other()
       << ", \"memory_accesses\": " << t.memory_accesses << "}";
  };

  EnginePhaseTimers sweep_total;
  int sweep_cells = 0, sweep_untimed = 0;
  os << "{\n  \"id\": \"" << result.id << "\",\n  \"schedulers\": {\n";
  bool first = true;
  for (const auto& [label, by_p] : result.results) {
    EnginePhaseTimers agg;
    int cells = 0, untimed = 0;
    for (const auto& [p, r] : by_p) {
      if (r.timers.collected()) {
        agg += r.timers;
        ++cells;
      } else {
        ++untimed;
      }
    }
    sweep_total += agg;
    sweep_cells += cells;
    sweep_untimed += untimed;
    if (!first) os << ",\n";
    first = false;
    os << "    \"" << label << "\": ";
    emit(agg, cells, untimed);
  }
  os << "\n  },\n  \"sweep\": ";
  emit(sweep_total, sweep_cells, sweep_untimed);
  os << "\n}\n";
  write_file_atomic(path, os.str());
}

void write_figure_csv(const FigureResult& result, const std::string& path) {
  Table csv({"figure", "scheduler", "procs", "time", "speedup", "busy", "sync",
             "comm", "idle", "misses", "remote_grabs", "central_grabs"});
  for (const auto& [label, by_p] : result.results) {
    for (const auto& [p, r] : by_p) {
      csv.add_row({result.id, label, std::to_string(p), Table::num(r.makespan, 1),
                   Table::num(r.speedup_vs(result.serial_time), 3),
                   Table::num(r.busy, 1), Table::num(r.sync, 1),
                   Table::num(r.comm, 1), Table::num(r.idle, 1),
                   Table::num(r.misses), Table::num(r.remote_grabs),
                   Table::num(r.central_grabs)});
    }
  }
  csv.write_csv(path);
}

}  // namespace afs
