// The §4.4 Butterfly experiments (Figures 10-13): synthetic workload
// shapes at distributed-memory scale. Specs and shape checks moved
// verbatim from the former standalone bench binaries.
#include <string>

#include "experiments/expectations.hpp"
#include "experiments/lineups.hpp"
#include "experiments/registry.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"

namespace afs {

void register_butterfly_experiments(std::vector<Experiment>& experiments) {
  // Figure 10: triangular workload (cost(i) = N - i, N = 5000). Theorem
  // 3.3 says chunks of 1/(2P) of the remaining work balance this loop:
  // TRAPEZOID starts exactly there and matches AFS; GSS's first chunk
  // (1/P of iterations = 2/P of work) lags.
  experiments.push_back(figure_experiment(
      "fig10", "Triangular workload on the Butterfly (N=5000)",
      [] {
        FigureSpec spec;
        spec.id = "fig10";
        spec.title = "Triangular workload on the Butterfly (N=5000)";
        spec.machine = butterfly1();
        spec.program = triangular_program(5000);
        spec.procs = butterfly_procs();
        spec.schedulers = butterfly_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(comparable(r, "AFS", "TRAPEZOID", 48, 0.15),
                           "AFS ~ TRAPEZOID at P=48");
        shapes.check(beats(r, "AFS", "GSS", 48, 1.05),
                           "both beat GSS at P=48");
        shapes.check(beats(r, "TRAPEZOID", "GSS", 32, 1.02),
                           "TRAPEZOID beats GSS at P=32");
        return shapes.ok();
      }));

  // Figure 11: decreasing parabolic workload (cost(i) = (N-i)^2, N = 200).
  // Theorem 3.3 demands chunks of 1/(3P): AFS's N/P^2 grabs qualify,
  // TRAPEZOID's 1/(2P) start is slightly too big, GSS is worst — except
  // near P=50, where TRAPEZOID converges to AFS (the paper calls this
  // out).
  experiments.push_back(figure_experiment(
      "fig11", "Decreasing parabolic workload on the Butterfly (N=200)",
      [] {
        FigureSpec spec;
        spec.id = "fig11";
        spec.title = "Decreasing parabolic workload on the Butterfly (N=200)";
        spec.machine = butterfly1();
        spec.program = parabolic_program(200);
        spec.procs = butterfly_procs();
        spec.schedulers = butterfly_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "AFS", "GSS", 16, 1.05),
                           "AFS beats GSS at P=16");
        shapes.check(beats(r, "TRAPEZOID", "GSS", 16, 1.0),
                           "TRAPEZOID between AFS and GSS at P=16");
        shapes.check(!beats(r, "TRAPEZOID", "AFS", 16, 1.0) ||
                               comparable(r, "AFS", "TRAPEZOID", 16, 0.10),
                           "AFS at least matches TRAPEZOID at P=16");
        // The paper's aside: near P~50, TRAPEZOID's first chunk comes
        // within one iteration of Theorem 3.3's optimum and its gap to
        // AFS narrows.
        const double gap16 = r.time("TRAPEZOID", 16) / r.time("AFS", 16);
        const double gap56 = r.time("TRAPEZOID", 56) / r.time("AFS", 56);
        shapes.check(gap56 < gap16 && gap56 <= 1.30,
                           "TRAPEZOID's gap to AFS narrows toward P~50-56");
        return shapes.ok();
      }));

  // Figure 12: first 10% of 50000 iterations cost 100 units, the rest 1
  // (the transitive-closure-like imbalance). A processor taking more than
  // 1/(10P) of the iterations gets >1/P of the work: AFS's small
  // distributed chunks win clearly.
  experiments.push_back(figure_experiment(
      "fig12", "Head-heavy workload on the Butterfly (N=50000, 10% @ 100x)",
      [] {
        FigureSpec spec;
        spec.id = "fig12";
        spec.title =
            "Head-heavy workload on the Butterfly (N=50000, 10% @ 100x)";
        spec.machine = butterfly1();
        spec.program = head_heavy_program(50000);
        spec.procs = butterfly_procs();
        spec.schedulers = butterfly_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "AFS", "GSS", 48, 1.10),
                           "AFS clearly superior to GSS at P=48");
        shapes.check(beats(r, "AFS", "TRAPEZOID", 48, 1.05),
                           "AFS clearly superior to TRAPEZOID at P=48");
        shapes.check(beats(r, "AFS", "GSS", 16, 1.05),
                           "advantage visible already at P=16");
        return shapes.ok();
      }));

  // Figure 13: a simple balanced loop where every work queue is
  // non-local: with affinity, distributed queues and load balance all
  // factored out, the remaining differences are pure synchronization
  // overhead — and GSS, TRAPEZOID and AFS come out comparable.
  experiments.push_back(figure_experiment(
      "fig13", "Balanced loop on the Butterfly (N=1e6, sync overhead only)",
      [] {
        FigureSpec spec;
        spec.id = "fig13";
        spec.title =
            "Balanced loop on the Butterfly (N=1e6, sync overhead only)";
        spec.machine = butterfly1();
        spec.program = balanced_program(1'000'000, 100.0);
        spec.procs = butterfly_procs();
        spec.schedulers = butterfly_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        for (int p : {8, 32, 56}) {
          shapes.check(comparable(r, "AFS", "GSS", p, 0.10),
                             "AFS ~ GSS at P=" + std::to_string(p));
          shapes.check(comparable(r, "AFS", "TRAPEZOID", p, 0.10),
                             "AFS ~ TRAPEZOID at P=" + std::to_string(p));
        }
        return shapes.ok();
      }));
}

}  // namespace afs
