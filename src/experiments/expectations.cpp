#include "experiments/expectations.hpp"

#include <limits>

namespace afs {

bool beats(const FigureResult& r, const std::string& fast,
           const std::string& slow, int p, double factor) {
  return r.time(slow, p) >= factor * r.time(fast, p);
}

bool comparable(const FigureResult& r, const std::string& a,
                const std::string& b, int p, double tolerance) {
  const double ta = r.time(a, p);
  const double tb = r.time(b, p);
  const double hi = ta > tb ? ta : tb;
  const double lo = ta > tb ? tb : ta;
  return hi <= lo * (1.0 + tolerance);
}

int effective_processors(const FigureResult& r, const std::string& label,
                         double tolerance) {
  const auto it = r.results.find(label);
  if (it == r.results.end()) return 0;
  double best = std::numeric_limits<double>::max();
  for (const auto& [p, res] : it->second) best = std::min(best, res.makespan);
  for (const auto& [p, res] : it->second)
    if (res.makespan <= best * (1.0 + tolerance)) return p;
  return 0;
}

bool report_shape(std::ostream& out, bool ok, const std::string& what) {
  out << (ok ? "shape OK:       " : "shape MISMATCH: ") << what << "\n";
  return ok;
}

}  // namespace afs
