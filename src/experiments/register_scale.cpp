// The cross-machine scaling experiments (Figures 14-17): the Sequent
// Symmetry generation check and the §5.2 KSR-1 runs. Specs and shape
// checks moved verbatim from the former standalone bench binaries.
#include "experiments/expectations.hpp"
#include "experiments/lineups.hpp"
#include "experiments/registry.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "workload/graphs.hpp"

namespace afs {

void register_scale_experiments(std::vector<Experiment>& experiments) {
  // Figure 14: Gaussian elimination (256 x 256) on the Sequent Symmetry,
  // whose processors are ~30x slower than the Iris's while its bus is
  // slightly faster: communication is cheap relative to compute, so AFS's
  // affinity is worth little (AFS ~ GSS) and TRAPEZOID trails 10-15% from
  // its load imbalance.
  experiments.push_back(figure_experiment(
      "fig14", "Gaussian elimination on the Sequent Symmetry (N=256)",
      [] {
        FigureSpec spec;
        spec.id = "fig14";
        spec.title = "Gaussian elimination on the Sequent Symmetry (N=256)";
        spec.machine = symmetry();
        spec.program = GaussKernel::program(256);
        spec.procs = iris_procs();
        spec.schedulers = {entry("AFS"), entry("GSS"), entry("TRAPEZOID")};
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(comparable(r, "AFS", "GSS", 8, 0.10),
                           "AFS ~ GSS on the Symmetry (communication is cheap)");
        shapes.check(beats(r, "GSS", "TRAPEZOID", 8, 1.015),
            "TRAPEZOID trails (load imbalance, expensive iterations)");
        shapes.check(!beats(r, "GSS", "TRAPEZOID", 8, 1.30),
                           "...but only by a modest margin (paper: 10-15%)");
        return shapes.ok();
      }));

  // Figure 15: Gaussian elimination (1024 x 1024) on the KSR-1. AFS best
  // by ~3.7x over FACTORING/GSS at scale; TRAPEZOID beats FACTORING/GSS
  // because sync is expensive on the KSR; MOD-FACTORING degrades past
  // ~12-15 processors as fluctuations destroy its affinity.
  experiments.push_back(figure_experiment(
      "fig15", "Gaussian elimination on the KSR-1 (N=1024)",
      [] {
        FigureSpec spec;
        spec.id = "fig15";
        spec.title = "Gaussian elimination on the KSR-1 (N=1024)";
        spec.machine = ksr1();
        spec.program = GaussKernel::program(1024);
        spec.procs = ksr_procs();
        spec.schedulers = ksr_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "AFS", "FACTORING", 57, 2.0),
                           "AFS >2x over FACTORING at P=57 (paper: 3.7x)");
        shapes.check(beats(r, "AFS", "GSS", 57, 2.0),
                           "AFS >2x over GSS at P=57");
        shapes.check(beats(r, "AFS", "TRAPEZOID", 57, 1.7),
                           "AFS >1.7x over TRAPEZOID at P=57 (paper: 2.8x)");
        shapes.check(beats(r, "TRAPEZOID", "GSS", 57, 1.0),
                           "TRAPEZOID beats GSS (fewest sync ops, costly sync)");
        shapes.check(comparable(r, "MOD-FACTORING", "AFS", 4, 0.5) &&
                               beats(r, "AFS", "MOD-FACTORING", 57, 1.3),
                           "MOD-FACTORING OK at small P, degrades at scale");
        shapes.check(comparable(r, "AFS", "STATIC", 57, 0.25),
                           "AFS ~ STATIC (almost no load imbalance in Gauss)");
        return shapes.ok();
      }));

  // Figure 16: transitive closure (1024 nodes, 40% of them a clique) on
  // the KSR-1. The non-affinity dynamic schedulers cannot exploit more
  // than ~12 processors; TRAPEZOID degrades most gracefully among them;
  // AFS best, though its margin is smaller than for Gauss.
  experiments.push_back(figure_experiment(
      "fig16", "Transitive closure on the KSR-1 (1024 nodes, 40% clique)",
      [] {
        const auto graph = clique_graph(1024, 409);  // 40% clique
        FigureSpec spec;
        spec.id = "fig16";
        spec.title =
            "Transitive closure on the KSR-1 (1024 nodes, 40% clique)";
        spec.machine = ksr1();
        spec.program = TransitiveClosureKernel::program(graph);
        spec.procs = ksr_procs();
        spec.schedulers = {entry("AFS"), entry("TRAPEZOID"),
                           entry("FACTORING"), entry("GSS"),
                           entry("MOD-FACTORING")};
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        // "Cannot exploit more than ~12 processors": past P=12 the
        // central schedulers gain at most a sliver (<1.5x for 4.75x more
        // processors) while AFS keeps scaling (>2x over the same range).
        shapes.check(r.time("GSS", 12) / r.time("GSS", 57) < 1.5,
                           "GSS gains <1.5x from P=12 to P=57");
        shapes.check(r.time("FACTORING", 12) / r.time("FACTORING", 57) < 1.5,
            "FACTORING gains <1.5x from P=12 to P=57");
        shapes.check(r.time("AFS", 12) / r.time("AFS", 57) > 2.0,
                           "AFS still gains >2x from P=12 to P=57");
        shapes.check(beats(r, "AFS", "GSS", 57, 1.3),
                           "AFS clearly best at P=57");
        shapes.check(beats(r, "TRAPEZOID", "FACTORING", 57, 1.0),
            "TRAPEZOID degrades most gracefully of the central trio");
        return shapes.ok();
      }));

  // Figure 17: SOR (1024 x 1024, 128 sweeps) on the KSR-1. SOR's inner
  // loop contains a floating-point division, implemented in software on
  // the KSR-1: computation is so expensive that preserving affinity buys
  // little. We model the software division by raising SOR's per-element
  // work on this machine.
  experiments.push_back(figure_experiment(
      "fig17", "SOR on the KSR-1 (N=1024, 128 sweeps, software FP divide)",
      [] {
        FigureSpec spec;
        spec.id = "fig17";
        spec.title =
            "SOR on the KSR-1 (N=1024, 128 sweeps, software FP divide)";
        spec.machine = ksr1();
        // 20 work units per element instead of the Iris's 5: the software
        // divide multiplies per-element cost (the paper's stated anomaly
        // cause).
        spec.program = SorKernel::program(1024, 128, 20.0);
        spec.procs = ksr_procs();
        spec.schedulers = ksr_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "AFS", "GSS", 57, 1.0),
                           "AFS still best at P=57");
        shapes.check(!beats(r, "AFS", "GSS", 57, 2.0),
                           "...but NOT by a large factor (compute dominates)");
        shapes.check(comparable(r, "AFS", "STATIC", 57, 0.15),
                           "AFS ~ STATIC");
        shapes.check(comparable(r, "AFS", "MOD-FACTORING", 57, 0.35),
                           "MOD-FACTORING close behind");
        return shapes.ok();
      }));
}

}  // namespace afs
