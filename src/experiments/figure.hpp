// Figure/table harness: runs a LoopProgram under a set of schedulers over
// a processor sweep on a simulated machine, collects completion times and
// metric breakdowns, prints the paper's series and writes CSV.
//
// Every bench/ reproduction binary is a thin declaration of one
// FigureSpec (plus any custom rows the original table had).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "machines/machine_config.hpp"
#include "runtime/cell_executor.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/scheduler.hpp"
#include "sim/machine_sim.hpp"
#include "trace/trace_record.hpp"
#include "util/table.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

class ResultStore;  // store/result_store.hpp — optional, see FigureSpec

/// A named scheduler factory. A fresh scheduler is built per (P, run) so
/// state (caches of the sim persist per run; scheduler stats do not leak).
struct SchedulerEntry {
  std::string label;
  /// Store identity of the scheduler this factory builds (normally the
  /// make_scheduler spec string). Empty = opaque factory: the cell is
  /// always simulated, never served from or written to the result store.
  std::string key;
  std::function<std::unique_ptr<Scheduler>()> make;
};

/// Factory from a registry spec string (label and store key default to
/// the spec).
SchedulerEntry entry(const std::string& spec);
/// Opaque factory: no store key, so its cells bypass the result store.
SchedulerEntry entry(std::string label,
                     std::function<std::unique_ptr<Scheduler>()> make);
/// Factory with an explicit store key. Use only when `key`, together with
/// the program key, fully determines the scheduler's behavior (e.g. a
/// BEST-STATIC oracle derived from a cost model of that same program).
SchedulerEntry entry(std::string label, std::string key,
                     std::function<std::unique_ptr<Scheduler>()> make);

struct FigureSpec {
  std::string id;     ///< e.g. "fig04"
  std::string title;  ///< e.g. "Gaussian elimination on the Iris (N=768)"
  MachineConfig machine;
  LoopProgram program;
  std::vector<int> procs;
  std::vector<SchedulerEntry> schedulers;
  SimOptions sim_options;
  std::string out_dir = "bench_results";  ///< where <id>.csv lands
  /// kNone (default): no event tracing. Otherwise every (scheduler, P)
  /// sweep cell streams its own trace to
  /// trace_cell_path(out_dir, id, label, P, trace_format), finalized
  /// atomically when the cell completes and discarded when it fails —
  /// so tracing composes with parallel (--jobs=N) and resumed sweeps:
  /// cells never share a writer, and a resumed cell's already-published
  /// trace is left untouched.
  TraceFormat trace_format = TraceFormat::kNone;
  /// Optional content-addressed result store (not owned). When set, each
  /// cacheable (scheduler, P) cell — program and scheduler both carry
  /// store keys, and the run is neither traced nor host-timed — is first
  /// looked up by its CellKey and only simulated on a miss, after which
  /// the result is published for every future sweep. Served results are
  /// bit-identical to simulated ones (the store authenticates the full
  /// key text and the serializer round-trips exactly).
  ResultStore* store = nullptr;
  /// Optional out-of-process executor (not owned) plus the declarative
  /// recipe a worker needs to rebuild this spec (runtime/
  /// cell_executor.hpp). When both are set, each store-missed cell is
  /// dispatched to the executor instead of simulating in-process — except
  /// traced and host-timed cells, whose side outputs (trace files, phase
  /// timers) do not travel over the wire; those always run in-process.
  /// Store hits are still served locally, which is what makes the
  /// executor's degraded mode genuinely cache-only.
  CellExecutor* executor = nullptr;
  CellExecSpec exec;
};

struct FigureResult {
  FigureSpec spec() = delete;  // (avoid accidental copies of the program)
  std::string id;
  /// results[scheduler_label][P] = simulation result (completed cells).
  std::map<std::string, std::map<int, SimResult>> results;
  double serial_time = 0.0;
  /// Cells that produced no result (timeout, retries exhausted, invariant
  /// break, sweep abort); empty on a fully successful sweep. The CSV and
  /// completion table cover the completed cells regardless.
  std::vector<CellFailure> failures;
  int cells_total = 0;
  int cells_resumed = 0;  ///< cells loaded from a sweep checkpoint

  double time(const std::string& label, int p) const;
  /// Completion-time table: rows = P, one column per scheduler.
  Table completion_table() const;
  /// Speedup of `a` over `b` at processor count p: time(b)/time(a).
  double advantage(const std::string& a, const std::string& b, int p) const;
};

/// Runs the sweep; prints progress and the final table to `out`, writes
/// CSV to bench_results/<id>.csv. The default overload runs serially with
/// no checkpointing (the legacy behavior); the SweepOptions overload runs
/// every (scheduler, P) cell through the crash-safe sweep runner —
/// parallel across `jobs` threads, per-cell deadline/retry, checkpointed
/// under `checkpoint_dir` — with a bit-identical merged result. Failed
/// cells land in FigureResult::failures and (machine-readably) in
/// <out_dir>/<id>.failures.json; completed cells are written regardless.
FigureResult run_figure(const FigureSpec& spec, std::ostream& out);
FigureResult run_figure(const FigureSpec& spec, std::ostream& out,
                        const SweepOptions& sweep);

/// Simulates exactly one (scheduler, P) cell of `spec` — the shared body
/// of the in-process sweep path and the sandbox worker's cell op, so both
/// produce bit-identical results by construction. Honors the test-only
/// AFS_CRASH_CELL hook ("<id>:<label>:<P>" in the environment makes that
/// one cell abort(), which is how CI proves a crash kills only a worker).
SimResult run_figure_cell(const FigureSpec& spec, const SchedulerEntry& se,
                          int procs, const SimOptions& options);

/// Epoch batching: this thread's warm simulator for (machine, options) —
/// constructed on first use, then reused for every subsequent cell whose
/// machine and options match, so repeated runs keep the warmed ProcCache/
/// Directory/event-ring allocations instead of rebuilding them per run.
/// The per-cell observer pointers (trace sink, cancellation token) are
/// re-attached on every call; a run() resets all simulated state, so a
/// warm simulator is behaviorally identical to a fresh one. Callers with
/// options.epoch_batch unset should construct their own simulator.
MachineSim& warm_machine_sim(const MachineConfig& machine,
                             const SimOptions& options);

/// Writes one long-format CSV (figure, scheduler, procs, time, speedup,
/// busy, sync, comm, idle, misses, steals) for downstream plotting.
void write_figure_csv(const FigureResult& result, const std::string& path);

/// Writes the engine's host wall-clock phase breakdown (one aggregate per
/// scheduler plus a sweep-wide total) as JSON. Only meaningful for runs
/// with SimOptions::time_phases set; cells without collected timers (e.g.
/// resumed from a checkpoint, which never stores host timings) are
/// skipped and counted in "cells_untimed". Render with
/// tools/phase_report.py.
void write_phases_json(const FigureResult& result, const std::string& path);

}  // namespace afs
