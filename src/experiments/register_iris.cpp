// The §4.3 Iris experiments (Figures 3-9): the eight-scheduler
// head-to-head on the paper's primary machine model. Specs and shape
// checks moved verbatim from the former standalone bench binaries.
#include <cstdint>
#include <memory>

#include "experiments/expectations.hpp"
#include "experiments/lineups.hpp"
#include "experiments/registry.hpp"
#include "kernels/adjoint_convolution.hpp"
#include "kernels/gauss.hpp"
#include "kernels/l4.hpp"
#include "kernels/sor.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "sched/static_scheduler.hpp"
#include "workload/graphs.hpp"

namespace afs {

namespace {

/// The BEST-STATIC oracle for transitive closure: per-epoch costs from the
/// precomputed activity trace. Its store key is sound because the program
/// key embeds a content hash of the same graph the trace derives from.
SchedulerEntry tc_best_static(
    std::shared_ptr<std::vector<std::vector<std::uint8_t>>> trace,
    std::int64_t n) {
  return entry("BEST-STATIC", "BEST-STATIC@tc-trace", [trace, n] {
    return std::make_unique<BestStaticScheduler>(
        EpochCostProvider([trace, n](int epoch) {
          return IterationCostFn([trace, epoch, n](std::int64_t j) {
            return (*trace)[static_cast<std::size_t>(epoch)]
                           [static_cast<std::size_t>(j)]
                       ? static_cast<double>(n)
                       : 1.0;
          });
        }));
  });
}

}  // namespace

void register_iris_experiments(std::vector<Experiment>& experiments) {
  // Figure 3: SOR (N = 512) under all eight schedulers. Paper shape: SS
  // worst (sync overhead); GSS/FACTORING/TRAPEZOID a middle cluster
  // (communication-bound); STATIC and AFS comparable to BEST-STATIC.
  experiments.push_back(figure_experiment(
      "fig03", "SOR on the Iris (N=512, 8 sweeps)",
      [] {
        FigureSpec spec;
        spec.id = "fig03";
        spec.title = "SOR on the Iris (N=512, 8 sweeps)";
        spec.machine = iris();
        spec.program = SorKernel::program(512, 8);
        spec.procs = iris_procs();
        spec.schedulers = iris_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(comparable(r, "AFS", "STATIC", 8, 0.25),
                           "AFS ~ STATIC at P=8");
        shapes.check(comparable(r, "AFS", "BEST-STATIC", 8, 0.25),
                           "AFS ~ BEST-STATIC at P=8");
        shapes.check(beats(r, "AFS", "GSS", 8, 1.2),
                           "AFS beats GSS by >1.2x at P=8");
        shapes.check(beats(r, "GSS", "SS", 8, 1.05),
                           "SS is the worst dynamic scheduler at P=8");
        shapes.check(r.time("MOD-FACTORING", 8) <= r.time("FACTORING", 8) &&
                r.time("MOD-FACTORING", 8) >= r.time("AFS", 8) * 0.95,
            "MOD-FACTORING lies between AFS and FACTORING");
        return shapes.ok();
      }));

  // Figure 4: Gaussian elimination (N = 768). Schedulers that ignore
  // affinity saturate the bus and cannot use more than ~2 processors;
  // AFS/STATIC track BEST-STATIC and use all 8.
  experiments.push_back(figure_experiment(
      "fig04", "Gaussian elimination on the Iris (N=768)",
      [] {
        FigureSpec spec;
        spec.id = "fig04";
        spec.title = "Gaussian elimination on the Iris (N=768)";
        spec.machine = iris();
        spec.program = GaussKernel::program(768);
        spec.procs = iris_procs();
        spec.schedulers = iris_schedulers();
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(effective_processors(r, "GSS") <= 4,
            "GSS cannot effectively use more than a few processors");
        shapes.check(effective_processors(r, "AFS") >= 7,
                           "AFS effectively uses all 8 processors");
        shapes.check(beats(r, "AFS", "GSS", 8, 2.0),
                           "AFS ~3x better than GSS at P=8 (>=2x required)");
        shapes.check(comparable(r, "AFS", "BEST-STATIC", 8, 0.30),
                           "AFS close to BEST-STATIC at P=8");
        shapes.check(beats(r, "MOD-FACTORING", "FACTORING", 6, 1.2),
                           "MOD-FACTORING much better than FACTORING at P=6");
        return shapes.ok();
      }));

  // Figure 5: transitive closure on a random 512-node graph (~8% of
  // edges). Load averages out across iterations, so affinity dominates.
  experiments.push_back(figure_experiment(
      "fig05",
      "Transitive closure on the Iris (random 512-node graph, 8% edges)",
      [] {
        const auto graph = random_graph(512, 0.08, 1992);
        const auto trace =
            std::make_shared<std::vector<std::vector<std::uint8_t>>>(
                TransitiveClosureKernel::active_trace(graph));
        FigureSpec spec;
        spec.id = "fig05";
        spec.title =
            "Transitive closure on the Iris (random 512-node graph, 8% edges)";
        spec.machine = iris();
        spec.program = TransitiveClosureKernel::program(graph);
        spec.procs = iris_procs();
        spec.schedulers = iris_schedulers();
        // BEST-STATIC's oracle knows the input: per-epoch costs from the
        // trace.
        spec.schedulers.back() = tc_best_static(trace, graph.rows());
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "AFS", "GSS", 8, 1.15),
                           "AFS beats GSS at P=8");
        shapes.check(beats(r, "STATIC", "FACTORING", 8, 1.1),
                           "STATIC beats FACTORING at P=8 (load averages out)");
        shapes.check(beats(r, "MOD-FACTORING", "TRAPEZOID", 8, 1.0),
                           "MOD-FACTORING at least matches TRAPEZOID at P=8");
        return shapes.ok();
      }));

  // Figure 6: transitive closure on the skewed input (640 nodes, 320-node
  // clique). First real load imbalance: STATIC degrades, GSS is worst,
  // FACTORING/TRAPEZOID balance better, AFS and MOD-FACTORING add
  // affinity on top, and BEST-STATIC — which knows the input — wins.
  experiments.push_back(figure_experiment(
      "fig06", "Transitive closure on the Iris (640 nodes, 320-node clique)",
      [] {
        const auto graph = clique_graph(640, 320);
        const auto trace =
            std::make_shared<std::vector<std::vector<std::uint8_t>>>(
                TransitiveClosureKernel::active_trace(graph));
        FigureSpec spec;
        spec.id = "fig06";
        spec.title =
            "Transitive closure on the Iris (640 nodes, 320-node clique)";
        spec.machine = iris();
        spec.program = TransitiveClosureKernel::program(graph);
        spec.procs = iris_procs();
        spec.schedulers = iris_schedulers();
        spec.schedulers.back() = tc_best_static(trace, graph.rows());
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "FACTORING", "GSS", 8, 1.0),
                           "GSS worst-in-class: FACTORING beats it at P=8");
        shapes.check(beats(r, "TRAPEZOID", "GSS", 8, 1.0),
                           "TRAPEZOID beats GSS at P=8");
        shapes.check(beats(r, "AFS", "STATIC", 8, 1.1),
                           "STATIC suffers from the input skew");
        shapes.check(beats(r, "AFS", "FACTORING", 8, 1.0) &&
                               !beats(r, "AFS", "FACTORING", 8, 1.30),
                           "AFS beats FACTORING but by <=~15-30%");
        shapes.check(beats(r, "BEST-STATIC", "AFS", 8, 1.0),
                           "BEST-STATIC (knows the input) beats AFS");
        return shapes.ok();
      }));

  // Figure 7: adjoint convolution (N = 75 -> 5625 iterations). No
  // affinity, strong linearly-decreasing imbalance: the balancers win.
  experiments.push_back(figure_experiment(
      "fig07", "Adjoint convolution on the Iris (N=75)",
      [] {
        FigureSpec spec;
        spec.id = "fig07";
        spec.title = "Adjoint convolution on the Iris (N=75)";
        spec.machine = iris();
        spec.program = AdjointConvolutionKernel::program(75);
        spec.procs = iris_procs();
        spec.schedulers = iris_schedulers();
        // BEST-STATIC's oracle: the (N^2 - i) cost law — a pure function
        // of the program parameters, hence the explicit store key.
        spec.schedulers.back() =
            entry("BEST-STATIC", "BEST-STATIC@adjoint-cost(75)", [] {
              return std::make_unique<BestStaticScheduler>(
                  AdjointConvolutionKernel::cost(75));
            });
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(beats(r, "FACTORING", "GSS", 8, 1.1),
                           "FACTORING beats GSS (GSS front-loads work)");
        shapes.check(beats(r, "TRAPEZOID", "STATIC", 8, 1.2),
                           "TRAPEZOID beats naive STATIC");
        shapes.check(comparable(r, "AFS", "FACTORING", 8, 0.20),
                           "AFS among the best balancers");
        // SS's per-iteration sync hurts less here than in the paper's
        // other kernels because adjoint iterations are huge; it still
        // trails the balanced schedulers (the paper does not rank SS vs
        // GSS in Fig. 7).
        shapes.check(beats(r, "FACTORING", "SS", 8, 1.01),
                           "SS pays a visible sync penalty vs FACTORING");
        return shapes.ok();
      }));

  // Figure 8: adjoint convolution with reverse-index scheduling.
  // Executing the cheap tail first makes the potential imbalance
  // negligible: all schedulers except SS become comparable.
  experiments.push_back(figure_experiment(
      "fig08", "Adjoint convolution, reverse index order, on the Iris (N=75)",
      [] {
        FigureSpec spec;
        spec.id = "fig08";
        spec.title =
            "Adjoint convolution, reverse index order, on the Iris (N=75)";
        spec.machine = iris();
        spec.program = AdjointConvolutionKernel::program(75);
        spec.procs = iris_procs();
        spec.schedulers = {entry("REV:SS"),        entry("REV:GSS"),
                           entry("REV:FACTORING"), entry("REV:TRAPEZOID"),
                           entry("REV:AFS"),       entry("REV:STATIC")};
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(comparable(r, "REV:GSS", "REV:FACTORING", 8, 0.15),
                           "reverse GSS ~ reverse FACTORING");
        shapes.check(comparable(r, "REV:GSS", "REV:TRAPEZOID", 8, 0.15),
                           "reverse GSS ~ reverse TRAPEZOID");
        shapes.check(comparable(r, "REV:AFS", "REV:GSS", 8, 0.15),
                           "reverse AFS ~ reverse GSS");
        shapes.check(beats(r, "REV:GSS", "REV:SS", 8, 1.0),
                           "SS still pays its per-iteration sync");
        // Reversal permutes execution order but not STATIC's fixed
        // partition, so STATIC's imbalance survives — reversal only
        // rescues the dynamic schedulers.
        shapes.check(beats(r, "REV:GSS", "REV:STATIC", 8, 1.5),
                           "reversal does not rescue STATIC's fixed partition");
        return shapes.ok();
      }));

  // Figure 9: the L4 hybrid benchmark. No memory accesses, mild randomized
  // imbalance: all schedulers perform about the same, SS clearly worst.
  experiments.push_back(figure_experiment(
      "fig09", "L4 hybrid benchmark on the Iris",
      [] {
        L4Kernel l4;  // the paper's 50 outer iterations
        FigureSpec spec;
        spec.id = "fig09";
        spec.title = "L4 hybrid benchmark on the Iris";
        spec.machine = iris();
        spec.program = l4.program();
        spec.procs = iris_procs();
        spec.schedulers = {entry("STATIC"),    entry("SS"),
                           entry("GSS"),       entry("FACTORING"),
                           entry("TRAPEZOID"), entry("AFS")};
        return spec;
      },
      [](const FigureResult& r, std::ostream& out) {
        ShapeReport shapes(out);
        shapes.check(comparable(r, "AFS", "GSS", 8, 0.15),
                           "AFS ~ GSS (no affinity to exploit)");
        shapes.check(comparable(r, "FACTORING", "TRAPEZOID", 8, 0.15),
                           "FACTORING ~ TRAPEZOID");
        shapes.check(beats(r, "GSS", "SS", 8, 1.1),
                           "SS clearly the worst");
        shapes.check(comparable(r, "GSS", "STATIC", 8, 0.20),
                           "STATIC within ~20% of the dynamic schedulers");
        return shapes.ok();
      }));
}

}  // namespace afs
