// The whole main() of a per-figure bench binary: parse the shared CLI,
// look the experiment up in the registry, run it. Keeps the 26 historical
// binary names working (same flags, same output, same CSVs) while the
// logic lives in src/experiments/ — `bench_fig04_gauss_iris ARGS` is
// exactly `afs_sweep run fig04 ARGS`.
#pragma once

namespace afs {

/// Runs registered experiment `id` with argv's shared bench flags and
/// returns the process exit code. Unlike the afs_sweep driver, the result
/// store is OFF unless --store=DIR is passed (standalone binaries keep
/// their historical from-scratch semantics).
int shim_main(const char* id, int argc, char** argv);

}  // namespace afs
