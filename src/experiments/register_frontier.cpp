// The adaptive-frontier experiment: every scheduler the registry knows —
// the paper's eight head-to-head algorithms, TAPER, and the four
// adaptive/topology-aware frontier schedulers (src/sched/adaptive/) —
// raced across the paper's kernels, with each cell's binary trace
// analyzed into an affinity-score-vs-imbalance tradeoff point.
//
// Every cell simulates with a BinaryTraceSink and runs analyze_trace over
// the result, so the scores come from the same evidence chain the trace
// tooling uses. The enriched SimResult (trace_affinity_score /
// trace_imbalance) is saved to the content-addressed store under a
// marker-suffixed scheduler key, which is what lets a warm daemon or
// rerun serve the whole table without re-simulating or re-tracing.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "experiments/expectations.hpp"
#include "experiments/registry.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "store/cell_key.hpp"
#include "store/result_store.hpp"
#include "trace/analysis.hpp"
#include "trace/binary_sink.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "workload/graphs.hpp"

namespace afs {

namespace {

// One traced cell, served from the store when a previous run already
// enriched it. The "+tracemetrics" marker keeps these cells from
// colliding with plain run_cell_cached cells for the same
// (machine, program, scheduler, P) — the stored result here carries
// trace-derived fields a plain cell never fills.
SimResult run_traced_cell(const ExperimentContext& ctx,
                          const MachineConfig& machine,
                          const LoopProgram& program, const std::string& spec,
                          int procs, const std::string& out_dir) {
  SimOptions opts;
  opts.cancel = ctx.cancel;
  CellKey key;
  if (ctx.store) {
    // Key built from the UNtraced options: the trace file is scaffolding
    // for the analysis, not an output the store needs to reproduce.
    key = make_cell_key(machine, program.key, spec + "+tracemetrics", procs,
                        opts);
    SimResult cached;
    if (ctx.store->load(key, cached) && cached.trace_affinity_score >= 0.0)
      return cached;
  }
  if (ctx.cancel != nullptr && ctx.cancel->cancelled())
    throw CancelledError("cell cancelled before simulation started");

  const std::string path =
      trace_cell_path(out_dir, "frontier_tradeoff", program.key + "." + spec,
                      procs, TraceFormat::kBinary);
  SimResult r;
  {
    BinaryTraceSink sink(path);
    opts.trace = &sink;
    auto sched = make_scheduler(spec);
    try {
      MachineSim sim(machine, opts);
      r = sim.run(program, *sched, procs);
      sink.finalize();
    } catch (...) {
      sink.abandon();
      throw;
    }
  }

  const std::vector<TraceAnalysis> analyses = analyze_trace_file(path);
  AFS_CHECK_MSG(analyses.size() == 1,
                "expected one run in " << path << ", got " << analyses.size());
  const TraceAnalysis& a = analyses.front();
  AFS_CHECK_MSG(a.conserved(), "trace conservation violated: " << spec
                                                               << " P=" << procs
                                                               << " on "
                                                               << program.key);
  r.trace_affinity_score = a.affinity_score();
  r.trace_imbalance = a.exec_imbalance();

  if (ctx.store && key.cacheable) ctx.store->save(key, r);
  return r;
}

int run_frontier(const ExperimentContext& ctx, std::ostream& out) {
  const bench::BenchCli& cli = ctx.cli;
  out << "== frontier_tradeoff: affinity-vs-imbalance, the paper's "
         "schedulers plus the adaptive frontier ==\n";

  std::vector<std::string> specs = paper_scheduler_specs();
  specs.push_back("TAPER(1.3)");
  for (const std::string& s : adaptive_scheduler_specs()) specs.push_back(s);

  const MachineConfig machine = iris();
  std::vector<int> procs = cli.procs.empty() ? std::vector<int>{2, 4, 8}
                                             : cli.procs;
  procs.erase(std::remove_if(procs.begin(), procs.end(),
                             [&](int p) {
                               return p < 1 || p > machine.max_processors;
                             }),
              procs.end());
  AFS_CHECK_MSG(!procs.empty(), "no usable processor counts for "
                                    << machine.name);

  struct Kernel {
    const char* label;
    LoopProgram prog;
  };
  // Multi-epoch kernels only: the affinity score compares each epoch's
  // placement against the previous one, so single-epoch loops score 0
  // for every scheduler and say nothing.
  const std::vector<Kernel> kernels = {
      {"sor", SorKernel::program(256, 8)},
      {"gauss", GaussKernel::program(192)},
      {"tc", TransitiveClosureKernel::program(clique_graph(320, 160))},
  };

  std::filesystem::create_directories(cli.out_dir);
  out << "(traces per cell under " << cli.out_dir
      << "/frontier_tradeoff.p<P>.<kernel>.<scheduler>.cctrace)\n";

  Table t({"kernel", "scheduler", "procs", "affinity", "imbalance", "time",
           "sync ops", "steals"});
  const int p_top = *std::max_element(procs.begin(), procs.end());
  double sor_aff_afs = -1.0;
  double sor_aff_ss = -1.0;
  double sor_aff_tailor = -1.0;
  for (const Kernel& k : kernels) {
    for (const std::string& spec : specs) {
      for (int p : procs) {
        const SimResult r =
            run_traced_cell(ctx, machine, k.prog, spec, p, cli.out_dir);
        const std::int64_t sync_ops =
            r.local_grabs + r.remote_grabs + r.central_grabs;
        t.add_row({k.label, scheduler_display_name(spec), std::to_string(p),
                   Table::num(r.trace_affinity_score, 4),
                   Table::num(r.trace_imbalance, 4),
                   Table::num(r.makespan, 0), Table::num(sync_ops),
                   Table::num(r.remote_grabs)});
        if (std::string(k.label) == "sor" && p == p_top) {
          if (spec == "AFS") sor_aff_afs = r.trace_affinity_score;
          if (spec == "SS") sor_aff_ss = r.trace_affinity_score;
          if (spec.rfind("TAILOR", 0) == 0)
            sor_aff_tailor = r.trace_affinity_score;
        }
      }
    }
    out << "  " << k.label << ": " << specs.size() * procs.size()
        << " cells done\n";
  }
  out << t.to_ascii();
  t.write_csv(bench::csv_path(cli, "frontier_tradeoff"));
  out << "(csv: " << bench::csv_path(cli, "frontier_tradeoff") << ")\n";

  // Soft shape checks (data, not invariants — the hard pins live in
  // tests/experiments/frontier_test.cpp).
  if (sor_aff_afs >= 0.0 && sor_aff_ss >= 0.0)
    report_shape(out, sor_aff_afs > sor_aff_ss,
                 "AFS holds more affinity than SS on SOR at P=" +
                     std::to_string(p_top));
  if (sor_aff_tailor >= 0.0 && sor_aff_afs >= 0.0)
    report_shape(out, sor_aff_tailor >= sor_aff_afs - 1e-12,
                 "TAILOR's affinity is at least AFS's on SOR at P=" +
                     std::to_string(p_top));
  return 0;
}

}  // namespace

void register_frontier_experiments(std::vector<Experiment>& experiments) {
  experiments.push_back(table_experiment(
      "frontier_tradeoff",
      "Affinity-vs-imbalance tradeoff across the scheduler frontier",
      {"frontier_tradeoff"}, run_frontier));
}

}  // namespace afs
