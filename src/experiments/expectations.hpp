// Shape checks: small predicates the reproduction binaries use to compare
// measured curves against the paper's qualitative claims, printed as
// "shape: ..." lines and recorded in EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>

#include "experiments/figure.hpp"

namespace afs {

/// True when scheduler `fast` beats `slow` by at least `factor` at
/// processor count p (completion time of slow >= factor * fast).
bool beats(const FigureResult& r, const std::string& fast,
           const std::string& slow, int p, double factor = 1.0);

/// True when two schedulers are within `tolerance` (relative) at p.
bool comparable(const FigureResult& r, const std::string& a,
                const std::string& b, int p, double tolerance = 0.15);

/// Effective processors: the smallest P in the sweep whose completion time
/// is within `tolerance` of the scheduler's best over the sweep — "cannot
/// effectively use more than X processors" in the paper's phrasing.
int effective_processors(const FigureResult& r, const std::string& label,
                         double tolerance = 0.10);

/// Prints "shape OK: <what>" or "shape MISMATCH: <what>" and returns ok.
bool report_shape(std::ostream& out, bool ok, const std::string& what);

/// Fluent accumulator over report_shape: each check prints its line, and
/// ok() ANDs them all — replaces the `bool ok = true; ok &= report_shape(
/// out, ...)` boilerplate every experiment's shape lambda repeated.
///
///   ShapeReport shapes(out);
///   shapes.check(beats(r, "AFS", "GSS", 8, 1.2), "AFS beats GSS at P=8")
///         .check(comparable(r, "AFS", "STATIC", 8), "AFS ~ STATIC");
///   return shapes.ok();
class ShapeReport {
 public:
  explicit ShapeReport(std::ostream& out) : out_(out) {}

  ShapeReport& check(bool ok, const std::string& what) {
    ok_ &= report_shape(out_, ok, what);
    return *this;
  }

  bool ok() const { return ok_; }

 private:
  std::ostream& out_;
  bool ok_ = true;
};

}  // namespace afs
