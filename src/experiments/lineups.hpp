// The standard processor sweeps and scheduler line-ups of each experiment
// family, shared by the register_*.cpp translation units.
#pragma once

#include <string>
#include <vector>

#include "experiments/figure.hpp"
#include "sched/registry.hpp"

namespace afs {

/// P = 1..8 (the Iris and Symmetry experiments).
inline std::vector<int> iris_procs() { return {1, 2, 3, 4, 5, 6, 7, 8}; }

/// The Butterfly sweep the §4.4 figures plot.
inline std::vector<int> butterfly_procs() {
  return {1, 2, 4, 8, 16, 24, 32, 40, 48, 56};
}

/// The KSR-1 sweep of §5.2.
inline std::vector<int> ksr_procs() {
  return {1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 57};
}

/// §4.3 Iris line-up (Figs. 3-9): the eight head-to-head algorithms.
inline std::vector<SchedulerEntry> iris_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : paper_scheduler_specs()) out.push_back(entry(spec));
  return out;
}

/// §4.4 Butterfly line-up (Figs. 10-13): AFS, GSS, TRAPEZOID.
inline std::vector<SchedulerEntry> butterfly_schedulers() {
  std::vector<SchedulerEntry> out;
  for (const auto& spec : butterfly_scheduler_specs())
    out.push_back(entry(spec));
  return out;
}

/// §5.2 KSR-1 line-up (Figs. 15-17): the six dynamic + static algorithms.
inline std::vector<SchedulerEntry> ksr_schedulers() {
  return {entry("AFS"),       entry("STATIC"),    entry("MOD-FACTORING"),
          entry("FACTORING"), entry("TRAPEZOID"), entry("GSS")};
}

}  // namespace afs
