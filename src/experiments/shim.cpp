#include "experiments/shim.hpp"

#include <iostream>
#include <optional>

#include "experiments/registry.hpp"
#include "store/result_store.hpp"

namespace afs {

int shim_main(const char* id, int argc, char** argv) {
  const Experiment* e = find_experiment(id);
  if (!e) {
    std::cerr << argv[0] << ": unknown experiment id '" << id << "'\n";
    return 2;
  }
  ExperimentContext ctx;
  ctx.cli = bench::parse_cli(argc, argv);
  std::optional<ResultStore> store;
  if (!ctx.cli.store_dir.empty()) {
    store.emplace(ctx.cli.store_dir);
    ctx.store = &*store;
  }
  const int rc = run_experiment(*e, ctx, std::cout);
  if (ctx.store) {
    std::cout << "store: hits=" << ctx.store->hits()
              << " misses=" << ctx.store->misses()
              << " writes=" << ctx.store->writes() << " hit_rate="
              << static_cast<int>(ctx.store->hit_rate() * 100.0 + 0.5)
              << "%\n";
  }
  return rc;
}

}  // namespace afs
