// Parsers for afs_sweep's user-defined grids: turn --machine=, --kernel=
// and --perturb= spec strings into simulator inputs so arbitrary
// (scheduler, P) sweeps run through the same figure harness — and the
// same content-addressed store — as the registered experiments.
//
// Grammars (all case-sensitive; every parser throws std::runtime_error
// with a usage hint on malformed input):
//
//   machine: iris | butterfly1 | symmetry | ksr1 | tc2000
//
//   kernel:  name[:arg,arg,...]
//     gauss:N[,WORK]            Gaussian elimination, N x N
//     sor:N,EPOCHS[,WORK]       SOR sweeps over an N x N grid
//     adjoint:N[,WORK]          adjoint convolution, N^2 iterations
//     tc-random:N,PROB,SEED     transitive closure, random graph
//     tc-clique:N,CLIQUE        transitive closure, clique graph
//     l4[:OUTER]                the L4 hybrid benchmark
//     triangular:N              cost(i) = N - i
//     parabolic:N               cost(i) = (N - i)^2
//     head-heavy:N[,FRac,HI,LO] first FRAC of iterations cost HI
//     balanced:N[,UNIT]         UNIT work per iteration
//     drifting-hotspot:N,EPOCHS,WIDTH,SPEED[,HI,LO,ROW]
//
//   perturb: directive[,directive...]
//     seed=N                    fault-stream root seed
//     delay=PROC:UNITS          start delay (repeatable)
//     stall=INTERVAL/DURATION   transient preemptions
//     loss=PROC@TIME            permanent processor loss (repeatable)
//     spike=PROB/LATENCY        memory-latency spikes
//     burst=INTERVAL/DURATION/MULT  interconnect contention bursts
#pragma once

#include <string>
#include <vector>

#include "experiments/registry.hpp"
#include "machines/machine_config.hpp"
#include "sim/perturbation.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

MachineConfig parse_machine_spec(const std::string& spec);
LoopProgram parse_kernel_spec(const std::string& spec);
/// `max_procs` bounds delay/loss processor ids (pass the largest P of the
/// sweep).
PerturbationConfig parse_perturb_spec(const std::string& spec, int max_procs);

/// One user-defined grid request, shared by the batch driver
/// (`afs_sweep run --kernel=...`) and the serve-mode `grid` verb so both
/// produce byte-identical grid.csv output for the same specs.
struct GridSpec {
  std::string kernel;      ///< parse_kernel_spec grammar
  std::string machine;     ///< parse_machine_spec grammar
  std::string schedulers;  ///< comma-separated make_scheduler specs
  std::string perturb;     ///< parse_perturb_spec grammar; empty = none
  std::vector<int> procs;  ///< empty = the machine's max_processors
};

/// Builds the ad-hoc experiment a grid request runs: parses every spec
/// up front (throws std::runtime_error with a usage hint before anything
/// simulates) and packages the result as figure experiment "grid"
/// writing <out-dir>/grid.csv through the standard harness and store.
Experiment make_grid_experiment(const GridSpec& g);

/// Canonical one-line identity of a grid request. The daemon uses it to
/// give each distinct grid a stable private output directory, so
/// repeated identical grids overwrite themselves (idempotent, warm) and
/// different grids never clobber each other's grid.csv.
std::string grid_identity(const GridSpec& g);

}  // namespace afs
