// Parsers for afs_sweep's user-defined grids: turn --machine=, --kernel=
// and --perturb= spec strings into simulator inputs so arbitrary
// (scheduler, P) sweeps run through the same figure harness — and the
// same content-addressed store — as the registered experiments.
//
// Grammars (all case-sensitive; every parser throws std::runtime_error
// with a usage hint on malformed input):
//
//   machine: iris | butterfly1 | symmetry | ksr1 | tc2000
//
//   kernel:  name[:arg,arg,...]
//     gauss:N[,WORK]            Gaussian elimination, N x N
//     sor:N,EPOCHS[,WORK]       SOR sweeps over an N x N grid
//     adjoint:N[,WORK]          adjoint convolution, N^2 iterations
//     tc-random:N,PROB,SEED     transitive closure, random graph
//     tc-clique:N,CLIQUE        transitive closure, clique graph
//     l4[:OUTER]                the L4 hybrid benchmark
//     triangular:N              cost(i) = N - i
//     parabolic:N               cost(i) = (N - i)^2
//     head-heavy:N[,FRac,HI,LO] first FRAC of iterations cost HI
//     balanced:N[,UNIT]         UNIT work per iteration
//     drifting-hotspot:N,EPOCHS,WIDTH,SPEED[,HI,LO,ROW]
//
//   perturb: directive[,directive...]
//     seed=N                    fault-stream root seed
//     delay=PROC:UNITS          start delay (repeatable)
//     stall=INTERVAL/DURATION   transient preemptions
//     loss=PROC@TIME            permanent processor loss (repeatable)
//     spike=PROB/LATENCY        memory-latency spikes
//     burst=INTERVAL/DURATION/MULT  interconnect contention bursts
#pragma once

#include <string>

#include "machines/machine_config.hpp"
#include "sim/perturbation.hpp"
#include "workload/loop_spec.hpp"

namespace afs {

MachineConfig parse_machine_spec(const std::string& spec);
LoopProgram parse_kernel_spec(const std::string& spec);
/// `max_procs` bounds delay/loss processor ids (pass the largest P of the
/// sweep).
PerturbationConfig parse_perturb_spec(const std::string& spec, int max_procs);

}  // namespace afs
