#include "experiments/grid.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <vector>

#include "kernels/adjoint_convolution.hpp"
#include "kernels/gauss.hpp"
#include "kernels/l4.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "kernels/transitive_closure.hpp"
#include "machines/machines.hpp"
#include "workload/graphs.hpp"

namespace afs {

namespace {

[[noreturn]] void bad(const std::string& what, const std::string& spec,
                      const char* usage) {
  throw std::runtime_error("bad " + what + " spec '" + spec + "' (" + usage +
                           ")");
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    out.push_back(s.substr(pos, next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

std::int64_t to_int(const std::string& tok, const std::string& spec,
                    const char* usage) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE)
    bad("integer", spec, usage);
  return v;
}

double to_double(const std::string& tok, const std::string& spec,
                 const char* usage) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end == tok.c_str() || *end != '\0' || errno == ERANGE)
    bad("number", spec, usage);
  return v;
}

}  // namespace

MachineConfig parse_machine_spec(const std::string& spec) {
  if (spec == "iris") return iris();
  if (spec == "butterfly1") return butterfly1();
  if (spec == "symmetry") return symmetry();
  if (spec == "ksr1") return ksr1();
  if (spec == "tc2000") return tc2000();
  bad("machine", spec, "need iris|butterfly1|symmetry|ksr1|tc2000");
}

LoopProgram parse_kernel_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::vector<std::string> args =
      colon == std::string::npos
          ? std::vector<std::string>{}
          : split(spec.substr(colon + 1), ',');
  const auto arity = [&](std::size_t lo, std::size_t hi, const char* usage) {
    if (args.size() < lo || args.size() > hi) bad("kernel", spec, usage);
  };
  const auto num = [&](std::size_t i, const char* usage) {
    return to_double(args[i], spec, usage);
  };
  const auto integer = [&](std::size_t i, const char* usage) {
    return to_int(args[i], spec, usage);
  };

  if (name == "gauss") {
    static const char* u = "gauss:N[,WORK]";
    arity(1, 2, u);
    return args.size() == 2 ? GaussKernel::program(integer(0, u), num(1, u))
                            : GaussKernel::program(integer(0, u));
  }
  if (name == "sor") {
    static const char* u = "sor:N,EPOCHS[,WORK]";
    arity(2, 3, u);
    return args.size() == 3
               ? SorKernel::program(integer(0, u),
                                    static_cast<int>(integer(1, u)), num(2, u))
               : SorKernel::program(integer(0, u),
                                    static_cast<int>(integer(1, u)));
  }
  if (name == "adjoint") {
    static const char* u = "adjoint:N[,WORK]";
    arity(1, 2, u);
    return args.size() == 2
               ? AdjointConvolutionKernel::program(integer(0, u), num(1, u))
               : AdjointConvolutionKernel::program(integer(0, u));
  }
  if (name == "tc-random") {
    static const char* u = "tc-random:N,PROB,SEED";
    arity(3, 3, u);
    return TransitiveClosureKernel::program(
        random_graph(integer(0, u), num(1, u),
                     static_cast<std::uint64_t>(integer(2, u))));
  }
  if (name == "tc-clique") {
    static const char* u = "tc-clique:N,CLIQUE";
    arity(2, 2, u);
    return TransitiveClosureKernel::program(
        clique_graph(integer(0, u), integer(1, u)));
  }
  if (name == "l4") {
    static const char* u = "l4[:OUTER]";
    arity(0, 1, u);
    L4Config config;
    if (args.size() == 1) config.outer = static_cast<int>(integer(0, u));
    return L4Kernel(config).program();
  }
  if (name == "triangular") {
    static const char* u = "triangular:N";
    arity(1, 1, u);
    return triangular_program(integer(0, u));
  }
  if (name == "parabolic") {
    static const char* u = "parabolic:N";
    arity(1, 1, u);
    return parabolic_program(integer(0, u));
  }
  if (name == "head-heavy") {
    static const char* u = "head-heavy:N[,FRAC,HI,LO]";
    arity(1, 4, u);
    if (args.size() == 1) return head_heavy_program(integer(0, u));
    if (args.size() != 4) bad("kernel", spec, u);
    return head_heavy_program(integer(0, u), num(1, u), num(2, u), num(3, u));
  }
  if (name == "balanced") {
    static const char* u = "balanced:N[,UNIT]";
    arity(1, 2, u);
    return args.size() == 2 ? balanced_program(integer(0, u), num(1, u))
                            : balanced_program(integer(0, u));
  }
  if (name == "drifting-hotspot") {
    static const char* u = "drifting-hotspot:N,EPOCHS,WIDTH,SPEED[,HI,LO,ROW]";
    arity(4, 7, u);
    if (args.size() == 4)
      return drifting_hotspot_program(integer(0, u),
                                      static_cast<int>(integer(1, u)),
                                      integer(2, u), num(3, u));
    if (args.size() != 7) bad("kernel", spec, u);
    return drifting_hotspot_program(
        integer(0, u), static_cast<int>(integer(1, u)), integer(2, u),
        num(3, u), num(4, u), num(5, u), num(6, u));
  }
  bad("kernel", spec,
      "need gauss|sor|adjoint|tc-random|tc-clique|l4|triangular|parabolic|"
      "head-heavy|balanced|drifting-hotspot");
}

PerturbationConfig parse_perturb_spec(const std::string& spec,
                                      int max_procs) {
  PerturbationConfig pc;
  for (const std::string& directive : split(spec, ',')) {
    const std::size_t eq = directive.find('=');
    if (eq == std::string::npos)
      bad("perturb", directive, "need key=value directives");
    const std::string key = directive.substr(0, eq);
    const std::string value = directive.substr(eq + 1);
    if (key == "seed") {
      pc.seed = static_cast<std::uint64_t>(
          to_int(value, directive, "seed=N"));
    } else if (key == "delay") {
      static const char* u = "delay=PROC:UNITS";
      const std::size_t sep = value.find(':');
      if (sep == std::string::npos) bad("perturb", directive, u);
      const auto proc = to_int(value.substr(0, sep), directive, u);
      if (proc < 0 || proc >= max_procs) bad("perturb", directive, u);
      if (pc.start_delays.size() < static_cast<std::size_t>(max_procs))
        pc.start_delays.resize(static_cast<std::size_t>(max_procs), 0.0);
      pc.start_delays[static_cast<std::size_t>(proc)] =
          to_double(value.substr(sep + 1), directive, u);
    } else if (key == "stall") {
      static const char* u = "stall=INTERVAL/DURATION";
      const std::size_t sep = value.find('/');
      if (sep == std::string::npos) bad("perturb", directive, u);
      pc.stall_mean_interval = to_double(value.substr(0, sep), directive, u);
      pc.stall_duration = to_double(value.substr(sep + 1), directive, u);
    } else if (key == "loss") {
      static const char* u = "loss=PROC@TIME";
      const std::size_t sep = value.find('@');
      if (sep == std::string::npos) bad("perturb", directive, u);
      const auto proc = to_int(value.substr(0, sep), directive, u);
      if (proc < 0 || proc >= max_procs) bad("perturb", directive, u);
      pc.losses.push_back({static_cast<int>(proc),
                           to_double(value.substr(sep + 1), directive, u)});
    } else if (key == "spike") {
      static const char* u = "spike=PROB/LATENCY";
      const std::size_t sep = value.find('/');
      if (sep == std::string::npos) bad("perturb", directive, u);
      pc.mem_spike_prob = to_double(value.substr(0, sep), directive, u);
      pc.mem_spike_latency = to_double(value.substr(sep + 1), directive, u);
    } else if (key == "burst") {
      static const char* u = "burst=INTERVAL/DURATION/MULT";
      const auto parts = split(value, '/');
      if (parts.size() != 3) bad("perturb", directive, u);
      pc.burst_mean_interval = to_double(parts[0], directive, u);
      pc.burst_duration = to_double(parts[1], directive, u);
      pc.burst_multiplier = to_double(parts[2], directive, u);
    } else {
      bad("perturb", directive,
          "need seed=|delay=|stall=|loss=|spike=|burst=");
    }
  }
  pc.validate(max_procs);
  return pc;
}

Experiment make_grid_experiment(const GridSpec& g) {
  if (g.kernel.empty() || g.machine.empty() || g.schedulers.empty())
    throw std::runtime_error(
        "a grid needs all of kernel, machine and schedulers");
  // Parse and validate everything before returning: a malformed grid must
  // fail at admission with a usage hint, never mid-run.
  auto spec = std::make_shared<FigureSpec>();
  spec->id = "grid";
  spec->machine = parse_machine_spec(g.machine);
  spec->program = parse_kernel_spec(g.kernel);
  spec->title = g.kernel + " on " + g.machine;
  spec->procs = g.procs.empty()
                    ? std::vector<int>{spec->machine.max_processors}
                    : g.procs;
  int max_p = 0;
  for (int p : spec->procs) max_p = std::max(max_p, p);
  if (!g.perturb.empty())
    spec->sim_options.perturb = parse_perturb_spec(g.perturb, max_p);
  for (const std::string& s : split(g.schedulers, ',')) {
    if (s.empty())
      throw std::runtime_error("bad schedulers spec '" + g.schedulers +
                               "' (empty scheduler entry)");
    spec->schedulers.push_back(entry(s));
  }
  for (const SchedulerEntry& se : spec->schedulers) se.make();

  // The out-of-process recipe: a grid exists in no registry, so a sandbox
  // worker rebuilds it from these exact spec strings — re-parsed through
  // this same function, which is what keeps worker cells bit-identical to
  // in-process ones.
  spec->exec.kernel = g.kernel;
  spec->exec.machine = g.machine;
  spec->exec.schedulers = g.schedulers;
  spec->exec.perturb = g.perturb;
  spec->exec.procs = spec->procs;

  return figure_experiment("grid", spec->title,
                           [spec] { return *spec; }, {});
}

std::string grid_identity(const GridSpec& g) {
  std::string procs;
  for (int p : g.procs) procs += std::to_string(p) + ",";
  return "kernel=" + g.kernel + ";machine=" + g.machine +
         ";schedulers=" + g.schedulers + ";perturb=" + g.perturb +
         ";procs=" + procs;
}

}  // namespace afs
