#include "workload/cost_models.hpp"

#include <cmath>

#include "util/check.hpp"

namespace afs {

CostFn uniform_cost(double c) {
  AFS_CHECK(c >= 0.0);
  return [c](std::int64_t) { return c; };
}

CostFn triangular_cost(std::int64_t n) {
  return [n](std::int64_t i) { return static_cast<double>(n - i); };
}

CostFn parabolic_cost(std::int64_t n) {
  return [n](std::int64_t i) {
    const double d = static_cast<double>(n - i);
    return d * d;
  };
}

CostFn decreasing_poly_cost(std::int64_t n, int degree) {
  AFS_CHECK(degree >= 0);
  return [n, degree](std::int64_t i) {
    return std::pow(static_cast<double>(n - i), degree);
  };
}

CostFn head_heavy_cost(std::int64_t n, double fraction, double heavy,
                       double light) {
  AFS_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const auto cutoff = static_cast<std::int64_t>(
      fraction * static_cast<double>(n));
  return [cutoff, heavy, light](std::int64_t i) {
    return i < cutoff ? heavy : light;
  };
}

double total_cost(const CostFn& f, std::int64_t n) {
  double t = 0.0;
  for (std::int64_t i = 0; i < n; ++i) t += f(i);
  return t;
}

double max_cost(const CostFn& f, std::int64_t n) {
  double m = 0.0;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, f(i));
  return m;
}

double cost_cv(const CostFn& f, std::int64_t n) {
  if (n <= 0) return 0.0;
  double sum = 0.0, sum2 = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double c = f(i);
    sum += c;
    sum2 += c * c;
  }
  const double mean = sum / static_cast<double>(n);
  if (mean <= 0.0) return 0.0;
  const double var =
      std::max(0.0, sum2 / static_cast<double>(n) - mean * mean);
  return std::sqrt(var) / mean;
}

}  // namespace afs
