#include "workload/loop_spec.hpp"

#include <utility>

namespace afs {

LoopProgram single_loop_program(std::string name, int epochs,
                                std::function<ParallelLoopSpec(int)> loop) {
  LoopProgram p;
  p.name = std::move(name);
  p.epochs = epochs;
  p.epoch_loops = [loop = std::move(loop)](int e) {
    return std::vector<ParallelLoopSpec>{loop(e)};
  };
  return p;
}

}  // namespace afs
