// Boolean adjacency-matrix graphs for the transitive-closure kernel.
#pragma once

#include <cstdint>

#include "util/array2d.hpp"

namespace afs {

using BoolMatrix = Array2D<std::uint8_t>;

/// Erdos–Renyi digraph on n nodes with independent edge probability p
/// (Fig. 5 uses n = 512, p ≈ 0.08). Deterministic in `seed`. Self-loops
/// are not generated.
BoolMatrix random_graph(std::int64_t n, double edge_prob, std::uint64_t seed);

/// The paper's skewed input (Fig. 6): a clique on the first `clique` nodes
/// and no other edges. Fig. 16 uses n = 1024, clique = 0.4n.
BoolMatrix clique_graph(std::int64_t n, std::int64_t clique);

/// Number of edges (true entries).
std::int64_t edge_count(const BoolMatrix& g);

}  // namespace afs
