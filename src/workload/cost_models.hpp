// Per-iteration cost models for the synthetic workloads of §4.4 and the
// oracle knowledge handed to BEST-STATIC.
//
// Costs are in abstract "work units"; the simulator converts units to time
// via MachineConfig::cycle_time and the real-thread kernels convert them to
// actual floating-point busy work.
#pragma once

#include <cstdint>
#include <functional>

namespace afs {

using CostFn = std::function<double(std::int64_t)>;

/// cost(i) = c for all i (the "simple balanced loop" of §4.5/§4.6).
CostFn uniform_cost(double c = 1.0);

/// cost(i) = n - i (Fig. 10's triangular workload; adjoint convolution's
/// shape).
CostFn triangular_cost(std::int64_t n);

/// cost(i) = (n - i)^2 (Fig. 11's decreasing parabolic workload).
CostFn parabolic_cost(std::int64_t n);

/// cost(i) = (n - i)^degree — general decreasing polynomial (Theorem 3.3).
CostFn decreasing_poly_cost(std::int64_t n, int degree);

/// First `fraction` of iterations cost `heavy`, the rest cost `light`
/// (Fig. 12: fraction = 0.1, heavy = 100, light = 1).
CostFn head_heavy_cost(std::int64_t n, double fraction, double heavy,
                       double light);

/// Total work of a model over [0, n).
double total_cost(const CostFn& f, std::int64_t n);

/// Maximum single-iteration cost over [0, n).
double max_cost(const CostFn& f, std::int64_t n);

/// Coefficient of variation (stddev/mean) of iteration costs over [0, n);
/// feeds the TAPER policy.
double cost_cv(const CostFn& f, std::int64_t n);

}  // namespace afs
