#include "workload/graphs.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace afs {

BoolMatrix random_graph(std::int64_t n, double edge_prob, std::uint64_t seed) {
  AFS_CHECK(n >= 0 && edge_prob >= 0.0 && edge_prob <= 1.0);
  BoolMatrix g(n, n, 0);
  Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      if (i != j && rng.next_bool(edge_prob)) g(i, j) = 1;
  return g;
}

BoolMatrix clique_graph(std::int64_t n, std::int64_t clique) {
  AFS_CHECK(n >= 0 && clique >= 0 && clique <= n);
  BoolMatrix g(n, n, 0);
  for (std::int64_t i = 0; i < clique; ++i)
    for (std::int64_t j = 0; j < clique; ++j)
      if (i != j) g(i, j) = 1;
  return g;
}

std::int64_t edge_count(const BoolMatrix& g) {
  std::int64_t c = 0;
  for (std::int64_t i = 0; i < g.rows(); ++i)
    for (std::int64_t j = 0; j < g.cols(); ++j)
      if (g(i, j)) ++c;
  return c;
}

}  // namespace afs
