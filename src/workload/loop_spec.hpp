// The substrate-independent description of a parallel-loop program that
// the simulator executes: per-iteration abstract work plus the data
// footprint (which blocks an iteration reads and writes).
//
// Blocks are the unit of residency in the simulated caches. They are
// coarse on purpose — a matrix row, a vector slice — because that is the
// granularity at which the paper's kernels exhibit affinity (iteration i
// touches row i). `size` is in transfer units (one unit ~ one bus/packet
// transaction in MachineConfig terms).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workload/cost_models.hpp"

namespace afs {

struct BlockAccess {
  std::int64_t block = 0;  ///< Globally unique block id.
  double size = 1.0;       ///< Transfer units moved on a miss.
  bool write = false;      ///< Writes invalidate other processors' copies.
};

/// Fills `out` with the blocks iteration `i` touches. Cleared by the caller.
using FootprintFn =
    std::function<void(std::int64_t i, std::vector<BlockAccess>& out)>;

/// One parallel loop instance (one epoch of the enclosing sequential loop).
struct ParallelLoopSpec {
  std::int64_t n = 0;   ///< Iteration count.
  CostFn work;          ///< Abstract compute units per iteration (never null).
  FootprintFn footprint;  ///< Null for memory-less loops (L4, synthetics).

  /// Optional: when > 0, every iteration costs exactly this many compute
  /// units and `work` is guaranteed to return it for every i. The engine
  /// then charges iterations without the per-iteration indirect call — an
  /// epoch of Gauss or SOR makes tens of millions of them per sweep. The
  /// kernel must precompute the value with the same expression its `work`
  /// lambda evaluates so results stay bit-identical either way.
  double uniform_work = 0.0;

  /// Optional analytic sum of work over [b, e). When present and the loop
  /// has no footprint, the simulator charges whole chunks in O(1), which
  /// makes the 200-million-iteration loop of Table 2 simulable.
  std::function<double(std::int64_t b, std::int64_t e)> work_sum;
};

/// A whole program: a sequential outer loop whose body is one or more
/// parallel loops. `epoch_loops(e)` returns the parallel loops of epoch e
/// in execution order (L4 has three per epoch; the kernels have one).
struct LoopProgram {
  std::string name;
  int epochs = 1;
  std::function<std::vector<ParallelLoopSpec>(int epoch)> epoch_loops;

  /// Canonical identity of the program for the content-addressed result
  /// store (store/cell_key.hpp): a factory-chosen string covering every
  /// parameter that shapes the generated loops, with doubles rendered via
  /// key_double and data-dependent programs (e.g. transitive closure on a
  /// random graph) embedding a content hash. Empty means "identity
  /// unknown" — cells running this program bypass the store.
  std::string key;
};

/// Convenience: a single-loop-per-epoch program.
LoopProgram single_loop_program(std::string name, int epochs,
                                std::function<ParallelLoopSpec(int)> loop);

}  // namespace afs
