#include "trace/trace_reader.hpp"

#include "trace/binary_sink.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace afs {
namespace {

std::uint64_t u64_of_bits(std::uint64_t b, double& out) {
  std::memcpy(&out, &b, sizeof out);
  return b;
}

bool grab_kind_of(const std::string& s, GrabKind& out) {
  if (s == "none") out = GrabKind::kNone;
  else if (s == "central") out = GrabKind::kCentral;
  else if (s == "local") out = GrabKind::kLocal;
  else if (s == "remote") out = GrabKind::kRemote;
  else if (s == "static") out = GrabKind::kStatic;
  else return false;
  return true;
}

/// One parsed member of a flat JSON object.
struct JsonField {
  std::string key;
  std::string value;  // unescaped string, or the raw number token
  bool is_string = false;
};

/// Minimal parser for the flat objects the JSONL sink emits: string keys,
/// string or number values, no nesting. Returns false on malformed input.
bool parse_flat_object(const std::string& line, std::vector<JsonField>& out) {
  out.clear();
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  const auto parse_string = [&](std::string& s) {
    s.clear();
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) return false;
        const char e = line[i++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (i + 4 > line.size()) return false;
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = line[i++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The sink only \u-escapes control bytes (< 0x20).
            if (v > 0xff) return false;
            c = static_cast<char>(v);
            break;
          }
          default: return false;
        }
      }
      s.push_back(c);
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return true;  // empty object
  for (;;) {
    JsonField f;
    skip_ws();
    if (!parse_string(f.key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    if (i < line.size() && line[i] == '"') {
      f.is_string = true;
      if (!parse_string(f.value)) return false;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      f.value = line.substr(start, i - start);
      while (!f.value.empty() && (f.value.back() == ' ' || f.value.back() == '\t'))
        f.value.pop_back();
      if (f.value.empty()) return false;
    }
    out.push_back(std::move(f));
    skip_ws();
    if (i >= line.size()) return false;
    if (line[i] == '}') {
      ++i;
      skip_ws();
      return i == line.size();  // no trailing garbage
    }
    if (line[i] != ',') return false;
    ++i;
  }
}

const JsonField* find(const std::vector<JsonField>& fields,
                      const char* key) {
  for (const JsonField& f : fields)
    if (f.key == key) return &f;
  return nullptr;
}

}  // namespace

TraceReader::TraceReader(const std::string& path)
    : file_(path, std::ios::binary), in_(&file_), context_(path) {
  if (!file_) throw std::runtime_error("cannot open trace: " + path);
  sniff();
}

TraceReader::TraceReader(std::istream& in) : in_(&in), context_("<stream>") {
  sniff();
}

void TraceReader::fail(const std::string& what) const {
  throw std::runtime_error("malformed trace (" + context_ + ", record " +
                           std::to_string(records_) + "): " + what);
}

void TraceReader::sniff() {
  const int first = in_->peek();
  if (first == std::istream::traits_type::eof()) fail("empty trace");
  if (first == '{') {
    format_ = TraceFormat::kJsonl;
    return;
  }
  unsigned char header[sizeof BinaryTraceSink::kMagic];
  in_->read(reinterpret_cast<char*>(header), sizeof header);
  if (static_cast<std::size_t>(in_->gcount()) != sizeof header ||
      std::memcmp(header, "CCTR", 4) != 0)
    fail("not a trace: bad magic");
  if (header[4] != BinaryTraceSink::kMagic[4])
    fail("unsupported .cctrace version " + std::to_string(header[4]));
  format_ = TraceFormat::kBinary;
}

bool TraceReader::next(TraceRecord& rec) {
  rec = TraceRecord{};
  return format_ == TraceFormat::kBinary ? next_binary(rec) : next_jsonl(rec);
}

std::uint8_t TraceReader::read_u8() {
  const int c = in_->get();
  if (c == std::istream::traits_type::eof()) fail("unexpected end of stream");
  return static_cast<std::uint8_t>(c);
}

std::uint64_t TraceReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = read_u8();
    if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0))
      fail("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t TraceReader::read_svarint() {
  const std::uint64_t z = read_varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double TraceReader::read_time() {
  prev_time_bits_ ^= read_varint();
  double out;
  u64_of_bits(prev_time_bits_, out);
  return out;
}

double TraceReader::read_value() {
  prev_value_bits_ ^= read_varint();
  double out;
  u64_of_bits(prev_value_bits_, out);
  return out;
}

bool TraceReader::next_binary(TraceRecord& rec) {
  for (;;) {
    const int c = in_->get();
    if (c == std::istream::traits_type::eof()) return false;  // clean end
    const auto opcode = static_cast<std::uint8_t>(c);
    if (opcode == 0) {
      // String definition: ids are assigned sequentially at first use.
      const std::uint64_t id = read_varint();
      if (id != strings_.size()) fail("out-of-order string definition");
      const std::uint64_t len = read_varint();
      if (len > (1u << 20)) fail("unreasonable string length");
      std::string s(static_cast<std::size_t>(len), '\0');
      in_->read(s.data(), static_cast<std::streamsize>(len));
      if (static_cast<std::uint64_t>(in_->gcount()) != len)
        fail("truncated string definition");
      strings_.push_back(std::move(s));
      continue;
    }
    if (opcode < static_cast<std::uint8_t>(TraceEv::kRunBegin) ||
        opcode > static_cast<std::uint8_t>(TraceEv::kRunEnd))
      fail("unknown opcode " + std::to_string(opcode));
    rec.ev = static_cast<TraceEv>(opcode);
    break;
  }

  const auto string_ref = [&]() -> const std::string& {
    const std::uint64_t id = read_varint();
    if (id >= strings_.size()) fail("dangling string reference");
    return strings_[static_cast<std::size_t>(id)];
  };
  const auto read_int = [&] { return static_cast<int>(read_varint()); };

  switch (rec.ev) {
    case TraceEv::kRunBegin:
      rec.machine = string_ref();
      rec.program = string_ref();
      rec.scheduler = string_ref();
      rec.p = read_int();
      break;
    case TraceEv::kLoopBegin:
      rec.epoch = read_int();
      rec.n = static_cast<std::int64_t>(read_varint());
      rec.p = read_int();
      break;
    case TraceEv::kGrab: {
      rec.proc = read_int();
      const std::uint8_t kind = read_u8();
      if (kind > static_cast<std::uint8_t>(GrabKind::kStatic))
        fail("unknown grab kind");
      rec.kind = static_cast<GrabKind>(kind);
      rec.queue = static_cast<int>(read_svarint());
      rec.begin = read_svarint();
      rec.end = read_svarint();
      rec.t0 = read_time();
      rec.t1 = read_time();
      break;
    }
    case TraceEv::kChunk:
      rec.proc = read_int();
      rec.begin = read_svarint();
      rec.end = read_svarint();
      rec.t0 = read_time();
      rec.t1 = read_time();
      break;
    case TraceEv::kMiss:
      rec.proc = read_int();
      rec.block = read_svarint();
      rec.size = read_value();
      rec.t0 = read_time();
      rec.t1 = read_time();
      break;
    case TraceEv::kInval:
      rec.proc = read_int();
      rec.block = read_svarint();
      rec.copies = read_int();
      rec.t0 = read_time();
      rec.t1 = read_time();
      break;
    case TraceEv::kDone:
    case TraceEv::kLost:
      rec.proc = read_int();
      rec.t0 = read_time();
      break;
    case TraceEv::kStall:
      rec.proc = read_int();
      rec.t0 = read_time();
      rec.t1 = read_time();
      break;
    case TraceEv::kFaultSteal:
      rec.proc = read_int();
      rec.queue = static_cast<int>(read_svarint());
      rec.n = static_cast<std::int64_t>(read_varint());
      break;
    case TraceEv::kAbandoned:
      rec.n = static_cast<std::int64_t>(read_varint());
      break;
    case TraceEv::kLoopEnd:
      rec.epoch = read_int();
      rec.t0 = read_time();
      break;
    case TraceEv::kBarrier:
      rec.epoch = read_int();
      rec.size = read_value();
      rec.t0 = read_time();
      break;
    case TraceEv::kRunEnd:
      rec.t0 = read_time();
      break;
  }
  ++records_;
  return true;
}

bool TraceReader::next_jsonl(TraceRecord& rec) {
  std::string line;
  do {
    if (!std::getline(*in_, line)) return false;  // clean end
  } while (line.empty());

  std::vector<JsonField> fields;
  if (!parse_flat_object(line, fields)) fail("unparsable JSON line: " + line);

  const auto str = [&](const char* key) -> const std::string& {
    const JsonField* f = find(fields, key);
    if (!f || !f->is_string) fail(std::string("missing string field ") + key);
    return f->value;
  };
  const auto num = [&](const char* key) {
    const JsonField* f = find(fields, key);
    if (!f || f->is_string) fail(std::string("missing number field ") + key);
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(f->value.c_str(), &end);
    if (end == f->value.c_str() || *end != '\0' || errno == ERANGE)
      fail(std::string("bad number in field ") + key + ": " + f->value);
    return v;
  };
  const auto integer = [&](const char* key) {
    const JsonField* f = find(fields, key);
    if (!f || f->is_string) fail(std::string("missing number field ") + key);
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(f->value.c_str(), &end, 10);
    if (end == f->value.c_str() || *end != '\0' || errno == ERANGE)
      fail(std::string("bad integer in field ") + key + ": " + f->value);
    return static_cast<std::int64_t>(v);
  };

  const std::string& ev = str("ev");
  if (ev == "run_begin") {
    rec.ev = TraceEv::kRunBegin;
    rec.machine = str("machine");
    rec.program = str("program");
    rec.scheduler = str("scheduler");
    rec.p = static_cast<int>(integer("p"));
  } else if (ev == "loop_begin") {
    rec.ev = TraceEv::kLoopBegin;
    rec.epoch = static_cast<int>(integer("epoch"));
    rec.n = integer("n");
    rec.p = static_cast<int>(integer("p"));
  } else if (ev == "grab") {
    rec.ev = TraceEv::kGrab;
    rec.proc = static_cast<int>(integer("proc"));
    if (!grab_kind_of(str("kind"), rec.kind)) fail("unknown grab kind");
    rec.queue = static_cast<int>(integer("queue"));
    rec.begin = integer("begin");
    rec.end = integer("end");
    rec.t0 = num("t0");
    rec.t1 = num("t1");
  } else if (ev == "chunk") {
    rec.ev = TraceEv::kChunk;
    rec.proc = static_cast<int>(integer("proc"));
    rec.begin = integer("begin");
    rec.end = integer("end");
    rec.t0 = num("t0");
    rec.t1 = num("t1");
  } else if (ev == "miss") {
    rec.ev = TraceEv::kMiss;
    rec.proc = static_cast<int>(integer("proc"));
    rec.block = integer("block");
    rec.size = num("size");
    rec.t0 = num("t0");
    rec.t1 = num("t1");
  } else if (ev == "inval") {
    rec.ev = TraceEv::kInval;
    rec.proc = static_cast<int>(integer("proc"));
    rec.block = integer("block");
    rec.copies = static_cast<int>(integer("copies"));
    rec.t0 = num("t0");
    rec.t1 = num("t1");
  } else if (ev == "done") {
    rec.ev = TraceEv::kDone;
    rec.proc = static_cast<int>(integer("proc"));
    rec.t0 = num("t");
  } else if (ev == "stall") {
    rec.ev = TraceEv::kStall;
    rec.proc = static_cast<int>(integer("proc"));
    rec.t0 = num("t0");
    rec.t1 = num("t1");
  } else if (ev == "lost") {
    rec.ev = TraceEv::kLost;
    rec.proc = static_cast<int>(integer("proc"));
    rec.t0 = num("t");
  } else if (ev == "fault_steal") {
    rec.ev = TraceEv::kFaultSteal;
    rec.proc = static_cast<int>(integer("proc"));
    rec.queue = static_cast<int>(integer("queue"));
    rec.n = integer("iters");
  } else if (ev == "abandoned") {
    rec.ev = TraceEv::kAbandoned;
    rec.n = integer("iters");
  } else if (ev == "loop_end") {
    rec.ev = TraceEv::kLoopEnd;
    rec.epoch = static_cast<int>(integer("epoch"));
    rec.t0 = num("end");
  } else if (ev == "barrier") {
    rec.ev = TraceEv::kBarrier;
    rec.epoch = static_cast<int>(integer("epoch"));
    rec.size = num("cost");
    rec.t0 = num("total");
  } else if (ev == "run_end") {
    rec.ev = TraceEv::kRunEnd;
    rec.t0 = num("makespan");
  } else {
    fail("unknown ev \"" + ev + "\"");
  }
  ++records_;
  return true;
}

std::vector<TraceRecord> read_trace(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceRecord> out;
  TraceRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  return out;
}

}  // namespace afs
