// The trace subsystem's shared record model.
//
// A simulator trace — whatever its on-disk encoding — is a sequence of
// TraceRecords, one per narrated MetricsSink event. The two sinks
// (JsonlTraceSink in sim/trace_sink.hpp, BinaryTraceSink in
// trace/binary_sink.hpp) serialize the *same* event sequence; TraceReader
// (trace/trace_reader.hpp) decodes either file back into TraceRecords, so
// every consumer (analysis, the Gantt renderer, trace_report) is
// format-agnostic and the JSONL↔binary equivalence property is testable
// as plain record-sequence equality.
#pragma once

#include <cstdint>
#include <string>

#include "sched/grab.hpp"

namespace afs {

/// On-disk trace encodings the bench harness can emit (--trace-format).
enum class TraceFormat : std::uint8_t {
  kNone,    ///< tracing disabled
  kJsonl,   ///< JSON Lines, one object per event (docs/SIMULATOR.md)
  kBinary,  ///< compact .cctrace (delta-encoded, string-interned)
};

/// File extension per format: ".trace.jsonl" / ".cctrace".
inline const char* trace_extension(TraceFormat f) {
  return f == TraceFormat::kBinary ? ".cctrace" : ".trace.jsonl";
}

/// Per-cell trace path: `<out_dir>/<id>.p<P>.<sched><ext>` with the
/// scheduler label sanitized the same way as sweep checkpoints (alnum,
/// '-', '.'; everything else becomes '_'). One file per (scheduler, P)
/// sweep cell is what lets --trace compose with --jobs=N: each cell owns
/// its writer, so parallel cells never interleave records.
inline std::string trace_cell_path(const std::string& out_dir,
                                   const std::string& id,
                                   const std::string& label, int procs,
                                   TraceFormat format) {
  std::string safe;
  safe.reserve(label.size());
  for (char c : label)
    safe += ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
             (c >= 'A' && c <= 'Z') || c == '-' || c == '.')
                ? c
                : '_';
  return out_dir + "/" + id + ".p" + std::to_string(procs) + "." + safe +
         trace_extension(format);
}

/// Event discriminator. Values are also the binary opcodes (opcode 0 is
/// reserved for string definitions), so they are part of the .cctrace
/// format and must never be renumbered — add new events at the end.
enum class TraceEv : std::uint8_t {
  kRunBegin = 1,
  kLoopBegin = 2,
  kGrab = 3,
  kChunk = 4,
  kMiss = 5,
  kInval = 6,
  kDone = 7,
  kStall = 8,
  kLost = 9,
  kFaultSteal = 10,
  kAbandoned = 11,
  kLoopEnd = 12,
  kBarrier = 13,
  kRunEnd = 14,
};

constexpr const char* to_string(TraceEv ev) {
  switch (ev) {
    case TraceEv::kRunBegin: return "run_begin";
    case TraceEv::kLoopBegin: return "loop_begin";
    case TraceEv::kGrab: return "grab";
    case TraceEv::kChunk: return "chunk";
    case TraceEv::kMiss: return "miss";
    case TraceEv::kInval: return "inval";
    case TraceEv::kDone: return "done";
    case TraceEv::kStall: return "stall";
    case TraceEv::kLost: return "lost";
    case TraceEv::kFaultSteal: return "fault_steal";
    case TraceEv::kAbandoned: return "abandoned";
    case TraceEv::kLoopEnd: return "loop_end";
    case TraceEv::kBarrier: return "barrier";
    case TraceEv::kRunEnd: return "run_end";
  }
  return "?";
}

/// One decoded trace event. Only the fields of the event's type are
/// meaningful; every other field keeps its default, so whole-record
/// equality (used by the equivalence tests) is well defined across
/// readers. Field mapping per event (matching the JSONL schema):
///
///   run_begin   machine, program, scheduler, p
///   loop_begin  epoch, n, p
///   grab        proc, kind, queue, begin, end, t0, t1
///   chunk       proc, begin, end, t0, t1
///   miss        proc, block, size, t0, t1
///   inval       proc, block, copies, t0, t1
///   done        proc, t0 (= t)
///   stall       proc, t0, t1
///   lost        proc, t0 (= t)
///   fault_steal proc (thief), queue (victim), n (iters)
///   abandoned   n (iters)
///   loop_end    epoch, t0 (= end)
///   barrier     epoch, size (= cost), t0 (= total)
///   run_end     t0 (= makespan)
struct TraceRecord {
  TraceEv ev = TraceEv::kRunBegin;
  std::string machine;
  std::string program;
  std::string scheduler;
  int p = 0;
  int epoch = 0;
  int proc = 0;
  GrabKind kind = GrabKind::kNone;
  int queue = 0;
  int copies = 0;
  std::int64_t n = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t block = 0;
  double size = 0.0;
  double t0 = 0.0;
  double t1 = 0.0;

  bool operator==(const TraceRecord&) const = default;
};

}  // namespace afs
