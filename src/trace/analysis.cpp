#include "trace/analysis.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/trace_reader.hpp"

namespace afs {
namespace {

// Affinity accounting materializes one int per iteration; cap it so a
// pathological trace with a multi-billion-iteration loop degrades to
// "no score" instead of exhausting memory.
constexpr std::int64_t kMaxAffinityN = std::int64_t{1} << 26;

std::int64_t matrix_sum(const std::vector<std::vector<std::int64_t>>& m) {
  std::int64_t total = 0;
  for (const auto& row : m)
    for (std::int64_t v : row) total += v;
  return total;
}

}  // namespace

std::int64_t TraceAnalysis::remote_steals() const {
  return matrix_sum(steal_iters);
}

std::int64_t TraceAnalysis::fault_steals() const {
  return matrix_sum(fault_steal_iters);
}

double TraceAnalysis::exec_imbalance() const {
  double sum = 0.0;
  double max = 0.0;
  for (const ProcBreakdown& pb : procs) {
    sum += pb.exec;
    max = std::max(max, pb.exec);
  }
  const double mean =
      procs.empty() ? 0.0 : sum / static_cast<double>(procs.size());
  return mean > 0.0 ? max / mean - 1.0 : 0.0;
}

std::vector<TraceAnalysis> analyze_trace(
    const std::vector<TraceRecord>& records) {
  std::vector<TraceAnalysis> out;

  bool in_run = false;
  TraceAnalysis run;
  // Iteration -> executing processor, for the previous and current epoch.
  // -1 marks "not executed" (or affinity accounting disabled by the cap).
  std::vector<int> prev_owner;
  std::vector<int> cur_owner;
  bool affinity_enabled = true;

  const auto require_run = [&](const TraceRecord& r) {
    if (!in_run)
      throw std::runtime_error("trace event " +
                               std::string(to_string(r.ev)) +
                               " outside run_begin..run_end");
  };
  const auto proc_of = [&](int proc) -> ProcBreakdown& {
    if (proc < 0 || proc >= static_cast<int>(run.procs.size()))
      throw std::runtime_error("trace references processor " +
                               std::to_string(proc) + " of " +
                               std::to_string(run.procs.size()));
    return run.procs[static_cast<std::size_t>(proc)];
  };

  for (const TraceRecord& r : records) {
    if (r.ev == TraceEv::kRunBegin) {
      if (in_run)
        throw std::runtime_error("run_begin inside an unfinished run");
      in_run = true;
      run = TraceAnalysis{};
      run.machine = r.machine;
      run.program = r.program;
      run.scheduler = r.scheduler;
      run.p = r.p;
      run.procs.assign(static_cast<std::size_t>(std::max(r.p, 0)),
                       ProcBreakdown{});
      run.steal_iters.assign(
          run.procs.size(),
          std::vector<std::int64_t>(run.procs.size(), 0));
      run.fault_steal_iters = run.steal_iters;
      prev_owner.clear();
      cur_owner.clear();
      affinity_enabled = true;
      ++run.records;
      continue;
    }
    require_run(r);
    ++run.records;

    switch (r.ev) {
      case TraceEv::kLoopBegin: {
        ++run.epochs;
        run.total_iterations += r.n;
        prev_owner.swap(cur_owner);
        if (r.n > kMaxAffinityN) affinity_enabled = false;
        if (affinity_enabled)
          cur_owner.assign(static_cast<std::size_t>(r.n), -1);
        else
          cur_owner.clear();
        break;
      }
      case TraceEv::kGrab: {
        ProcBreakdown& pb = proc_of(r.proc);
        pb.sync += r.t1 - r.t0;
        if (r.kind == GrabKind::kRemote && r.queue >= 0 &&
            r.queue < static_cast<int>(run.procs.size()))
          run.steal_iters[static_cast<std::size_t>(r.proc)]
                         [static_cast<std::size_t>(r.queue)] +=
              r.end - r.begin;
        break;
      }
      case TraceEv::kChunk: {
        ProcBreakdown& pb = proc_of(r.proc);
        pb.exec += r.t1 - r.t0;
        pb.iterations += r.end - r.begin;
        ++pb.chunks;
        run.executed_iterations += r.end - r.begin;
        if (affinity_enabled) {
          const auto lo = static_cast<std::size_t>(std::max<std::int64_t>(
              r.begin, 0));
          const auto hi = static_cast<std::size_t>(std::min<std::int64_t>(
              r.end, static_cast<std::int64_t>(cur_owner.size())));
          for (std::size_t i = lo; i < hi; ++i) {
            cur_owner[i] = r.proc;
            if (i < prev_owner.size() && prev_owner[i] >= 0) {
              ++run.scored_iterations;
              if (prev_owner[i] == r.proc) ++run.affine_iterations;
            }
          }
        }
        break;
      }
      case TraceEv::kMiss:
      case TraceEv::kInval:
        proc_of(r.proc).memory += r.t1 - r.t0;
        break;
      case TraceEv::kStall:
        proc_of(r.proc).stall += r.t1 - r.t0;
        break;
      case TraceEv::kFaultSteal:
        if (r.proc >= 0 && r.proc < static_cast<int>(run.procs.size()) &&
            r.queue >= 0 && r.queue < static_cast<int>(run.procs.size()))
          run.fault_steal_iters[static_cast<std::size_t>(r.proc)]
                               [static_cast<std::size_t>(r.queue)] += r.n;
        break;
      case TraceEv::kAbandoned:
        run.abandoned_iterations += r.n;
        break;
      case TraceEv::kRunEnd: {
        run.makespan = r.t0;
        for (ProcBreakdown& pb : run.procs)
          pb.idle = std::max(0.0, run.makespan - pb.exec - pb.sync - pb.stall);
        in_run = false;
        out.push_back(std::move(run));
        run = TraceAnalysis{};
        break;
      }
      case TraceEv::kDone:
      case TraceEv::kLost:
      case TraceEv::kLoopEnd:
      case TraceEv::kBarrier:
        break;  // no aggregate beyond what the events above capture
      case TraceEv::kRunBegin:
        break;  // handled before the switch
    }
  }
  if (in_run) throw std::runtime_error("trace ends without run_end");
  return out;
}

std::vector<TraceAnalysis> analyze_trace_file(const std::string& path) {
  return analyze_trace(read_trace(path));
}

}  // namespace afs
