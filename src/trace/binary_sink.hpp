// BinaryTraceSink: the compact .cctrace encoding of the simulator's
// event stream — a drop-in alternative to JsonlTraceSink carrying the
// exact same record semantics (TraceReader decodes both formats into
// identical TraceRecord sequences; tests/trace/trace_equivalence_test.cpp
// asserts this property).
//
// Format (version 1; full spec in docs/SIMULATOR.md, "Binary trace
// format"):
//
//   header   'C' 'C' 'T' 'R'  version=0x01  3 reserved zero bytes
//   records  opcode byte, then opcode-specific fields:
//              0x00        string definition: varint id, varint len, bytes
//              0x01..0x0e  the TraceEv events (same numbering)
//
// Encodings:
//   * varint   — LEB128, 7 bits per byte, little-endian groups;
//   * svarint  — zigzag-mapped varint (queue indexes can be -1);
//   * time     — the double's IEEE-754 bit pattern XORed against the
//                previous time field's bits (one rolling register for
//                every t/t0/t1/end/makespan in the file), varint-encoded.
//                Simulated time advances smoothly, so consecutive bit
//                patterns share sign/exponent/upper-mantissa bits and the
//                XOR is a small integer — typically 3-6 bytes instead of
//                the ~18 characters JSONL spends, and exactly lossless;
//   * value    — same XOR-chain scheme with a second register, used for
//                the non-monotone doubles (miss sizes, barrier costs),
//                which repeat heavily (XOR = 0 encodes in one byte).
//
// Strings (machine/program/scheduler names) are interned: the first
// occurrence emits a definition record with the next sequential id, and
// every reference is a varint id — so a run_begin costs a few bytes after
// the first run. All state (intern table, XOR registers) persists across
// runs within one file.
//
// File output streams to `<path>.tmp` and is published atomically by
// finalize() via the shared fsync+rename protocol, exactly like the JSONL
// sink; abandon() discards the temp file instead.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <string>

#include "sim/trace_sink.hpp"
#include "trace/trace_record.hpp"

namespace afs {

class BinaryTraceSink final : public FileTraceSink {
 public:
  /// Magic + version prefix: "CCTR", version byte, three reserved zeros.
  static constexpr unsigned char kMagic[8] = {'C', 'C', 'T', 'R',
                                              1,   0,   0,   0};

  /// Streams to `out` (not owned; must outlive the sink). The header is
  /// written immediately.
  explicit BinaryTraceSink(std::ostream& out);

  /// Streams to `path + ".tmp"` (truncates), published to `path` by
  /// finalize(). Throws std::runtime_error when the file cannot be
  /// opened; parent directories are not created.
  explicit BinaryTraceSink(const std::string& path);

  void finalize() override;
  void abandon() override;

  ~BinaryTraceSink() override;

  std::int64_t records_written() const { return records_; }
  std::int64_t bytes_written() const { return bytes_; }

  void on_run_begin(const MachineConfig& m, const std::string& program,
                    const std::string& scheduler, int p) override;
  void on_loop_begin(int epoch, std::int64_t n, int p) override;
  void on_grab(int proc, const Grab& g, double t0, double t1) override;
  void on_chunk(int proc, std::int64_t begin, std::int64_t end, double t0,
                double t1) override;
  void on_miss(int proc, const BlockAccess& a, double t0, double t1) override;
  void on_invalidate(int proc, std::int64_t block, int copies, double t0,
                     double t1) override;
  void on_proc_done(int proc, double t) override;
  void on_stall(int proc, double t0, double t1) override;
  void on_proc_lost(int proc, double t) override;
  void on_fault_steal(int thief, int victim_queue, std::int64_t iters) override;
  void on_abandoned(std::int64_t iters) override;
  void on_loop_end(int epoch, double end) override;
  void on_barrier(int epoch, double cost, double total) override;
  void on_run_end(double makespan) override;

 private:
  void op(TraceEv ev);
  void put_u8(std::uint8_t b);
  void put_varint(std::uint64_t v);
  void put_svarint(std::int64_t v);
  void put_time(double t);
  void put_value(double v);
  /// Returns the string's intern id, emitting a definition record first
  /// when the string is new.
  std::uint64_t intern(const std::string& s);
  void flush_buffer();

  std::string buf_;          // pending bytes, flushed past a threshold
  std::ofstream file_;       // used by the path constructor
  std::ostream* out_;        // always valid
  std::string final_path_;   // non-empty = path mode, not yet finalized
  std::map<std::string, std::uint64_t> interned_;
  std::uint64_t prev_time_bits_ = 0;
  std::uint64_t prev_value_bits_ = 0;
  std::int64_t records_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace afs
