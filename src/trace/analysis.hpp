// Trace analytics: per-processor time breakdowns, the steal matrix, and
// the affinity score, all derived from a decoded TraceRecord sequence.
//
// The affinity score quantifies the paper's central mechanism: across
// epochs of the same loop, what fraction of iterations execute on the
// processor that owned them in the previous epoch? Affinity schedulers
// (AFS and friends) keep this high so per-processor caches stay warm;
// central-queue self-scheduling scatters iterations and scores near 1/P.
//
// The conservation law narrated + abandoned == sum of loop sizes is the
// same invariant MetricsAccumulator enforces; checking it here through
// the reader exercises both encodings end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_record.hpp"

namespace afs {

/// Where one processor's simulated time went, summed over a run.
struct ProcBreakdown {
  double exec = 0;     ///< inside chunks (includes memory time)
  double memory = 0;   ///< miss + invalidation latency within chunks
  double sync = 0;     ///< grabbing work (lock/queue overhead)
  double stall = 0;    ///< injected stalls
  double idle = 0;     ///< makespan minus everything above
  std::int64_t iterations = 0;
  std::int64_t chunks = 0;

  /// Chunk time that is pure compute, net of memory latency.
  double busy() const { return exec - memory; }
};

/// Everything analyze_trace() derives from one run's records.
struct TraceAnalysis {
  std::string machine;
  std::string program;
  std::string scheduler;
  int p = 0;
  double makespan = 0;
  std::int64_t records = 0;
  std::int64_t epochs = 0;

  std::vector<ProcBreakdown> procs;

  /// steal_iters[thief][victim]: iterations taken from another
  /// processor's queue by remote (work-stealing) grabs.
  std::vector<std::vector<std::int64_t>> steal_iters;
  /// fault_steal_iters[thief][victim]: iterations reassigned from a
  /// failed processor's queue during fault recovery.
  std::vector<std::vector<std::int64_t>> fault_steal_iters;

  std::int64_t total_iterations = 0;      ///< sum of loop_begin n
  std::int64_t executed_iterations = 0;   ///< sum of chunk spans
  std::int64_t abandoned_iterations = 0;  ///< sum of abandoned records

  /// Affinity: of the iterations in epochs after the first, how many ran
  /// on the processor that executed them in the previous epoch.
  std::int64_t affine_iterations = 0;
  std::int64_t scored_iterations = 0;

  /// Fraction in [0,1]; 0 when no epoch had a predecessor to compare to.
  double affinity_score() const {
    return scored_iterations > 0
               ? static_cast<double>(affine_iterations) /
                     static_cast<double>(scored_iterations)
               : 0.0;
  }

  std::int64_t remote_steals() const;      ///< total remote-grab iterations
  std::int64_t fault_steals() const;       ///< total fault-recovery iterations

  /// Load imbalance over in-chunk time: max_p(exec) / mean_p(exec) - 1.
  /// 0 for a perfectly balanced run (or an empty one); the y-axis of the
  /// frontier_tradeoff curves, paired with affinity_score() as the x.
  double exec_imbalance() const;

  /// The trace conservation law: every iteration announced by a
  /// loop_begin is either narrated in a chunk or abandoned.
  bool conserved() const {
    return executed_iterations + abandoned_iterations == total_iterations;
  }
};

/// Analyzes a record sequence, returning one TraceAnalysis per run
/// (a file normally holds a single run_begin..run_end span, but the
/// sinks allow several back to back). Throws std::runtime_error on
/// sequences that violate the schema (events outside a run, chunk
/// before loop_begin, missing run_end).
std::vector<TraceAnalysis> analyze_trace(
    const std::vector<TraceRecord>& records);

/// Convenience: analyze_trace over read_trace(path).
std::vector<TraceAnalysis> analyze_trace_file(const std::string& path);

}  // namespace afs
