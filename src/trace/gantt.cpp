#include "trace/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "trace/analysis.hpp"

namespace afs {
namespace {

const char* kind_color(GrabKind k) {
  switch (k) {
    case GrabKind::kLocal: return "#3f9e4d";    // green: affinity hit
    case GrabKind::kCentral: return "#4a7fd9";  // blue: central queue
    case GrabKind::kRemote: return "#e8912d";   // orange: stolen work
    case GrabKind::kStatic: return "#8a8a8a";   // gray: static assignment
    case GrabKind::kNone: break;
  }
  return "#c4c4c4";
}

constexpr const char* kStallColor = "#d64545";

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

struct Rect {
  double x0 = 0;
  double x1 = 0;
  const char* color = nullptr;
};

/// Appends [x0,x1] to the lane, merging with the previous rectangle when
/// the color matches and the gap is below half a pixel.
void add_rect(std::vector<Rect>& lane, double x0, double x1,
              const char* color) {
  if (x1 < x0) std::swap(x0, x1);
  if (!lane.empty() && lane.back().color == color &&
      x0 - lane.back().x1 < 0.5) {
    lane.back().x1 = std::max(lane.back().x1, x1);
    return;
  }
  lane.push_back({x0, x1, color});
}

struct Arrow {
  double x = 0;
  int from_proc = 0;
  int to_proc = 0;
  bool fault = false;  // fault-recovery reassignment (dashed) vs steal
};

struct Marker {  // processor loss
  double x = 0;
  int proc = 0;
};

void render_run(std::ostringstream& os,
                const std::vector<TraceRecord>& records, std::size_t begin,
                std::size_t end, const TraceAnalysis& a, int run_index,
                const GanttOptions& opt) {
  const int p = std::max(a.p, 1);
  const double left = 70, right = 20, top = 28;
  const double plot_w = std::max(100.0, opt.width - left - right);
  const double lane_h = opt.lane_height, lane_gap = 4;
  const double height = top + p * (lane_h + lane_gap) + 24;
  const double span = a.makespan > 0 ? a.makespan : 1.0;
  const auto x_of = [&](double t) { return left + t / span * plot_w; };
  const auto lane_y = [&](int proc) { return top + proc * (lane_h + lane_gap); };

  std::vector<std::vector<Rect>> lanes(static_cast<std::size_t>(p));
  std::vector<GrabKind> last_kind(static_cast<std::size_t>(p),
                                  GrabKind::kNone);
  std::vector<Arrow> arrows;
  std::vector<Marker> losses;
  double clock = 0;  // latest timestamp seen, for timeless fault events
  int elided_arrows = 0;

  const auto in_lane = [&](int proc) { return proc >= 0 && proc < p; };
  for (std::size_t i = begin; i < end; ++i) {
    const TraceRecord& r = records[i];
    switch (r.ev) {
      case TraceEv::kGrab:
        clock = std::max(clock, r.t1);
        if (!in_lane(r.proc)) break;
        last_kind[static_cast<std::size_t>(r.proc)] = r.kind;
        if (r.kind == GrabKind::kRemote && in_lane(r.queue)) {
          if (static_cast<int>(arrows.size()) < opt.max_arrows)
            arrows.push_back({x_of(r.t0), r.queue, r.proc, false});
          else
            ++elided_arrows;
        }
        break;
      case TraceEv::kChunk:
        clock = std::max(clock, r.t1);
        if (in_lane(r.proc))
          add_rect(lanes[static_cast<std::size_t>(r.proc)], x_of(r.t0),
                   x_of(r.t1),
                   kind_color(last_kind[static_cast<std::size_t>(r.proc)]));
        break;
      case TraceEv::kStall:
        clock = std::max(clock, r.t1);
        if (in_lane(r.proc))
          add_rect(lanes[static_cast<std::size_t>(r.proc)], x_of(r.t0),
                   x_of(r.t1), kStallColor);
        break;
      case TraceEv::kLost:
        clock = std::max(clock, r.t0);
        if (in_lane(r.proc)) losses.push_back({x_of(r.t0), r.proc});
        break;
      case TraceEv::kFaultSteal:
        // No timestamp of its own: recovery happens at the simulator's
        // current time, which the surrounding events pin down.
        if (in_lane(r.proc) && in_lane(r.queue)) {
          if (static_cast<int>(arrows.size()) < opt.max_arrows)
            arrows.push_back({x_of(clock), r.queue, r.proc, true});
          else
            ++elided_arrows;
        }
        break;
      case TraceEv::kMiss:
      case TraceEv::kInval:
      case TraceEv::kDone:
      case TraceEv::kLoopEnd:
      case TraceEv::kBarrier:
      case TraceEv::kRunEnd:
        clock = std::max(clock, std::max(r.t0, r.t1));
        break;
      case TraceEv::kRunBegin:
      case TraceEv::kLoopBegin:
      case TraceEv::kAbandoned:
        break;
    }
  }

  os << "<h2>Run " << run_index << ": " << html_escape(a.scheduler)
     << " &middot; " << html_escape(a.program) << " on "
     << html_escape(a.machine) << " &middot; P=" << a.p << "</h2>\n";
  os << "<p>makespan " << fmt(a.makespan) << " &middot; affinity score "
     << fmt(a.affinity_score(), 3) << " &middot; stolen iterations "
     << a.remote_steals() << " &middot; fault-reassigned "
     << a.fault_steals() << " &middot; conservation "
     << (a.conserved() ? "OK" : "VIOLATED") << "</p>\n";

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << opt.width
     << "\" height=\"" << fmt(height, 0) << "\" viewBox=\"0 0 " << opt.width
     << " " << fmt(height, 0) << "\">\n";
  os << "<defs><marker id=\"arr" << run_index
     << "\" viewBox=\"0 0 6 6\" refX=\"5\" refY=\"3\" markerWidth=\"6\" "
        "markerHeight=\"6\" orient=\"auto\"><path d=\"M0,0 L6,3 L0,6 z\" "
        "fill=\"#333\"/></marker></defs>\n";

  // Time axis: quarter ticks.
  for (int tick = 0; tick <= 4; ++tick) {
    const double t = span * tick / 4.0;
    const double x = x_of(t);
    os << "<line x1=\"" << fmt(x) << "\" y1=\"" << fmt(top - 6) << "\" x2=\""
       << fmt(x) << "\" y2=\"" << fmt(height - 20) << "\" stroke=\"#ddd\"/>"
       << "<text x=\"" << fmt(x) << "\" y=\"" << fmt(top - 10)
       << "\" font-size=\"10\" text-anchor=\"middle\" fill=\"#666\">"
       << fmt(t) << "</text>\n";
  }

  for (int proc = 0; proc < p; ++proc) {
    const double y = lane_y(proc);
    os << "<text x=\"" << fmt(left - 8) << "\" y=\""
       << fmt(y + lane_h * 0.7)
       << "\" font-size=\"11\" text-anchor=\"end\" fill=\"#333\">P" << proc
       << "</text>\n";
    os << "<rect x=\"" << fmt(left) << "\" y=\"" << fmt(y) << "\" width=\""
       << fmt(plot_w) << "\" height=\"" << fmt(lane_h)
       << "\" fill=\"#f4f4f4\"/>\n";
    for (const Rect& rc : lanes[static_cast<std::size_t>(proc)]) {
      const double w = std::max(rc.x1 - rc.x0, 0.75);
      os << "<rect x=\"" << fmt(rc.x0, 2) << "\" y=\"" << fmt(y + 1)
         << "\" width=\"" << fmt(w, 2) << "\" height=\"" << fmt(lane_h - 2)
         << "\" fill=\"" << rc.color << "\"/>\n";
    }
  }

  for (const Arrow& ar : arrows) {
    const double y0 = lane_y(ar.from_proc) + lane_h / 2;
    const double y1 = lane_y(ar.to_proc) + lane_h / 2;
    os << "<line class=\"" << (ar.fault ? "fault-arrow" : "steal-arrow")
       << "\" x1=\"" << fmt(ar.x, 2) << "\" y1=\"" << fmt(y0) << "\" x2=\""
       << fmt(ar.x, 2) << "\" y2=\"" << fmt(y1)
       << "\" stroke=\"#333\" stroke-width=\"1\""
       << (ar.fault ? " stroke-dasharray=\"3,2\"" : "") << " marker-end=\"url(#arr"
       << run_index << ")\"/>\n";
  }
  for (const Marker& m : losses) {
    os << "<text class=\"lost-marker\" x=\"" << fmt(m.x, 2) << "\" y=\""
       << fmt(lane_y(m.proc) + lane_h * 0.75)
       << "\" font-size=\"13\" font-weight=\"bold\" text-anchor=\"middle\" "
          "fill=\"#b00020\">&#x2715;</text>\n";
  }
  os << "</svg>\n";
  if (elided_arrows > 0)
    os << "<p class=\"note\">" << elided_arrows
       << " steal arrows beyond the first " << opt.max_arrows
       << " elided for readability.</p>\n";

  os << "<table><tr><th>proc</th><th>busy</th><th>memory</th><th>sync</th>"
        "<th>stall</th><th>idle</th><th>util%</th><th>iters</th>"
        "<th>chunks</th></tr>\n";
  for (int proc = 0; proc < static_cast<int>(a.procs.size()); ++proc) {
    const ProcBreakdown& pb = a.procs[static_cast<std::size_t>(proc)];
    const double util =
        a.makespan > 0 ? 100.0 * pb.exec / a.makespan : 0.0;
    os << "<tr><td>P" << proc << "</td><td>" << fmt(pb.busy()) << "</td><td>"
       << fmt(pb.memory) << "</td><td>" << fmt(pb.sync) << "</td><td>"
       << fmt(pb.stall) << "</td><td>" << fmt(pb.idle) << "</td><td>"
       << fmt(util) << "</td><td>" << pb.iterations << "</td><td>"
       << pb.chunks << "</td></tr>\n";
  }
  os << "</table>\n";
}

}  // namespace

std::string render_gantt_html(const std::vector<TraceRecord>& records,
                              const std::string& title,
                              const GanttOptions& options) {
  const std::vector<TraceAnalysis> runs = analyze_trace(records);

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n<title>"
     << html_escape(title)
     << "</title>\n<style>\n"
        "body{font-family:system-ui,sans-serif;margin:24px;color:#222}\n"
        "h1{font-size:20px}h2{font-size:15px;margin-bottom:4px}\n"
        "p{font-size:13px;color:#444;margin-top:2px}\n"
        ".note{color:#888;font-style:italic}\n"
        "table{border-collapse:collapse;font-size:12px;margin:8px 0 24px}\n"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:right}\n"
        "th{background:#f0f0f0}\n"
        ".legend span{display:inline-block;margin-right:14px;font-size:12px}\n"
        ".legend i{display:inline-block;width:12px;height:12px;"
        "margin-right:4px;vertical-align:-2px}\n"
        "</style>\n</head>\n<body>\n<h1>"
     << html_escape(title) << "</h1>\n";

  os << "<div class=\"legend\">"
     << "<span><i style=\"background:" << kind_color(GrabKind::kLocal)
     << "\"></i>local grab</span>"
     << "<span><i style=\"background:" << kind_color(GrabKind::kCentral)
     << "\"></i>central grab</span>"
     << "<span><i style=\"background:" << kind_color(GrabKind::kRemote)
     << "\"></i>remote steal</span>"
     << "<span><i style=\"background:" << kind_color(GrabKind::kStatic)
     << "\"></i>static</span>"
     << "<span><i style=\"background:" << kStallColor
     << "\"></i>stall</span>"
     << "<span>&#x2715; processor lost</span>"
     << "<span>&darr; solid arrow: steal &middot; dashed: fault "
        "reassignment</span></div>\n";

  // Map each analysis back to its record span: runs are delimited by
  // run_begin records in order.
  std::size_t run_index = 0;
  std::size_t span_begin = 0;
  for (std::size_t i = 0; i <= records.size(); ++i) {
    const bool boundary =
        i == records.size() || records[i].ev == TraceEv::kRunBegin;
    if (!boundary) continue;
    if (i > span_begin && run_index < runs.size()) {
      render_run(os, records, span_begin, i, runs[run_index],
                 static_cast<int>(run_index), options);
      ++run_index;
    }
    span_begin = i;
  }
  if (runs.empty()) os << "<p class=\"note\">Trace contains no runs.</p>\n";

  os << "</body>\n</html>\n";
  return os.str();
}

}  // namespace afs
