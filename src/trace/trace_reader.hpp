// TraceReader: one decoding API over both trace encodings.
//
// Opens a trace file (or istream), sniffs the format from the first
// bytes — the .cctrace magic "CCTR" versus a JSONL '{' — and iterates
// TraceRecords until end of stream. Both sinks serialize the exact same
// event sequence, and both decoders here reconstruct every double
// losslessly (JSONL prints precision-17 decimals, the binary format
// stores bit patterns), so the two decodings of one run compare equal
// record-for-record — the property tests/trace/trace_equivalence_test.cpp
// enforces.
//
// Malformed input (bad magic, unknown opcode/ev, truncated record,
// dangling string reference, unparsable JSON field) throws
// std::runtime_error with the offending record index; a clean EOF at a
// record boundary ends iteration normally.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <string>
#include <vector>

#include "trace/trace_record.hpp"

namespace afs {

class TraceReader {
 public:
  /// Opens `path` and sniffs the format. Throws std::runtime_error when
  /// the file cannot be opened or starts with neither format's prefix.
  explicit TraceReader(const std::string& path);

  /// Reads from `in` (not owned; must outlive the reader). Sniffs the
  /// format from the stream's first bytes.
  explicit TraceReader(std::istream& in);

  /// Decodes the next record into `rec`. Returns false at a clean end of
  /// stream; throws on malformed input.
  bool next(TraceRecord& rec);

  TraceFormat format() const { return format_; }
  std::int64_t records_read() const { return records_; }

 private:
  void sniff();
  bool next_binary(TraceRecord& rec);
  bool next_jsonl(TraceRecord& rec);
  [[noreturn]] void fail(const std::string& what) const;

  std::uint8_t read_u8();
  std::uint64_t read_varint();
  std::int64_t read_svarint();
  double read_time();
  double read_value();

  std::ifstream file_;  // used by the path constructor
  std::istream* in_;    // always valid
  TraceFormat format_ = TraceFormat::kNone;
  std::vector<std::string> strings_;  // binary intern table
  std::uint64_t prev_time_bits_ = 0;
  std::uint64_t prev_value_bits_ = 0;
  std::int64_t records_ = 0;
  std::string context_;  // path or "<stream>", for error messages
};

/// Convenience: decodes the whole file into a vector.
std::vector<TraceRecord> read_trace(const std::string& path);

}  // namespace afs
