// Self-contained HTML/SVG Gantt rendering of a decoded trace: one
// horizontal lane per processor, chunk rectangles colored by how the
// work was grabbed (local queue, central queue, remote steal, static),
// stall overlays, steal arrows from victim lane to thief lane, and
// fault markers for processor losses and fault-recovery reassignments.
//
// The output is a single standalone HTML document (inline CSS + SVG, no
// external assets or scripts) so it can be opened from a CI artifact or
// attached to a bug report as-is. Adjacent same-colored rectangles that
// would land within half a pixel of each other are merged, bounding the
// element count by the plot width rather than the chunk count.
#pragma once

#include <string>
#include <vector>

#include "trace/trace_record.hpp"

namespace afs {

struct GanttOptions {
  int width = 1280;        ///< total document width in px
  int lane_height = 26;    ///< per-processor lane height in px
  int max_arrows = 400;    ///< steal arrows drawn per run before eliding
};

/// Renders every run in `records` as a timeline section plus a summary
/// table (utilization breakdown, steal totals, affinity score). `title`
/// is shown as the document heading. Throws std::runtime_error on
/// sequences analyze_trace() rejects.
std::string render_gantt_html(const std::vector<TraceRecord>& records,
                              const std::string& title,
                              const GanttOptions& options = {});

}  // namespace afs
