#include "trace/binary_sink.hpp"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "util/atomic_file.hpp"

namespace afs {
namespace {

constexpr std::size_t kFlushThreshold = 1 << 16;

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

}  // namespace

BinaryTraceSink::BinaryTraceSink(std::ostream& out) : out_(&out) {
  buf_.append(reinterpret_cast<const char*>(kMagic), sizeof kMagic);
  bytes_ += static_cast<std::int64_t>(sizeof kMagic);
}

BinaryTraceSink::BinaryTraceSink(const std::string& path)
    : file_(path + ".tmp", std::ios::binary | std::ios::trunc),
      out_(&file_),
      final_path_(path) {
  if (!file_) throw std::runtime_error("cannot open trace file: " + path);
  buf_.append(reinterpret_cast<const char*>(kMagic), sizeof kMagic);
  bytes_ += static_cast<std::int64_t>(sizeof kMagic);
}

void BinaryTraceSink::finalize() {
  flush_buffer();
  if (final_path_.empty()) return;
  const std::string path = std::exchange(final_path_, std::string());
  file_.flush();
  if (!file_) throw std::runtime_error("trace write failed: " + path);
  file_.close();
  commit_file_atomic(path + ".tmp", path);
}

void BinaryTraceSink::abandon() {
  if (final_path_.empty()) return;
  const std::string path = std::exchange(final_path_, std::string());
  file_.close();
  std::remove((path + ".tmp").c_str());
}

BinaryTraceSink::~BinaryTraceSink() {
  try {
    finalize();
  } catch (const std::exception& e) {
    std::cerr << "trace finalize failed: " << e.what() << "\n";
  }
}

void BinaryTraceSink::flush_buffer() {
  if (buf_.empty()) return;
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

void BinaryTraceSink::op(TraceEv ev) {
  put_u8(static_cast<std::uint8_t>(ev));
  ++records_;
  if (buf_.size() >= kFlushThreshold) flush_buffer();
}

void BinaryTraceSink::put_u8(std::uint8_t b) {
  buf_.push_back(static_cast<char>(b));
  ++bytes_;
}

void BinaryTraceSink::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void BinaryTraceSink::put_svarint(std::int64_t v) {
  // Zigzag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
  put_varint((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
}

void BinaryTraceSink::put_time(double t) {
  const std::uint64_t b = bits_of(t);
  put_varint(b ^ prev_time_bits_);
  prev_time_bits_ = b;
}

void BinaryTraceSink::put_value(double v) {
  const std::uint64_t b = bits_of(v);
  put_varint(b ^ prev_value_bits_);
  prev_value_bits_ = b;
}

std::uint64_t BinaryTraceSink::intern(const std::string& s) {
  const auto it = interned_.find(s);
  if (it != interned_.end()) return it->second;
  const std::uint64_t id = interned_.size();
  interned_.emplace(s, id);
  put_u8(0);  // string-definition opcode (not counted as a record)
  put_varint(id);
  put_varint(s.size());
  buf_.append(s);
  bytes_ += static_cast<std::int64_t>(s.size());
  return id;
}

void BinaryTraceSink::on_run_begin(const MachineConfig& m,
                                   const std::string& program,
                                   const std::string& scheduler, int p) {
  // Definitions for any new strings go out before the record's opcode,
  // so the reader has resolved every id by the time it decodes the body.
  const std::uint64_t machine_id = intern(m.name);
  const std::uint64_t program_id = intern(program);
  const std::uint64_t scheduler_id = intern(scheduler);
  op(TraceEv::kRunBegin);
  put_varint(machine_id);
  put_varint(program_id);
  put_varint(scheduler_id);
  put_varint(static_cast<std::uint64_t>(p));
}

void BinaryTraceSink::on_loop_begin(int epoch, std::int64_t n, int p) {
  op(TraceEv::kLoopBegin);
  put_varint(static_cast<std::uint64_t>(epoch));
  put_varint(static_cast<std::uint64_t>(n));
  put_varint(static_cast<std::uint64_t>(p));
}

void BinaryTraceSink::on_grab(int proc, const Grab& g, double t0, double t1) {
  op(TraceEv::kGrab);
  put_varint(static_cast<std::uint64_t>(proc));
  put_u8(static_cast<std::uint8_t>(g.kind));
  put_svarint(g.queue);
  put_svarint(g.range.begin);
  put_svarint(g.range.end);
  put_time(t0);
  put_time(t1);
}

void BinaryTraceSink::on_chunk(int proc, std::int64_t begin, std::int64_t end,
                               double t0, double t1) {
  op(TraceEv::kChunk);
  put_varint(static_cast<std::uint64_t>(proc));
  put_svarint(begin);
  put_svarint(end);
  put_time(t0);
  put_time(t1);
}

void BinaryTraceSink::on_miss(int proc, const BlockAccess& a, double t0,
                              double t1) {
  op(TraceEv::kMiss);
  put_varint(static_cast<std::uint64_t>(proc));
  put_svarint(a.block);
  put_value(a.size);
  put_time(t0);
  put_time(t1);
}

void BinaryTraceSink::on_invalidate(int proc, std::int64_t block, int copies,
                                    double t0, double t1) {
  op(TraceEv::kInval);
  put_varint(static_cast<std::uint64_t>(proc));
  put_svarint(block);
  put_varint(static_cast<std::uint64_t>(copies));
  put_time(t0);
  put_time(t1);
}

void BinaryTraceSink::on_proc_done(int proc, double t) {
  op(TraceEv::kDone);
  put_varint(static_cast<std::uint64_t>(proc));
  put_time(t);
}

void BinaryTraceSink::on_stall(int proc, double t0, double t1) {
  op(TraceEv::kStall);
  put_varint(static_cast<std::uint64_t>(proc));
  put_time(t0);
  put_time(t1);
}

void BinaryTraceSink::on_proc_lost(int proc, double t) {
  op(TraceEv::kLost);
  put_varint(static_cast<std::uint64_t>(proc));
  put_time(t);
}

void BinaryTraceSink::on_fault_steal(int thief, int victim_queue,
                                     std::int64_t iters) {
  op(TraceEv::kFaultSteal);
  put_varint(static_cast<std::uint64_t>(thief));
  put_svarint(victim_queue);
  put_varint(static_cast<std::uint64_t>(iters));
}

void BinaryTraceSink::on_abandoned(std::int64_t iters) {
  op(TraceEv::kAbandoned);
  put_varint(static_cast<std::uint64_t>(iters));
}

void BinaryTraceSink::on_loop_end(int epoch, double end) {
  op(TraceEv::kLoopEnd);
  put_varint(static_cast<std::uint64_t>(epoch));
  put_time(end);
}

void BinaryTraceSink::on_barrier(int epoch, double cost, double total) {
  op(TraceEv::kBarrier);
  put_varint(static_cast<std::uint64_t>(epoch));
  put_value(cost);
  put_time(total);
}

void BinaryTraceSink::on_run_end(double makespan) {
  op(TraceEv::kRunEnd);
  put_time(makespan);
  flush_buffer();
  out_->flush();
}

}  // namespace afs
