#include "experiments/figure.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "experiments/expectations.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"

namespace afs {
namespace {

FigureSpec tiny_spec() {
  FigureSpec spec;
  spec.id = "figtest";
  spec.title = "tiny sweep";
  spec.machine = iris();
  spec.program = balanced_program(256, 100.0);  // heavy enough to scale
  spec.procs = {1, 2, 4};
  spec.schedulers = {entry("GSS"), entry("STATIC")};
  return spec;
}

TEST(Figure, RunsSweepAndRecordsAllCells) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  EXPECT_EQ(r.results.size(), 2u);
  for (const auto& label : {"GSS", "STATIC"})
    for (int p : {1, 2, 4}) EXPECT_GT(r.time(label, p), 0.0) << label << p;
}

TEST(Figure, TimesDecreaseWithProcessors) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  EXPECT_LT(r.time("STATIC", 4), r.time("STATIC", 1));
}

TEST(Figure, WritesCsv) {
  std::ostringstream out;
  (void)run_figure(tiny_spec(), out);
  EXPECT_TRUE(std::filesystem::exists("bench_results/figtest.csv"));
}

TEST(Figure, CompletionTableHasRowPerP) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  EXPECT_EQ(r.completion_table().row_count(), 3u);
}

TEST(Figure, AdvantageRatio) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  const double adv = r.advantage("STATIC", "GSS", 4);
  EXPECT_GT(adv, 0.0);
  EXPECT_DOUBLE_EQ(adv, r.time("GSS", 4) / r.time("STATIC", 4));
}

TEST(Figure, UnknownLabelThrows) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  EXPECT_THROW(r.time("NOPE", 1), CheckFailure);
  EXPECT_THROW(r.time("GSS", 3), CheckFailure);
}

TEST(Expectations, BeatsAndComparable) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  EXPECT_TRUE(beats(r, "STATIC", "GSS", 4, 1.0));
  EXPECT_TRUE(comparable(r, "STATIC", "STATIC", 2));
}

TEST(Expectations, EffectiveProcessors) {
  std::ostringstream out;
  const FigureResult r = run_figure(tiny_spec(), out);
  // A balanced loop on few processors scales: best P should be the max.
  EXPECT_EQ(effective_processors(r, "STATIC"), 4);
}

TEST(Expectations, ReportShapeFormats) {
  std::ostringstream out;
  EXPECT_TRUE(report_shape(out, true, "works"));
  EXPECT_FALSE(report_shape(out, false, "broken"));
  EXPECT_NE(out.str().find("shape OK"), std::string::npos);
  EXPECT_NE(out.str().find("shape MISMATCH"), std::string::npos);
}

}  // namespace
}  // namespace afs
