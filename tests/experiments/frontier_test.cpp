// The frontier_tradeoff experiment and its supporting plumbing: registry
// wiring, the hard affinity pins the experiment's soft shapes point at,
// the SimResult serializer's trace-metric extension, and bit-identity of
// feedback-driven cells across sweep parallelism.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/figure.hpp"
#include "experiments/registry.hpp"
#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "machines/machines.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "trace/analysis.hpp"
#include "trace/binary_sink.hpp"

namespace afs {
namespace {

TEST(FrontierRegistry, ExperimentIsRegistered) {
  const Experiment* e = find_experiment("frontier_tradeoff");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, ExperimentKind::kTable);
  ASSERT_EQ(e->csv_ids.size(), 1u);
  EXPECT_EQ(e->csv_ids[0], "frontier_tradeoff");
}

TEST(FrontierRegistry, Tab7CarriesTheAdaptiveCsv) {
  const Experiment* e = find_experiment("tab7");
  ASSERT_NE(e, nullptr);
  const std::vector<std::string> want = {"tab7", "tab7_adaptive"};
  EXPECT_EQ(e->csv_ids, want);
}

/// Simulates one traced cell and returns its trace analysis — the same
/// evidence chain frontier_tradeoff scores cells with.
TraceAnalysis traced_run(const std::string& spec, int p) {
  // Default iris, jitter included (deterministically seeded): with a
  // zero-jitter machine SS's grab pattern repeats exactly each epoch and
  // every central-queue scheduler scores a vacuous 1.0.
  const MachineConfig m = iris();
  const LoopProgram prog = SorKernel::program(256, 8);
  const std::filesystem::path dir =
      std::filesystem::path("frontier_test_traces");
  std::filesystem::create_directories(dir);
  const std::string path =
      (dir / (spec + ".p" + std::to_string(p) + ".cctrace")).string();
  SimOptions opts;
  BinaryTraceSink sink(path);
  opts.trace = &sink;
  MachineSim sim(m, opts);
  auto sched = make_scheduler(spec);
  (void)sim.run(prog, *sched, p);
  sink.finalize();
  const std::vector<TraceAnalysis> runs = analyze_trace_file(path);
  EXPECT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs.front().conserved()) << spec;
  return runs.front();
}

TEST(FrontierPins, TailorAffinityAtLeastAfsOnSorAtP8) {
  // TAILOR is operationally AFS while its affinity estimate holds above
  // threshold, and re-homes toward the observed placement when it does
  // not — so on SOR at P=8 its affinity score must never fall below
  // AFS's. This is the hard version of frontier_tradeoff's soft shape.
  const TraceAnalysis afs = traced_run("AFS", 8);
  const TraceAnalysis tailor = traced_run("TAILOR(0.5)", 8);
  EXPECT_GE(tailor.affinity_score(), afs.affinity_score() - 1e-12);
}

TEST(FrontierPins, AfsAffinityBeatsSelfSchedulingOnSorAtP8) {
  const TraceAnalysis afs = traced_run("AFS", 8);
  const TraceAnalysis ss = traced_run("SS", 8);
  EXPECT_GT(afs.affinity_score(), ss.affinity_score());
}

TEST(SimResultSerializer, RoundTripsTraceMetrics) {
  SimResult r;
  r.makespan = 123.0;
  r.iterations = 42;
  r.trace_affinity_score = 0.875;
  r.trace_imbalance = 0.03125;
  const std::string text = serialize_sim_result(r);
  EXPECT_NE(text.find("xaff"), std::string::npos);
  EXPECT_NE(text.find("ximb"), std::string::npos);
  SimResult out;
  ASSERT_TRUE(parse_sim_result(text, out));
  EXPECT_EQ(out.makespan, r.makespan);
  EXPECT_EQ(out.iterations, r.iterations);
  EXPECT_EQ(out.trace_affinity_score, r.trace_affinity_score);
  EXPECT_EQ(out.trace_imbalance, r.trace_imbalance);
}

TEST(SimResultSerializer, PlainResultsOmitTraceMetrics) {
  // Unset metrics are not serialized, so plain cells' store entries are
  // byte-identical to what every earlier version of the schema wrote.
  SimResult r;
  r.makespan = 9.0;
  const std::string text = serialize_sim_result(r);
  EXPECT_EQ(text.find("xaff"), std::string::npos);
  EXPECT_EQ(text.find("ximb"), std::string::npos);
  SimResult out;
  out.trace_affinity_score = 0.5;  // must be reset by parsing
  out.trace_imbalance = 0.5;
  ASSERT_TRUE(parse_sim_result(text, out));
  EXPECT_EQ(out.trace_affinity_score, -1.0);
  EXPECT_EQ(out.trace_imbalance, -1.0);
}

TEST(FrontierSweep, AdaptiveCellsBitIdenticalAcrossJobs) {
  // The feedback channel must not make sweep results depend on worker
  // interleaving: each cell owns a private scheduler and a deterministic
  // simulated clock, so --jobs=1 and --jobs=4 serialize identically.
  const auto sweep = [](int jobs) {
    FigureSpec spec;
    spec.id = "frontiertest";
    spec.title = "adaptive jobs determinism";
    spec.machine = iris();
    spec.machine.epoch_jitter = 0.0;
    spec.program = GaussKernel::program(64);
    spec.procs = {2, 4};
    for (const std::string& s : adaptive_scheduler_specs())
      spec.schedulers.push_back(entry(s));
    SweepOptions sw;
    sw.jobs = jobs;
    std::ostringstream out;
    return run_figure(spec, out, sw);
  };
  const FigureResult serial = sweep(1);
  const FigureResult parallel = sweep(4);
  ASSERT_TRUE(serial.failures.empty());
  ASSERT_TRUE(parallel.failures.empty());
  for (const auto& [label, by_p] : serial.results) {
    for (const auto& [p, r] : by_p) {
      const auto it = parallel.results.find(label);
      ASSERT_NE(it, parallel.results.end()) << label;
      const auto pit = it->second.find(p);
      ASSERT_NE(pit, it->second.end()) << label << " P=" << p;
      EXPECT_EQ(serialize_sim_result(r), serialize_sim_result(pit->second))
          << label << " P=" << p;
    }
  }
}

}  // namespace
}  // namespace afs
