// The experiment registry: every paper reproduction keyed by id, plus the
// cached-cell helper the bespoke tables run through. End-to-end coverage
// (an experiment run under a store serving >= 95% of cells on the warm
// pass) lives in CI's sweep-service job; these tests pin the registry
// contract itself.
#include "experiments/registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>

#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "store/result_store.hpp"

namespace fs = std::filesystem;

namespace afs {
namespace {

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

TEST(Registry, AllHistoricalBinariesAreRegistered) {
  const std::set<std::string> expected{
      "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
      "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
      "fig17", "tab2",  "tab3",  "tab4",  "tab5",  "tab6",  "tab7",
      "ablation_afs", "trend_comm_ratio", "frontier_tradeoff",
      "micro_queues"};
  std::set<std::string> actual;
  for (const Experiment& e : all_experiments()) actual.insert(e.id);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(all_experiments().size(), expected.size());  // ids are unique
}

TEST(Registry, EntriesAreWellFormed) {
  for (const Experiment& e : all_experiments()) {
    EXPECT_FALSE(e.title.empty()) << e.id;
    EXPECT_TRUE(e.run != nullptr) << e.id;
    if (e.kind != ExperimentKind::kMicro) {
      EXPECT_FALSE(e.csv_ids.empty()) << e.id;
    }
  }
}

TEST(Registry, FindExperimentByIdAndUnknown) {
  const Experiment* fig04 = find_experiment("fig04");
  ASSERT_NE(fig04, nullptr);
  EXPECT_EQ(fig04->id, "fig04");
  EXPECT_EQ(fig04->kind, ExperimentKind::kFigure);
  EXPECT_EQ(find_experiment("fig99"), nullptr);
  EXPECT_EQ(find_experiment(""), nullptr);
}

TEST(Registry, MicroExperimentShortCircuits) {
  const Experiment* micro = find_experiment("micro_queues");
  ASSERT_NE(micro, nullptr);
  EXPECT_EQ(micro->kind, ExperimentKind::kMicro);
  ExperimentContext ctx;
  std::ostringstream out;
  EXPECT_EQ(run_experiment(*micro, ctx, out), 0);
  EXPECT_NE(out.str().find("google-benchmark"), std::string::npos);
}

TEST(Registry, RunCellCachedServesTheSecondLookup) {
  ResultStore store(fresh_dir("registry_cells"));
  ExperimentContext ctx;
  ctx.store = &store;

  const auto program = balanced_program(256);
  const SimResult cold =
      run_cell_cached(ctx, iris(), program, "AFS", 4);
  EXPECT_EQ(store.hits(), 0);
  EXPECT_EQ(store.writes(), 1);

  const SimResult warm =
      run_cell_cached(ctx, iris(), program, "AFS", 4);
  EXPECT_EQ(store.hits(), 1);
  EXPECT_EQ(warm.makespan, cold.makespan);
  EXPECT_EQ(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.remote_grabs, cold.remote_grabs);

  // No store in the context: same numbers, nothing served or written.
  ExperimentContext bare;
  const SimResult direct =
      run_cell_cached(bare, iris(), program, "AFS", 4);
  EXPECT_EQ(direct.makespan, cold.makespan);
  EXPECT_EQ(store.writes(), 1);
}

TEST(Registry, RunCellCachedKeysEngineToggles) {
  // tab7's batching A/B check must simulate both engines, not be served
  // the batched result twice.
  ResultStore store(fresh_dir("registry_toggles"));
  ExperimentContext ctx;
  ctx.store = &store;
  const auto program = balanced_program(128);
  run_cell_cached(ctx, iris(), program, "GSS", 2);
  SimOptions unbatched;
  unbatched.batch_iterations = false;
  run_cell_cached(ctx, iris(), program, "GSS", 2, unbatched);
  EXPECT_EQ(store.writes(), 2);
  EXPECT_EQ(store.hits(), 0);
}

TEST(Registry, SchedulerDisplayNameMatchesTheBuiltScheduler) {
  for (const char* spec : {"AFS", "GSS", "SS", "FACTORING", "TRAPEZOID"})
    EXPECT_EQ(scheduler_display_name(spec), make_scheduler(spec)->name())
        << spec;
}

}  // namespace
}  // namespace afs
