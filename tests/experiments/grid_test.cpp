// The afs_sweep grid parsers: --machine=, --kernel= and --perturb= spec
// strings must map onto exactly the factories the registered experiments
// use (same defaults, same program keys) and reject malformed input with
// a usage hint rather than guessing.
#include "experiments/grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"

namespace afs {
namespace {

TEST(GridMachine, NamesMapToConfigs) {
  EXPECT_EQ(parse_machine_spec("iris").name, iris().name);
  EXPECT_EQ(parse_machine_spec("butterfly1").name, butterfly1().name);
  EXPECT_EQ(parse_machine_spec("symmetry").name, symmetry().name);
  EXPECT_EQ(parse_machine_spec("ksr1").name, ksr1().name);
  EXPECT_EQ(parse_machine_spec("tc2000").name, tc2000().name);
}

TEST(GridMachine, RejectsUnknownName) {
  EXPECT_THROW(parse_machine_spec("cray"), std::runtime_error);
  EXPECT_THROW(parse_machine_spec(""), std::runtime_error);
  EXPECT_THROW(parse_machine_spec("IRIS"), std::runtime_error);  // case matters
}

TEST(GridKernel, SpecsHitTheSameFactoriesAsTheExperiments) {
  // Program keys are canonical identities, so key equality proves the
  // parser forwarded the right arguments and defaults.
  EXPECT_EQ(parse_kernel_spec("gauss:768").key, GaussKernel::program(768).key);
  EXPECT_EQ(parse_kernel_spec("gauss:256,3.5").key,
            GaussKernel::program(256, 3.5).key);
  EXPECT_EQ(parse_kernel_spec("sor:512,4").key,
            SorKernel::program(512, 4).key);
  EXPECT_EQ(parse_kernel_spec("balanced:1000").key,
            balanced_program(1000).key);
  EXPECT_EQ(parse_kernel_spec("head-heavy:50000").key,
            head_heavy_program(50000).key);
  EXPECT_EQ(parse_kernel_spec("triangular:5000").key,
            triangular_program(5000).key);
}

TEST(GridKernel, DataDependentProgramsEmbedContentIdentity) {
  const LoopProgram a = parse_kernel_spec("tc-random:128,0.08,1992");
  const LoopProgram b = parse_kernel_spec("tc-random:128,0.08,1993");
  EXPECT_FALSE(a.key.empty());
  EXPECT_NE(a.key, b.key);  // different seed, different graph, different cell
  EXPECT_FALSE(parse_kernel_spec("tc-clique:64,32").key.empty());
  EXPECT_FALSE(parse_kernel_spec("l4").key.empty());
  EXPECT_FALSE(parse_kernel_spec("l4:10").key.empty());
}

TEST(GridKernel, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "warp:8", "gauss", "gauss:", "gauss:abc", "gauss:64,1,9",
        "sor:512", "tc-random:128,0.08", "head-heavy:100,0.1",
        "drifting-hotspot:64,4,8", "balanced:10,1,2", "gauss:64,"}) {
    EXPECT_THROW(parse_kernel_spec(bad), std::runtime_error) << bad;
  }
}

TEST(GridPerturb, DirectivesFillTheConfig) {
  const PerturbationConfig pc = parse_perturb_spec(
      "seed=99,delay=0:8.5,delay=2:1.25,stall=100/5,loss=1@250,"
      "spike=0.01/40,burst=1000/50/3",
      4);
  EXPECT_EQ(pc.seed, 99u);
  ASSERT_EQ(pc.start_delays.size(), 4u);
  EXPECT_EQ(pc.start_delays[0], 8.5);
  EXPECT_EQ(pc.start_delays[1], 0.0);
  EXPECT_EQ(pc.start_delays[2], 1.25);
  EXPECT_EQ(pc.stall_mean_interval, 100.0);
  EXPECT_EQ(pc.stall_duration, 5.0);
  ASSERT_EQ(pc.losses.size(), 1u);
  EXPECT_EQ(pc.losses[0].proc, 1);
  EXPECT_EQ(pc.losses[0].time, 250.0);
  EXPECT_EQ(pc.mem_spike_prob, 0.01);
  EXPECT_EQ(pc.mem_spike_latency, 40.0);
  EXPECT_EQ(pc.burst_mean_interval, 1000.0);
  EXPECT_EQ(pc.burst_duration, 50.0);
  EXPECT_EQ(pc.burst_multiplier, 3.0);
  EXPECT_TRUE(pc.any());
}

TEST(GridPerturb, RejectsMalformedDirectives) {
  for (const char* bad :
       {"", "stall", "stall=100", "delay=0", "delay=9:1", "delay=-1:1",
        "loss=1", "loss=9@5", "spike=0.5", "burst=10/5", "seed=abc",
        "warp=1"}) {
    EXPECT_THROW(parse_perturb_spec(bad, 4), std::runtime_error) << bad;
  }
}

TEST(GridPerturb, ProcessorIdsAreBoundedByMaxProcs) {
  EXPECT_NO_THROW(parse_perturb_spec("delay=7:1", 8));
  EXPECT_THROW(parse_perturb_spec("delay=8:1", 8), std::runtime_error);
  EXPECT_NO_THROW(parse_perturb_spec("loss=7@10", 8));
  EXPECT_THROW(parse_perturb_spec("loss=8@10", 8), std::runtime_error);
}

}  // namespace
}  // namespace afs
