#include "kernels/gauss.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(Gauss, ParallelMatchesSerialBitExact) {
  GaussKernel serial(64), par(64);
  serial.init(11);
  par.init(11);
  serial.eliminate_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler("GSS");
  par.eliminate_parallel(pool, *sched);
  EXPECT_EQ(serial.matrix(), par.matrix());
}

TEST(Gauss, EliminationZeroesBelowDiagonal) {
  GaussKernel k(32);
  k.init(3);
  k.eliminate_serial();
  for (std::int64_t i = 1; i < 32; ++i)
    for (std::int64_t j = 0; j < i; ++j)
      EXPECT_NEAR(k.matrix()(i, j), 0.0, 1e-9) << i << "," << j;
}

TEST(Gauss, DiagonalStaysNonZero) {
  // Diagonal dominance guarantees pivots never vanish.
  GaussKernel k(48);
  k.init(21);
  k.eliminate_serial();
  for (std::int64_t i = 0; i < 48; ++i)
    EXPECT_GT(std::abs(k.matrix()(i, i)), 1e-6);
}

TEST(Gauss, ProgramEpochShapes) {
  const auto prog = GaussKernel::program(100);
  EXPECT_EQ(prog.epochs, 99);
  const auto first = prog.epoch_loops(0)[0];
  EXPECT_EQ(first.n, 99);
  EXPECT_DOUBLE_EQ(first.work(0), 100.0 * 2.0);
  const auto last = prog.epoch_loops(98)[0];
  EXPECT_EQ(last.n, 1);
  EXPECT_DOUBLE_EQ(last.work(0), 2.0 * 2.0);
}

TEST(Gauss, ProgramFootprintPivotAndOwnRow) {
  const auto prog = GaussKernel::program(100);
  const auto spec = prog.epoch_loops(10)[0];
  std::vector<BlockAccess> acc;
  spec.footprint(5, acc);  // epoch 10, iteration 5 -> row 16
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].block, 10);   // pivot row
  EXPECT_FALSE(acc[0].write);
  EXPECT_EQ(acc[1].block, 16);   // own row
  EXPECT_TRUE(acc[1].write);
  EXPECT_DOUBLE_EQ(acc[1].size, 90.0);  // active width n - e
}

TEST(Gauss, EpochCostUniformWithinEpoch) {
  const auto cost = GaussKernel::epoch_cost(100, 10);
  EXPECT_DOUBLE_EQ(cost(0), 90.0);
  EXPECT_DOUBLE_EQ(cost(50), 90.0);
}

TEST(Gauss, OneByOneMatrixIsTrivial) {
  GaussKernel k(1);
  k.init(1);
  k.eliminate_serial();
  SUCCEED();
}

}  // namespace
}  // namespace afs
