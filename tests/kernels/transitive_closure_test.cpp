#include "kernels/transitive_closure.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "workload/graphs.hpp"

namespace afs {
namespace {

// Simple O(n^3) reference: repeated boolean matrix "squaring" by k-loop is
// already Warshall; use an independent reachability BFS instead.
BoolMatrix bfs_closure(const BoolMatrix& g) {
  const std::int64_t n = g.rows();
  BoolMatrix out(n, n, 0);
  for (std::int64_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> stack{s};
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    while (!stack.empty()) {
      const std::int64_t u = stack.back();
      stack.pop_back();
      for (std::int64_t v = 0; v < n; ++v) {
        if (g(u, v) && !seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          out(s, v) = 1;
          stack.push_back(v);
        }
      }
    }
  }
  return out;
}

TEST(TransitiveClosure, SerialMatchesBfsOnRandomGraph) {
  const auto g = random_graph(48, 0.08, 5);
  TransitiveClosureKernel k(g);
  k.run_serial();
  const auto ref = bfs_closure(g);
  // Warshall keeps original edges plus discovered paths; BFS reachability
  // marks reachable-by-nonempty-path. Compare on that footing.
  for (std::int64_t i = 0; i < 48; ++i)
    for (std::int64_t j = 0; j < 48; ++j) {
      const bool warshall = k.matrix()(i, j) != 0;
      const bool reach = ref(i, j) != 0 || g(i, j) != 0;
      EXPECT_EQ(warshall, reach) << i << "->" << j;
    }
}

TEST(TransitiveClosure, ParallelMatchesSerial) {
  const auto g = random_graph(64, 0.06, 17);
  TransitiveClosureKernel serial(g), par(g);
  serial.run_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS");
  par.run_parallel(pool, *sched);
  EXPECT_EQ(serial.matrix(), par.matrix());
}

TEST(TransitiveClosure, CliqueClosesToItself) {
  TransitiveClosureKernel k(clique_graph(20, 8));
  k.run_serial();
  EXPECT_EQ(k.reachable_pairs(), 8 * 8);  // clique closure incl. self-loops
}

TEST(TransitiveClosure, ChainBecomesFullOrder) {
  BoolMatrix g(10, 10, 0);
  for (std::int64_t i = 0; i + 1 < 10; ++i) g(i, i + 1) = 1;
  TransitiveClosureKernel k(g);
  k.run_serial();
  for (std::int64_t i = 0; i < 10; ++i)
    for (std::int64_t j = 0; j < 10; ++j)
      EXPECT_EQ(k.matrix()(i, j) != 0, j > i) << i << "," << j;
}

TEST(TransitiveClosure, TraceMarksActiveIterations) {
  const auto g = clique_graph(10, 4);
  const auto trace = TransitiveClosureKernel::active_trace(g);
  ASSERT_EQ(trace.size(), 10u);
  // Epoch 0: iterations 1..3 have edge (j,0) (clique rows), others not.
  EXPECT_EQ(trace[0][1], 1);
  EXPECT_EQ(trace[0][5], 0);
}

TEST(TransitiveClosure, ProgramCostsFollowTrace) {
  const auto g = clique_graph(16, 8);
  const auto prog = TransitiveClosureKernel::program(g, 1.0);
  EXPECT_EQ(prog.epochs, 16);
  const auto spec = prog.epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work(1), 16.0);  // clique row: O(n)
  EXPECT_DOUBLE_EQ(spec.work(12), 1.0);  // outside clique: O(1)
}

TEST(TransitiveClosure, ProgramFootprintOnlyForActive) {
  const auto g = clique_graph(16, 8);
  const auto prog = TransitiveClosureKernel::program(g);
  const auto spec = prog.epoch_loops(0)[0];
  std::vector<BlockAccess> acc;
  spec.footprint(12, acc);
  EXPECT_TRUE(acc.empty());
  spec.footprint(1, acc);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].block, 0);  // shared row k
  EXPECT_EQ(acc[1].block, 1);  // own row
  EXPECT_TRUE(acc[1].write);
}

TEST(TransitiveClosure, EmptyGraphIsFixedPoint) {
  TransitiveClosureKernel k(BoolMatrix(12, 12, 0));
  k.run_serial();
  EXPECT_EQ(k.reachable_pairs(), 0);
}

}  // namespace
}  // namespace afs
