#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

TEST(DriftingHotspot, BandCostsAndDrift) {
  const auto prog = drifting_hotspot_program(100, 10, 10, 3.0, 50.0, 1.0);
  const auto e0 = prog.epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(e0.work(0), 50.0);
  EXPECT_DOUBLE_EQ(e0.work(9), 50.0);
  EXPECT_DOUBLE_EQ(e0.work(10), 1.0);
  const auto e2 = prog.epoch_loops(2)[0];  // band starts at 6
  EXPECT_DOUBLE_EQ(e2.work(5), 1.0);
  EXPECT_DOUBLE_EQ(e2.work(6), 50.0);
  EXPECT_DOUBLE_EQ(e2.work(15), 50.0);
  EXPECT_DOUBLE_EQ(e2.work(16), 1.0);
}

TEST(DriftingHotspot, BandWrapsAround) {
  // Epoch where the band crosses the end of the index space.
  const auto prog = drifting_hotspot_program(100, 40, 10, 2.5, 50.0, 1.0);
  const auto e38 = prog.epoch_loops(38)[0];  // start = 95
  EXPECT_DOUBLE_EQ(e38.work(95), 50.0);
  EXPECT_DOUBLE_EQ(e38.work(99), 50.0);
  EXPECT_DOUBLE_EQ(e38.work(0), 50.0);  // wrapped
  EXPECT_DOUBLE_EQ(e38.work(4), 50.0);
  EXPECT_DOUBLE_EQ(e38.work(5), 1.0);
}

TEST(DriftingHotspot, TotalWorkConstantPerEpoch) {
  const auto prog = drifting_hotspot_program(200, 8, 20, 7.0, 10.0, 1.0);
  double first = 0.0;
  for (int e = 0; e < 8; ++e) {
    const auto spec = prog.epoch_loops(e)[0];
    double total = 0.0;
    for (std::int64_t i = 0; i < spec.n; ++i) total += spec.work(i);
    if (e == 0)
      first = total;
    else
      EXPECT_DOUBLE_EQ(total, first);
  }
}

TEST(DriftingHotspot, FootprintOnlyWhenRequested) {
  const auto no_rows = drifting_hotspot_program(50, 2, 5, 1.0);
  EXPECT_EQ(no_rows.epoch_loops(0)[0].footprint, nullptr);
  const auto rows = drifting_hotspot_program(50, 2, 5, 1.0, 50.0, 1.0, 8.0);
  const auto spec = rows.epoch_loops(0)[0];
  ASSERT_NE(spec.footprint, nullptr);
  std::vector<BlockAccess> acc;
  spec.footprint(7, acc);
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].block, 7);
  EXPECT_TRUE(acc[0].write);
  EXPECT_DOUBLE_EQ(acc[0].size, 8.0);
}

TEST(DriftingHotspot, LastExecutedSeedingStealsLessThanDeterministic) {
  // §4.3's prediction: when imbalance drifts slowly, seeding each epoch
  // with last epoch's execution avoids re-stealing the same iterations.
  const auto prog =
      drifting_hotspot_program(1024, 32, 128, 4.0, 50.0, 1.0, 32.0);
  MachineSim sim(iris());
  auto afs = make_scheduler("AFS");
  auto le = make_scheduler("AFS-LE");
  const SimResult r_afs = sim.run(prog, *afs, 8);
  const SimResult r_le = sim.run(prog, *le, 8);
  EXPECT_LT(r_le.remote_grabs, r_afs.remote_grabs);
  EXPECT_LT(r_le.makespan, r_afs.makespan);
}

TEST(DriftingHotspot, RejectsBadParameters) {
  EXPECT_THROW(drifting_hotspot_program(10, 0, 5, 1.0), CheckFailure);
  EXPECT_THROW(drifting_hotspot_program(10, 1, 11, 1.0), CheckFailure);
}

}  // namespace
}  // namespace afs
