#include "kernels/sor.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(Sor, SerialSweepIsDeterministic) {
  SorKernel a(32), b(32);
  a.init(1);
  b.init(1);
  for (int e = 0; e < 4; ++e) {
    a.epoch_serial();
    b.epoch_serial();
  }
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(Sor, ParallelMatchesSerialBitExact) {
  SorKernel serial(48), par(48);
  serial.init(9);
  par.init(9);
  ThreadPool pool(4);
  auto sched = make_scheduler("AFS");
  for (int e = 0; e < 5; ++e) {
    serial.epoch_serial();
    par.epoch_parallel(pool, *sched);
  }
  EXPECT_EQ(serial.grid(), par.grid());
}

TEST(Sor, BoundaryRowsFixed) {
  SorKernel k(16);
  k.init(3);
  const auto before_top = std::vector<double>(k.grid().row(0).begin(),
                                              k.grid().row(0).end());
  k.epoch_serial();
  k.epoch_serial();
  for (std::int64_t c = 0; c < 16; ++c)
    EXPECT_EQ(k.grid()(0, c), before_top[static_cast<std::size_t>(c)]);
}

TEST(Sor, SweepSmoothsTheGrid) {
  // Relaxation reduces the interior's deviation from the local mean;
  // check total variation decreases over sweeps.
  SorKernel k(32);
  k.init(5);
  auto variation = [&] {
    double v = 0.0;
    for (std::int64_t j = 1; j < 31; ++j)
      for (std::int64_t c = 1; c < 31; ++c)
        v += std::abs(k.grid()(j, c) - k.grid()(j, c - 1));
    return v;
  };
  const double before = variation();
  for (int e = 0; e < 10; ++e) k.epoch_serial();
  EXPECT_LT(variation(), before);
}

TEST(Sor, ProgramShape) {
  const auto prog = SorKernel::program(512, 16);
  EXPECT_EQ(prog.epochs, 16);
  const auto loops = prog.epoch_loops(0);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].n, 512);
  EXPECT_DOUBLE_EQ(loops[0].work(7), 512.0 * 5.0);
}

TEST(Sor, ProgramFootprintIsRowNeighborhood) {
  const auto prog = SorKernel::program(100, 1);
  const auto spec = prog.epoch_loops(0)[0];
  std::vector<BlockAccess> acc;
  spec.footprint(50, acc);
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_EQ(acc[0].block, 49);
  EXPECT_FALSE(acc[0].write);
  EXPECT_EQ(acc[1].block, 51);
  EXPECT_EQ(acc[2].block, 50);
  EXPECT_TRUE(acc[2].write);

  acc.clear();
  spec.footprint(0, acc);  // edge row: no row -1
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].block, 1);
  EXPECT_EQ(acc[1].block, 0);
}

TEST(Sor, RejectsBadParameters) {
  EXPECT_THROW(SorKernel(0), CheckFailure);
  EXPECT_THROW(SorKernel(8, 2.5), CheckFailure);
}

}  // namespace
}  // namespace afs
