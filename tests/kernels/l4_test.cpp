#include "kernels/l4.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"

namespace afs {
namespace {

L4Config small_config() {
  L4Config c;
  c.outer = 3;  // keep real-thread tests quick
  return c;
}

TEST(L4, CostTablesMatchFigure2Structure) {
  L4Kernel k(small_config());
  EXPECT_EQ(k.costs(0, 0).size(), 1000u);  // 10*10*10
  EXPECT_EQ(k.costs(0, 1).size(), 100u);
  EXPECT_EQ(k.costs(0, 2).size(), 80u);  // 20*4
  for (double c : k.costs(0, 0)) EXPECT_TRUE(c == 10.0 || c == 60.0);
  for (double c : k.costs(0, 1)) {
    EXPECT_GE(c, 550.0);   // 50 + 5*100
    EXPECT_LE(c, 700.0);   // + 5*30
  }
  for (double c : k.costs(0, 2)) EXPECT_EQ(c, 30.0);
}

TEST(L4, DeterministicInSeed) {
  L4Kernel a(small_config()), b(small_config());
  EXPECT_EQ(a.total_units(), b.total_units());
  EXPECT_EQ(a.costs(1, 0), b.costs(1, 0));
}

TEST(L4, CoinFlipFrequencyNearHalf) {
  L4Config c;
  c.outer = 20;
  L4Kernel k(c);
  int heavy = 0, total = 0;
  for (int e = 0; e < 20; ++e)
    for (double cost : k.costs(e, 0)) {
      if (cost == 60.0) ++heavy;
      ++total;
    }
  EXPECT_NEAR(static_cast<double>(heavy) / total, 0.5, 0.03);
}

TEST(L4, SerialExecutesExactlyTotalUnits) {
  L4Kernel k(small_config());
  EXPECT_EQ(k.run_serial(), k.total_units());
}

TEST(L4, ParallelExecutesExactlyTotalUnits) {
  L4Kernel k(small_config());
  ThreadPool pool(4);
  for (const char* spec : {"AFS", "GSS", "TRAPEZOID", "STATIC"}) {
    auto sched = make_scheduler(spec);
    EXPECT_EQ(k.run_parallel(pool, *sched), k.total_units()) << spec;
  }
}

TEST(L4, ProgramHasThreeLoopsPerEpoch) {
  L4Kernel k(small_config());
  const auto prog = k.program();
  EXPECT_EQ(prog.epochs, 3);
  const auto loops = prog.epoch_loops(1);
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0].n, 1000);
  EXPECT_EQ(loops[1].n, 100);
  EXPECT_EQ(loops[2].n, 80);
  EXPECT_EQ(loops[0].footprint, nullptr);  // no memory accesses in L4
}

TEST(L4, ProgramCostsMatchTables) {
  L4Kernel k(small_config());
  const auto prog = k.program();
  const auto loops = prog.epoch_loops(2);
  for (std::int64_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(loops[0].work(i), k.costs(2, 0)[static_cast<std::size_t>(i)]);
}

TEST(L4, ZeroIfProbRemovesConditionals) {
  L4Config c;
  c.outer = 1;
  c.if_prob = 0.0;
  L4Kernel k(c);
  for (double cost : k.costs(0, 0)) EXPECT_EQ(cost, 10.0);
  for (double cost : k.costs(0, 1)) EXPECT_EQ(cost, 550.0);
}

}  // namespace
}  // namespace afs
