#include "kernels/adjoint_convolution.hpp"

#include <gtest/gtest.h>

#include "sched/registry.hpp"

namespace afs {
namespace {

TEST(Adjoint, SerialDeterministic) {
  AdjointConvolutionKernel a(8, 3), b(8, 3);
  a.run_serial();
  b.run_serial();
  EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(Adjoint, ParallelMatchesSerialBitExact) {
  AdjointConvolutionKernel serial(10, 7), par(10, 7);
  serial.run_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler("FACTORING");
  par.run_parallel(pool, *sched);
  EXPECT_EQ(serial.checksum(), par.checksum());
}

TEST(Adjoint, ReverseSchedulingSameResult) {
  AdjointConvolutionKernel serial(10, 7), par(10, 7);
  serial.run_serial();
  ThreadPool pool(4);
  auto sched = make_scheduler("REV:GSS");
  par.run_parallel(pool, *sched);
  EXPECT_EQ(serial.checksum(), par.checksum());
}

TEST(Adjoint, SizeIsNSquared) {
  EXPECT_EQ(AdjointConvolutionKernel(75, 1).m(), 5625);
}

TEST(Adjoint, ProgramCostsDecreaseLinearly) {
  const auto prog = AdjointConvolutionKernel::program(75);
  EXPECT_EQ(prog.epochs, 1);
  const auto spec = prog.epoch_loops(0)[0];
  EXPECT_EQ(spec.n, 5625);
  EXPECT_DOUBLE_EQ(spec.work(0), 5625.0);
  EXPECT_DOUBLE_EQ(spec.work(5624), 1.0);
  EXPECT_EQ(spec.footprint, nullptr);  // affinity-free kernel
}

TEST(Adjoint, WorkSumMatchesPointwiseSum) {
  const auto prog = AdjointConvolutionKernel::program(12);
  const auto spec = prog.epoch_loops(0)[0];
  ASSERT_NE(spec.work_sum, nullptr);
  for (auto [b, e] : {std::pair<std::int64_t, std::int64_t>{0, 144},
                      {10, 20},
                      {143, 144},
                      {0, 1},
                      {50, 50}}) {
    double s = 0.0;
    for (std::int64_t i = b; i < e; ++i) s += spec.work(i);
    EXPECT_DOUBLE_EQ(spec.work_sum(b, e), s) << b << ".." << e;
  }
}

TEST(Adjoint, OracleCostMatchesProgram) {
  const auto cost = AdjointConvolutionKernel::cost(75);
  const auto spec = AdjointConvolutionKernel::program(75).epoch_loops(0)[0];
  for (std::int64_t i : {0, 100, 5624})
    EXPECT_DOUBLE_EQ(cost(i), spec.work(i));
}

}  // namespace
}  // namespace afs
