#include "kernels/synthetic.hpp"

#include <gtest/gtest.h>

namespace afs {
namespace {

void expect_work_sum_consistent(const ParallelLoopSpec& spec) {
  ASSERT_NE(spec.work_sum, nullptr);
  const std::int64_t n = spec.n;
  for (auto [b, e] : {std::pair<std::int64_t, std::int64_t>{0, n},
                      {0, 1},
                      {n - 1, n},
                      {n / 3, 2 * n / 3},
                      {5, 5}}) {
    double s = 0.0;
    for (std::int64_t i = b; i < e; ++i) s += spec.work(i);
    EXPECT_NEAR(spec.work_sum(b, e), s, 1e-6 * std::max(1.0, s))
        << "[" << b << "," << e << ")";
  }
}

TEST(Synthetic, TriangularCostsAndSum) {
  const auto spec = triangular_program(100).epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work(0), 100.0);
  EXPECT_DOUBLE_EQ(spec.work(99), 1.0);
  expect_work_sum_consistent(spec);
  EXPECT_DOUBLE_EQ(spec.work_sum(0, 100), 5050.0);
}

TEST(Synthetic, ParabolicCostsAndSum) {
  const auto spec = parabolic_program(50).epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work(0), 2500.0);
  expect_work_sum_consistent(spec);
}

TEST(Synthetic, HeadHeavyCostsAndSum) {
  const auto spec = head_heavy_program(1000).epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work(0), 100.0);
  EXPECT_DOUBLE_EQ(spec.work(100), 1.0);
  expect_work_sum_consistent(spec);
  EXPECT_DOUBLE_EQ(spec.work_sum(0, 1000), 100.0 * 100 + 900.0);
}

TEST(Synthetic, BalancedCostsAndSum) {
  const auto spec = balanced_program(1000, 2.0).epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work(123), 2.0);
  expect_work_sum_consistent(spec);
}

TEST(Synthetic, HugeBalancedLoopSumIsO1) {
  // Table 2's 200-million-iteration loop must be representable.
  const auto spec = balanced_program(200'000'000).epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work_sum(0, 200'000'000), 2e8);
}

TEST(Synthetic, AllAreSingleEpochNoFootprint) {
  for (const auto& prog :
       {triangular_program(10), parabolic_program(10), head_heavy_program(10),
        balanced_program(10)}) {
    EXPECT_EQ(prog.epochs, 1);
    EXPECT_EQ(prog.epoch_loops(0)[0].footprint, nullptr);
  }
}

TEST(Synthetic, HeadHeavyCustomParameters) {
  const auto spec =
      head_heavy_program(100, 0.5, 10.0, 2.0).epoch_loops(0)[0];
  EXPECT_DOUBLE_EQ(spec.work(49), 10.0);
  EXPECT_DOUBLE_EQ(spec.work(50), 2.0);
  EXPECT_DOUBLE_EQ(spec.work_sum(0, 100), 50 * 10.0 + 50 * 2.0);
}

}  // namespace
}  // namespace afs
