// ResultStore: the on-disk content-addressed cache of simulation cells.
// The properties pinned here are the ones the sweep service leans on — a
// hit is bit-identical to recomputing, anything malformed degrades to a
// miss (never a wrong result), an engine-version bump orphans exactly the
// old entries, and concurrent writers of the same key are safe.
#include "store/result_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "kernels/gauss.hpp"
#include "machines/machines.hpp"
#include "runtime/sweep_runner.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "store/cell_key.hpp"
#include "util/hash.hpp"

namespace fs = std::filesystem;

namespace afs {
namespace {

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

/// A real (small) simulation so round-trip checks cover every SimResult
/// field a table might read, with genuinely non-round doubles.
SimResult simulate(int procs = 4) {
  MachineSim sim(iris());
  const auto program = GaussKernel::program(96);
  auto sched = make_scheduler("AFS");
  return sim.run(program, *sched, procs);
}

CellKey key_for(int procs = 4) {
  return make_cell_key(iris(), GaussKernel::program(96).key, "AFS", procs, {});
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.sync, b.sync);
  EXPECT_EQ(a.comm, b.comm);
  EXPECT_EQ(a.idle, b.idle);
  EXPECT_EQ(a.barrier, b.barrier);
  EXPECT_EQ(a.stall_time, b.stall_time);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.units_transferred, b.units_transferred);
  EXPECT_EQ(a.local_grabs, b.local_grabs);
  EXPECT_EQ(a.remote_grabs, b.remote_grabs);
  EXPECT_EQ(a.central_grabs, b.central_grabs);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.lost_processor_count, b.lost_processor_count);
  EXPECT_EQ(a.stolen_under_fault, b.stolen_under_fault);
  EXPECT_EQ(a.abandoned_iterations, b.abandoned_iterations);
  EXPECT_EQ(a.sched_stats.loops, b.sched_stats.loops);
  ASSERT_EQ(a.sched_stats.queues.size(), b.sched_stats.queues.size());
  for (std::size_t i = 0; i < a.sched_stats.queues.size(); ++i) {
    EXPECT_EQ(a.sched_stats.queues[i].local_grabs,
              b.sched_stats.queues[i].local_grabs);
    EXPECT_EQ(a.sched_stats.queues[i].remote_grabs,
              b.sched_stats.queues[i].remote_grabs);
    EXPECT_EQ(a.sched_stats.queues[i].iters_local,
              b.sched_stats.queues[i].iters_local);
    EXPECT_EQ(a.sched_stats.queues[i].iters_remote,
              b.sched_stats.queues[i].iters_remote);
  }
}

TEST(ResultStore, MissOnEmptyStoreThenHitAfterSave) {
  ResultStore store(fresh_dir("rs_basic"));
  const CellKey key = key_for();
  SimResult out;
  EXPECT_FALSE(store.load(key, out));
  EXPECT_EQ(store.misses(), 1);

  const SimResult r = simulate();
  store.save(key, r);
  EXPECT_EQ(store.writes(), 1);

  SimResult served;
  ASSERT_TRUE(store.load(key, served));
  EXPECT_EQ(store.hits(), 1);
  expect_identical(r, served);
}

TEST(ResultStore, HitIsBitIdenticalToRecomputing) {
  ResultStore store(fresh_dir("rs_identity"));
  const CellKey key = key_for();
  store.save(key, simulate());
  SimResult served;
  ASSERT_TRUE(store.load(key, served));
  // The simulator is deterministic, so recomputing is the ground truth.
  expect_identical(simulate(), served);
}

TEST(ResultStore, EngineVersionBumpOrphansOldEntries) {
  ResultStore store(fresh_dir("rs_engine"));
  const CellKey key = key_for();
  store.save(key, simulate());

  // Model a kEngineVersion bump: same inputs, different engine line ->
  // different text, different hash, different address. The old entry is
  // simply never consulted again.
  CellKey bumped = key;
  const std::size_t pos = bumped.text.find("engine ");
  ASSERT_NE(pos, std::string::npos);
  bumped.text.insert(bumped.text.find('\n', pos), "-next");
  bumped.hash = fnv1a64(bumped.text);
  EXPECT_NE(bumped.hash, key.hash);
  EXPECT_NE(store.entry_path(bumped), store.entry_path(key));

  SimResult out;
  EXPECT_FALSE(store.load(bumped, out));
  EXPECT_TRUE(store.load(key, out));  // the old engine's entry is intact
}

TEST(ResultStore, TruncatedEntryDegradesToMissAndIsRecomputable) {
  ResultStore store(fresh_dir("rs_trunc"));
  const CellKey key = key_for();
  const SimResult r = simulate();
  store.save(key, r);

  const std::string path = store.entry_path(key);
  fs::resize_file(path, fs::file_size(path) / 2);

  SimResult out;
  EXPECT_FALSE(store.load(key, out));  // short entry authenticates as a miss
  store.save(key, r);                  // the recompute overwrites in place
  ASSERT_TRUE(store.load(key, out));
  expect_identical(r, out);
}

TEST(ResultStore, CorruptedPayloadDegradesToMiss) {
  ResultStore store(fresh_dir("rs_corrupt"));
  const CellKey key = key_for();
  store.save(key, simulate());

  const std::string path = store.entry_path(key);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-8, std::ios::end);  // stomp inside the serialized payload
  f.write("garbage!", 8);
  f.close();

  SimResult out;
  EXPECT_FALSE(store.load(key, out));
}

TEST(ResultStore, KeyMismatchInEntryIsAMiss) {
  // A hash collision would file a different key's text at our address;
  // authentication must reject it rather than serve the wrong cell.
  ResultStore store(fresh_dir("rs_collide"));
  const CellKey key = key_for();
  store.save(key, simulate());

  CellKey other = key_for(5);  // a different cell...
  other.hash = key.hash;       // ...forced onto the same address
  SimResult out;
  EXPECT_FALSE(store.load(other, out));
}

TEST(ResultStore, UncacheableKeysBypassTheDisk) {
  const std::string root = fresh_dir("rs_uncache");
  ResultStore store(root);
  CellKey key = key_for();
  key.cacheable = false;
  store.save(key, simulate());
  SimResult out;
  EXPECT_FALSE(store.load(key, out));
  EXPECT_EQ(store.writes(), 0);
  EXPECT_EQ(store.scan().entries, 0);
}

TEST(ResultStore, ConcurrentWritersOfTheSameKeyAreSafe) {
  ResultStore store(fresh_dir("rs_race"));
  const CellKey key = key_for();
  const SimResult r = simulate();

  std::vector<std::thread> writers;
  for (int i = 0; i < 8; ++i)
    writers.emplace_back([&store, &key, &r] {
      for (int j = 0; j < 25; ++j) store.save(key, r);
    });
  for (auto& t : writers) t.join();

  // Whichever write landed last, the entry is whole and authentic.
  SimResult served;
  ASSERT_TRUE(store.load(key, served));
  expect_identical(r, served);
  EXPECT_EQ(store.scan().entries, 1);

  // The atomic protocol leaves no temp litter behind.
  int stray = 0;
  for (const auto& e : fs::recursive_directory_iterator(store.root()))
    if (e.is_regular_file() && e.path().extension() != ".cell") ++stray;
  EXPECT_EQ(stray, 0);
}

TEST(ResultStore, HitRateCountsLookupsOnly) {
  ResultStore store(fresh_dir("rs_rate"));
  const CellKey key = key_for();
  SimResult out;
  EXPECT_EQ(store.hit_rate(), 0.0);
  store.load(key, out);  // miss
  store.save(key, simulate());
  store.load(key, out);  // hit
  store.load(key, out);  // hit
  EXPECT_EQ(store.hits(), 2);
  EXPECT_EQ(store.misses(), 1);
  EXPECT_NEAR(store.hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(ResultStore, ScanAndGcBySizeEvictLeastRecentlyUsed) {
  ResultStore store(fresh_dir("rs_gc"));
  const SimResult r = simulate();
  std::vector<CellKey> keys;
  for (int p = 1; p <= 4; ++p) {
    keys.push_back(key_for(p));
    store.save(keys.back(), r);
  }
  const StoreStats before = store.scan();
  EXPECT_EQ(before.entries, 4);
  EXPECT_GT(before.bytes, 0);

  // Make p=1's entry clearly the oldest, then touch it via a hit so the
  // LRU pass prefers the never-served entries.
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(48);
  for (const CellKey& k : keys) fs::last_write_time(store.entry_path(k), old_time);
  SimResult out;
  ASSERT_TRUE(store.load(keys[0], out));

  GcOptions opts;
  opts.max_bytes = before.bytes / 3;  // room for at most one entry
  const GcOutcome gc = store.gc(opts);
  EXPECT_EQ(gc.scanned, 4);
  EXPECT_GT(gc.evicted, 0);
  EXPECT_LE(gc.bytes_after, opts.max_bytes);
  ASSERT_TRUE(store.load(keys[0], out));  // the recently-used entry survived
}

TEST(ResultStore, CorruptEntryIsQuarantinedNotReparsedForever) {
  ResultStore store(fresh_dir("rs_quar"));
  const CellKey key = key_for();
  const SimResult r = simulate();
  store.save(key, r);

  std::fstream f(store.entry_path(key),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.write("not-the-schema", 14);
  f.close();

  SimResult out;
  EXPECT_FALSE(store.load(key, out));

  // The corrupt file was moved aside, not deleted and not left in place:
  // the address is free, the evidence is under quarantine/ with a .bad
  // suffix, and the store's counters agree with the disk.
  EXPECT_FALSE(fs::exists(store.entry_path(key)));
  EXPECT_EQ(store.quarantined(), 1);
  const StoreStats stats = store.scan();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.quarantined, 1);
  int bad_files = 0;
  for (const auto& e :
       fs::directory_iterator(fs::path(store.root()) / "quarantine")) {
    EXPECT_EQ(e.path().extension(), ".bad");
    ++bad_files;
  }
  EXPECT_EQ(bad_files, 1);

  // A second miss on the same key is a plain miss — no re-quarantine.
  EXPECT_FALSE(store.load(key, out));
  EXPECT_EQ(store.quarantined(), 1);

  // The address is immediately reusable and serves clean hits again.
  store.save(key, r);
  ASSERT_TRUE(store.load(key, out));
  expect_identical(r, out);
  EXPECT_EQ(store.scan().entries, 1);
}

TEST(ResultStore, RepeatedCorruptionYieldsDistinctQuarantineFiles) {
  ResultStore store(fresh_dir("rs_quar_multi"));
  const CellKey key = key_for();
  const SimResult r = simulate();
  for (int round = 0; round < 3; ++round) {
    store.save(key, r);
    fs::resize_file(store.entry_path(key), 10);
    SimResult out;
    EXPECT_FALSE(store.load(key, out));
  }
  EXPECT_EQ(store.quarantined(), 3);
  EXPECT_EQ(store.scan().quarantined, 3);  // unique names: nothing clobbered
}

TEST(ResultStore, QuarantineIsInvisibleToScanAndGc) {
  ResultStore store(fresh_dir("rs_quar_gc"));
  const CellKey key = key_for();
  store.save(key, simulate());
  fs::resize_file(store.entry_path(key), 3);
  SimResult out;
  EXPECT_FALSE(store.load(key, out));
  ASSERT_EQ(store.quarantined(), 1);

  // gc must neither count nor evict the quarantined evidence, even with
  // bounds that would evict any live entry.
  GcOptions opts;
  opts.max_age_days = 1e-9;
  opts.max_bytes = 0;
  const GcOutcome gc = store.gc(opts);
  EXPECT_EQ(gc.scanned, 0);
  EXPECT_EQ(gc.evicted, 0);
  EXPECT_EQ(store.scan().quarantined, 1);
}

TEST(ResultStore, CleanMissesNeverQuarantine) {
  ResultStore store(fresh_dir("rs_quar_none"));
  SimResult out;
  EXPECT_FALSE(store.load(key_for(), out));
  EXPECT_EQ(store.quarantined(), 0);
  EXPECT_FALSE(fs::exists(fs::path(store.root()) / "quarantine"));
  EXPECT_EQ(store.scan().quarantined, 0);
}

TEST(ResultStore, VerifyOnCleanStoreTouchesNothing) {
  ResultStore store(fresh_dir("rs_scrub_clean"));
  const SimResult r = simulate();
  for (int p = 1; p <= 3; ++p) store.save(key_for(p), r);

  const ScrubOutcome o = store.verify();
  EXPECT_EQ(o.scanned, 3);
  EXPECT_EQ(o.ok, 3);
  EXPECT_EQ(o.corrupt, 0);
  EXPECT_EQ(o.upgraded, 0);
  EXPECT_EQ(o.tmp_removed, 0);
  EXPECT_TRUE(o.clean());

  SimResult out;
  for (int p = 1; p <= 3; ++p) ASSERT_TRUE(store.load(key_for(p), out));
}

TEST(ResultStore, VerifyQuarantinesBitFlippedEntryOnly) {
  ResultStore store(fresh_dir("rs_scrub_flip"));
  const SimResult r = simulate();
  const CellKey victim = key_for(2);
  const CellKey bystander = key_for(3);
  store.save(victim, r);
  store.save(bystander, r);

  // Flip one bit inside the payload. The damaged digit still parses as a
  // number, so only the checksum can catch this.
  {
    std::fstream f(store.entry_path(victim),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-5, std::ios::end);
    char c = 0;
    f.get(c);
    f.seekp(-5, std::ios::end);
    f.put(static_cast<char>(c ^ 0x01));
  }

  const ScrubOutcome o = store.verify();
  EXPECT_EQ(o.scanned, 2);
  EXPECT_EQ(o.ok, 1);
  EXPECT_EQ(o.corrupt, 1);
  EXPECT_FALSE(o.clean());

  // The corrupt entry is under quarantine, its address free; the valid
  // neighbour is untouched and still serves a bit-identical hit.
  EXPECT_FALSE(fs::exists(store.entry_path(victim)));
  EXPECT_EQ(store.scan().quarantined, 1);
  SimResult out;
  EXPECT_FALSE(store.load(victim, out));
  ASSERT_TRUE(store.load(bystander, out));
  expect_identical(r, out);

  // A second scrub over the repaired store is clean.
  const ScrubOutcome again = store.verify();
  EXPECT_EQ(again.scanned, 1);
  EXPECT_EQ(again.corrupt, 0);
  EXPECT_TRUE(again.clean());
}

TEST(ResultStore, VerifyUpgradesV1EntriesInPlace) {
  ResultStore store(fresh_dir("rs_scrub_v1"));
  const CellKey key = key_for();
  const SimResult r = simulate();
  store.save(key, r);  // creates the shard directory for us

  // Rewrite the entry in the pre-checksum v1 layout: same body, no
  // crc32c line.
  const std::string payload = serialize_sim_result(r);
  {
    std::ofstream f(store.entry_path(key),
                    std::ios::binary | std::ios::trunc);
    f << "afs-store-v1\n"
      << "keybytes " << key.text.size() << "\n"
      << key.text << payload;
  }

  // v1 is still a hit even before the scrub (no flag day)...
  SimResult out;
  ASSERT_TRUE(store.load(key, out));
  expect_identical(r, out);

  // ...and verify() migrates it to a checksummed v2 entry in place.
  const ScrubOutcome o = store.verify();
  EXPECT_EQ(o.scanned, 1);
  EXPECT_EQ(o.ok, 1);
  EXPECT_EQ(o.upgraded, 1);
  EXPECT_TRUE(o.clean());

  std::ifstream f(store.entry_path(key), std::ios::binary);
  std::string schema;
  std::getline(f, schema);
  EXPECT_EQ(schema, "afs-store-v2");
  ASSERT_TRUE(store.load(key, out));
  expect_identical(r, out);
  EXPECT_EQ(store.verify().upgraded, 0);  // the migration is one-shot
}

TEST(ResultStore, VerifyQuarantinesCorruptV1Entry) {
  // The upgrade path must not launder damage: a v1 entry whose payload is
  // garbage gets quarantined, not rewritten as "valid" v2.
  ResultStore store(fresh_dir("rs_scrub_v1_bad"));
  const CellKey key = key_for();
  store.save(key, simulate());
  {
    std::ofstream f(store.entry_path(key),
                    std::ios::binary | std::ios::trunc);
    f << "afs-store-v1\n"
      << "keybytes " << key.text.size() << "\n"
      << key.text << "this is not a serialized SimResult";
  }
  const ScrubOutcome o = store.verify();
  EXPECT_EQ(o.corrupt, 1);
  EXPECT_EQ(o.upgraded, 0);
  EXPECT_FALSE(fs::exists(store.entry_path(key)));
}

TEST(ResultStore, VerifyRemovesStaleTempFilesKeepsFreshOnes) {
  ResultStore store(fresh_dir("rs_scrub_tmp"));
  const CellKey key = key_for();
  store.save(key, simulate());

  const fs::path dir = fs::path(store.entry_path(key)).parent_path();
  const fs::path stale = dir / "deadbeef.cell.tmp.1234.abcd";
  const fs::path fresh = dir / "deadbeef.cell.tmp.5678.ef01";
  std::ofstream(stale) << "orphaned write";
  std::ofstream(fresh) << "in-flight write";
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() - std::chrono::hours(1));

  const ScrubOutcome o = store.verify();
  EXPECT_EQ(o.tmp_removed, 1);
  EXPECT_FALSE(fs::exists(stale));  // orphan reclaimed
  EXPECT_TRUE(fs::exists(fresh));   // possible in-flight write left alone
  EXPECT_EQ(o.corrupt, 0);          // temp files are not "entries"
  EXPECT_EQ(o.scanned, 1);
}

TEST(ResultStore, VerifyClampsFutureMtimes) {
  // A restored backup or clock skew can date entries in the future, which
  // would make them immortal under LRU ("most recently used forever").
  ResultStore store(fresh_dir("rs_scrub_mtime"));
  const CellKey key = key_for();
  store.save(key, simulate());
  fs::last_write_time(store.entry_path(key),
                      fs::file_time_type::clock::now() +
                          std::chrono::hours(24 * 365));

  const ScrubOutcome o = store.verify();
  EXPECT_EQ(o.mtime_repaired, 1);
  EXPECT_TRUE(o.clean());
  EXPECT_LE(fs::last_write_time(store.entry_path(key)),
            fs::file_time_type::clock::now() + std::chrono::minutes(10));
  EXPECT_EQ(store.verify().mtime_repaired, 0);

  SimResult out;
  ASSERT_TRUE(store.load(key, out));
}

TEST(ResultStore, GcByAgeEvictsStaleEntries) {
  ResultStore store(fresh_dir("rs_age"));
  const SimResult r = simulate();
  const CellKey stale = key_for(2);
  const CellKey live = key_for(3);
  store.save(stale, r);
  store.save(live, r);
  fs::last_write_time(store.entry_path(stale),
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(24 * 10));

  GcOptions opts;
  opts.max_age_days = 7.0;
  const GcOutcome gc = store.gc(opts);
  EXPECT_EQ(gc.evicted, 1);
  SimResult out;
  EXPECT_FALSE(store.load(stale, out));
  EXPECT_TRUE(store.load(live, out));
}

}  // namespace
}  // namespace afs
