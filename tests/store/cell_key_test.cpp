// CellKey: the content address of one simulation cell. These tests pin
// what the key must guarantee — determinism across calls (and therefore
// across processes: the text is a pure rendering and FNV-1a is a pure
// function), sensitivity to every input that changes simulated results,
// and the uncacheable escape hatch for cells whose identity is unknown.
#include "store/cell_key.hpp"

#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sim/engine_version.hpp"
#include "sim/metrics.hpp"
#include "util/hash.hpp"

namespace afs {
namespace {

CellKey base_key(const SimOptions& options = {}) {
  return make_cell_key(iris(), "balanced(n=64,u=0x1p+0)", "AFS", 4, options);
}

TEST(CellKey, DeterministicAcrossCalls) {
  const CellKey a = base_key();
  const CellKey b = base_key();
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_TRUE(a.cacheable);
  EXPECT_EQ(a.hash, fnv1a64(a.text));
}

TEST(CellKey, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors: the hash function itself must be
  // stable across platforms and runs or stored entries become orphans.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(CellKey, EmbedsEngineVersionAndSchema) {
  const CellKey k = base_key();
  EXPECT_EQ(k.text.rfind("afs-store-key-v1\n", 0), 0u) << k.text;
  EXPECT_NE(k.text.find(std::string("engine ") + kEngineVersion),
            std::string::npos)
      << k.text;
}

TEST(CellKey, EveryInputChangesTheHash) {
  const CellKey base = base_key();

  MachineConfig m2 = iris();
  m2.miss_latency += 1.0;
  EXPECT_NE(make_cell_key(m2, "balanced(n=64,u=0x1p+0)", "AFS", 4, {}).hash,
            base.hash);

  EXPECT_NE(
      make_cell_key(iris(), "balanced(n=65,u=0x1p+0)", "AFS", 4, {}).hash,
      base.hash);
  EXPECT_NE(
      make_cell_key(iris(), "balanced(n=64,u=0x1p+0)", "GSS", 4, {}).hash,
      base.hash);
  EXPECT_NE(
      make_cell_key(iris(), "balanced(n=64,u=0x1p+0)", "AFS", 5, {}).hash,
      base.hash);

  SimOptions seed;
  seed.jitter_seed ^= 1;
  EXPECT_NE(base_key(seed).hash, base.hash);

  SimOptions nobatch;
  nobatch.batch_iterations = false;
  EXPECT_NE(base_key(nobatch).hash, base.hash);

  SimOptions nofast;
  nofast.memory_fast_path = false;
  EXPECT_NE(base_key(nofast).hash, base.hash);

  SimOptions perturbed;
  perturbed.perturb.stall_mean_interval = 100.0;
  perturbed.perturb.stall_duration = 5.0;
  EXPECT_NE(base_key(perturbed).hash, base.hash);
}

TEST(CellKey, LegacyStartDelayShimFoldsIntoPerturbation) {
  // SimOptions::start_delays and PerturbationConfig::start_delays are two
  // spellings of the same experiment (Table 2); they must share a cell.
  SimOptions legacy;
  legacy.start_delays = {8.0, 0.0, 0.0, 0.0};
  SimOptions modern;
  modern.perturb.start_delays = {8.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(base_key(legacy).hash, base_key(modern).hash);
  EXPECT_NE(base_key(legacy).hash, base_key().hash);
}

TEST(CellKey, UnknownIdentityIsUncacheable) {
  EXPECT_FALSE(make_cell_key(iris(), "", "AFS", 4, {}).cacheable);
  EXPECT_FALSE(
      make_cell_key(iris(), "balanced(n=64,u=0x1p+0)", "", 4, {}).cacheable);
}

TEST(CellKey, SideEffectingRunsAreUncacheable) {
  SimOptions timed;
  timed.time_phases = true;
  EXPECT_FALSE(base_key(timed).cacheable);

  MetricsSink sink;  // all hooks default to no-ops
  SimOptions traced;
  traced.trace = &sink;
  EXPECT_FALSE(base_key(traced).cacheable);
}

TEST(CellKey, ProgramFactoriesStampStableKeys) {
  // A factory-built program carries its identity; the same parameters give
  // the same key, different parameters a different one.
  EXPECT_FALSE(balanced_program(64).key.empty());
  EXPECT_EQ(balanced_program(64).key, balanced_program(64).key);
  EXPECT_NE(balanced_program(64).key, balanced_program(65).key);
}

}  // namespace
}  // namespace afs
