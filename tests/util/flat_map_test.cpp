// FlatMap64: the open-addressing map under the simulator's hot paths.
// Exercises the cases that matter for correctness of backward-shift
// deletion and growth, plus a randomized differential test against
// std::unordered_map.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace afs {
namespace {

TEST(FlatMap64, StartsEmpty) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_FALSE(m.contains(7));
  EXPECT_FALSE(m.erase(7));
}

TEST(FlatMap64, InsertFindErase) {
  FlatMap64<int> m;
  m[1] = 10;
  m[2] = 20;
  m[3] = 30;
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), 20);
  EXPECT_TRUE(m.erase(2));
  EXPECT_EQ(m.find(2), nullptr);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.erase(2));  // already gone
  EXPECT_EQ(*m.find(1), 10);
  EXPECT_EQ(*m.find(3), 30);
}

TEST(FlatMap64, SubscriptDefaultConstructsAndUpdatesInPlace) {
  FlatMap64<std::uint64_t> m;
  EXPECT_EQ(m[42], 0u);  // default constructed
  m[42] |= 0b101;
  m[42] |= 0b010;
  EXPECT_EQ(m[42], 0b111u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64, NegativeAndLargeKeys) {
  FlatMap64<int> m;
  m[-1] = 1;
  m[INT64_MIN] = 2;
  m[INT64_MAX] = 3;
  m[0] = 4;
  EXPECT_EQ(*m.find(-1), 1);
  EXPECT_EQ(*m.find(INT64_MIN), 2);
  EXPECT_EQ(*m.find(INT64_MAX), 3);
  EXPECT_EQ(*m.find(0), 4);
}

TEST(FlatMap64, GrowthPreservesContents) {
  FlatMap64<std::int64_t> m;
  for (std::int64_t k = 0; k < 1000; ++k) m[k] = k * k;
  EXPECT_EQ(m.size(), 1000u);
  for (std::int64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k * k) << k;
  }
}

TEST(FlatMap64, ClearEmptiesButStaysUsable) {
  FlatMap64<int> m;
  for (int k = 0; k < 100; ++k) m[k] = k;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(50), nullptr);
  m[50] = 5;
  EXPECT_EQ(*m.find(50), 5);
}

TEST(FlatMap64, EraseDuringDenseCollisions) {
  // Sequential keys stress linear probing + backward-shift deletion:
  // delete every other key, then verify the survivors are all reachable.
  FlatMap64<int> m;
  for (int k = 0; k < 256; ++k) m[k] = k;
  for (int k = 0; k < 256; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_EQ(m.size(), 128u);
  for (int k = 0; k < 256; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(m.find(k), nullptr) << k;
    } else {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), k) << k;
    }
  }
}

TEST(FlatMap64, DifferentialAgainstUnorderedMap) {
  FlatMap64<std::int64_t> flat;
  std::unordered_map<std::int64_t, std::int64_t> ref;
  Xoshiro256 rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const std::int64_t key = rng.next_in(0, 512);  // small space → collisions
    const std::int64_t op = rng.next_in(0, 3);
    if (op == 0) {
      flat[key] = step;
      ref[key] = step;
    } else if (op == 1) {
      EXPECT_EQ(flat.erase(key), ref.erase(key) > 0) << "step " << step;
    } else {
      const std::int64_t* v = flat.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(v != nullptr, it != ref.end()) << "step " << step;
      if (v != nullptr) {
        EXPECT_EQ(*v, it->second) << "step " << step;
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(flat.find(k), nullptr) << k;
    EXPECT_EQ(*flat.find(k), v) << k;
  }
}

}  // namespace
}  // namespace afs
