#include "util/array2d.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace afs {
namespace {

TEST(Array2D, DefaultIsEmpty) {
  Array2D<int> a;
  EXPECT_EQ(a.rows(), 0);
  EXPECT_EQ(a.cols(), 0);
}

TEST(Array2D, FillValue) {
  Array2D<double> a(3, 4, 2.5);
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t c = 0; c < 4; ++c) EXPECT_EQ(a(r, c), 2.5);
}

TEST(Array2D, RowMajorLayout) {
  Array2D<int> a(2, 3);
  int v = 0;
  for (std::int64_t r = 0; r < 2; ++r)
    for (std::int64_t c = 0; c < 3; ++c) a(r, c) = v++;
  const int* p = a.data();
  for (int i = 0; i < 6; ++i) EXPECT_EQ(p[i], i);
}

TEST(Array2D, RowSpanAliasesStorage) {
  Array2D<int> a(4, 5, 0);
  auto row = a.row(2);
  ASSERT_EQ(row.size(), 5u);
  row[3] = 99;
  EXPECT_EQ(a(2, 3), 99);
}

TEST(Array2D, ConstRowSpan) {
  Array2D<int> a(2, 2, 7);
  const Array2D<int>& ca = a;
  auto row = ca.row(1);
  EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), 14);
}

TEST(Array2D, EqualityComparesContents) {
  Array2D<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(1, 1) = 2;
  EXPECT_NE(a, b);
}

TEST(Array2D, ZeroDimensionsAllowed) {
  Array2D<int> a(0, 5);
  EXPECT_EQ(a.rows(), 0);
  Array2D<int> b(5, 0);
  EXPECT_EQ(b.cols(), 0);
}

}  // namespace
}  // namespace afs
