#include "util/table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace afs {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), CheckFailure);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), CheckFailure);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), CheckFailure);
}

TEST(Table, AsciiContainsAllCells) {
  Table t({"P", "time"});
  t.add_row({"1", "10.5"});
  t.add_row({"2", "5.25"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("P"), std::string::npos);
  EXPECT_NE(s.find("10.5"), std::string::npos);
  EXPECT_NE(s.find("5.25"), std::string::npos);
}

TEST(Table, AsciiColumnsAligned) {
  Table t({"x", "longheader"});
  t.add_row({"verylongcell", "1"});
  std::istringstream in(t.to_ascii());
  std::string header, rule, row;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row);
  EXPECT_EQ(header.size(), row.size());
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsDoublesAndInts) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

TEST(Table, WriteCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "afs_table_test";
  std::filesystem::remove_all(dir);
  Table t({"h"});
  t.add_row({"v"});
  const auto path = (dir / "sub" / "out.csv").string();
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::filesystem::remove_all(dir);
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace afs
