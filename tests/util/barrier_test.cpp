#include "util/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace afs {
namespace {

TEST(Barrier, SingleThreadPassesImmediately) {
  Barrier b(1);
  for (int i = 0; i < 10; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(Barrier, RejectsNonPositiveCount) {
  EXPECT_THROW(Barrier(0), CheckFailure);
  EXPECT_THROW(Barrier(-1), CheckFailure);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<int> observed_per_phase(kPhases, -1);
  std::atomic<bool> failed{false};

  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < kPhases; ++phase) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, all kThreads increments of this phase are done.
        if (counter.load() < (phase + 1) * kThreads) failed.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  threads.clear();  // join
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kPhases);
}

TEST(Barrier, ReusableBackToBack) {
  Barrier barrier(2);
  std::atomic<int> done{0};
  {
    std::jthread a([&] {
      for (int i = 0; i < 1000; ++i) barrier.arrive_and_wait();
      done.fetch_add(1);
    });
    std::jthread b([&] {
      for (int i = 0; i < 1000; ++i) barrier.arrive_and_wait();
      done.fetch_add(1);
    });
  }
  EXPECT_EQ(done.load(), 2);
}

TEST(Barrier, ReportsParticipantCount) {
  Barrier b(7);
  EXPECT_EQ(b.participant_count(), 7);
}

}  // namespace
}  // namespace afs
