#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace afs {
namespace {

TEST(Check, PassingCheckIsSilent) {
  AFS_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST(Check, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(AFS_CHECK(false), CheckFailure);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    AFS_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, CheckMsgStreamsValues) {
  try {
    const int p = 17;
    AFS_CHECK_MSG(p < 10, "p was " << p);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("p was 17"), std::string::npos);
  }
}

TEST(Check, CheckFailureIsLogicError) {
  // API contract: misuse is a programming error, not a runtime condition.
  EXPECT_THROW(AFS_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace afs
