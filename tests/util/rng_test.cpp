#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace afs {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NextInRespectsBounds) {
  Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Xoshiro256, NextInSingleton) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_in(42, 42), 42);
}

TEST(Xoshiro256, BoolProbabilityZeroAndOne) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, BoolFrequencyMatchesP) {
  Xoshiro256 rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  // Usable with <random> distributions.
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

TEST(XorShift64, DeterministicForSeed) {
  XorShift64 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(XorShift64, DifferentSeedsDiverge) {
  XorShift64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(XorShift64, ZeroSeedIsRemapped) {
  // xorshift64* has an all-zero fixed point; the constructor must dodge it.
  XorShift64 z(0);
  EXPECT_NE(z.next(), 0ULL);
  XorShift64 z2(0), remapped(0x2545f4914f6cdd1dULL);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z2.next(), remapped.next());
}

TEST(XorShift64, NeverEmitsZeroAndMinIsOne) {
  // xorshift64* is a bijection on nonzero 64-bit states and the final
  // multiply is by an odd constant, so the output is never 0. min() must
  // say so: the UniformRandomBitGenerator contract requires min() to be
  // the least value the generator can actually produce, and a min() of 0
  // would let <random> distributions build a range one wider than what
  // the generator delivers.
  static_assert(XorShift64::min() == 1);
  static_assert(XorShift64::max() == ~0ULL);
  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL, ~0ULL}) {
    XorShift64 rng(seed);
    for (int i = 0; i < 200000; ++i) {
      ASSERT_NE(rng.next(), 0ULL) << "seed " << seed << " draw " << i;
    }
  }
}

TEST(XorShift64, DoubleInUnitInterval) {
  XorShift64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XorShift64, DoubleMeanIsHalf) {
  XorShift64 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace afs
