// CRC32C (Castagnoli): the checksum the result store's entry format
// carries. Pinned against the published RFC 3720 test vectors so the
// on-disk format can never silently drift — a store written by one build
// must verify under every other.
#include "util/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace afs {
namespace {

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c(""), 0u); }

TEST(Crc32c, Rfc3720CheckValue) {
  // The classic CRC "check" input.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32c, Rfc3720IscsiVectors) {
  const std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<std::uint8_t> incrementing(32);
  for (std::size_t i = 0; i < incrementing.size(); ++i)
    incrementing[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(incrementing.data(), incrementing.size()), 0x46DD794Eu);
}

TEST(Crc32c, SingleBitFlipChangesTheSum) {
  std::string payload = "afs-store payload with some entropy 12345";
  const std::uint32_t clean = crc32c(payload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::string flipped = payload;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(crc32c(flipped), clean) << "bit flip at byte " << i;
  }
}

TEST(Crc32c, StringViewAndBufferOverloadsAgree) {
  const std::string s = "overload agreement";
  EXPECT_EQ(crc32c(s), crc32c(s.data(), s.size()));
}

}  // namespace
}  // namespace afs
