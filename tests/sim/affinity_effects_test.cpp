// Integration tests of the simulator + schedulers: the paper's core
// qualitative phenomena must emerge on small instances.
#include <gtest/gtest.h>

#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

TEST(AffinityEffects, AfsReusesCacheAcrossEpochs) {
  // SOR on the Iris: after the first sweep loads each row into its home
  // processor's cache, later sweeps under AFS should hit almost always.
  MachineSim sim(iris());
  const auto prog = SorKernel::program(128, 8);
  auto afs = make_scheduler("AFS");
  const SimResult r = sim.run(prog, *afs, 4);
  EXPECT_GT(r.hits, 6 * r.misses) << "AFS should mostly hit after warmup";
}

TEST(AffinityEffects, CentralQueueSchedulersMissConstantly) {
  // GSS's chunk boundaries depend on grab order, so rows keep moving:
  // far more misses than AFS on the same program.
  MachineSim sim(iris());
  const auto prog = SorKernel::program(128, 8);
  auto afs = make_scheduler("AFS");
  auto gss = make_scheduler("GSS");
  const SimResult ra = sim.run(prog, *afs, 4);
  const SimResult rg = sim.run(prog, *gss, 4);
  EXPECT_GT(rg.misses, 2 * ra.misses);
}

TEST(AffinityEffects, AfsBeatsGssOnSorIris) {
  MachineSim sim(iris());
  const auto prog = SorKernel::program(128, 8);
  auto afs = make_scheduler("AFS");
  auto gss = make_scheduler("GSS");
  const double ta = sim.run(prog, *afs, 8).makespan;
  const double tg = sim.run(prog, *gss, 8).makespan;
  EXPECT_LT(ta, tg);
}

TEST(AffinityEffects, AfsComparableToStaticOnBalancedAffinityLoop) {
  // Fig. 3: AFS and STATIC are the two winners and close to each other.
  MachineSim sim(iris());
  const auto prog = SorKernel::program(128, 8);
  auto afs = make_scheduler("AFS");
  auto st = make_scheduler("STATIC");
  const double ta = sim.run(prog, *afs, 8).makespan;
  const double ts = sim.run(prog, *st, 8).makespan;
  EXPECT_NEAR(ta, ts, 0.25 * ts);
}

TEST(AffinityEffects, GaussBusSaturationLimitsNonAffinity) {
  // Fig. 4: on the Iris, schedulers that move every row saturate the bus —
  // adding processors beyond ~2-3 stops helping GSS, while AFS keeps
  // scaling.
  MachineSim sim(iris());
  const auto prog = GaussKernel::program(192);
  auto gss2 = make_scheduler("GSS");
  auto gss8 = make_scheduler("GSS");
  const double tg2 = sim.run(prog, *gss2, 2).makespan;
  const double tg8 = sim.run(prog, *gss8, 8).makespan;
  EXPECT_GT(tg8, 0.6 * tg2) << "GSS should barely improve from 2 to 8 procs";

  auto afs2 = make_scheduler("AFS");
  auto afs8 = make_scheduler("AFS");
  const double ta2 = sim.run(prog, *afs2, 2).makespan;
  const double ta8 = sim.run(prog, *afs8, 8).makespan;
  EXPECT_LT(ta8, 0.45 * ta2) << "AFS should keep scaling past 2 procs";
}

TEST(AffinityEffects, SymmetrySlowCpuEqualizesAfsAndGss) {
  // Fig. 14: on the Symmetry (30x slower CPUs), communication is cheap
  // relative to compute, so AFS's advantage over GSS mostly vanishes.
  MachineSim sim(symmetry());
  const auto prog = GaussKernel::program(128);
  auto afs = make_scheduler("AFS");
  auto gss = make_scheduler("GSS");
  const double ta = sim.run(prog, *afs, 8).makespan;
  const double tg = sim.run(prog, *gss, 8).makespan;
  EXPECT_NEAR(tg / ta, 1.0, 0.35);
}

TEST(AffinityEffects, AfsStealsOnlyUnderImbalance) {
  // Balanced SOR with mild jitter: essentially no steals.
  MachineSim sim(iris());
  const auto prog = SorKernel::program(128, 4);
  auto afs = make_scheduler("AFS");
  const SimResult r = sim.run(prog, *afs, 8);
  EXPECT_LT(r.remote_grabs, r.local_grabs / 5);
}

TEST(AffinityEffects, NoCacheMachineSeesNoAffinityBenefit) {
  // On a cache-less machine (Butterfly model) the same SOR program runs
  // with zero hits/misses recorded and AFS ~ GSS up to sync costs.
  MachineSim sim(butterfly1());
  const auto prog = SorKernel::program(64, 4);
  auto afs = make_scheduler("AFS");
  auto gss = make_scheduler("GSS");
  const SimResult ra = sim.run(prog, *afs, 8);
  const SimResult rg = sim.run(prog, *gss, 8);
  EXPECT_EQ(ra.misses, 0);
  EXPECT_EQ(rg.misses, 0);
  EXPECT_NEAR(ra.makespan, rg.makespan, 0.15 * rg.makespan);
}

}  // namespace
}  // namespace afs
