#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace afs {
namespace {

std::function<void(std::int64_t)> collect(std::vector<std::int64_t>& out) {
  return [&out](std::int64_t b) { out.push_back(b); };
}

// ---------------------------------------------------------------- cache --

TEST(ProcCache, DisabledWhenCapacityZero) {
  ProcCache c(0.0);
  EXPECT_FALSE(c.enabled());
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  EXPECT_FALSE(c.contains(1));
}

TEST(ProcCache, InsertThenContains) {
  ProcCache c(100.0);
  std::vector<std::int64_t> evicted;
  c.insert(7, 10.0, collect(evicted));
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(8));
  EXPECT_DOUBLE_EQ(c.used(), 10.0);
}

TEST(ProcCache, LruEvictionOrder) {
  ProcCache c(30.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  c.insert(2, 10.0, collect(evicted));
  c.insert(3, 10.0, collect(evicted));
  c.insert(4, 10.0, collect(evicted));  // evicts 1 (least recent)
  EXPECT_EQ(evicted, (std::vector<std::int64_t>{1}));
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(4));
}

TEST(ProcCache, TouchRefreshesRecency) {
  ProcCache c(30.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  c.insert(2, 10.0, collect(evicted));
  c.insert(3, 10.0, collect(evicted));
  c.touch(1);                            // 2 becomes the LRU
  c.insert(4, 10.0, collect(evicted));
  EXPECT_EQ(evicted, (std::vector<std::int64_t>{2}));
  EXPECT_TRUE(c.contains(1));
}

// Regression: a block larger than the whole cache can never fit, so it
// must stream through WITHOUT evicting anything — the old code drained
// the entire cache first and only then discovered the block could not be
// kept, destroying every resident line for nothing.
TEST(ProcCache, LargeBlockStreamsWithoutEvicting) {
  ProcCache c(20.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  c.insert(2, 10.0, collect(evicted));
  EXPECT_FALSE(c.insert(99, 50.0, collect(evicted)));  // bigger than cache
  EXPECT_TRUE(evicted.empty());  // resident blocks stay put
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(99));
  EXPECT_DOUBLE_EQ(c.used(), 20.0);
}

// A block exactly as large as the cache is not streamed: it fits, at the
// cost of evicting everything else (the boundary the short-circuit must
// not move).
TEST(ProcCache, CapacitySizedBlockStillFits) {
  ProcCache c(20.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  EXPECT_TRUE(c.insert(99, 20.0, collect(evicted)));
  EXPECT_EQ(evicted, (std::vector<std::int64_t>{1}));
  EXPECT_TRUE(c.contains(99));
  EXPECT_DOUBLE_EQ(c.used(), 20.0);
}

// ------------------------------------------------------ exclusivity hint --

TEST(ProcCache, ExclusivityHintSetAndCleared) {
  ProcCache c(100.0);
  std::vector<std::int64_t> evicted;
  c.insert(7, 10.0, collect(evicted));
  EXPECT_FALSE(c.exclusive(7));  // fresh copies start shared
  EXPECT_EQ(c.access_hit_state(7), ProcCache::Hit::kShared);
  c.set_exclusive_front(7);
  EXPECT_TRUE(c.exclusive(7));
  EXPECT_EQ(c.access_hit_state(7), ProcCache::Hit::kExclusive);
  c.clear_exclusive(7);
  EXPECT_FALSE(c.exclusive(7));
  c.clear_exclusive(42);  // absent block: no-op
  EXPECT_EQ(c.access_hit_state(42), ProcCache::Hit::kMiss);
}

// The MRU-2 shortcut inside access_hit_state must keep the LRU chain
// bit-identical to the plain find + relink: probe a block sitting second
// from the front and check the eviction order afterwards.
TEST(ProcCache, AccessHitStateRefreshesRecencyFromSecondSlot) {
  ProcCache c(30.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  c.insert(2, 10.0, collect(evicted));
  c.insert(3, 10.0, collect(evicted));  // chain (MRU..LRU): 3 2 1
  EXPECT_EQ(c.access_hit_state(2), ProcCache::Hit::kShared);  // head->next
  // chain now: 2 3 1 — inserting forces 1 out first, then 3.
  c.insert(4, 20.0, collect(evicted));
  EXPECT_EQ(evicted, (std::vector<std::int64_t>{1, 3}));
  EXPECT_TRUE(c.contains(2));
}

TEST(ProcCache, InvalidateRemovesAndFreesSpace) {
  ProcCache c(20.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  c.insert(2, 10.0, collect(evicted));
  c.invalidate(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_DOUBLE_EQ(c.used(), 10.0);
  c.insert(3, 10.0, collect(evicted));  // fits without eviction
  EXPECT_TRUE(evicted.empty());
}

TEST(ProcCache, InvalidateAbsentIsNoop) {
  ProcCache c(20.0);
  c.invalidate(42);
  SUCCEED();
}

TEST(ProcCache, ClearEmptiesEverything) {
  ProcCache c(50.0);
  std::vector<std::int64_t> evicted;
  c.insert(1, 10.0, collect(evicted));
  c.insert(2, 10.0, collect(evicted));
  c.clear();
  EXPECT_EQ(c.resident_blocks(), 0u);
  EXPECT_DOUBLE_EQ(c.used(), 0.0);
}

// ------------------------------------------------------------ directory --

TEST(Directory, AddRemoveSharers) {
  Directory d;
  d.add_sharer(5, 0);
  d.add_sharer(5, 3);
  EXPECT_EQ(d.sharers(5), Directory::bit(0) | Directory::bit(3));
  d.remove_sharer(5, 0);
  EXPECT_EQ(d.sharers(5), Directory::bit(3));
}

TEST(Directory, UnknownBlockHasNoSharers) {
  Directory d;
  EXPECT_EQ(d.sharers(123), 0u);
}

TEST(Directory, MakeExclusiveReturnsInvalidatedSet) {
  Directory d;
  d.add_sharer(9, 0);
  d.add_sharer(9, 1);
  d.add_sharer(9, 2);
  const std::uint64_t others = d.make_exclusive(9, 1);
  EXPECT_EQ(others, Directory::bit(0) | Directory::bit(2));
  EXPECT_EQ(d.sharers(9), Directory::bit(1));
}

TEST(Directory, MakeExclusiveWhenSoleOwnerIsFree) {
  Directory d;
  d.add_sharer(9, 4);
  EXPECT_EQ(d.make_exclusive(9, 4), 0u);
}

TEST(Directory, Bit64Processors) {
  EXPECT_EQ(Directory::bit(63), 1ULL << 63);
}

}  // namespace
}  // namespace afs
