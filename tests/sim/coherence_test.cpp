// End-to-end coherence behaviour of the simulated memory system: the
// affinity phenomena are made of these small mechanisms, so each is
// pinned down by a scenario test on a transparent two-block program.
#include <gtest/gtest.h>

#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "workload/loop_spec.hpp"

namespace afs {
namespace {

MachineConfig tiny_machine() {
  MachineConfig m;
  m.name = "tiny";
  m.max_processors = 4;
  m.interconnect = Interconnect::kBus;
  m.work_unit_time = 1.0;
  m.cache_capacity = 100.0;
  m.miss_latency = 5.0;
  m.transfer_unit_time = 1.0;
  m.invalidate_time = 2.0;
  return m;  // zero sync costs, zero jitter: misses are the only overhead
}

/// One worker (P=1), `epochs` epochs, each iteration i touches block i of
/// size `size`, writing if `write`.
LoopProgram touch_program(std::int64_t n, int epochs, double size, bool write) {
  ParallelLoopSpec spec;
  spec.n = n;
  spec.work = [](std::int64_t) { return 1.0; };
  spec.footprint = [size, write](std::int64_t i, std::vector<BlockAccess>& out) {
    out.push_back({i, size, write});
  };
  LoopProgram p;
  p.name = "touch";
  p.epochs = epochs;
  p.epoch_loops = [spec](int) { return std::vector<ParallelLoopSpec>{spec}; };
  return p;
}

TEST(Coherence, ColdMissesThenWarmHits) {
  MachineSim sim(tiny_machine());
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(touch_program(10, 3, 5.0, false), *sched, 1);
  EXPECT_EQ(r.misses, 10);      // epoch 0 only
  EXPECT_EQ(r.hits, 20);        // epochs 1-2 fully resident
}

TEST(Coherence, CapacityEvictionCausesRepeatMisses) {
  MachineConfig m = tiny_machine();
  m.cache_capacity = 25.0;  // holds 5 of the 10 blocks
  MachineSim sim(m);
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(touch_program(10, 3, 5.0, false), *sched, 1);
  // LRU + sequential sweep = worst case: every access misses every epoch.
  EXPECT_EQ(r.misses, 30);
  EXPECT_EQ(r.hits, 0);
}

TEST(Coherence, MissCostIncludesLatencyAndTransfer) {
  MachineSim sim(tiny_machine());
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(touch_program(4, 1, 5.0, false), *sched, 1);
  // 4 iterations x 1 work + 4 misses x (5 latency + 5 transfer).
  EXPECT_DOUBLE_EQ(r.makespan, 4.0 + 4.0 * 10.0);
}

TEST(Coherence, WriteInvalidatesOtherCopies) {
  // Two processors, STATIC split of 2 iterations; both touch block 0:
  // iteration 0 (proc 0) writes it, iteration 1 (proc 1) reads it. Next
  // epoch proc 0's write must invalidate proc 1's copy, so proc 1 misses
  // again every epoch.
  MachineConfig m = tiny_machine();
  MachineSim sim(m);
  auto sched = make_scheduler("STATIC");
  ParallelLoopSpec spec;
  spec.n = 2;
  spec.work = [](std::int64_t) { return 100.0; };  // serialize phases cleanly
  spec.footprint = [](std::int64_t i, std::vector<BlockAccess>& out) {
    out.push_back({0, 5.0, i == 0});
  };
  LoopProgram prog;
  prog.name = "sharing";
  prog.epochs = 4;
  prog.epoch_loops = [spec](int) { return std::vector<ParallelLoopSpec>{spec}; };
  const SimResult r = sim.run(prog, *sched, 2);
  EXPECT_GE(r.invalidations, 3);  // one per epoch after the first
  EXPECT_GE(r.misses, 1 + 4);     // proc0 cold + proc1 re-fetch per epoch
}

TEST(Coherence, ReadSharingNeedsNoInvalidation) {
  MachineSim sim(tiny_machine());
  auto sched = make_scheduler("STATIC");
  ParallelLoopSpec spec;
  spec.n = 2;
  spec.work = [](std::int64_t) { return 1.0; };
  spec.footprint = [](std::int64_t, std::vector<BlockAccess>& out) {
    out.push_back({0, 5.0, false});  // both read block 0
  };
  LoopProgram prog;
  prog.name = "read-share";
  prog.epochs = 3;
  prog.epoch_loops = [spec](int) { return std::vector<ParallelLoopSpec>{spec}; };
  const SimResult r = sim.run(prog, *sched, 2);
  EXPECT_EQ(r.invalidations, 0);
  EXPECT_EQ(r.misses, 2);  // one cold miss per processor, then hits forever
}

TEST(Coherence, BusSerializesConcurrentMisses) {
  // 4 processors each miss one distinct block at t=0: transfers must
  // serialize on the bus (occupancy 5 each), so the last one finishes its
  // transfer at t >= 20.
  MachineSim sim(tiny_machine());
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(touch_program(4, 1, 5.0, false), *sched, 4);
  EXPECT_GE(r.makespan, 1.0 + 4.0 * 5.0);  // work + serialized transfers
  EXPECT_GT(r.comm, 3.0 * 5.0);            // waiting shows up as comm time
}

TEST(Coherence, SwitchDoesNotSerialize) {
  MachineConfig m = tiny_machine();
  m.interconnect = Interconnect::kSwitch;
  MachineSim sim(m);
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(touch_program(4, 1, 5.0, false), *sched, 4);
  // All four misses proceed in parallel: latency + transfer + work.
  EXPECT_DOUBLE_EQ(r.makespan, 1.0 + 5.0 + 5.0);
}

TEST(Coherence, StreamingBlockBypassesCache) {
  MachineConfig m = tiny_machine();
  m.cache_capacity = 3.0;  // smaller than the 5-unit block
  MachineSim sim(m);
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(touch_program(1, 3, 5.0, false), *sched, 1);
  EXPECT_EQ(r.misses, 3);  // never becomes resident
}

}  // namespace
}  // namespace afs
