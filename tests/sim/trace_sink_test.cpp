// JsonlTraceSink: the trace stream must be well-formed JSONL, must narrate
// the run completely (begin/end framing, every grab and miss), and —
// critically — attaching it must not perturb the simulation itself.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "sim/trace_sink.hpp"

namespace afs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

// Minimal structural JSON validator: balanced {} and [] outside strings,
// no trailing garbage. Enough to catch broken escaping or truncation
// without a JSON library in the test image.
bool looks_like_json_object(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\')
        ++i;  // skip escaped char
      else if (c == '"')
        in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0 && i + 1 != s.size()) return false;  // trailing junk
    }
  }
  return depth == 0 && !in_string;
}

int count_with_ev(const std::vector<std::string>& lines, const std::string& ev) {
  const std::string needle = "\"ev\":\"" + ev + "\"";
  int n = 0;
  for (const std::string& l : lines)
    if (l.find(needle) != std::string::npos) ++n;
  return n;
}

TEST(TraceSink, StreamIsWellFormedAndComplete) {
  std::ostringstream out;
  JsonlTraceSink sink(out);

  SimOptions opts;
  opts.trace = &sink;
  MachineSim sim(iris(), opts);
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(GaussKernel::program(32), *sched, 4);

  const auto lines = lines_of(out.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(static_cast<std::int64_t>(lines.size()), sink.lines_written());
  for (const std::string& l : lines)
    EXPECT_TRUE(looks_like_json_object(l)) << l;

  // Framing: exactly one run_begin / run_end, first and last.
  EXPECT_EQ(count_with_ev(lines, "run_begin"), 1);
  EXPECT_EQ(count_with_ev(lines, "run_end"), 1);
  EXPECT_NE(lines.front().find("\"ev\":\"run_begin\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"ev\":\"run_end\""), std::string::npos);

  // Gauss on 32 rows has 31 epochs, each one loop.
  EXPECT_EQ(count_with_ev(lines, "loop_begin"), 31);
  EXPECT_EQ(count_with_ev(lines, "loop_end"), 31);
  EXPECT_EQ(count_with_ev(lines, "barrier"), 31);

  // Narration completeness: one grab line per scheduler grab, one miss
  // line per cache miss, one done line per processor per loop.
  const std::int64_t grabs = r.local_grabs + r.remote_grabs + r.central_grabs;
  EXPECT_EQ(count_with_ev(lines, "grab"), grabs);
  EXPECT_EQ(count_with_ev(lines, "miss"), r.misses);
  EXPECT_EQ(count_with_ev(lines, "done"), 31 * 4);
}

TEST(TraceSink, TracingDoesNotPerturbTheRun) {
  auto run_once = [](MetricsSink* trace) {
    SimOptions opts;
    opts.trace = trace;
    MachineSim sim(ksr1(), opts);
    auto sched = make_scheduler("AFS");
    return sim.run(GaussKernel::program(64), *sched, 8);
  };
  std::ostringstream out;
  JsonlTraceSink sink(out);
  const SimResult traced = run_once(&sink);
  const SimResult plain = run_once(nullptr);

  EXPECT_EQ(traced.makespan, plain.makespan);
  EXPECT_EQ(traced.busy, plain.busy);
  EXPECT_EQ(traced.sync, plain.sync);
  EXPECT_EQ(traced.comm, plain.comm);
  EXPECT_EQ(traced.idle, plain.idle);
  EXPECT_EQ(traced.misses, plain.misses);
  EXPECT_EQ(traced.units_transferred, plain.units_transferred);
  EXPECT_EQ(traced.local_grabs, plain.local_grabs);
  EXPECT_EQ(traced.remote_grabs, plain.remote_grabs);
  EXPECT_GT(sink.lines_written(), 0);
}

TEST(TraceSink, SetTraceSinkAttachesAndDetaches) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  MachineSim sim(iris());
  auto sched = make_scheduler("GSS");

  sim.set_trace_sink(&sink);
  sim.run(GaussKernel::program(16), *sched, 2);
  const std::int64_t traced_lines = sink.lines_written();
  EXPECT_GT(traced_lines, 0);

  sim.set_trace_sink(nullptr);
  auto sched2 = make_scheduler("GSS");
  sim.run(GaussKernel::program(16), *sched2, 2);
  EXPECT_EQ(sink.lines_written(), traced_lines);  // nothing new
}

TEST(TraceSink, PathConstructorRejectsUnwritableFile) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent_dir_xyz/trace.jsonl"),
               std::runtime_error);
}

TEST(TraceSink, EscapesControlAndQuoteCharacters) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  MachineConfig m = iris();
  m.name = "we\"ird\\na\tme";
  sink.on_run_begin(m, "prog\nname", "sched", 2);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(looks_like_json_object(lines[0])) << lines[0];
  EXPECT_EQ(lines[0].find('\t'), std::string::npos);
}

}  // namespace
}  // namespace afs
