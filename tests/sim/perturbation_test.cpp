// Fault-injection subsystem tests: configuration validation, the
// determinism contract (fixed seed => bit-identical SimResults across runs
// and across batching on/off), graceful degradation under processor loss
// (AFS steal-on-loss draining, STATIC abandoned accounting), the extended
// conservation law, and the golden table for the rebased Table 2
// delayed-start experiment.
//
// The Table 2 goldens were captured from the pre-subsystem engine (values
// printed at %.17g): routing the start delay through PerturbationConfig
// must not move a single bit of the original experiment.
#include "sim/perturbation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "sim/trace_sink.hpp"
#include "util/check.hpp"

namespace afs {
namespace {

MachineConfig quiet(MachineConfig m) {
  m.epoch_jitter = 0.0;
  return m;
}

SimResult run_perturbed(const MachineConfig& m, const LoopProgram& prog,
                        const char* spec, int p, const PerturbationConfig& pc,
                        bool batch = true) {
  SimOptions opts;
  opts.perturb = pc;
  opts.batch_iterations = batch;
  MachineSim sim(m, opts);
  auto sched = make_scheduler(spec);
  return sim.run(prog, *sched, p);
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.busy, b.busy) << label;
  EXPECT_EQ(a.sync, b.sync) << label;
  EXPECT_EQ(a.comm, b.comm) << label;
  EXPECT_EQ(a.idle, b.idle) << label;
  EXPECT_EQ(a.barrier, b.barrier) << label;
  EXPECT_EQ(a.stall_time, b.stall_time) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.misses, b.misses) << label;
  EXPECT_EQ(a.invalidations, b.invalidations) << label;
  EXPECT_EQ(a.units_transferred, b.units_transferred) << label;
  EXPECT_EQ(a.local_grabs, b.local_grabs) << label;
  EXPECT_EQ(a.remote_grabs, b.remote_grabs) << label;
  EXPECT_EQ(a.central_grabs, b.central_grabs) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.lost_processor_count, b.lost_processor_count) << label;
  EXPECT_EQ(a.stolen_under_fault, b.stolen_under_fault) << label;
  EXPECT_EQ(a.abandoned_iterations, b.abandoned_iterations) << label;
}

/// A config exercising every fault family at once.
PerturbationConfig kitchen_sink() {
  PerturbationConfig pc;
  pc.seed = 2026;
  pc.stall_mean_interval = 3000.0;
  pc.stall_duration = 250.0;
  pc.losses.push_back({1, 20000.0});
  pc.mem_spike_prob = 0.1;
  pc.mem_spike_latency = 80.0;
  pc.burst_mean_interval = 8000.0;
  pc.burst_duration = 1500.0;
  pc.burst_multiplier = 3.0;
  return pc;
}

// ------------------------------ validation -------------------------------

TEST(PerturbationConfig, DefaultIsInactive) {
  PerturbationConfig pc;
  EXPECT_FALSE(pc.any());
  EXPECT_NO_THROW(pc.validate(8));
}

TEST(PerturbationConfig, ValidateNamesTheOffendingField) {
  PerturbationConfig pc;
  pc.stall_mean_interval = 100.0;  // stalls on but no duration
  try {
    pc.validate(8);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("stall_duration"), std::string::npos)
        << e.what();
  }
}

TEST(PerturbationConfig, ValidateRejectsBadValues) {
  {
    PerturbationConfig pc;
    pc.start_delays.assign(9, 0.0);  // more delays than processors
    EXPECT_THROW(pc.validate(8), CheckFailure);
  }
  {
    PerturbationConfig pc;
    pc.start_delays = {-1.0};
    EXPECT_THROW(pc.validate(8), CheckFailure);
  }
  {
    PerturbationConfig pc;
    pc.losses.push_back({8, 100.0});  // proc out of range
    EXPECT_THROW(pc.validate(8), CheckFailure);
  }
  {
    PerturbationConfig pc;
    pc.losses.push_back({0, -5.0});
    EXPECT_THROW(pc.validate(8), CheckFailure);
  }
  {
    PerturbationConfig pc;
    pc.mem_spike_prob = 1.5;
    EXPECT_THROW(pc.validate(8), CheckFailure);
  }
  {
    PerturbationConfig pc;
    pc.burst_mean_interval = 100.0;
    pc.burst_duration = 10.0;
    pc.burst_multiplier = 0.5;  // a burst must not speed the link up
    EXPECT_THROW(pc.validate(8), CheckFailure);
  }
}

TEST(SimOptions, RejectsBothDelayMechanisms) {
  SimOptions opts;
  opts.start_delays = {100.0};
  opts.perturb.start_delays = {200.0};
  EXPECT_THROW(MachineSim(quiet(iris()), opts), CheckFailure);
}

TEST(MachineConfigValidate, RejectsBadConfigs) {
  {
    MachineConfig m = iris();
    m.work_unit_time = 0.0;
    EXPECT_THROW(MachineSim sim(m), CheckFailure);
  }
  {
    MachineConfig m = iris();
    m.max_processors = 65;
    EXPECT_THROW(MachineSim sim(m), CheckFailure);
  }
  {
    MachineConfig m = iris();
    m.miss_latency = -1.0;
    EXPECT_THROW(m.validate(), CheckFailure);
  }
  EXPECT_NO_THROW(iris().validate());
  EXPECT_NO_THROW(symmetry().validate());
  EXPECT_NO_THROW(butterfly1().validate());
  EXPECT_NO_THROW(ksr1().validate());
  EXPECT_NO_THROW(tc2000().validate());
}

// --------------------------- start-delay shim ----------------------------

TEST(Perturbation, LegacyStartDelaysShimIsBitIdentical) {
  // The deprecated SimOptions::start_delays path must produce exactly what
  // routing the same delays through PerturbationConfig produces.
  const LoopProgram prog = balanced_program(100000);
  for (const char* spec : {"AFS", "GSS", "STATIC"}) {
    SimOptions legacy;
    legacy.start_delays = {12500.0, 0.0, 0.0, 3000.0};
    MachineSim sim_legacy(quiet(iris()), legacy);
    auto s1 = make_scheduler(spec);
    const SimResult a = sim_legacy.run(prog, *s1, 4);

    PerturbationConfig pc;
    pc.start_delays = {12500.0, 0.0, 0.0, 3000.0};
    const SimResult b = run_perturbed(quiet(iris()), prog, spec, 4, pc);
    expect_identical(a, b, spec);
  }
}

TEST(Perturbation, StartDelayIsChargedToStallTime) {
  PerturbationConfig pc;
  pc.start_delays = {5000.0, 0.0};
  const SimResult r =
      run_perturbed(quiet(iris()), balanced_program(10000), "GSS", 2, pc);
  EXPECT_EQ(r.stall_time, 5000.0);
  EXPECT_TRUE(check_time_identity(r, 2));
}

// ----------------------------- determinism -------------------------------

TEST(Perturbation, SameSeedSameResultAcrossRuns) {
  const LoopProgram prog = SorKernel::program(64, 3);
  const PerturbationConfig pc = kitchen_sink();
  const SimResult a = run_perturbed(quiet(iris()), prog, "AFS", 4, pc);
  const SimResult b = run_perturbed(quiet(iris()), prog, "AFS", 4, pc);
  expect_identical(a, b, "same seed, same run");
  EXPECT_GT(a.stall_time, 0.0);
  EXPECT_EQ(a.lost_processor_count, 1);
}

TEST(Perturbation, DifferentSeedsDiverge) {
  PerturbationConfig pc;
  pc.stall_mean_interval = 2000.0;
  pc.stall_duration = 300.0;
  const LoopProgram prog = SorKernel::program(64, 3);
  const SimResult a = run_perturbed(quiet(iris()), prog, "AFS", 4, pc);
  pc.seed ^= 1;
  const SimResult b = run_perturbed(quiet(iris()), prog, "AFS", 4, pc);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Perturbation, BatchingOnOffBitIdenticalPerFaultFamily) {
  // The core batching invariant must survive each fault family alone and
  // all of them together, on a footprint kernel and a footprint-free one.
  std::vector<std::pair<std::string, PerturbationConfig>> cases;
  {
    PerturbationConfig pc;
    pc.stall_mean_interval = 2500.0;
    pc.stall_duration = 200.0;
    cases.emplace_back("stalls", pc);
  }
  {
    PerturbationConfig pc;
    pc.losses.push_back({0, 15000.0});
    cases.emplace_back("loss", pc);
  }
  {
    PerturbationConfig pc;
    pc.mem_spike_prob = 0.2;
    pc.mem_spike_latency = 60.0;
    cases.emplace_back("spikes", pc);
  }
  {
    PerturbationConfig pc;
    pc.burst_mean_interval = 5000.0;
    pc.burst_duration = 1000.0;
    pc.burst_multiplier = 4.0;
    cases.emplace_back("bursts", pc);
  }
  cases.emplace_back("kitchen-sink", kitchen_sink());

  const LoopProgram sor = SorKernel::program(64, 2);
  const LoopProgram balanced = balanced_program(50000);
  for (const auto& [name, pc] : cases) {
    for (const char* spec : {"AFS", "GSS", "STATIC"}) {
      const SimResult on = run_perturbed(quiet(iris()), sor, spec, 4, pc, true);
      const SimResult off =
          run_perturbed(quiet(iris()), sor, spec, 4, pc, false);
      expect_identical(on, off, name + "/sor/" + spec);

      const SimResult on_b =
          run_perturbed(quiet(iris()), balanced, spec, 4, pc, true);
      const SimResult off_b =
          run_perturbed(quiet(iris()), balanced, spec, 4, pc, false);
      expect_identical(on_b, off_b, name + "/balanced/" + spec);
    }
  }
}

TEST(Perturbation, InactiveConfigMatchesDefaultEngine) {
  // A constructed-but-empty PerturbationConfig must not perturb anything.
  const LoopProgram prog = GaussKernel::program(64);
  SimOptions plain;
  MachineSim sim_plain(iris(), plain);
  auto s1 = make_scheduler("AFS");
  const SimResult a = sim_plain.run(prog, *s1, 4);
  const SimResult b =
      run_perturbed(iris(), prog, "AFS", 4, PerturbationConfig{});
  expect_identical(a, b, "inactive perturbation");
  EXPECT_EQ(b.stall_time, 0.0);
  EXPECT_EQ(b.lost_processor_count, 0);
  EXPECT_EQ(b.stolen_under_fault, 0);
  EXPECT_EQ(b.abandoned_iterations, 0);
}

// ------------------------- graceful degradation --------------------------

TEST(Perturbation, AfsStealsDeadProcessorsQueue) {
  // Kill processor 0 a quarter of the way in: the survivors must drain its
  // local queue (steal-on-loss) and the loop must complete everything
  // except the chunk that died in flight.
  PerturbationConfig pc;
  pc.losses.push_back({0, 30000.0});
  const SimResult r =
      run_perturbed(quiet(iris()), balanced_program(1000000), "AFS", 4, pc);
  EXPECT_EQ(r.lost_processor_count, 1);
  EXPECT_GT(r.stolen_under_fault, 0);
  EXPECT_TRUE(check_time_identity(r, 4));
  // AFS loses at most the in-flight chunk; the queued work is all stolen.
  EXPECT_LT(r.abandoned_iterations, 1000000 / 4);
}

TEST(Perturbation, StaticReportsAbandonedWork) {
  // A footprint kernel executes iteration by iteration, so the death lands
  // mid-allotment. (A footprint-free balanced loop would not do: STATIC's
  // whole per-processor share is one analytic chunk, atomic w.r.t. faults.)
  const LoopProgram prog = GaussKernel::program(256);
  const SimResult plain =
      run_perturbed(quiet(iris()), prog, "STATIC", 4, PerturbationConfig{});
  PerturbationConfig pc;
  pc.losses.push_back({0, 0.3 * plain.makespan});
  const SimResult r = run_perturbed(quiet(iris()), prog, "STATIC", 4, pc);
  EXPECT_EQ(r.lost_processor_count, 1);
  EXPECT_EQ(r.stolen_under_fault, 0);  // STATIC has nothing to steal with
  EXPECT_GT(r.abandoned_iterations, 0);
  EXPECT_TRUE(check_time_identity(r, 4));
}

TEST(Perturbation, MidChunkDeathEmitsTruncatedChunkRecord) {
  // A processor dying mid-chunk used to vanish from the trace: its
  // executed iterations were narrated per-iteration but never closed with
  // a chunk record, so chunk-level consumers undercounted. The engine now
  // emits a truncated [first, current) chunk record at the death boundary
  // — a trace-only change (SimResult and CSV goldens are untouched), and
  // byte-identical between the batched and unbatched engines.
  const LoopProgram prog = GaussKernel::program(256);
  const SimResult plain =
      run_perturbed(quiet(iris()), prog, "STATIC", 4, PerturbationConfig{});
  PerturbationConfig pc;
  pc.losses.push_back({0, 0.3 * plain.makespan});  // lands mid-allotment

  auto traced = [&](bool batch, std::string* text) {
    std::ostringstream out;
    JsonlTraceSink sink(out);
    SimOptions opts;
    opts.perturb = pc;
    opts.batch_iterations = batch;
    opts.trace = &sink;
    MachineSim sim(quiet(iris()), opts);
    auto sched = make_scheduler("STATIC");
    const SimResult r = sim.run(prog, *sched, 4);
    *text = out.str();
    return r;
  };

  std::string batched_trace, unbatched_trace;
  const SimResult a = traced(true, &batched_trace);
  const SimResult b = traced(false, &unbatched_trace);
  expect_identical(a, b, "mid-chunk death");
  EXPECT_EQ(batched_trace, unbatched_trace);
  ASSERT_EQ(a.lost_processor_count, 1);
  ASSERT_GT(a.abandoned_iterations, 0);  // really died holding a chunk

  // Conservation over the trace: every iteration of every epoch is either
  // narrated inside exactly one chunk record or counted as abandoned.
  // The dead processor's partially-executed chunk sits on that boundary —
  // its executed prefix is covered only by the truncated record (without
  // it the narrated side comes up short by exactly those iterations).
  std::int64_t narrated = 0, total_n = 0;
  std::istringstream in(batched_trace);
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"ev\":\"chunk\"") != std::string::npos) {
      const auto bpos = line.find("\"begin\":");
      const auto epos = line.find("\"end\":");
      ASSERT_NE(bpos, std::string::npos) << line;
      ASSERT_NE(epos, std::string::npos) << line;
      narrated += std::stoll(line.substr(epos + 6)) -
                  std::stoll(line.substr(bpos + 8));
    } else if (line.find("\"ev\":\"loop_begin\"") != std::string::npos) {
      const auto npos = line.find("\"n\":");
      ASSERT_NE(npos, std::string::npos) << line;
      total_n += std::stoll(line.substr(npos + 4));
    }
  }
  EXPECT_EQ(narrated + a.abandoned_iterations, total_n);
  // SimResult::iterations counts *grabbed* work, so it exceeds the
  // narrated (executed) side by the dead processor's in-flight remainder.
  EXPECT_LT(narrated, a.iterations);
}

TEST(Perturbation, CentralQueueDrainsNaturallyOnLoss) {
  // A central-queue scheduler simply never hands the dead processor
  // another chunk; the survivors drain the queue. Only the in-flight
  // chunk can be lost.
  PerturbationConfig pc;
  pc.losses.push_back({0, 30000.0});
  const SimResult r =
      run_perturbed(quiet(iris()), balanced_program(1000000), "GSS", 4, pc);
  EXPECT_EQ(r.lost_processor_count, 1);
  EXPECT_TRUE(check_time_identity(r, 4));
  EXPECT_LT(r.abandoned_iterations, 1000000 / 4);
}

TEST(Perturbation, LossBeforeStartIdlesProcessorForWholeRun) {
  PerturbationConfig pc;
  pc.losses.push_back({2, 0.0});  // dead on arrival
  const SimResult r =
      run_perturbed(quiet(iris()), SorKernel::program(64, 3), "AFS", 4, pc);
  EXPECT_EQ(r.lost_processor_count, 1);
  EXPECT_TRUE(check_time_identity(r, 4));
}

TEST(Perturbation, AllProcessorsLostStillTerminates) {
  PerturbationConfig pc;
  for (int i = 0; i < 4; ++i) pc.losses.push_back({i, 100.0});
  const SimResult r =
      run_perturbed(quiet(iris()), balanced_program(100000), "AFS", 4, pc);
  EXPECT_EQ(r.lost_processor_count, 4);
  EXPECT_GT(r.abandoned_iterations, 0);
}

TEST(Perturbation, LossPersistsAcrossEpochs) {
  // A processor lost in epoch 0 must stay dead for every later epoch; its
  // per-epoch seeded queue keeps being stolen (AFS) each epoch.
  PerturbationConfig pc;
  pc.losses.push_back({1, 1000.0});
  const SimResult r =
      run_perturbed(quiet(iris()), SorKernel::program(128, 6), "AFS", 4, pc);
  EXPECT_EQ(r.lost_processor_count, 1);  // counted once, not per epoch
  EXPECT_GT(r.stolen_under_fault, 0);
  EXPECT_TRUE(check_time_identity(r, 4));
}

// ----------------------------- conservation ------------------------------

TEST(Perturbation, ExtendedConservationUnderEveryFaultFamily) {
  const LoopProgram prog = SorKernel::program(64, 2);
  const PerturbationConfig pc = kitchen_sink();
  for (const MachineConfig& base : {iris(), symmetry(), ksr1()}) {
    for (const char* spec : {"AFS", "GSS", "FACTORING", "STATIC"}) {
      const SimResult r = run_perturbed(quiet(base), prog, spec, 4, pc);
      EXPECT_TRUE(check_time_identity(r, 4))
          << base.name << "/" << spec << ": accounted " << accounted_time(r)
          << " vs " << 4.0 * r.makespan;
      EXPECT_GT(r.stall_time, 0.0) << base.name << "/" << spec;
    }
  }
}

TEST(Perturbation, StallsExtendMakespan) {
  PerturbationConfig pc;
  pc.stall_mean_interval = 2000.0;
  pc.stall_duration = 400.0;
  const LoopProgram prog = balanced_program(100000);
  const SimResult plain =
      run_perturbed(quiet(iris()), prog, "GSS", 4, PerturbationConfig{});
  const SimResult stalled = run_perturbed(quiet(iris()), prog, "GSS", 4, pc);
  EXPECT_GT(stalled.makespan, plain.makespan);
  EXPECT_GT(stalled.stall_time, 0.0);
}

TEST(Perturbation, MemoryFaultsChargeCommNotStall) {
  PerturbationConfig pc;
  pc.mem_spike_prob = 0.3;
  pc.mem_spike_latency = 100.0;
  pc.burst_mean_interval = 4000.0;
  pc.burst_duration = 800.0;
  pc.burst_multiplier = 4.0;
  const LoopProgram prog = SorKernel::program(64, 2);
  const SimResult plain =
      run_perturbed(quiet(iris()), prog, "AFS", 4, PerturbationConfig{});
  const SimResult faulted = run_perturbed(quiet(iris()), prog, "AFS", 4, pc);
  EXPECT_GT(faulted.comm, plain.comm);
  EXPECT_EQ(faulted.stall_time, 0.0);  // memory faults are comm, not stalls
  EXPECT_TRUE(check_time_identity(faulted, 4));
}

// ------------------- golden: rebased Table 2 experiment ------------------
//
// Captured from the engine before the perturbation subsystem existed
// (balanced loop N=1e6, P=8, Iris with epoch_jitter=0, processor 0 delayed
// by frac*N): the rebased delay path must reproduce every value exactly.

struct Tab2Golden {
  double frac;
  const char* spec;
  double makespan, busy, idle;
  std::int64_t remote_grabs, iterations;
};

TEST(Perturbation, RebasedTab2GoldenTable) {
  const std::vector<Tab2Golden> goldens = {
      {0.0625, "GSS", 134044, 1000000, 700, 0, 1000000},
      {0.125, "GSS", 141860, 1000000, 700, 0, 1000000},
      {0.25, "GSS", 250130, 1000000, 742483, 0, 1000000},
      {0.0625, "TRAPEZOID", 133447, 1000000, 2735, 0, 1000000},
      {0.125, "TRAPEZOID", 143403, 1000000, 19883, 0, 1000000},
      {0.25, "TRAPEZOID", 250130, 1000000, 748699, 0, 1000000},
      {0.0625, "FACTORING", 134503, 1000000, 700, 0, 1000000},
      {0.125, "FACTORING", 142315, 1000000, 700, 0, 1000000},
      {0.25, "FACTORING", 250130, 1000000, 739326, 0, 1000000},
      {0.0625, "AFS(k=2)", 156400, 1000000, 179242, 67, 1000000},
      {0.125, "AFS(k=2)", 187640, 1000000, 366457, 72, 1000000},
      {0.25, "AFS(k=2)", 250130, 1000000, 740887, 77, 1000000},
      {0.0625, "AFS", 134645, 1000000, 654, 63, 1000000},
      {0.125, "AFS", 142490, 1000000, 669, 69, 1000000},
      {0.25, "AFS", 250130, 1000000, 736687, 77, 1000000},
  };
  const std::int64_t n = 1000000;
  const LoopProgram prog = balanced_program(n);
  for (const Tab2Golden& g : goldens) {
    PerturbationConfig pc;
    pc.start_delays.assign(8, 0.0);
    pc.start_delays[0] = g.frac * static_cast<double>(n);
    const SimResult r = run_perturbed(quiet(iris()), prog, g.spec, 8, pc);
    const std::string label =
        std::string(g.spec) + " frac=" + std::to_string(g.frac);
    EXPECT_EQ(r.makespan, g.makespan) << label;
    EXPECT_EQ(r.busy, g.busy) << label;
    EXPECT_EQ(r.idle, g.idle) << label;
    EXPECT_EQ(r.remote_grabs, g.remote_grabs) << label;
    EXPECT_EQ(r.iterations, g.iterations) << label;
    // The rebase also closes Table 2's old accounting hole: the delay is
    // now visible as stall_time and conservation is exact.
    EXPECT_EQ(r.stall_time, g.frac * static_cast<double>(n)) << label;
    EXPECT_TRUE(check_time_identity(r, 8)) << label;
  }
}

}  // namespace
}  // namespace afs
