// Randomized property test for the horizon-batched execution path and the
// MemorySystem exclusive-residency fast path: for footprint-carrying loops
// the engine must produce bit-identical SimResults with batching on or off
// and with the fast path on or off, on every machine model and scheduler,
// with and without injected faults. The reference point is always the
// fully-disabled configuration (no batching, no fast path) — the plain
// per-iteration / full-MSI engine.
//
// Programs and processor counts are drawn from a fixed-seed RNG so the
// test sweeps a different-but-reproducible corner of the space on every
// run of the binary (same seed => same corners; failures are replayable).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"
#include "sim/perturbation.hpp"

namespace afs {
namespace {

MachineConfig quiet(MachineConfig m) {
  m.epoch_jitter = 0.0;
  return m;
}

SimResult run_one(const MachineConfig& m, const LoopProgram& prog,
                  const std::string& spec, int p, bool batch, bool fast,
                  const PerturbationConfig* pc, bool calendar = true) {
  SimOptions opts;
  opts.batch_iterations = batch;
  opts.memory_fast_path = fast;
  opts.calendar_queue = calendar;
  if (pc != nullptr) opts.perturb = *pc;
  MachineSim sim(m, opts);
  auto sched = make_scheduler(spec);
  return sim.run(prog, *sched, p);
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.busy, b.busy) << label;
  EXPECT_EQ(a.sync, b.sync) << label;
  EXPECT_EQ(a.comm, b.comm) << label;
  EXPECT_EQ(a.idle, b.idle) << label;
  EXPECT_EQ(a.barrier, b.barrier) << label;
  EXPECT_EQ(a.stall_time, b.stall_time) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.misses, b.misses) << label;
  EXPECT_EQ(a.invalidations, b.invalidations) << label;
  EXPECT_EQ(a.units_transferred, b.units_transferred) << label;
  EXPECT_EQ(a.local_grabs, b.local_grabs) << label;
  EXPECT_EQ(a.remote_grabs, b.remote_grabs) << label;
  EXPECT_EQ(a.central_grabs, b.central_grabs) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.lost_processor_count, b.lost_processor_count) << label;
  EXPECT_EQ(a.stolen_under_fault, b.stolen_under_fault) << label;
  EXPECT_EQ(a.abandoned_iterations, b.abandoned_iterations) << label;
}

/// Runs the engine configurations and checks the optimized ones against
/// the fully-disabled reference: no batching, no fast path, and the
/// reference binary-heap event queue instead of the calendar ring.
void check_all_modes(const MachineConfig& m, const LoopProgram& prog,
                     const std::string& spec, int p, const std::string& label,
                     const PerturbationConfig* pc = nullptr) {
  const SimResult ref =
      run_one(m, prog, spec, p, false, false, pc, /*calendar=*/false);
  expect_identical(ref, run_one(m, prog, spec, p, true, false, pc),
                   label + " [batch]");
  expect_identical(ref, run_one(m, prog, spec, p, false, true, pc),
                   label + " [fastpath]");
  expect_identical(ref, run_one(m, prog, spec, p, true, true, pc),
                   label + " [batch+fastpath]");
  expect_identical(ref,
                   run_one(m, prog, spec, p, true, true, pc,
                           /*calendar=*/false),
                   label + " [batch+fastpath, heap queue]");
}

/// A random footprint-carrying program: gauss and SOR touch real blocks
/// (so the memory fast path is on the hot path); the synthetic shapes are
/// footprint-free (so the coalescing branch stays covered too).
LoopProgram random_program(std::mt19937& rng) {
  switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
    case 0:
      return GaussKernel::program(
          std::uniform_int_distribution<std::int64_t>(32, 96)(rng));
    case 1:
      return SorKernel::program(
          std::uniform_int_distribution<std::int64_t>(24, 64)(rng),
          std::uniform_int_distribution<int>(1, 3)(rng));
    case 2:
      return triangular_program(
          std::uniform_int_distribution<std::int64_t>(200, 800)(rng));
    default:
      return balanced_program(
          std::uniform_int_distribution<std::int64_t>(500, 2000)(rng));
  }
}

TEST(BatchingEquivalence, RandomProgramsAllMachinesAllSchedulers) {
  std::mt19937 rng(0xAF5u);  // fixed seed: failures replay exactly
  const std::vector<MachineConfig> machines = {
      quiet(iris()), quiet(symmetry()), quiet(butterfly1()), quiet(ksr1())};
  for (const MachineConfig& m : machines) {
    for (const std::string& spec : paper_scheduler_specs()) {
      const LoopProgram prog = random_program(rng);
      const int p = std::uniform_int_distribution<int>(
          2, std::min(m.max_processors, 8))(rng);
      check_all_modes(m, prog, spec, p,
                      m.name + "/" + spec + "/" + prog.name +
                          "/P=" + std::to_string(p));
    }
  }
}

TEST(BatchingEquivalence, AdaptiveSchedulersAllMachines) {
  // The feedback channel (Scheduler::report) fires at chunk-completion
  // boundaries that both engine modes visit at identical clocks, so the
  // adaptive schedulers must be bit-identical across every toggle too —
  // even though their next() decisions depend on earlier report() calls.
  std::mt19937 rng(0xADA9u);
  const std::vector<MachineConfig> machines = {
      quiet(iris()), quiet(symmetry()), quiet(butterfly1()), quiet(ksr1())};
  for (const MachineConfig& m : machines) {
    for (const std::string& spec : adaptive_scheduler_specs()) {
      const LoopProgram prog = random_program(rng);
      const int p = std::uniform_int_distribution<int>(
          2, std::min(m.max_processors, 8))(rng);
      check_all_modes(m, prog, spec, p,
                      m.name + "/" + spec + "/" + prog.name +
                          "/P=" + std::to_string(p));
    }
  }
}

TEST(BatchingEquivalence, HighProcessorCountOnKsr1) {
  // The horizon hoist pays off (and is riskiest) when many processors
  // interleave; pin one dense-footprint case at a high P.
  const LoopProgram prog = GaussKernel::program(96);
  for (const char* spec : {"AFS", "GSS", "STATIC"}) {
    check_all_modes(quiet(ksr1()), prog, spec, 32,
                    std::string("ksr1/") + spec + "/gauss96/P=32");
  }
}

TEST(BatchingEquivalence, EpochBatchWarmReuseMatchesColdRuns) {
  // epoch_batch (SimOptions, default on) lets one MachineSim carry its
  // warmed allocations — event ring, per-processor caches, scratch —
  // across run() calls, the sweep runner's multi-run steady state. The
  // simulated state must still start cold every run: a warmed sim's Nth
  // run must be bit-identical to a cold sim's only run for the same cell,
  // even as the program, scheduler, and processor count change between
  // rounds (shrinking and regrowing the cache array in place).
  std::mt19937 rng(0xE90Cu);
  const MachineConfig m = quiet(ksr1());
  SimOptions opts;  // defaults: batching, fast path, calendar, epoch_batch
  MachineSim warm(m, opts);
  std::vector<std::string> specs = paper_scheduler_specs();
  for (const std::string& s : adaptive_scheduler_specs()) specs.push_back(s);
  for (int round = 0; round < 12; ++round) {
    const LoopProgram prog = random_program(rng);
    const std::string& spec =
        specs[std::uniform_int_distribution<std::size_t>(0, specs.size() - 1)(
            rng)];
    const int p = std::uniform_int_distribution<int>(
        2, std::min(m.max_processors, 16))(rng);
    auto sched_warm = make_scheduler(spec);
    const SimResult reused = warm.run(prog, *sched_warm, p);
    MachineSim cold(m, opts);
    auto sched_cold = make_scheduler(spec);
    const SimResult fresh = cold.run(prog, *sched_cold, p);
    expect_identical(fresh, reused,
                     "warm-reuse round " + std::to_string(round) + " " + spec +
                         "/" + prog.name + "/P=" + std::to_string(p));
  }
}

TEST(BatchingEquivalence, UnderKitchenSinkFaults) {
  // Every fault family at once: deaths mid-chunk, link bursts, memory
  // spikes, stalls. The batched path must bail to exact per-iteration
  // probing wherever faults make the horizon argument unsound.
  PerturbationConfig pc;
  pc.seed = 2026;
  pc.stall_mean_interval = 3000.0;
  pc.stall_duration = 250.0;
  pc.losses.push_back({1, 20000.0});
  pc.mem_spike_prob = 0.1;
  pc.mem_spike_latency = 80.0;
  pc.burst_mean_interval = 8000.0;
  pc.burst_duration = 1500.0;
  pc.burst_multiplier = 3.0;

  std::mt19937 rng(0xFA17u);
  const std::vector<MachineConfig> machines = {
      quiet(iris()), quiet(symmetry()), quiet(butterfly1()), quiet(ksr1())};
  for (const MachineConfig& m : machines) {
    for (const char* spec : {"AFS", "GSS", "STATIC", "ADAPT", "TAILOR(0.5)",
                             "WORKSHARE", "AFS-NN"}) {
      const LoopProgram prog = random_program(rng);
      const int p = std::uniform_int_distribution<int>(
          2, std::min(m.max_processors, 8))(rng);
      check_all_modes(m, prog, spec, p,
                      m.name + "/" + spec + "/" + prog.name +
                          "/P=" + std::to_string(p) + "/faulted",
                      &pc);
    }
  }
}

}  // namespace
}  // namespace afs
