#include "sim/interconnect.hpp"

#include <gtest/gtest.h>

namespace afs {
namespace {

TEST(ResourceTimeline, IdleResourceStartsImmediately) {
  ResourceTimeline r;
  EXPECT_DOUBLE_EQ(r.acquire(10.0, 5.0), 15.0);
}

TEST(ResourceTimeline, BusyResourceQueues) {
  ResourceTimeline r;
  r.acquire(0.0, 10.0);             // busy until 10
  EXPECT_DOUBLE_EQ(r.acquire(3.0, 5.0), 15.0);  // waits 7, then 5
}

TEST(ResourceTimeline, FcfsSerialization) {
  ResourceTimeline r;
  double t1 = r.acquire(0.0, 2.0);
  double t2 = r.acquire(0.0, 2.0);
  double t3 = r.acquire(0.0, 2.0);
  EXPECT_DOUBLE_EQ(t1, 2.0);
  EXPECT_DOUBLE_EQ(t2, 4.0);
  EXPECT_DOUBLE_EQ(t3, 6.0);
}

TEST(ResourceTimeline, LateRequestAfterIdleGap) {
  ResourceTimeline r;
  r.acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(r.acquire(100.0, 1.0), 101.0);
}

TEST(ResourceTimeline, ResetClearsBacklog) {
  ResourceTimeline r;
  r.acquire(0.0, 100.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.acquire(0.0, 1.0), 1.0);
}

TEST(ResourceTimeline, ZeroDurationIsFree) {
  ResourceTimeline r;
  EXPECT_DOUBLE_EQ(r.acquire(5.0, 0.0), 5.0);
}

TEST(ResourceTimeline, SaturationThroughputBounded) {
  // P requesters each needing the resource for 1 unit per 2 units of
  // compute: with P=4 the resource is the bottleneck; total span for 100
  // transfers is >= 100 units regardless of requester parallelism.
  ResourceTimeline r;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) last = r.acquire(0.0, 1.0);
  EXPECT_DOUBLE_EQ(last, 100.0);
}

}  // namespace
}  // namespace afs
