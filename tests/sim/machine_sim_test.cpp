#include "sim/machine_sim.hpp"

#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"

namespace afs {
namespace {

// A frictionless machine: work costs time, everything else is free.
MachineConfig ideal_machine() {
  MachineConfig m;
  m.name = "ideal";
  m.max_processors = 64;
  m.work_unit_time = 1.0;
  m.local_sync_time = 0.0;
  m.remote_sync_time = 0.0;
  return m;
}

TEST(MachineSim, SerialBalancedLoopTakesTotalWork) {
  MachineSim sim(ideal_machine());
  auto sched = make_scheduler("STATIC");
  const auto prog = balanced_program(1000, 2.0);
  const SimResult r = sim.run(prog, *sched, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 2000.0);
  EXPECT_EQ(r.iterations, 1000);
}

TEST(MachineSim, PerfectSpeedupOnIdealMachine) {
  MachineSim sim(ideal_machine());
  const auto prog = balanced_program(1024);
  for (int p : {2, 4, 8}) {
    auto sched = make_scheduler("STATIC");
    const SimResult r = sim.run(prog, *sched, p);
    EXPECT_NEAR(r.makespan, 1024.0 / p, 1e-9) << "P=" << p;
  }
}

TEST(MachineSim, IdealSerialTimeMatchesWorkSum) {
  MachineSim sim(ideal_machine());
  EXPECT_DOUBLE_EQ(sim.ideal_serial_time(balanced_program(100, 3.0)), 300.0);
  EXPECT_DOUBLE_EQ(sim.ideal_serial_time(triangular_program(100)), 5050.0);
}

TEST(MachineSim, DeterministicAcrossRuns) {
  MachineSim sim(iris());
  const auto prog = triangular_program(500);
  auto s1 = make_scheduler("GSS");
  auto s2 = make_scheduler("GSS");
  const SimResult a = sim.run(prog, *s1, 4);
  const SimResult b = sim.run(prog, *s2, 4);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.central_grabs, b.central_grabs);
}

TEST(MachineSim, JitterSeedChangesTiming) {
  SimOptions o1, o2;
  o1.jitter_seed = 1;
  o2.jitter_seed = 2;
  MachineSim sim1(iris(), o1), sim2(iris(), o2);
  const auto prog = triangular_program(500);
  auto s1 = make_scheduler("GSS");
  auto s2 = make_scheduler("GSS");
  EXPECT_NE(sim1.run(prog, *s1, 4).makespan, sim2.run(prog, *s2, 4).makespan);
}

TEST(MachineSim, SyncCostsAccumulate) {
  MachineConfig m = ideal_machine();
  m.remote_sync_time = 10.0;
  MachineSim sim(m);
  auto sched = make_scheduler("SS");  // one central op per iteration
  const SimResult r = sim.run(balanced_program(100), *sched, 1);
  // 100 grabs x 10 units of sync + 100 units of work.
  EXPECT_DOUBLE_EQ(r.sync, 1000.0);
  EXPECT_DOUBLE_EQ(r.makespan, 1100.0);
}

TEST(MachineSim, CentralQueueSerializesUnderContention) {
  // With sync = work, P self-scheduling processors convoy on the queue:
  // makespan is bounded below by N * sync_time.
  MachineConfig m = ideal_machine();
  m.remote_sync_time = 1.0;
  MachineSim sim(m);
  auto sched = make_scheduler("SS");
  const SimResult r = sim.run(balanced_program(1000), *sched, 8);
  EXPECT_GE(r.makespan, 1000.0);
}

TEST(MachineSim, StaticHasZeroSyncTime) {
  MachineConfig m = ideal_machine();
  m.remote_sync_time = 50.0;
  m.local_sync_time = 50.0;
  MachineSim sim(m);
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(balanced_program(800), *sched, 4);
  EXPECT_DOUBLE_EQ(r.sync, 0.0);
}

TEST(MachineSim, WorkSumFastPathMatchesPerIteration) {
  // The analytic-chunk fast path must agree with per-iteration charging.
  MachineSim sim(ideal_machine());
  auto prog_fast = triangular_program(300);
  LoopProgram prog_slow = prog_fast;
  const auto base = prog_slow.epoch_loops;
  prog_slow.epoch_loops = [base](int e) {
    auto loops = base(e);
    for (auto& l : loops) l.work_sum = nullptr;  // force the slow path
    return loops;
  };
  auto s1 = make_scheduler("GSS");
  auto s2 = make_scheduler("GSS");
  EXPECT_NEAR(sim.run(prog_fast, *s1, 4).makespan,
              sim.run(prog_slow, *s2, 4).makespan, 1e-6);
}

TEST(MachineSim, BarrierCostPerEpoch) {
  MachineConfig m = ideal_machine();
  m.barrier_base = 7.0;
  MachineSim sim(m);
  auto sched = make_scheduler("STATIC");
  LoopProgram prog = balanced_program(100);
  prog.epochs = 5;
  const SimResult r = sim.run(prog, *sched, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 5 * 100.0 + 5 * 7.0);
}

TEST(MachineSim, DelayedStartShiftsCompletion) {
  MachineSim sim_base(ideal_machine());
  SimOptions delayed;
  delayed.start_delays = {0.0, 500.0};
  MachineSim sim_delayed(ideal_machine(), delayed);
  const auto prog = balanced_program(1000);
  auto s1 = make_scheduler("STATIC");
  auto s2 = make_scheduler("STATIC");
  const double t0 = sim_base.run(prog, *s1, 2).makespan;
  const double t1 = sim_delayed.run(prog, *s2, 2).makespan;
  EXPECT_DOUBLE_EQ(t0, 500.0);
  EXPECT_DOUBLE_EQ(t1, 1000.0);  // delayed worker finishes at 500+500
}

TEST(MachineSim, DynamicSchedulerAbsorbsDelayBetter) {
  // The §4.5 premise: with GSS, a delayed processor's work is picked up by
  // the others, so the delay costs far less than under STATIC.
  SimOptions delayed;
  delayed.start_delays = {0.0, 400.0};
  MachineSim sim(ideal_machine(), delayed);
  const auto prog = balanced_program(1000);
  auto st = make_scheduler("STATIC");
  auto gss = make_scheduler("GSS");
  const double t_static = sim.run(prog, *st, 2).makespan;
  const double t_gss = sim.run(prog, *gss, 2).makespan;
  EXPECT_LT(t_gss, t_static - 100.0);
}

TEST(MachineSim, RejectsTooManyProcessors) {
  MachineSim sim(iris());  // max 8
  auto sched = make_scheduler("GSS");
  EXPECT_THROW(sim.run(balanced_program(10), *sched, 9), CheckFailure);
}

TEST(MachineSim, SchedStatsCaptured) {
  MachineSim sim(ideal_machine());
  auto sched = make_scheduler("SS");
  const SimResult r = sim.run(balanced_program(64), *sched, 2);
  EXPECT_EQ(r.sched_stats.total().total_grabs(), 64);
}

}  // namespace
}  // namespace afs
