// Randomized equivalence test for the two EventCore representations: the
// calendar ring (default) and the reference binary heap must drain
// bit-identical (time, processor) sequences through millions of mixed
// operations — push, fused push_pop, pop — including duplicate
// timestamps, exact (time, proc) duplicates, fault-aware resets, and
// cancellation polls. This is the test the calendar queue's correctness
// leans on (src/sim/event_core.hpp); the heap path is kept verbatim from
// the pre-calendar engine precisely so it can serve as the oracle here.
#include "sim/event_core.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "util/cancel.hpp"

namespace afs {
namespace {

/// Drives the same operation stream through both representations and
/// asserts every observable — pop results, push_pop results, size, top,
/// leads — stays identical. Returns the number of operations executed so
/// callers can assert coverage.
class LockstepDriver {
 public:
  LockstepDriver() {
    cal_.set_calendar(true);
    heap_.set_calendar(false);
  }

  void reset(const std::vector<double>& start) {
    cal_.reset(start);
    heap_.reset(start);
    check_tops();
  }

  void reset(const std::vector<double>& start, const std::vector<char>& alive) {
    cal_.reset(start, alive);
    heap_.reset(start, alive);
    check_tops();
  }

  void push(double t, int proc) {
    cal_.push(t, proc);
    heap_.push(t, proc);
    ++ops_;
    check_tops();
  }

  void push_pop(double t, int proc) {
    const EventCore::Event a = cal_.push_pop(t, proc);
    const EventCore::Event b = heap_.push_pop(t, proc);
    ASSERT_EQ(a, b) << "push_pop(" << t << ", " << proc << ") diverged";
    ++ops_;
    check_tops();
  }

  void pop() {
    const EventCore::Event a = cal_.pop();
    const EventCore::Event b = heap_.pop();
    ASSERT_EQ(a, b) << "pop diverged";
    ++ops_;
    check_tops();
  }

  void check_leads(double t, int proc) {
    ASSERT_EQ(cal_.leads(t, proc), heap_.leads(t, proc))
        << "leads(" << t << ", " << proc << ") diverged";
  }

  /// Drains both queues to empty, asserting the full remaining sequence.
  void drain() {
    ASSERT_EQ(cal_.size(), heap_.size());
    while (!cal_.empty()) pop();
    ASSERT_TRUE(heap_.empty());
  }

  std::size_t size() const { return cal_.size(); }
  bool empty() const { return cal_.empty(); }
  std::int64_t ops() const { return ops_; }

  EventCore& calendar() { return cal_; }
  EventCore& heap() { return heap_; }

 private:
  void check_tops() {
    ASSERT_EQ(cal_.size(), heap_.size());
    if (!cal_.empty()) {
      ASSERT_EQ(cal_.top(), heap_.top());
    }
  }

  EventCore cal_;
  EventCore heap_;
  std::int64_t ops_ = 0;
};

/// Times drawn from a coarse lattice so duplicate timestamps (and exact
/// (time, proc) duplicates) occur constantly — the tie-handling paths are
/// where a sorted structure and a heap could plausibly disagree.
double lattice_time(std::mt19937_64& rng, double base) {
  return base + 0.25 * std::uniform_int_distribution<int>(0, 40)(rng);
}

TEST(EventQueueProperty, CalendarMatchesHeapOverMillionMixedOps) {
  std::mt19937_64 rng(0xCA1E0DA5ULL);  // fixed seed: failures replay exactly
  LockstepDriver d;

  // Many short epochs: each epoch resets both cores (alternating between
  // the plain and the fault-aware reset), then runs a randomized mix of
  // operations whose time base creeps forward like a real simulation's
  // clock but frequently ties and occasionally regresses.
  const int kEpochs = 64;
  const int kOpsPerEpoch = 16000;  // 64 * 16000 > 1M ops through each core
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const int p = std::uniform_int_distribution<int>(1, 48)(rng);
    std::vector<double> start(static_cast<std::size_t>(p));
    for (double& s : start) s = lattice_time(rng, 0.0);
    if (epoch % 2 == 0) {
      d.reset(start);
    } else {
      std::vector<char> alive(static_cast<std::size_t>(p));
      bool any = false;
      for (char& a : alive) any |= (a = std::bernoulli_distribution(0.8)(rng));
      if (!any) alive[0] = 1;  // keep the epoch non-degenerate
      d.reset(start, alive);
    }

    double base = 0.0;
    for (int op = 0; op < kOpsPerEpoch; ++op) {
      base += 0.25 * std::uniform_int_distribution<int>(0, 2)(rng);
      const double t = lattice_time(rng, base);
      const int proc = std::uniform_int_distribution<int>(0, p - 1)(rng);
      switch (std::uniform_int_distribution<int>(0, 9)(rng)) {
        case 0:
        case 1:
        case 2:  // 30%: plain push (grows the queue; exercises ring_grow)
          d.push(t, proc);
          break;
        case 3:
        case 4:
        case 5:
        case 6:  // 40%: fused push_pop — the engine's steady-state op
          if (d.empty()) {
            d.push(t, proc);
          } else {
            d.push_pop(t, proc);
          }
          break;
        case 7:
        case 8:  // 20%: pop
          if (!d.empty()) d.pop();
          break;
        default:  // 10%: probe leads() on a fresh (t, proc)
          d.check_leads(t, proc);
          break;
      }
    }
    d.drain();
  }
  EXPECT_GT(d.ops(), 1000000) << "op budget under-delivered; raise kOpsPerEpoch";
}

TEST(EventQueueProperty, TieBoundaryAtTopTime) {
  // Satellite regression for the push_pop / leads() tie-break parity at
  // the t == top().first boundary (see the push_pop doc comment): a
  // processor tying the front's time must keep running iff its id is
  // lower, identically in both representations.
  for (const bool calendar : {true, false}) {
    EventCore q;
    q.set_calendar(calendar);
    q.reset({10.0, 10.0, 20.0});  // front is (10, 0)

    // Lower id at the front's exact time: still leads, keeps its event.
    EXPECT_TRUE(q.leads(10.0, -1));
    // Same time, higher id than the front: must yield.
    EXPECT_FALSE(q.leads(10.0, 1));
    EXPECT_FALSE(q.leads(10.0, 5));
    // Strictly earlier always leads; strictly later never does.
    EXPECT_TRUE(q.leads(9.75, 99));
    EXPECT_FALSE(q.leads(10.25, -1));

    // push_pop at the exact front time with a higher id swaps: the front
    // (10, 0) comes out, (10, 2) queues behind (10, 1).
    EXPECT_EQ(q.push_pop(10.0, 2), EventCore::Event(10.0, 0));
    EXPECT_EQ(q.top(), EventCore::Event(10.0, 1));
    // ...and with an id below the new front, the caller keeps its event.
    EXPECT_EQ(q.push_pop(10.0, 0), EventCore::Event(10.0, 0));
    EXPECT_EQ(q.top(), EventCore::Event(10.0, 1));

    // Exact (time, proc) duplicate of the front: keep-or-swap is
    // unobservable; push_pop must return the identical event either way.
    EXPECT_EQ(q.push_pop(10.0, 1), EventCore::Event(10.0, 1));

    // Remaining population drains in (time, id) order.
    EXPECT_EQ(q.pop(), EventCore::Event(10.0, 1));
    EXPECT_EQ(q.pop(), EventCore::Event(10.0, 2));
    EXPECT_EQ(q.pop(), EventCore::Event(20.0, 2));
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueueProperty, CancellationPollsFireOnBothRepresentations) {
  for (const bool calendar : {true, false}) {
    EventCore q;
    q.set_calendar(calendar);
    CancelToken token;
    q.set_cancel(&token);
    q.reset({1.0, 2.0});
    EXPECT_EQ(q.pop(), EventCore::Event(1.0, 0));  // token idle: pops work
    token.cancel();
    EXPECT_THROW(q.pop(), CancelledError);
    EXPECT_THROW(q.push_pop(3.0, 0), CancelledError);
    // The queue itself is untouched by the refused operations...
    EXPECT_EQ(q.size(), 1u);
    q.set_cancel(nullptr);  // ...and detaching the token unblocks it.
    EXPECT_EQ(q.pop(), EventCore::Event(2.0, 1));
  }
}

TEST(EventQueueProperty, RingGrowsPastResetPopulation) {
  // The engine never pushes beyond one event per processor, but push() is
  // public API: growing the ring mid-stream must preserve order.
  EventCore q;
  q.set_calendar(true);
  q.reset({5.0});
  for (int i = 0; i < 100; ++i)
    q.push(4.0 + 0.01 * i, i + 1);  // all earlier than the reset event
  double prev_t = -1.0;
  int prev_p = -1;
  std::size_t drained = 0;
  while (!q.empty()) {
    const EventCore::Event e = q.pop();
    EXPECT_TRUE(prev_t < e.first || (prev_t == e.first && prev_p < e.second))
        << "drain order violated at event " << drained;
    prev_t = e.first;
    prev_p = e.second;
    ++drained;
  }
  EXPECT_EQ(drained, 101u);
}

}  // namespace
}  // namespace afs
