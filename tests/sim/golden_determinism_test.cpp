// Golden determinism pins: exact SimResult fields for one small
// configuration per simulated machine, captured from the engine at the
// time of the core refactor (values printed at %.17g, which round-trips
// doubles exactly).
//
// These tests intentionally hard-code numbers. The simulator promises
// bit-identical results for a given (machine, program, scheduler, P, seed)
// — including with iteration batching on or off — and the paper's figures
// are regenerated from these runs, so *any* drift here is a behavioral
// change that must be deliberate. If you intend to change the model,
// re-capture the constants and say so in the commit message.
#include <gtest/gtest.h>

#include "kernels/gauss.hpp"
#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

struct Golden {
  double makespan, busy, sync, comm, idle, barrier;
  std::int64_t hits, misses, invalidations;
  double units;
  std::int64_t local, remote, central, iters;
};

void expect_matches(const SimResult& r, const Golden& g) {
  EXPECT_EQ(r.makespan, g.makespan);
  EXPECT_EQ(r.busy, g.busy);
  EXPECT_EQ(r.sync, g.sync);
  EXPECT_EQ(r.comm, g.comm);
  EXPECT_EQ(r.idle, g.idle);
  EXPECT_EQ(r.barrier, g.barrier);
  EXPECT_EQ(r.hits, g.hits);
  EXPECT_EQ(r.misses, g.misses);
  EXPECT_EQ(r.invalidations, g.invalidations);
  EXPECT_EQ(r.units_transferred, g.units);
  EXPECT_EQ(r.local_grabs, g.local);
  EXPECT_EQ(r.remote_grabs, g.remote);
  EXPECT_EQ(r.central_grabs, g.central);
  EXPECT_EQ(r.iterations, g.iters);
}

SimResult run(const MachineConfig& m, const LoopProgram& prog,
              const char* spec, int p, bool batch = true) {
  SimOptions opts;
  opts.batch_iterations = batch;
  MachineSim sim(m, opts);
  auto sched = make_scheduler(spec);
  return sim.run(prog, *sched, p);
}

// ------------------------- one pin per machine ---------------------------

TEST(GoldenDeterminism, IrisGauss64Afs) {
  const Golden g{67819.036487821562,
                 174720,
                 14055.074095390286,
                 31372.385365932016,
                 15597.16533924961,
                 22680,
                 3634,
                 398,
                 150,
                 14952,
                 1251,
                 45,
                 0,
                 2016};
  expect_matches(run(iris(), GaussKernel::program(64), "AFS", 4), g);
}

TEST(GoldenDeterminism, IrisGauss64Gss) {
  const Golden g{103803.043776226,
                 174720,
                 17687.752275123195,
                 164705.09400794463,
                 22567.807671121889,
                 22680,
                 2264,
                 1768,
                 1520,
                 74932,
                 0,
                 0,
                 587,
                 2016};
  expect_matches(run(iris(), GaussKernel::program(64), "GSS", 4), g);
}

TEST(GoldenDeterminism, Butterfly1Triangular256Afs) {
  const Golden g{5174.4869730217124,
                 32896,
                 5514.1615409214583,
                 0,
                 1467.8147445231752,
                 1248,
                 0,
                 0,
                 0,
                 0,
                 107,
                 21,
                 0,
                 256};
  expect_matches(run(butterfly1(), triangular_program(256), "AFS", 8), g);
}

TEST(GoldenDeterminism, Butterfly1Triangular256Gss) {
  const Golden g{7906.193148552994,
                 32896,
                 4302.6256896948871,
                 0,
                 24533,
                 1248,
                 0,
                 0,
                 0,
                 0,
                 0,
                 0,
                 31,
                 256};
  expect_matches(run(butterfly1(), triangular_program(256), "GSS", 8), g);
}

TEST(GoldenDeterminism, SymmetrySor64Factoring) {
  const Golden g{623649.5210944016,
                 2457600,
                 5807.3246373988195,
                 23727.999999999687,
                 4980,
                 1440,
                 438,
                 322,
                 239,
                 20608,
                 0,
                 0,
                 80,
                 256};
  expect_matches(run(symmetry(), SorKernel::program(64, 4), "FACTORING", 4), g);
}

TEST(GoldenDeterminism, SymmetrySor64Afs) {
  const Golden g{618028.73689446342,
                 2457600,
                 3840,
                 6630.441699508523,
                 1561.7461381373578,
                 1440,
                 672,
                 88,
                 21,
                 5632,
                 128,
                 0,
                 0,
                 256};
  expect_matches(run(symmetry(), SorKernel::program(64, 4), "AFS", 4), g);
}

TEST(GoldenDeterminism, Ksr1Gauss96Afs) {
  const Golden g{206878.67576108791,
                 589760,
                 219829.17119099604,
                 166513.3545960848,
                 252536.62152450037,
                 273600,
                 7821,
                 1299,
                 568,
                 68543,
                 4030,
                 218,
                 0,
                 4560};
  expect_matches(run(ksr1(), GaussKernel::program(96), "AFS", 8), g);
}

TEST(GoldenDeterminism, Ksr1Gauss96Trapezoid) {
  const Golden g{596856.07205591374,
                 589760,
                 2406393.9436231712,
                 661721.66666666593,
                 690582.70738034754,
                 273600,
                 4444,
                 4676,
                 3940,
                 294638,
                 0,
                 0,
                 1783,
                 4560};
  expect_matches(run(ksr1(), GaussKernel::program(96), "TRAPEZOID", 8), g);
}

// -------------------- batching must not change anything ------------------

TEST(GoldenDeterminism, BatchingOffIsBitIdentical) {
  struct Case {
    MachineConfig machine;
    LoopProgram program;
    const char* spec;
    int p;
  };
  const Case cases[] = {
      {iris(), GaussKernel::program(64), "AFS", 4},
      {butterfly1(), triangular_program(256), "GSS", 8},
      {symmetry(), SorKernel::program(64, 4), "FACTORING", 4},
      {ksr1(), GaussKernel::program(96), "TRAPEZOID", 8},
  };
  for (const Case& c : cases) {
    const SimResult on = run(c.machine, c.program, c.spec, c.p, true);
    const SimResult off = run(c.machine, c.program, c.spec, c.p, false);
    EXPECT_EQ(on.makespan, off.makespan) << c.spec;
    EXPECT_EQ(on.busy, off.busy) << c.spec;
    EXPECT_EQ(on.sync, off.sync) << c.spec;
    EXPECT_EQ(on.comm, off.comm) << c.spec;
    EXPECT_EQ(on.idle, off.idle) << c.spec;
    EXPECT_EQ(on.barrier, off.barrier) << c.spec;
    EXPECT_EQ(on.hits, off.hits) << c.spec;
    EXPECT_EQ(on.misses, off.misses) << c.spec;
    EXPECT_EQ(on.invalidations, off.invalidations) << c.spec;
    EXPECT_EQ(on.units_transferred, off.units_transferred) << c.spec;
    EXPECT_EQ(on.local_grabs, off.local_grabs) << c.spec;
    EXPECT_EQ(on.remote_grabs, off.remote_grabs) << c.spec;
    EXPECT_EQ(on.central_grabs, off.central_grabs) << c.spec;
    EXPECT_EQ(on.iterations, off.iterations) << c.spec;
  }
}

TEST(GoldenDeterminism, RepeatedRunsIdentical) {
  // Same MachineSim instance reused: internal state must fully reset.
  MachineSim sim(ksr1());
  auto sched1 = make_scheduler("AFS");
  auto sched2 = make_scheduler("AFS");
  const SimResult a = sim.run(GaussKernel::program(96), *sched1, 8);
  const SimResult b = sim.run(GaussKernel::program(96), *sched2, 8);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.units_transferred, b.units_transferred);
}

}  // namespace
}  // namespace afs
