// Programs with several parallel loops per epoch (L4's shape) and other
// whole-program behaviours of MachineSim.
#include <gtest/gtest.h>

#include "kernels/l4.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/grab.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

MachineConfig plain() {
  MachineConfig m;
  m.name = "plain";
  m.max_processors = 16;
  m.work_unit_time = 1.0;
  return m;
}

TEST(MultiLoop, LoopsWithinAnEpochRunSequentially) {
  // Two loops of 100 units each on 1 processor: makespan is their sum.
  LoopProgram prog;
  prog.name = "two-loops";
  prog.epochs = 1;
  prog.epoch_loops = [](int) {
    ParallelLoopSpec a, b;
    a.n = 10;
    a.work = [](std::int64_t) { return 10.0; };
    b.n = 20;
    b.work = [](std::int64_t) { return 5.0; };
    return std::vector<ParallelLoopSpec>{a, b};
  };
  MachineSim sim(plain());
  auto sched = make_scheduler("STATIC");
  const SimResult r = sim.run(prog, *sched, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 200.0);
  EXPECT_EQ(r.iterations, 30);
}

TEST(MultiLoop, L4ProgramRunsUnderEveryButterflyScheduler) {
  L4Config cfg;
  cfg.outer = 5;
  L4Kernel l4(cfg);
  const auto prog = l4.program();
  MachineSim sim(butterfly1());
  const double serial = sim.ideal_serial_time(prog);
  EXPECT_NEAR(serial, l4.total_units() * butterfly1().work_unit_time, 1e-6);
  for (const char* spec : {"GSS", "TRAPEZOID", "AFS", "SS"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(prog, *sched, 8);
    EXPECT_NEAR(r.busy, l4.total_units(), 1e-6) << spec;
    EXPECT_GE(r.makespan, serial / 8.0) << spec;
    // 5 epochs x 3 loops each.
    EXPECT_EQ(r.sched_stats.loops, 15) << spec;
  }
}

TEST(MultiLoop, SchedulerReusedAcrossDifferentLoopSizes) {
  // Gauss-style shrinking loops: AFS must re-seed for each new n.
  LoopProgram prog;
  prog.name = "shrinking";
  prog.epochs = 10;
  prog.epoch_loops = [](int e) {
    ParallelLoopSpec spec;
    spec.n = 100 - 10 * e;
    spec.work = [](std::int64_t) { return 1.0; };
    return std::vector<ParallelLoopSpec>{spec};
  };
  MachineSim sim(plain());
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(prog, *sched, 4);
  EXPECT_EQ(r.iterations, 100 + 90 + 80 + 70 + 60 + 50 + 40 + 30 + 20 + 10);
}

TEST(MultiLoop, ZeroEpochProgram) {
  LoopProgram prog = balanced_program(100);
  prog.epochs = 0;
  MachineSim sim(plain());
  auto sched = make_scheduler("GSS");
  const SimResult r = sim.run(prog, *sched, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_EQ(r.iterations, 0);
}

TEST(MultiLoop, EmptyLoopWithinEpoch) {
  LoopProgram prog;
  prog.name = "empty-middle";
  prog.epochs = 1;
  prog.epoch_loops = [](int) {
    ParallelLoopSpec a, b;
    a.n = 0;
    a.work = [](std::int64_t) { return 1.0; };
    b.n = 8;
    b.work = [](std::int64_t) { return 1.0; };
    return std::vector<ParallelLoopSpec>{a, b};
  };
  MachineSim sim(plain());
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(prog, *sched, 4);
  EXPECT_EQ(r.iterations, 8);
}

// --------------------------------------------------------- small APIs ---

TEST(SmallApis, GrabKindNames) {
  EXPECT_EQ(to_string(GrabKind::kNone), "none");
  EXPECT_EQ(to_string(GrabKind::kCentral), "central");
  EXPECT_EQ(to_string(GrabKind::kLocal), "local");
  EXPECT_EQ(to_string(GrabKind::kRemote), "remote");
  EXPECT_EQ(to_string(GrabKind::kStatic), "static");
}

TEST(SmallApis, SimResultSpeedup) {
  SimResult r;
  r.makespan = 50.0;
  EXPECT_DOUBLE_EQ(r.speedup_vs(200.0), 4.0);
  r.makespan = 0.0;
  EXPECT_DOUBLE_EQ(r.speedup_vs(200.0), 0.0);
}

TEST(SmallApis, IterRangeTakeFrontBack) {
  IterRange r{10, 20};
  EXPECT_EQ(r.take_front(3), (IterRange{10, 13}));
  EXPECT_EQ(r, (IterRange{13, 20}));
  EXPECT_EQ(r.take_back(4), (IterRange{16, 20}));
  EXPECT_EQ(r, (IterRange{13, 16}));
  EXPECT_EQ(r.take_front(100), (IterRange{13, 16}));  // clipped
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace afs
