// Accounting invariants of the simulator: time must be conserved, sync-op
// counts must match the analytic recurrences, and no scheduler may go
// faster than perfect speedup.
#include <gtest/gtest.h>

#include <map>

#include "kernels/sor.hpp"
#include "kernels/synthetic.hpp"
#include "machines/machines.hpp"
#include "sched/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/machine_sim.hpp"

namespace afs {
namespace {

MachineConfig quiet(MachineConfig m) {
  m.epoch_jitter = 0.0;  // deterministic starts so accounting is exact
  return m;
}

TEST(Conservation, TimeDecompositionSumsToSpan) {
  // With zero jitter and no delays, every processor is accounted for from
  // loop start to loop end: busy + sync + comm + idle + barrier = P * span.
  MachineConfig m = quiet(iris());
  MachineSim sim(m);
  for (const char* spec : {"GSS", "AFS", "STATIC", "SS", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    const auto prog = SorKernel::program(64, 4);
    const SimResult r = sim.run(prog, *sched, 4);
    EXPECT_TRUE(check_time_identity(r, 4))
        << spec << ": accounted " << accounted_time(r) << " vs "
        << 4.0 * r.makespan;
  }
}

TEST(Conservation, TimeIdentityHoldsAcrossMachines) {
  // The identity is a property of the engine, not of one machine model:
  // it must survive serialized buses, switches, and COMA-size caches.
  const auto prog = SorKernel::program(64, 2);
  for (const MachineConfig& base :
       {iris(), butterfly1(), symmetry(), ksr1()}) {
    MachineSim sim(quiet(base));
    auto sched = make_scheduler("AFS");
    const SimResult r = sim.run(prog, *sched, 4);
    EXPECT_TRUE(check_time_identity(r, 4)) << base.name;
  }
}

TEST(Conservation, CheckTimeIdentityRejectsCorruptedAccounting) {
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("AFS");
  SimResult r = sim.run(SorKernel::program(64, 4), *sched, 4);
  ASSERT_TRUE(check_time_identity(r, 4));
  r.idle += 0.01 * r.makespan;  // lose 1% of a processor somewhere
  EXPECT_FALSE(check_time_identity(r, 4));
}

TEST(Conservation, ResultAccumulationMatchesFieldSums) {
  // operator+= is how experiment drivers aggregate repeated runs; it must
  // preserve the conservation identity of back-to-back executions.
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(64, 4);
  auto s1 = make_scheduler("AFS");
  auto s2 = make_scheduler("GSS");
  const SimResult a = sim.run(prog, *s1, 4);
  const SimResult b = sim.run(prog, *s2, 4);

  SimResult sum = a;
  sum += b;
  EXPECT_DOUBLE_EQ(sum.makespan, a.makespan + b.makespan);
  EXPECT_DOUBLE_EQ(sum.busy, a.busy + b.busy);
  EXPECT_DOUBLE_EQ(sum.comm, a.comm + b.comm);
  EXPECT_EQ(sum.iterations, a.iterations + b.iterations);
  EXPECT_EQ(sum.misses, a.misses + b.misses);
  EXPECT_EQ(sum.local_grabs + sum.remote_grabs + sum.central_grabs,
            a.local_grabs + a.remote_grabs + a.central_grabs +
                b.local_grabs + b.remote_grabs + b.central_grabs);
  EXPECT_EQ(sum.sched_stats.loops, a.sched_stats.loops + b.sched_stats.loops);
  EXPECT_EQ(sum.sched_stats.total().total_grabs(),
            a.sched_stats.total().total_grabs() +
                b.sched_stats.total().total_grabs());
  // Two conserving runs still conserve when pooled.
  EXPECT_TRUE(check_time_identity(sum, 4));
}

TEST(Conservation, ExtendedIdentityIncludesStallTime) {
  // Under fault injection the identity gains a sixth term: stall_time
  // absorbs preemption stalls, start delays, and dead-processor spans, and
  // the decomposition stays exact.
  SimOptions opts;
  opts.perturb.seed = 7;
  opts.perturb.stall_mean_interval = 2000.0;
  opts.perturb.stall_duration = 150.0;
  opts.perturb.losses.push_back({1, 10000.0});
  MachineSim sim(quiet(iris()), opts);
  for (const char* spec : {"GSS", "AFS", "STATIC", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(SorKernel::program(64, 4), *sched, 4);
    EXPECT_GT(r.stall_time, 0.0) << spec;
    EXPECT_TRUE(check_time_identity(r, 4))
        << spec << ": accounted " << accounted_time(r) << " vs "
        << 4.0 * r.makespan;
  }
}

TEST(Conservation, IterationCountExact) {
  MachineSim sim(quiet(iris()));
  for (const char* spec : {"GSS", "AFS", "FACTORING", "MOD-FACTORING"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(SorKernel::program(100, 3), *sched, 5);
    EXPECT_EQ(r.iterations, 300) << spec;
  }
}

TEST(Conservation, SchedulerIterAccountingMatchesLoopSize) {
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(SorKernel::program(128, 4), *sched, 8);
  const QueueStats total = r.sched_stats.total();
  EXPECT_EQ(total.iters_local + total.iters_remote, 128 * 4);
}

TEST(Conservation, NoSuperlinearSpeedup) {
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(128, 4);
  const double serial = sim.ideal_serial_time(prog);
  for (const char* spec : {"AFS", "GSS", "STATIC", "BEST-STATIC", "WS"}) {
    for (int p : {1, 2, 4, 8}) {
      auto sched = make_scheduler(spec);
      const SimResult r = sim.run(prog, *sched, p);
      EXPECT_GE(r.makespan, serial / p - 1e-9)
          << spec << " P=" << p << " exceeded perfect speedup";
    }
  }
}

TEST(Conservation, BusyTimeIndependentOfScheduler) {
  // Total compute is schedule-invariant; only where it runs changes.
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(96, 5);
  double reference = -1.0;
  for (const char* spec : {"AFS", "GSS", "SS", "STATIC", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    const SimResult r = sim.run(prog, *sched, 6);
    if (reference < 0)
      reference = r.busy;
    else
      EXPECT_NEAR(r.busy, reference, 1e-9) << spec;
  }
}

// ------------------------------- Tables 3-5 count regressions -----------

TEST(SyncOpRegression, SsCountEqualsIterations) {
  // Table 3-5: SS does exactly N removals per loop, independent of P.
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("SS");
  const SimResult r = sim.run(SorKernel::program(512, 1), *sched, 8);
  EXPECT_EQ(r.sched_stats.total().total_grabs(), 512);
}

TEST(SyncOpRegression, GssCountMatchesDrainRecurrence) {
  // GSS's grab count per loop is exactly the drain recurrence; the paper's
  // Table 3 reports 43 for N=512, P=8 — the recurrence gives the same
  // order (it differs from 43 only through their ceil convention).
  MachineSim sim(quiet(iris()));
  auto sched = make_scheduler("GSS");
  const SimResult r = sim.run(SorKernel::program(512, 1), *sched, 8);
  EXPECT_EQ(r.sched_stats.total().total_grabs(), drain_count(512, 8));
  // ceil-based chunks drain slightly faster than the paper's
  // floor-convention count of 43; same order either way.
  EXPECT_NEAR(static_cast<double>(drain_count(512, 8)), 43.0, 8.0);
}

TEST(SyncOpRegression, TrapezoidFewestCentralOps) {
  // Table 3 ordering at P=8: TRAPEZOID < GSS < FACTORING < SS.
  MachineSim sim(quiet(iris()));
  const auto prog = SorKernel::program(512, 1);
  std::map<std::string, std::int64_t> grabs;
  for (const char* spec : {"SS", "GSS", "FACTORING", "TRAPEZOID"}) {
    auto sched = make_scheduler(spec);
    grabs[spec] = sim.run(prog, *sched, 8).sched_stats.total().total_grabs();
  }
  EXPECT_LT(grabs["TRAPEZOID"], grabs["GSS"]);
  EXPECT_LT(grabs["GSS"], grabs["FACTORING"]);
  EXPECT_LT(grabs["FACTORING"], grabs["SS"]);
}

TEST(SyncOpRegression, AfsRemoteOpsRareOnBalancedLoop) {
  // Table 3's striking row: AFS balances SOR with ~0.4-1.1 remote
  // operations per queue per loop.
  MachineSim sim(iris());  // default jitter: realistic conditions
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(SorKernel::program(512, 4), *sched, 8);
  EXPECT_LE(r.sched_stats.remote_per_queue_per_loop(), 3.0);
  EXPECT_GT(r.sched_stats.local_per_queue_per_loop(), 3.0);
}

TEST(SyncOpRegression, AfsQueueBoundHoldsInSim) {
  // Theorem 3.1 holds for simulated executions too.
  MachineSim sim(iris());
  auto sched = make_scheduler("AFS");
  const SimResult r = sim.run(SorKernel::program(512, 1), *sched, 8);
  const std::int64_t bound = afs_queue_sync_bound(512, 8, 8);
  for (const auto& q : r.sched_stats.queues) {
    EXPECT_LE(q.local_grabs, bound);
    EXPECT_LE(q.remote_grabs, bound);
  }
}

}  // namespace
}  // namespace afs
